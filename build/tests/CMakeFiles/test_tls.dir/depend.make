# Empty dependencies file for test_tls.
# This may be replaced when dependencies are built.
