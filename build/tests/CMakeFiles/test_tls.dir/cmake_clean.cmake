file(REMOVE_RECURSE
  "CMakeFiles/test_tls.dir/test_tls.cpp.o"
  "CMakeFiles/test_tls.dir/test_tls.cpp.o.d"
  "test_tls"
  "test_tls.pdb"
  "test_tls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
