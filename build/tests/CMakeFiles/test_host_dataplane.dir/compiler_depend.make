# Empty compiler generated dependencies file for test_host_dataplane.
# This may be replaced when dependencies are built.
