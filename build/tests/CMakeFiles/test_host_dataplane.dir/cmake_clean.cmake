file(REMOVE_RECURSE
  "CMakeFiles/test_host_dataplane.dir/test_host_dataplane.cpp.o"
  "CMakeFiles/test_host_dataplane.dir/test_host_dataplane.cpp.o.d"
  "test_host_dataplane"
  "test_host_dataplane.pdb"
  "test_host_dataplane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
