file(REMOVE_RECURSE
  "CMakeFiles/test_controller.dir/test_controller.cpp.o"
  "CMakeFiles/test_controller.dir/test_controller.cpp.o.d"
  "test_controller"
  "test_controller.pdb"
  "test_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
