file(REMOVE_RECURSE
  "CMakeFiles/test_pki.dir/test_pki.cpp.o"
  "CMakeFiles/test_pki.dir/test_pki.cpp.o.d"
  "test_pki"
  "test_pki.pdb"
  "test_pki[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
