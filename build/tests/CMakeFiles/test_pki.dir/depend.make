# Empty dependencies file for test_pki.
# This may be replaced when dependencies are built.
