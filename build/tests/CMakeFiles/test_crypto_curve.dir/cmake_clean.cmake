file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_curve.dir/test_crypto_curve.cpp.o"
  "CMakeFiles/test_crypto_curve.dir/test_crypto_curve.cpp.o.d"
  "test_crypto_curve"
  "test_crypto_curve.pdb"
  "test_crypto_curve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
