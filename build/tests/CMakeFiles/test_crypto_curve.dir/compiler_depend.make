# Empty compiler generated dependencies file for test_crypto_curve.
# This may be replaced when dependencies are built.
