file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_hash.dir/test_crypto_hash.cpp.o"
  "CMakeFiles/test_crypto_hash.dir/test_crypto_hash.cpp.o.d"
  "test_crypto_hash"
  "test_crypto_hash.pdb"
  "test_crypto_hash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
