# Empty compiler generated dependencies file for test_crypto_hash.
# This may be replaced when dependencies are built.
