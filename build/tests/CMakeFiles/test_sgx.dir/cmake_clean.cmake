file(REMOVE_RECURSE
  "CMakeFiles/test_sgx.dir/test_sgx.cpp.o"
  "CMakeFiles/test_sgx.dir/test_sgx.cpp.o.d"
  "test_sgx"
  "test_sgx.pdb"
  "test_sgx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
