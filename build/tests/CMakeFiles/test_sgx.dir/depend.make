# Empty dependencies file for test_sgx.
# This may be replaced when dependencies are built.
