# Empty dependencies file for test_vnf.
# This may be replaced when dependencies are built.
