file(REMOVE_RECURSE
  "CMakeFiles/test_vnf.dir/test_vnf.cpp.o"
  "CMakeFiles/test_vnf.dir/test_vnf.cpp.o.d"
  "test_vnf"
  "test_vnf.pdb"
  "test_vnf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
