# Empty compiler generated dependencies file for test_ias.
# This may be replaced when dependencies are built.
