file(REMOVE_RECURSE
  "CMakeFiles/test_ias.dir/test_ias.cpp.o"
  "CMakeFiles/test_ias.dir/test_ias.cpp.o.d"
  "test_ias"
  "test_ias.pdb"
  "test_ias[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
