# Empty compiler generated dependencies file for test_crypto_aead.
# This may be replaced when dependencies are built.
