file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_aead.dir/test_crypto_aead.cpp.o"
  "CMakeFiles/test_crypto_aead.dir/test_crypto_aead.cpp.o.d"
  "test_crypto_aead"
  "test_crypto_aead.pdb"
  "test_crypto_aead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_aead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
