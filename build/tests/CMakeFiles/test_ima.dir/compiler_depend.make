# Empty compiler generated dependencies file for test_ima.
# This may be replaced when dependencies are built.
