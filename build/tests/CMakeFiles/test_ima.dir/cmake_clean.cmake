file(REMOVE_RECURSE
  "CMakeFiles/test_ima.dir/test_ima.cpp.o"
  "CMakeFiles/test_ima.dir/test_ima.cpp.o.d"
  "test_ima"
  "test_ima.pdb"
  "test_ima[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
