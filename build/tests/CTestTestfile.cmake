# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_hash[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_aead[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_curve[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_pki[1]_include.cmake")
include("/root/repo/build/tests/test_tls[1]_include.cmake")
include("/root/repo/build/tests/test_sgx[1]_include.cmake")
include("/root/repo/build/tests/test_ias[1]_include.cmake")
include("/root/repo/build/tests/test_ima[1]_include.cmake")
include("/root/repo/build/tests/test_host_dataplane[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_vnf[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
