file(REMOVE_RECURSE
  "CMakeFiles/security_modes.dir/security_modes.cpp.o"
  "CMakeFiles/security_modes.dir/security_modes.cpp.o.d"
  "security_modes"
  "security_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
