# Empty compiler generated dependencies file for security_modes.
# This may be replaced when dependencies are built.
