# Empty compiler generated dependencies file for compromise_detection.
# This may be replaced when dependencies are built.
