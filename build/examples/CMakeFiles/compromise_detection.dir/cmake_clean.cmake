file(REMOVE_RECURSE
  "CMakeFiles/compromise_detection.dir/compromise_detection.cpp.o"
  "CMakeFiles/compromise_detection.dir/compromise_detection.cpp.o.d"
  "compromise_detection"
  "compromise_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compromise_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
