# Empty dependencies file for credential_lifecycle.
# This may be replaced when dependencies are built.
