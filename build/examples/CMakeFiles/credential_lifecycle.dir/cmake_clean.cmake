file(REMOVE_RECURSE
  "CMakeFiles/credential_lifecycle.dir/credential_lifecycle.cpp.o"
  "CMakeFiles/credential_lifecycle.dir/credential_lifecycle.cpp.o.d"
  "credential_lifecycle"
  "credential_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credential_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
