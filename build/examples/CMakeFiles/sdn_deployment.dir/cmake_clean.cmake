file(REMOVE_RECURSE
  "CMakeFiles/sdn_deployment.dir/sdn_deployment.cpp.o"
  "CMakeFiles/sdn_deployment.dir/sdn_deployment.cpp.o.d"
  "sdn_deployment"
  "sdn_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
