# Empty compiler generated dependencies file for sdn_deployment.
# This may be replaced when dependencies are built.
