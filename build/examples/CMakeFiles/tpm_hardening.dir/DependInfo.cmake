
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tpm_hardening.cpp" "examples/CMakeFiles/tpm_hardening.dir/tpm_hardening.cpp.o" "gcc" "examples/CMakeFiles/tpm_hardening.dir/tpm_hardening.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vnfsgx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/vnfsgx_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/ias/CMakeFiles/vnfsgx_ias.dir/DependInfo.cmake"
  "/root/repo/build/src/vnf/CMakeFiles/vnfsgx_vnf.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/vnfsgx_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/vnfsgx_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/ima/CMakeFiles/vnfsgx_ima.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/vnfsgx_json.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/vnfsgx_http.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/vnfsgx_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/vnfsgx_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/vnfsgx_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfsgx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vnfsgx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
