# Empty dependencies file for tpm_hardening.
# This may be replaced when dependencies are built.
