file(REMOVE_RECURSE
  "CMakeFiles/tpm_hardening.dir/tpm_hardening.cpp.o"
  "CMakeFiles/tpm_hardening.dir/tpm_hardening.cpp.o.d"
  "tpm_hardening"
  "tpm_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
