file(REMOVE_RECURSE
  "libvnfsgx_crypto.a"
)
