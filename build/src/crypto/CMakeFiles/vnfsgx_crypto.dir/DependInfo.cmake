
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/ed25519.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/ed25519.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/ed25519.cpp.o.d"
  "/root/repo/src/crypto/field25519.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/field25519.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/field25519.cpp.o.d"
  "/root/repo/src/crypto/gcm.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/gcm.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/gcm.cpp.o.d"
  "/root/repo/src/crypto/hkdf.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/hkdf.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/hkdf.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/random.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/random.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/random.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha512.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/sha512.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/sha512.cpp.o.d"
  "/root/repo/src/crypto/x25519.cpp" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/x25519.cpp.o" "gcc" "src/crypto/CMakeFiles/vnfsgx_crypto.dir/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfsgx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
