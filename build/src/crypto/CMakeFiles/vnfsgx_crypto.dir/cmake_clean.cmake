file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_crypto.dir/aes.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/vnfsgx_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/vnfsgx_crypto.dir/field25519.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/field25519.cpp.o.d"
  "CMakeFiles/vnfsgx_crypto.dir/gcm.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/gcm.cpp.o.d"
  "CMakeFiles/vnfsgx_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/vnfsgx_crypto.dir/hmac.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/vnfsgx_crypto.dir/random.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/random.cpp.o.d"
  "CMakeFiles/vnfsgx_crypto.dir/sha256.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/vnfsgx_crypto.dir/sha512.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/vnfsgx_crypto.dir/x25519.cpp.o"
  "CMakeFiles/vnfsgx_crypto.dir/x25519.cpp.o.d"
  "libvnfsgx_crypto.a"
  "libvnfsgx_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
