# Empty compiler generated dependencies file for vnfsgx_crypto.
# This may be replaced when dependencies are built.
