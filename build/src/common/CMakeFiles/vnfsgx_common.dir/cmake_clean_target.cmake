file(REMOVE_RECURSE
  "libvnfsgx_common.a"
)
