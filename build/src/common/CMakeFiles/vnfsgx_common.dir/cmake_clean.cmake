file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_common.dir/base64.cpp.o"
  "CMakeFiles/vnfsgx_common.dir/base64.cpp.o.d"
  "CMakeFiles/vnfsgx_common.dir/hex.cpp.o"
  "CMakeFiles/vnfsgx_common.dir/hex.cpp.o.d"
  "CMakeFiles/vnfsgx_common.dir/logging.cpp.o"
  "CMakeFiles/vnfsgx_common.dir/logging.cpp.o.d"
  "CMakeFiles/vnfsgx_common.dir/sim_clock.cpp.o"
  "CMakeFiles/vnfsgx_common.dir/sim_clock.cpp.o.d"
  "libvnfsgx_common.a"
  "libvnfsgx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
