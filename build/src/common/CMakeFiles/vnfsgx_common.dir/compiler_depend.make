# Empty compiler generated dependencies file for vnfsgx_common.
# This may be replaced when dependencies are built.
