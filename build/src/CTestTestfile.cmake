# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("json")
subdirs("net")
subdirs("http")
subdirs("pki")
subdirs("tls")
subdirs("sgx")
subdirs("ias")
subdirs("ima")
subdirs("host")
subdirs("dataplane")
subdirs("controller")
subdirs("vnf")
subdirs("core")
