file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_controller.dir/controller.cpp.o"
  "CMakeFiles/vnfsgx_controller.dir/controller.cpp.o.d"
  "CMakeFiles/vnfsgx_controller.dir/learning.cpp.o"
  "CMakeFiles/vnfsgx_controller.dir/learning.cpp.o.d"
  "libvnfsgx_controller.a"
  "libvnfsgx_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
