# Empty dependencies file for vnfsgx_controller.
# This may be replaced when dependencies are built.
