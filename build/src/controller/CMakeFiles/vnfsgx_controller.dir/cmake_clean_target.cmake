file(REMOVE_RECURSE
  "libvnfsgx_controller.a"
)
