# Empty compiler generated dependencies file for vnfsgx_json.
# This may be replaced when dependencies are built.
