file(REMOVE_RECURSE
  "libvnfsgx_json.a"
)
