file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_json.dir/json.cpp.o"
  "CMakeFiles/vnfsgx_json.dir/json.cpp.o.d"
  "libvnfsgx_json.a"
  "libvnfsgx_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
