# Empty compiler generated dependencies file for vnfsgx_pki.
# This may be replaced when dependencies are built.
