file(REMOVE_RECURSE
  "libvnfsgx_pki.a"
)
