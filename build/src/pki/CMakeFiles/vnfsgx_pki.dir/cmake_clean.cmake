file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_pki.dir/ca.cpp.o"
  "CMakeFiles/vnfsgx_pki.dir/ca.cpp.o.d"
  "CMakeFiles/vnfsgx_pki.dir/certificate.cpp.o"
  "CMakeFiles/vnfsgx_pki.dir/certificate.cpp.o.d"
  "CMakeFiles/vnfsgx_pki.dir/crl.cpp.o"
  "CMakeFiles/vnfsgx_pki.dir/crl.cpp.o.d"
  "CMakeFiles/vnfsgx_pki.dir/truststore.cpp.o"
  "CMakeFiles/vnfsgx_pki.dir/truststore.cpp.o.d"
  "libvnfsgx_pki.a"
  "libvnfsgx_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
