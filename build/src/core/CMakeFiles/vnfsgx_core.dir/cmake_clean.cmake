file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_core.dir/appraisal.cpp.o"
  "CMakeFiles/vnfsgx_core.dir/appraisal.cpp.o.d"
  "CMakeFiles/vnfsgx_core.dir/host_agent.cpp.o"
  "CMakeFiles/vnfsgx_core.dir/host_agent.cpp.o.d"
  "CMakeFiles/vnfsgx_core.dir/protocol.cpp.o"
  "CMakeFiles/vnfsgx_core.dir/protocol.cpp.o.d"
  "CMakeFiles/vnfsgx_core.dir/verification_manager.cpp.o"
  "CMakeFiles/vnfsgx_core.dir/verification_manager.cpp.o.d"
  "CMakeFiles/vnfsgx_core.dir/vm_api.cpp.o"
  "CMakeFiles/vnfsgx_core.dir/vm_api.cpp.o.d"
  "libvnfsgx_core.a"
  "libvnfsgx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
