file(REMOVE_RECURSE
  "libvnfsgx_core.a"
)
