# Empty compiler generated dependencies file for vnfsgx_core.
# This may be replaced when dependencies are built.
