
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/enclave.cpp" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/enclave.cpp.o" "gcc" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/enclave.cpp.o.d"
  "/root/repo/src/sgx/measurement.cpp" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/measurement.cpp.o" "gcc" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/measurement.cpp.o.d"
  "/root/repo/src/sgx/platform.cpp" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/platform.cpp.o" "gcc" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/platform.cpp.o.d"
  "/root/repo/src/sgx/sigstruct.cpp" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/sigstruct.cpp.o" "gcc" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/sigstruct.cpp.o.d"
  "/root/repo/src/sgx/structs.cpp" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/structs.cpp.o" "gcc" "src/sgx/CMakeFiles/vnfsgx_sgx.dir/structs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfsgx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/vnfsgx_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/vnfsgx_pki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
