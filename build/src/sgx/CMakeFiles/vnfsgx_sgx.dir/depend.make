# Empty dependencies file for vnfsgx_sgx.
# This may be replaced when dependencies are built.
