file(REMOVE_RECURSE
  "libvnfsgx_sgx.a"
)
