file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_sgx.dir/enclave.cpp.o"
  "CMakeFiles/vnfsgx_sgx.dir/enclave.cpp.o.d"
  "CMakeFiles/vnfsgx_sgx.dir/measurement.cpp.o"
  "CMakeFiles/vnfsgx_sgx.dir/measurement.cpp.o.d"
  "CMakeFiles/vnfsgx_sgx.dir/platform.cpp.o"
  "CMakeFiles/vnfsgx_sgx.dir/platform.cpp.o.d"
  "CMakeFiles/vnfsgx_sgx.dir/sigstruct.cpp.o"
  "CMakeFiles/vnfsgx_sgx.dir/sigstruct.cpp.o.d"
  "CMakeFiles/vnfsgx_sgx.dir/structs.cpp.o"
  "CMakeFiles/vnfsgx_sgx.dir/structs.cpp.o.d"
  "libvnfsgx_sgx.a"
  "libvnfsgx_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
