# Empty dependencies file for vnfsgx_net.
# This may be replaced when dependencies are built.
