file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_net.dir/inmemory.cpp.o"
  "CMakeFiles/vnfsgx_net.dir/inmemory.cpp.o.d"
  "CMakeFiles/vnfsgx_net.dir/tcp.cpp.o"
  "CMakeFiles/vnfsgx_net.dir/tcp.cpp.o.d"
  "libvnfsgx_net.a"
  "libvnfsgx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
