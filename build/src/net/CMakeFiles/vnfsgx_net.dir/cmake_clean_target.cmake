file(REMOVE_RECURSE
  "libvnfsgx_net.a"
)
