
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/inmemory.cpp" "src/net/CMakeFiles/vnfsgx_net.dir/inmemory.cpp.o" "gcc" "src/net/CMakeFiles/vnfsgx_net.dir/inmemory.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/vnfsgx_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/vnfsgx_net.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfsgx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
