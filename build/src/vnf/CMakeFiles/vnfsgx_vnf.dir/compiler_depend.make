# Empty compiler generated dependencies file for vnfsgx_vnf.
# This may be replaced when dependencies are built.
