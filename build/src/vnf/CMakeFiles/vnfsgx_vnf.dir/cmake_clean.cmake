file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_vnf.dir/credential_client.cpp.o"
  "CMakeFiles/vnfsgx_vnf.dir/credential_client.cpp.o.d"
  "CMakeFiles/vnfsgx_vnf.dir/credential_enclave.cpp.o"
  "CMakeFiles/vnfsgx_vnf.dir/credential_enclave.cpp.o.d"
  "CMakeFiles/vnfsgx_vnf.dir/functions.cpp.o"
  "CMakeFiles/vnfsgx_vnf.dir/functions.cpp.o.d"
  "CMakeFiles/vnfsgx_vnf.dir/ocall.cpp.o"
  "CMakeFiles/vnfsgx_vnf.dir/ocall.cpp.o.d"
  "CMakeFiles/vnfsgx_vnf.dir/vnf.cpp.o"
  "CMakeFiles/vnfsgx_vnf.dir/vnf.cpp.o.d"
  "libvnfsgx_vnf.a"
  "libvnfsgx_vnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_vnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
