
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vnf/credential_client.cpp" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/credential_client.cpp.o" "gcc" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/credential_client.cpp.o.d"
  "/root/repo/src/vnf/credential_enclave.cpp" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/credential_enclave.cpp.o" "gcc" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/credential_enclave.cpp.o.d"
  "/root/repo/src/vnf/functions.cpp" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/functions.cpp.o" "gcc" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/functions.cpp.o.d"
  "/root/repo/src/vnf/ocall.cpp" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/ocall.cpp.o" "gcc" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/ocall.cpp.o.d"
  "/root/repo/src/vnf/vnf.cpp" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/vnf.cpp.o" "gcc" "src/vnf/CMakeFiles/vnfsgx_vnf.dir/vnf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfsgx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/vnfsgx_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/vnfsgx_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/vnfsgx_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/vnfsgx_host.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/vnfsgx_json.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfsgx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ima/CMakeFiles/vnfsgx_ima.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/vnfsgx_pki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
