file(REMOVE_RECURSE
  "libvnfsgx_vnf.a"
)
