file(REMOVE_RECURSE
  "libvnfsgx_dataplane.a"
)
