
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/fabric.cpp" "src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/fabric.cpp.o" "gcc" "src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/fabric.cpp.o.d"
  "/root/repo/src/dataplane/packet.cpp" "src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/packet.cpp.o" "gcc" "src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/packet.cpp.o.d"
  "/root/repo/src/dataplane/southbound.cpp" "src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/southbound.cpp.o" "gcc" "src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/southbound.cpp.o.d"
  "/root/repo/src/dataplane/switch.cpp" "src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/switch.cpp.o" "gcc" "src/dataplane/CMakeFiles/vnfsgx_dataplane.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfsgx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfsgx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/vnfsgx_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/vnfsgx_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
