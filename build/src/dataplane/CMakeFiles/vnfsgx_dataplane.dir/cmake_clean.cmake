file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_dataplane.dir/fabric.cpp.o"
  "CMakeFiles/vnfsgx_dataplane.dir/fabric.cpp.o.d"
  "CMakeFiles/vnfsgx_dataplane.dir/packet.cpp.o"
  "CMakeFiles/vnfsgx_dataplane.dir/packet.cpp.o.d"
  "CMakeFiles/vnfsgx_dataplane.dir/southbound.cpp.o"
  "CMakeFiles/vnfsgx_dataplane.dir/southbound.cpp.o.d"
  "CMakeFiles/vnfsgx_dataplane.dir/switch.cpp.o"
  "CMakeFiles/vnfsgx_dataplane.dir/switch.cpp.o.d"
  "libvnfsgx_dataplane.a"
  "libvnfsgx_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
