# Empty compiler generated dependencies file for vnfsgx_dataplane.
# This may be replaced when dependencies are built.
