file(REMOVE_RECURSE
  "libvnfsgx_tls.a"
)
