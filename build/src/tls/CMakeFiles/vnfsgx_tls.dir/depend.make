# Empty dependencies file for vnfsgx_tls.
# This may be replaced when dependencies are built.
