file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_tls.dir/key_schedule.cpp.o"
  "CMakeFiles/vnfsgx_tls.dir/key_schedule.cpp.o.d"
  "CMakeFiles/vnfsgx_tls.dir/record.cpp.o"
  "CMakeFiles/vnfsgx_tls.dir/record.cpp.o.d"
  "CMakeFiles/vnfsgx_tls.dir/session.cpp.o"
  "CMakeFiles/vnfsgx_tls.dir/session.cpp.o.d"
  "libvnfsgx_tls.a"
  "libvnfsgx_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
