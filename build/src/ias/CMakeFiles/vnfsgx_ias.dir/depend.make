# Empty dependencies file for vnfsgx_ias.
# This may be replaced when dependencies are built.
