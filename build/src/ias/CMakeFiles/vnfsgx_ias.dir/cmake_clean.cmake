file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_ias.dir/http_api.cpp.o"
  "CMakeFiles/vnfsgx_ias.dir/http_api.cpp.o.d"
  "CMakeFiles/vnfsgx_ias.dir/service.cpp.o"
  "CMakeFiles/vnfsgx_ias.dir/service.cpp.o.d"
  "libvnfsgx_ias.a"
  "libvnfsgx_ias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_ias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
