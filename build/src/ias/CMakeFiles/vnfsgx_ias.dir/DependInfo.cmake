
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ias/http_api.cpp" "src/ias/CMakeFiles/vnfsgx_ias.dir/http_api.cpp.o" "gcc" "src/ias/CMakeFiles/vnfsgx_ias.dir/http_api.cpp.o.d"
  "/root/repo/src/ias/service.cpp" "src/ias/CMakeFiles/vnfsgx_ias.dir/service.cpp.o" "gcc" "src/ias/CMakeFiles/vnfsgx_ias.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfsgx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/vnfsgx_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/vnfsgx_json.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/vnfsgx_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/vnfsgx_http.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/vnfsgx_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfsgx_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
