file(REMOVE_RECURSE
  "libvnfsgx_ias.a"
)
