file(REMOVE_RECURSE
  "libvnfsgx_ima.a"
)
