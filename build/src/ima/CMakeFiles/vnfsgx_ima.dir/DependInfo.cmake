
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ima/filesystem.cpp" "src/ima/CMakeFiles/vnfsgx_ima.dir/filesystem.cpp.o" "gcc" "src/ima/CMakeFiles/vnfsgx_ima.dir/filesystem.cpp.o.d"
  "/root/repo/src/ima/measurement_list.cpp" "src/ima/CMakeFiles/vnfsgx_ima.dir/measurement_list.cpp.o" "gcc" "src/ima/CMakeFiles/vnfsgx_ima.dir/measurement_list.cpp.o.d"
  "/root/repo/src/ima/policy.cpp" "src/ima/CMakeFiles/vnfsgx_ima.dir/policy.cpp.o" "gcc" "src/ima/CMakeFiles/vnfsgx_ima.dir/policy.cpp.o.d"
  "/root/repo/src/ima/subsystem.cpp" "src/ima/CMakeFiles/vnfsgx_ima.dir/subsystem.cpp.o" "gcc" "src/ima/CMakeFiles/vnfsgx_ima.dir/subsystem.cpp.o.d"
  "/root/repo/src/ima/tpm.cpp" "src/ima/CMakeFiles/vnfsgx_ima.dir/tpm.cpp.o" "gcc" "src/ima/CMakeFiles/vnfsgx_ima.dir/tpm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfsgx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/vnfsgx_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/vnfsgx_pki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
