# Empty dependencies file for vnfsgx_ima.
# This may be replaced when dependencies are built.
