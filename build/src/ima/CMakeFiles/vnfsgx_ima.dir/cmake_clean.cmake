file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_ima.dir/filesystem.cpp.o"
  "CMakeFiles/vnfsgx_ima.dir/filesystem.cpp.o.d"
  "CMakeFiles/vnfsgx_ima.dir/measurement_list.cpp.o"
  "CMakeFiles/vnfsgx_ima.dir/measurement_list.cpp.o.d"
  "CMakeFiles/vnfsgx_ima.dir/policy.cpp.o"
  "CMakeFiles/vnfsgx_ima.dir/policy.cpp.o.d"
  "CMakeFiles/vnfsgx_ima.dir/subsystem.cpp.o"
  "CMakeFiles/vnfsgx_ima.dir/subsystem.cpp.o.d"
  "CMakeFiles/vnfsgx_ima.dir/tpm.cpp.o"
  "CMakeFiles/vnfsgx_ima.dir/tpm.cpp.o.d"
  "libvnfsgx_ima.a"
  "libvnfsgx_ima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_ima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
