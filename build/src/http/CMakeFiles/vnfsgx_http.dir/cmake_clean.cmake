file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_http.dir/client.cpp.o"
  "CMakeFiles/vnfsgx_http.dir/client.cpp.o.d"
  "CMakeFiles/vnfsgx_http.dir/message.cpp.o"
  "CMakeFiles/vnfsgx_http.dir/message.cpp.o.d"
  "CMakeFiles/vnfsgx_http.dir/server.cpp.o"
  "CMakeFiles/vnfsgx_http.dir/server.cpp.o.d"
  "CMakeFiles/vnfsgx_http.dir/wire.cpp.o"
  "CMakeFiles/vnfsgx_http.dir/wire.cpp.o.d"
  "libvnfsgx_http.a"
  "libvnfsgx_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
