file(REMOVE_RECURSE
  "libvnfsgx_http.a"
)
