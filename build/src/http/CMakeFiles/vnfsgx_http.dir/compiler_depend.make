# Empty compiler generated dependencies file for vnfsgx_http.
# This may be replaced when dependencies are built.
