# Empty dependencies file for vnfsgx_http.
# This may be replaced when dependencies are built.
