
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/attestation_enclave.cpp" "src/host/CMakeFiles/vnfsgx_host.dir/attestation_enclave.cpp.o" "gcc" "src/host/CMakeFiles/vnfsgx_host.dir/attestation_enclave.cpp.o.d"
  "/root/repo/src/host/container_host.cpp" "src/host/CMakeFiles/vnfsgx_host.dir/container_host.cpp.o" "gcc" "src/host/CMakeFiles/vnfsgx_host.dir/container_host.cpp.o.d"
  "/root/repo/src/host/runtime.cpp" "src/host/CMakeFiles/vnfsgx_host.dir/runtime.cpp.o" "gcc" "src/host/CMakeFiles/vnfsgx_host.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfsgx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/vnfsgx_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ima/CMakeFiles/vnfsgx_ima.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/vnfsgx_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/vnfsgx_pki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
