# Empty compiler generated dependencies file for vnfsgx_host.
# This may be replaced when dependencies are built.
