file(REMOVE_RECURSE
  "libvnfsgx_host.a"
)
