file(REMOVE_RECURSE
  "CMakeFiles/vnfsgx_host.dir/attestation_enclave.cpp.o"
  "CMakeFiles/vnfsgx_host.dir/attestation_enclave.cpp.o.d"
  "CMakeFiles/vnfsgx_host.dir/container_host.cpp.o"
  "CMakeFiles/vnfsgx_host.dir/container_host.cpp.o.d"
  "CMakeFiles/vnfsgx_host.dir/runtime.cpp.o"
  "CMakeFiles/vnfsgx_host.dir/runtime.cpp.o.d"
  "libvnfsgx_host.a"
  "libvnfsgx_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfsgx_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
