# Empty dependencies file for bench_enclave_overhead.
# This may be replaced when dependencies are built.
