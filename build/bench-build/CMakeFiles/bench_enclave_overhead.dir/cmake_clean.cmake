file(REMOVE_RECURSE
  "../bench/bench_enclave_overhead"
  "../bench/bench_enclave_overhead.pdb"
  "CMakeFiles/bench_enclave_overhead.dir/bench_enclave_overhead.cpp.o"
  "CMakeFiles/bench_enclave_overhead.dir/bench_enclave_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enclave_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
