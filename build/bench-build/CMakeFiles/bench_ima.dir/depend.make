# Empty dependencies file for bench_ima.
# This may be replaced when dependencies are built.
