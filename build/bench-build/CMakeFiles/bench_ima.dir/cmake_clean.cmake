file(REMOVE_RECURSE
  "../bench/bench_ima"
  "../bench/bench_ima.pdb"
  "CMakeFiles/bench_ima.dir/bench_ima.cpp.o"
  "CMakeFiles/bench_ima.dir/bench_ima.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
