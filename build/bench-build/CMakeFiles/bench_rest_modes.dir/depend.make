# Empty dependencies file for bench_rest_modes.
# This may be replaced when dependencies are built.
