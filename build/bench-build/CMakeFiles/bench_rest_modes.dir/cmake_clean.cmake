file(REMOVE_RECURSE
  "../bench/bench_rest_modes"
  "../bench/bench_rest_modes.pdb"
  "CMakeFiles/bench_rest_modes.dir/bench_rest_modes.cpp.o"
  "CMakeFiles/bench_rest_modes.dir/bench_rest_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rest_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
