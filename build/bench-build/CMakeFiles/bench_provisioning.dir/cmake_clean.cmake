file(REMOVE_RECURSE
  "../bench/bench_provisioning"
  "../bench/bench_provisioning.pdb"
  "CMakeFiles/bench_provisioning.dir/bench_provisioning.cpp.o"
  "CMakeFiles/bench_provisioning.dir/bench_provisioning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
