# Empty dependencies file for bench_provisioning.
# This may be replaced when dependencies are built.
