file(REMOVE_RECURSE
  "../bench/bench_attestation"
  "../bench/bench_attestation.pdb"
  "CMakeFiles/bench_attestation.dir/bench_attestation.cpp.o"
  "CMakeFiles/bench_attestation.dir/bench_attestation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
