# Empty dependencies file for bench_attestation.
# This may be replaced when dependencies are built.
