file(REMOVE_RECURSE
  "../bench/bench_tls_channel"
  "../bench/bench_tls_channel.pdb"
  "CMakeFiles/bench_tls_channel.dir/bench_tls_channel.cpp.o"
  "CMakeFiles/bench_tls_channel.dir/bench_tls_channel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tls_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
