# Empty compiler generated dependencies file for bench_tls_channel.
# This may be replaced when dependencies are built.
