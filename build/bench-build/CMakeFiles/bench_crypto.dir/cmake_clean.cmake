file(REMOVE_RECURSE
  "../bench/bench_crypto"
  "../bench/bench_crypto.pdb"
  "CMakeFiles/bench_crypto.dir/bench_crypto.cpp.o"
  "CMakeFiles/bench_crypto.dir/bench_crypto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
