// Compromise detection and response: a host passes attestation, gets a VNF
// enrolled, is then compromised (tampered docker daemon). Re-attestation
// fails, the Verification Manager distrusts the platform and revokes its
// credentials, and the controller locks the revoked VNF out.
//
// Run: build/examples/compromise_detection
#include "testbed.h"

using namespace vnfsgx;
using namespace vnfsgx::examples;

int main() {
  set_log_level(LogLevel::kWarn);
  Testbed bed;

  banner("Compromise detection scenario");

  dataplane::Fabric fabric;
  fabric.add_switch(1);
  bed.start_controller(fabric, controller::SecurityMode::kTrustedHttps);

  SimHost& host = bed.add_host("host-1");
  vnf::Vnf monitor("mon-1", *host.machine, bed.vendor.seed,
                   std::make_unique<vnf::MonitorFunction>());
  host.agent->register_vnf(monitor);
  bed.learn_golden(host);

  // Healthy enrollment.
  banner("Phase 1: healthy host enrolls a VNF");
  auto ch = bed.agent_channel(host);
  const auto host_result = bed.vm.attest_host(*ch);
  step("host attestation: " + host_result.reason);
  const auto vnf_result = bed.vm.attest_vnf(*ch, "mon-1");
  step("VNF attestation: " + vnf_result.reason);
  const auto cert = bed.vm.enroll_vnf(*ch, "mon-1", "mon-1");
  step("credential serial " + std::to_string(cert->serial) + " provisioned");

  // The VNF can reach the controller.
  {
    auto transport = bed.net.connect("controller:8443");
    monitor.credentials().tls_open(std::move(transport), bed.clock.now(), "controller",
                                   bed.vm.ca_certificate());
    vnf::EnclaveTlsStream tunnel(monitor.credentials());
    http::Connection conn(tunnel);
    http::Request req;
    req.target = "/wm/core/controller/summary/json";
    conn.write(req);
    const auto res = conn.read_response();
    step("VNF -> controller: HTTP " + std::to_string(res ? res->status : 0));
    monitor.credentials().tls_close();
  }

  // Compromise.
  banner("Phase 2: attacker tampers /usr/bin/dockerd");
  host.machine->compromise_file("/usr/bin/dockerd");
  step("file modified; IMA measured the new digest on next execution");
  step("IML now has " + std::to_string(host.machine->ima().list().size()) +
       " entries; aggregate changed");

  // Re-attestation detects it.
  banner("Phase 3: periodic re-attestation");
  auto ch2 = bed.agent_channel(host);
  const auto recheck = bed.vm.attest_host(*ch2);
  step("host attestation: " + recheck.reason);
  for (const auto& path : recheck.appraisal.offending_paths) {
    step("offending file: " + path);
  }
  if (recheck.trustworthy) {
    std::printf("ERROR: compromise went undetected!\n");
    return 1;
  }

  // Response: distrust platform, revoke credentials, push CRL.
  banner("Phase 4: response — revoke the platform's credentials");
  const pki::RevocationList crl =
      bed.vm.revoke_platform(host.machine->sgx().platform_id());
  step("CRL now lists " + std::to_string(crl.revoked_serials.size()) +
       " serial(s)");
  bed.controller_->update_crl(crl);
  step("CRL pushed to the controller");

  // The revoked VNF is locked out.
  banner("Phase 5: revoked VNF can no longer enroll sessions");
  auto transport = bed.net.connect("controller:8443");
  bool locked_out = false;
  try {
    // TLS-1.3 semantics: the server's certificate rejection can surface at
    // the handshake or on the first exchange — probe both.
    monitor.credentials().tls_open(std::move(transport), bed.clock.now(),
                                   "controller", bed.vm.ca_certificate());
    monitor.credentials().tls_send(to_bytes(
        "GET /wm/core/controller/summary/json HTTP/1.1\r\n\r\n"));
    if (monitor.credentials().tls_recv(16).empty()) {
      throw IoError("server closed without answering");
    }
  } catch (const Error& e) {
    locked_out = true;
    step(std::string("revoked credential refused: ") + e.what());
    monitor.credentials().tls_close();
  }
  if (!locked_out) {
    std::printf("ERROR: revoked credential still accepted!\n");
    return 1;
  }
  // And re-enrollment is refused too (platform distrusted).
  auto ch3 = bed.agent_channel(host);
  const auto again = bed.vm.attest_vnf(*ch3, "mon-1");
  step("re-attestation attempt: " + again.reason);

  std::printf(
      "\ncompromise_detection complete: tamper detected, platform "
      "distrusted, credentials revoked, controller enforced the CRL.\n");
  return 0;
}
