// Credential lifecycle: enrollment, sealed persistence across an enclave
// restart, certificate expiry, and re-enrollment with a fresh certificate.
//
// Run: build/examples/credential_lifecycle
#include "testbed.h"

using namespace vnfsgx;
using namespace vnfsgx::examples;

int main() {
  set_log_level(LogLevel::kWarn);
  Testbed bed;

  banner("Credential lifecycle");

  dataplane::Fabric fabric;
  fabric.add_switch(1);
  bed.start_controller(fabric, controller::SecurityMode::kTrustedHttps);

  SimHost& host = bed.add_host("host-1");
  auto vnf = std::make_unique<vnf::Vnf>("vnf-1", *host.machine,
                                        bed.vendor.seed,
                                        std::make_unique<vnf::MonitorFunction>());
  host.agent->register_vnf(*vnf);
  bed.learn_golden(host);

  // Enrollment.
  banner("Phase 1: enrollment (24h certificate)");
  auto ch = bed.agent_channel(host);
  if (!bed.vm.attest_host(*ch).trustworthy) return 1;
  if (!bed.vm.attest_vnf(*ch, "vnf-1").trustworthy) return 1;
  const auto cert = bed.vm.enroll_vnf(*ch, "vnf-1", "vnf-1");
  step("serial " + std::to_string(cert->serial) + " valid " +
       std::to_string((cert->not_after - cert->not_before) / 3600) + "h");
  const auto original_key = vnf->credentials().generate_key();

  // Sealed persistence.
  banner("Phase 2: enclave restart with sealed state");
  const Bytes sealed = vnf->credentials().seal_state();
  step("state sealed: " + std::to_string(sealed.size()) +
       " bytes (MRENCLAVE policy, platform-bound)");

  // Tear down the enclave ("container restart") and load a fresh one.
  const sgx::EnclaveImage image = vnf::credential_enclave_image();
  const sgx::SigStruct sig = sgx::sign_enclave(
      bed.vendor.seed, sgx::measure_image(image.code, image.attributes), 10, 1);
  vnf->replace_enclave(host.machine->sgx().load_enclave(image, sig));
  vnf::CredentialClient& restored = vnf->credentials();
  restored.restore_state(sealed);
  step("fresh enclave restored sealed state");
  if (restored.generate_key() != original_key) {
    std::printf("ERROR: restored key differs!\n");
    return 1;
  }
  step("same key + certificate (serial " +
       std::to_string(restored.certificate().serial) + ") after restart");

  // Expiry.
  banner("Phase 3: certificate expiry");
  bed.clock.advance(25 * 3600);  // past 24h validity
  step("clock advanced 25h; certificate now expired");
  auto transport = bed.net.connect("controller:8443");
  try {
    restored.tls_open(std::move(transport), bed.clock.now(), "controller",
                      bed.vm.ca_certificate());
    restored.tls_send(to_bytes("GET / HTTP/1.1\r\n\r\n"));
    if (restored.tls_recv(16).empty()) {
      throw IoError("server closed without answering");
    }
    std::printf("ERROR: expired certificate accepted!\n");
    return 1;
  } catch (const Error& e) {
    step(std::string("controller refused expired certificate: ") + e.what());
    restored.tls_close();
  }

  // Re-enrollment.
  banner("Phase 4: re-enrollment");
  auto ch2 = bed.agent_channel(host);
  if (!bed.vm.attest_host(*ch2).trustworthy) return 1;
  if (!bed.vm.attest_vnf(*ch2, "vnf-1").trustworthy) return 1;
  const auto fresh_cert = bed.vm.enroll_vnf(*ch2, "vnf-1", "vnf-1");
  step("fresh certificate serial " + std::to_string(fresh_cert->serial));

  auto transport2 = bed.net.connect("controller:8443");
  vnf->credentials().tls_open(std::move(transport2), bed.clock.now(), "controller",
                              bed.vm.ca_certificate());
  step("controller accepts the renewed credential");
  vnf->credentials().tls_close();

  // Targeted revocation.
  banner("Phase 5: targeted revocation of one credential");
  bed.controller_->update_crl(bed.vm.revoke_certificate(fresh_cert->serial));
  auto transport3 = bed.net.connect("controller:8443");
  try {
    vnf->credentials().tls_open(std::move(transport3), bed.clock.now(),
                                "controller", bed.vm.ca_certificate());
    vnf->credentials().tls_send(to_bytes("GET / HTTP/1.1\r\n\r\n"));
    if (vnf->credentials().tls_recv(16).empty()) {
      throw IoError("server closed without answering");
    }
    std::printf("ERROR: revoked certificate accepted!\n");
    return 1;
  } catch (const Error&) {
    step("controller refused the revoked certificate");
    vnf->credentials().tls_close();
  }

  // Everything above is one-and-a-half Figure-1 runs; the whole history is
  // scrapeable from the VM's REST API in Prometheus text format.
  banner("Phase 6: observability scrape");
  bed.serve_vm_api();
  http::Client scrape(bed.net.connect("vm:8080"));
  const auto metrics = scrape.get("/vm/metrics");
  scrape.close();
  step("GET /vm/metrics: HTTP " + std::to_string(metrics.status) + ", " +
       std::to_string(metrics.body.size()) + " bytes of Prometheus text");
  const std::string text = vnfsgx::to_string(metrics.body);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    for (const char* prefix :
         {"vnfsgx_attestations_total", "vnfsgx_credentials_provisioned_total",
          "vnfsgx_ca_revocations_total", "vnfsgx_enclave_tls_sessions_total"}) {
      if (line.rfind(prefix, 0) == 0) step(line);
    }
  }

  print_metrics_summary();

  std::printf("\ncredential_lifecycle complete.\n");
  return 0;
}
