// Shared scaffolding for the example programs: spins up the simulated
// deployment of Figure 1 — an IAS endpoint, a Verification Manager, one or
// more container hosts with agents, and (optionally) a Floodlight-style
// controller — all over the in-memory network.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/sim_clock.h"
#include "controller/controller.h"
#include "core/host_agent.h"
#include "core/verification_manager.h"
#include "core/vm_api.h"
#include "crypto/random.h"
#include "http/client.h"
#include "http/runtime.h"
#include "ias/http_api.h"
#include "net/framing.h"
#include "net/inmemory.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "vnf/functions.h"

namespace vnfsgx::examples {

inline void banner(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

inline void step(const std::string& text) {
  std::printf("  -> %s\n", text.c_str());
}

/// Human-readable metrics roll-up for examples to print at exit, so the
/// demo narrates its own numbers (request counts, handshake p50/p95, ...).
inline void print_metrics_summary() {
  std::printf("\n=== metrics summary ===\n%s",
              obs::summary_table(obs::registry()).c_str());
}

/// One container host + agent, registered with IAS and served on the
/// in-memory network at "<name>:7000".
struct SimHost {
  std::unique_ptr<host::ContainerHost> machine;
  std::unique_ptr<core::HostAgent> agent;
};

class Testbed {
 public:
  Testbed()
      : base_rng(1),
        rng(base_rng),
        clock(1'700'000'000),
        ias(rng, clock),
        ias_router(ias::make_ias_router(ias)),
        vendor(crypto::ed25519_generate(rng)),
        vm(rng, clock,
           ias::IasClient([this] { return net.connect("ias.intel.example:443"); },
                          ias.report_signing_key())) {
    runtime.listen_inmemory(net, "ias.intel.example:443",
                            http::make_http_driver_factory(ias_router));
  }

  ~Testbed() { net.join_all(); }

  /// Create + boot a host, load its attestation enclave, register the
  /// platform with IAS (EPID join), and serve its agent.
  SimHost& add_host(const std::string& name) {
    sgx::PlatformOptions options;  // default crossing cost: realistic
    auto machine = std::make_unique<host::ContainerHost>(name, rng, options);
    machine->boot();
    machine->load_attestation_enclave(vendor.seed);
    ias.register_platform(
        machine->sgx().platform_id(),
        machine->sgx().quoting_enclave().attestation_public_key());
    auto agent = std::make_unique<core::HostAgent>(*machine);
    auto* agent_ptr = agent.get();
    // Framed driver: the channel parks between protocol frames, so an
    // operator holding agent channels open does not pin pool workers.
    runtime.listen_inmemory(
        net, name + ":7000", net::frame_driver([agent_ptr](ByteView request) {
          return agent_ptr->serve_frame(request);
        }));
    // Heap-allocated elements: references returned from here must survive
    // later add_host calls.
    hosts.push_back(
        std::make_unique<SimHost>(SimHost{std::move(machine), std::move(agent)}));
    return *hosts.back();
  }

  /// Golden-host enrollment: record a host's current IML as expected.
  void learn_golden(SimHost& h) { vm.appraisal().learn(h.machine->ima().list()); }

  net::StreamPtr agent_channel(const SimHost& h) {
    return net.connect(h.machine->name() + ":7000");
  }

  /// Serve the VM's management REST API (including GET /vm/metrics and
  /// /vm/metrics/json) on the in-memory network at "vm:8080".
  void serve_vm_api() {
    vm_router_ = core::make_vm_router(vm);
    runtime.listen_inmemory(net, "vm:8080",
                            http::make_http_driver_factory(vm_router_));
  }

  /// Start a controller in the given mode at "controller:8443"; returns it.
  controller::Controller& start_controller(dataplane::Fabric& fabric,
                                           controller::SecurityMode mode) {
    controller::ControllerConfig cfg;
    cfg.mode = mode;
    if (mode != controller::SecurityMode::kHttp) {
      const auto kp = crypto::ed25519_generate(rng);
      cfg.certificate = vm.ca().issue(
          {"controller", "vnfsgx"}, kp.public_key,
          static_cast<std::uint8_t>(pki::KeyUsage::kServerAuth),
          /*validity=*/365 * 24 * 3600);
      cfg.signer = tls::Config::software_signer(kp.seed);
    }
    cfg.clock = &clock;
    cfg.rng = &rng;
    controller_ = std::make_unique<controller::Controller>(cfg, fabric);
    if (mode == controller::SecurityMode::kTrustedHttps) {
      controller_->trust_ca(vm.ca_certificate());
    }
    runtime.listen_inmemory(net, "controller:8443",
                            controller_->driver_factory());
    return *controller_;
  }

  /// One deterministic source feeds the whole deployment; the LockedRandom
  /// wrapper keeps it safe when concurrent connections (fleet attestation,
  /// load benches) drive enclave key generation from pool workers.
  crypto::DeterministicRandom base_rng;
  crypto::LockedRandom rng;
  SimClock clock;
  net::InMemoryNetwork net;
  ias::IasService ias;
  http::Router ias_router;
  crypto::Ed25519KeyPair vendor;
  core::VerificationManager vm;
  std::vector<std::unique_ptr<SimHost>> hosts;
  std::unique_ptr<controller::Controller> controller_;
  http::Router vm_router_;
  /// Declared last: shut down (and its workers joined) before the routers,
  /// controller, and network it serves are destroyed.
  net::ServerRuntime runtime{{.workers = 0,
                              .burst_read_timeout = std::chrono::seconds(5),
                              .name = "testbed"}};
};

}  // namespace vnfsgx::examples
