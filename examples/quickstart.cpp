// Quickstart: the complete Figure-1 workflow on one host, one VNF.
//
//   1. Verification Manager attests the container host (steps 1-2),
//   2. attests the VNF's credential enclave (steps 3-4),
//   3. generates + provisions a CA-signed client certificate (step 5),
//   4. the VNF talks to the controller over in-enclave TLS (step 6).
//
// Run: build/examples/quickstart
#include "testbed.h"

using namespace vnfsgx;
using namespace vnfsgx::examples;

int main() {
  set_log_level(LogLevel::kWarn);
  Testbed bed;

  banner("Figure 1 workflow: quickstart");

  // --- Deployment ---------------------------------------------------------
  SimHost& host = bed.add_host("host-1");
  step("container host 'host-1' booted; IML entries: " +
       std::to_string(host.machine->ima().list().size()));

  vnf::Vnf firewall("fw-1", *host.machine, bed.vendor.seed,
                    std::make_unique<vnf::FirewallFunction>());
  host.agent->register_vnf(firewall);
  step("VNF 'fw-1' deployed in container '" + firewall.container()->id() +
       "', credential enclave loaded (mrenclave " +
       sgx::to_hex_string(firewall.enclave()->mr_enclave()).substr(0, 16) +
       "...)");
  bed.learn_golden(host);

  dataplane::Fabric fabric;
  fabric.add_switch(1);
  bed.start_controller(fabric, controller::SecurityMode::kTrustedHttps);
  step("controller up in TRUSTED_HTTPS mode, trusting the VM's CA");

  // --- Steps 1-2: host attestation ----------------------------------------
  banner("Steps 1-2: host remote attestation");
  auto channel = bed.agent_channel(host);
  const core::HostAttestation host_result = bed.vm.attest_host(*channel);
  step("quote status: " + ias::to_string(host_result.quote_status));
  step("appraisal: " + host_result.appraisal.reason + " (" +
       std::to_string(host_result.iml_entries) + " IML entries)");
  if (!host_result.trustworthy) {
    std::printf("host not trustworthy: %s\n", host_result.reason.c_str());
    return 1;
  }

  // --- Steps 3-4: VNF enclave attestation ---------------------------------
  banner("Steps 3-4: VNF enclave attestation");
  const core::VnfAttestation vnf_result = bed.vm.attest_vnf(*channel, "fw-1");
  step("quote status: " + ias::to_string(vnf_result.quote_status));
  step(vnf_result.reason);
  if (!vnf_result.trustworthy) return 1;

  // --- Step 5: credential provisioning ------------------------------------
  banner("Step 5: credential generation + provisioning");
  const auto cert = bed.vm.enroll_vnf(*channel, "fw-1", "fw-1.tenant-a");
  if (!cert) return 1;
  step("certificate serial " + std::to_string(cert->serial) + " for " +
       cert->subject.to_string() + ", signed by " + cert->issuer.to_string());
  step("private key never left the enclave; only the certificate traveled");

  // --- Step 6: VNF -> controller over in-enclave TLS ----------------------
  banner("Step 6: VNF talks to the controller from inside the enclave");
  auto transport = bed.net.connect("controller:8443");
  firewall.credentials().tls_open(std::move(transport), bed.clock.now(), "controller",
                                  bed.vm.ca_certificate());
  step("mutually-authenticated TLS session established (keys in-enclave)");

  vnf::EnclaveTlsStream tunnel(firewall.credentials());
  http::Connection conn(tunnel);
  http::Request push;
  push.method = "POST";
  push.target = "/wm/staticflowpusher/json";
  push.body = to_bytes(
      R"({"name":"block-telnet","switch":1,"priority":200,"tcp_dst":23,)"
      R"("actions":"drop"})");
  conn.write(push);
  const auto response = conn.read_response();
  step("pushed flow 'block-telnet': HTTP " +
       std::to_string(response ? response->status : 0));
  firewall.credentials().tls_close();

  // --- Verify the flow is live in the forwarding plane --------------------
  banner("Result");
  dataplane::Packet telnet;
  telnet.dst_port = 23;
  telnet.proto = dataplane::IpProto::kTcp;
  const auto verdict = fabric.find_switch(1)->process(telnet, 1);
  step(std::string("telnet packet through switch 1: ") +
       (verdict.kind == dataplane::ForwardingResult::Kind::kDropped
            ? "DROPPED (flow installed by the attested VNF)"
            : "not dropped?!"));

  const auto log = bed.controller_->audit_log();
  step("controller audit: " + log.back().method + " " + log.back().path +
       " by authenticated client '" + log.back().identity + "'");

  print_metrics_summary();

  std::printf("\nquickstart complete: VNF enrolled and operating.\n");
  return 0;
}
