// Full SDN deployment: two container hosts, three VNFs (firewall, load
// balancer, monitor), a two-switch fabric, and a trusted-HTTPS controller.
// Every VNF is attested and enrolled, pushes its desired flow rules from
// inside its enclave, and traffic is then run through the fabric.
//
// Run: build/examples/sdn_deployment
#include "testbed.h"

using namespace vnfsgx;
using namespace vnfsgx::examples;

namespace {

/// Enroll one VNF end-to-end; returns its certificate serial.
std::uint64_t enroll(Testbed& bed, SimHost& host, vnf::Vnf& v) {
  auto ch = bed.agent_channel(host);
  const auto vr = bed.vm.attest_vnf(*ch, v.name());
  if (!vr.trustworthy) throw Error("attestation failed: " + vr.reason);
  const auto cert = bed.vm.enroll_vnf(*ch, v.name(), v.name() + ".tenant-a");
  if (!cert) throw Error("enrollment failed for " + v.name());
  step(v.name() + " attested + enrolled (serial " +
       std::to_string(cert->serial) + ")");
  return cert->serial;
}

/// Push the VNF's desired flows through its in-enclave TLS session.
void push_flows(Testbed& bed, vnf::Vnf& v, std::uint64_t dpid) {
  auto transport = bed.net.connect("controller:8443");
  v.credentials().tls_open(std::move(transport), bed.clock.now(), "controller",
                           bed.vm.ca_certificate());
  vnf::EnclaveTlsStream tunnel(v.credentials());
  http::Connection conn(tunnel);
  int pushed = 0;
  for (const auto& flow : v.function().desired_flows(dpid)) {
    http::Request req;
    req.method = "POST";
    req.target = "/wm/staticflowpusher/json";
    req.body = to_bytes(flow.json_body);
    conn.write(req);
    const auto res = conn.read_response();
    if (res && res->status == 200) ++pushed;
  }
  v.credentials().tls_close();
  step(v.name() + " pushed " + std::to_string(pushed) +
       " flow(s) via in-enclave TLS");
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  Testbed bed;

  banner("SDN deployment: 2 hosts, 3 VNFs, 2 switches");

  // Forwarding plane: s1 (edge) -- s2 (core).
  dataplane::Fabric fabric;
  fabric.add_switch(1);
  fabric.add_switch(2);
  fabric.link({1, 2}, {2, 1});
  bed.start_controller(fabric, controller::SecurityMode::kTrustedHttps);

  // Hosts and VNFs.
  SimHost& host_a = bed.add_host("host-a");
  SimHost& host_b = bed.add_host("host-b");

  auto firewall_fn = std::make_unique<vnf::FirewallFunction>();
  firewall_fn->block_port(23);    // telnet
  firewall_fn->block_port(445);   // smb
  auto* firewall_raw = firewall_fn.get();
  vnf::Vnf firewall("fw-1", *host_a.machine, bed.vendor.seed,
                    std::move(firewall_fn));
  host_a.agent->register_vnf(firewall);

  auto lb_fn = std::make_unique<vnf::LoadBalancerFunction>(
      dataplane::ipv4("10.0.0.100"), 80);
  lb_fn->add_backend({dataplane::ipv4("10.0.1.1"), 3});
  lb_fn->add_backend({dataplane::ipv4("10.0.1.2"), 4});
  auto* lb_raw = lb_fn.get();
  vnf::Vnf balancer("lb-1", *host_a.machine, bed.vendor.seed, std::move(lb_fn));
  host_a.agent->register_vnf(balancer);

  auto mon_fn = std::make_unique<vnf::MonitorFunction>();
  auto* mon_raw = mon_fn.get();
  vnf::Vnf monitor("mon-1", *host_b.machine, bed.vendor.seed, std::move(mon_fn));
  host_b.agent->register_vnf(monitor);

  bed.learn_golden(host_a);
  bed.learn_golden(host_b);
  step("deployed fw-1 + lb-1 on host-a, mon-1 on host-b");

  // Attestation of both hosts.
  banner("Host attestation");
  for (SimHost* h : {&host_a, &host_b}) {
    auto ch = bed.agent_channel(*h);
    const auto result = bed.vm.attest_host(*ch);
    step(h->machine->name() + ": " + result.reason + " (" +
         std::to_string(result.iml_entries) + " IML entries)");
    if (!result.trustworthy) return 1;
  }

  // VNF attestation + enrollment + flow programming.
  banner("VNF enrollment");
  enroll(bed, host_a, firewall);
  enroll(bed, host_a, balancer);
  enroll(bed, host_b, monitor);

  banner("Flow programming (step 6, from inside the enclaves)");
  push_flows(bed, firewall, 1);
  push_flows(bed, balancer, 2);

  // Traffic.
  banner("Traffic through the fabric");
  int dropped = 0, forwarded = 0, missed = 0;
  for (int i = 0; i < 1000; ++i) {
    dataplane::Packet p;
    p.src_ip = dataplane::ipv4("10.0.2." + std::to_string(1 + i % 20));
    p.dst_ip = dataplane::ipv4("10.0.0.100");
    p.src_port = static_cast<std::uint16_t>(20000 + i);
    p.dst_port = (i % 10 == 0) ? 23 : 80;  // 10% telnet, 90% web
    p.proto = dataplane::IpProto::kTcp;
    p.payload = Bytes(64 + i % 512);

    // VNFs on the service chain observe the packet.
    monitor.process(p);
    if (firewall.process(p) == vnf::Verdict::kDrop) {
      // would be dropped at the edge anyway; also count the switch verdict
    }
    const auto path = fabric.inject(1, 7, p);
    switch (path.hops.back().result.kind) {
      case dataplane::ForwardingResult::Kind::kDropped:
        ++dropped;
        break;
      case dataplane::ForwardingResult::Kind::kForwarded:
        ++forwarded;
        break;
      default:
        ++missed;
    }
  }
  step("packets: " + std::to_string(forwarded) + " forwarded, " +
       std::to_string(dropped) + " dropped, " + std::to_string(missed) +
       " table-miss");
  step("firewall verdicts: " + std::to_string(firewall_raw->allowed()) +
       " allowed, " + std::to_string(firewall_raw->dropped()) + " dropped");
  step("lb backend shares:");
  for (const auto& [ip, count] : lb_raw->per_backend_counts()) {
    std::printf("       %s -> %llu flows\n", dataplane::ipv4_to_string(ip).c_str(),
                static_cast<unsigned long long>(count));
  }
  step("monitor top talker: " + dataplane::ipv4_to_string(mon_raw->top_talker()));

  // Controller-side view.
  banner("Controller state");
  std::printf("  requests served: %llu, rejected connections: %llu\n",
              static_cast<unsigned long long>(bed.controller_->requests_served()),
              static_cast<unsigned long long>(
                  bed.controller_->rejected_connections()));
  for (const auto& record : bed.controller_->audit_log()) {
    std::printf("  audit: %-6s %-32s by '%s' -> %d\n", record.method.c_str(),
                record.path.c_str(), record.identity.c_str(), record.status);
  }

  std::printf("\nsdn_deployment complete.\n");
  return 0;
}
