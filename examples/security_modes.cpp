// Floodlight's three REST security modes over real loopback TCP:
// plain HTTP, HTTPS (server auth), and trusted HTTPS (mutual auth).
// Demonstrates §3 of the paper — what each mode permits — and reports a
// quick latency comparison (the full sweep lives in bench_rest_modes).
//
// Run: build/examples/security_modes
#include <chrono>
#include <thread>

#include "testbed.h"
#include "net/tcp.h"

using namespace vnfsgx;
using namespace vnfsgx::examples;

namespace {

struct TcpController {
  std::unique_ptr<controller::Controller> controller;
  /// Epoll reactor + bounded worker pool — accepted connections park in
  /// the reactor, so no thread is spent per connection. Declared after the
  /// controller so it shuts down first.
  net::ServerRuntime runtime{{.workers = 0,
                              .burst_read_timeout = std::chrono::seconds(5),
                              .name = "security_modes"}};
  std::uint16_t port = 0;
};

std::unique_ptr<TcpController> start(Testbed& bed, dataplane::Fabric& fabric,
                                     controller::SecurityMode mode) {
  auto tc = std::make_unique<TcpController>();
  controller::ControllerConfig cfg;
  cfg.mode = mode;
  if (mode != controller::SecurityMode::kHttp) {
    const auto kp = crypto::ed25519_generate(bed.rng);
    cfg.certificate = bed.vm.ca().issue(
        {"controller", ""}, kp.public_key,
        static_cast<std::uint8_t>(pki::KeyUsage::kServerAuth));
    cfg.signer = tls::Config::software_signer(kp.seed);
  }
  cfg.clock = &bed.clock;
  cfg.rng = &bed.rng;
  tc->controller = std::make_unique<controller::Controller>(cfg, fabric);
  if (mode == controller::SecurityMode::kTrustedHttps) {
    tc->controller->trust_ca(bed.vm.ca_certificate());
  }
  tc->port =
      tc->runtime.listen_tcp(0, tc->controller->driver_factory()).port();
  return tc;
}

double measure_get(Testbed& bed, std::uint16_t port,
                   controller::SecurityMode mode, pki::TrustStore& trust,
                   const pki::Certificate* client_cert,
                   const crypto::Ed25519Seed* client_seed) {
  const auto start = std::chrono::steady_clock::now();
  auto tcp = net::TcpStream::connect("127.0.0.1", port);
  net::StreamPtr stream;
  if (mode == controller::SecurityMode::kHttp) {
    stream = std::move(tcp);
  } else {
    tls::Config cfg;
    cfg.truststore = &trust;
    cfg.expected_server_name = "controller";
    cfg.clock = &bed.clock;
    cfg.rng = &bed.rng;
    if (client_cert) {
      cfg.certificate = *client_cert;
      cfg.signer = tls::Config::software_signer(*client_seed);
    }
    stream = tls::Session::connect(std::move(tcp), cfg);
  }
  http::Client client(std::move(stream));
  const auto res = client.get("/wm/core/controller/summary/json");
  client.close();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (res.status != 200) throw Error("unexpected status");
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  Testbed bed;
  dataplane::Fabric fabric;
  fabric.add_switch(1);

  pki::TrustStore trust;
  trust.add_root(bed.vm.ca_certificate());
  const auto client_kp = crypto::ed25519_generate(bed.rng);
  const auto client_cert = bed.vm.ca().issue(
      {"vnf-1", ""}, client_kp.public_key,
      static_cast<std::uint8_t>(pki::KeyUsage::kClientAuth));

  banner("Floodlight REST security modes over loopback TCP");

  for (const auto mode : {controller::SecurityMode::kHttp,
                          controller::SecurityMode::kHttps,
                          controller::SecurityMode::kTrustedHttps}) {
    auto tc = start(bed, fabric, mode);
    const std::uint16_t port = tc->port;
    const bool mutual = mode == controller::SecurityMode::kTrustedHttps;

    // Warm up, then measure a few cold connections (handshake included).
    double total = 0;
    const int runs = 20;
    for (int i = 0; i < runs + 2; ++i) {
      const double us = measure_get(bed, port, mode, trust,
                                    mutual ? &client_cert : nullptr,
                                    mutual ? &*client_kp.seed : nullptr);
      if (i >= 2) total += us;
    }
    std::printf("  %-14s GET summary (cold conn): %8.1f us avg over %d runs\n",
                controller::to_string(mode).c_str(), total / runs, runs);

    // Demonstrate the mode's access policy.
    if (mode == controller::SecurityMode::kHttp) {
      auto raw = net::TcpStream::connect("127.0.0.1", port);
      http::Client anon(std::move(raw));
      const auto res = anon.post(
          "/wm/staticflowpusher/json",
          R"({"name":"evil","switch":1,"actions":"drop"})");
      std::printf("    anonymous flow push: HTTP %d (anyone can program the "
                  "network!)\n",
                  res.status);
      anon.close();
      fabric.find_switch(1)->remove_flow("evil");
    }
    if (mode == controller::SecurityMode::kTrustedHttps) {
      bool rejected = false;
      try {
        measure_get(bed, port, mode, trust, nullptr, nullptr);  // no cert
      } catch (const Error&) {
        rejected = true;
      }
      std::printf("    client without certificate: %s\n",
                  rejected ? "REJECTED during handshake" : "accepted?!");
    }
  }

  print_metrics_summary();

  std::printf("\nsecurity_modes complete.\n");
  return 0;
}
