// The paper's §4 future work, implemented: anchoring the IMA measurement
// list in a TPM so a root attacker cannot sanitize it.
//
// Base design: the integrity attestation enclave binds whatever IML bytes
// the (untrusted, root-controlled) host agent hands it. A root attacker who
// compromised a binary can simply omit its IML entry — the quote is valid
// and the appraisal passes. With the TPM extension, the Verification
// Manager additionally demands an AIK-signed PCR-10 quote bound to the same
// nonce, and the sanitized list's aggregate can no longer match.
//
// Run: build/examples/tpm_hardening
#include "testbed.h"

using namespace vnfsgx;
using namespace vnfsgx::examples;

namespace {

/// A root attacker's agent: compromises dockerd, then reports a sanitized
/// IML with the incriminating entry removed.
void serve_rootkit_agent(Testbed& bed, SimHost& host) {
  bed.runtime.listen_inmemory(
      bed.net, "rootkit:7000", net::frame_driver([&host](ByteView request) {
        const core::AttestHostRequest req =
            core::decode_attest_host_request(request);
        ima::MeasurementList sanitized;
        for (const auto& e : host.machine->ima().list().entries()) {
          if (e.file_path != "/usr/bin/dockerd") {
            sanitized.add_measurement(e.file_digest, e.file_path);
          }
        }
        const Bytes iml = sanitized.encode();
        const auto qe = host.machine->sgx().quoting_enclave().target_info();
        const Bytes report = host.machine->attestation_enclave()->call(
            host::kOpCreateImlReport,
            host::encode_iml_report_request(req.nonce, iml, qe));
        core::AttestHostResponse response;
        response.quote = host.machine->sgx()
                             .quoting_enclave()
                             .quote(sgx::Report::decode(report))
                             .encode();
        response.iml = iml;
        // The attacker cannot forge the TPM; it quotes the true PCR and
        // hopes the verifier doesn't check.
        response.tpm_quote =
            host.machine->tpm().quote(ima::kImaPcrIndex, req.nonce).encode();
        return core::encode(response);
      }));
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  Testbed bed;

  banner("TPM hardening (the paper's §4 future work)");
  SimHost& host = bed.add_host("host-1");
  bed.learn_golden(host);

  // The attack: compromise dockerd, then sanitize the reported IML.
  host.machine->compromise_file("/usr/bin/dockerd");
  serve_rootkit_agent(bed, host);
  step("attacker compromised /usr/bin/dockerd and sanitizes the IML it reports");

  banner("Base design (no hardware root of trust)");
  {
    auto ch = bed.net.connect("rootkit:7000");
    const auto result = bed.vm.attest_host(*ch);
    step(std::string("attestation verdict: ") +
         (result.trustworthy ? "TRUSTWORTHY" : "untrustworthy") + " — " +
         result.reason);
    if (result.trustworthy) {
      step("the sanitization went UNDETECTED: the enclave faithfully bound "
           "the doctored bytes (the §4 gap)");
    } else {
      std::printf("unexpected: base design detected the attack\n");
      return 1;
    }
  }

  banner("Hardened design: AIK enrolled, PCR-10 cross-check required");
  bed.vm.enroll_platform_aik(host.machine->sgx().platform_id(),
                             host.machine->tpm().aik_public_key());
  {
    auto ch = bed.net.connect("rootkit:7000");
    const auto result = bed.vm.attest_host(*ch);
    step(std::string("attestation verdict: ") +
         (result.trustworthy ? "TRUSTWORTHY?!" : "untrustworthy") + " — " +
         result.reason);
    if (result.trustworthy) {
      std::printf("ERROR: sanitized IML passed the TPM check!\n");
      return 1;
    }
  }

  banner("Honest host still passes with the TPM check");
  {
    // Note the measurement log is append-only (both IML and PCR-10): a
    // once-compromised host cannot "clean up" without a reboot/re-image —
    // so the clean path is demonstrated on a freshly provisioned host.
    SimHost& fresh = bed.add_host("host-2");
    bed.learn_golden(fresh);
    bed.vm.enroll_platform_aik(fresh.machine->sgx().platform_id(),
                               fresh.machine->tpm().aik_public_key());
    auto ch = bed.agent_channel(fresh);
    const auto result = bed.vm.attest_host(*ch);
    step(std::string("honest host-2, verdict: ") + result.reason +
         (result.tpm_verified ? " (TPM verified)" : ""));
    if (!result.trustworthy || !result.tpm_verified) return 1;
  }

  std::printf(
      "\ntpm_hardening complete: the §4 extension detects IML sanitization "
      "the base design misses.\n");
  return 0;
}
