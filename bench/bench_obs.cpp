// Microbenchmarks for the observability substrate itself: the point of
// src/obs is that instrumentation on the TLS record hot path costs one
// relaxed add, so that cost is measured here next to the paths that pay it.
#include <benchmark/benchmark.h>

#include "obs/metrics.h"
#include "obs/span.h"

using namespace vnfsgx;

static void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter = obs::registry().counter(
      "bench_obs_counter_total", {}, "bench instrument");
  for (auto _ : state) {
    counter.add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

static void BM_CounterAddContended(benchmark::State& state) {
  obs::Counter& counter = obs::registry().counter(
      "bench_obs_counter_contended_total", {}, "bench instrument");
  for (auto _ : state) {
    counter.add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddContended)->Threads(4);

static void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& histogram = obs::registry().histogram(
      "bench_obs_histogram_us", {}, {}, "bench instrument");
  double v = 0.5;
  for (auto _ : state) {
    histogram.observe(v);
    v = v < 1e6 ? v * 1.1 : 0.5;  // walk the buckets
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

static void BM_SpanStartEnd(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span = obs::tracer().start_span("bench_span");
    span.end();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanStartEnd);

static void BM_RegistryCollect(benchmark::State& state) {
  // Typical registry population after a full workflow run.
  for (int i = 0; i < 32; ++i) {
    obs::registry()
        .counter("bench_obs_populate_total",
                 {{"index", std::to_string(i)}}, "bench instrument")
        .add();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::registry().collect());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryCollect);
