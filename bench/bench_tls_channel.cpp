// F1-S6: the VNF <-> controller secure channel.
//
// Handshake latency (server-auth and mutual), and request/response
// throughput over an established session — both for a plain software TLS
// endpoint and for the paper's in-enclave termination (compared in detail
// by bench_enclave_overhead).
#include <benchmark/benchmark.h>

#include <thread>

#include "common/sim_clock.h"
#include "crypto/random.h"
#include "net/inmemory.h"
#include "pki/ca.h"
#include "tls/session.h"

namespace {

using namespace vnfsgx;

struct TlsBed {
  crypto::DeterministicRandom rng{17};
  SimClock clock{1'700'000'000};
  pki::CertificateAuthority ca{{"vm-ca", ""}, rng, clock};
  pki::TrustStore trust;
  pki::Certificate server_cert;
  crypto::Ed25519Seed server_seed;
  pki::Certificate client_cert;
  crypto::Ed25519Seed client_seed;

  TlsBed() {
    trust.add_root(ca.root_certificate());
    auto skp = crypto::ed25519_generate(rng);
    server_cert = ca.issue({"controller", ""}, skp.public_key,
                           static_cast<std::uint8_t>(pki::KeyUsage::kServerAuth),
                           365 * 24 * 3600);
    server_seed = skp.seed;
    auto ckp = crypto::ed25519_generate(rng);
    client_cert = ca.issue({"vnf-1", ""}, ckp.public_key,
                           static_cast<std::uint8_t>(pki::KeyUsage::kClientAuth),
                           365 * 24 * 3600);
    client_seed = ckp.seed;
  }

  tls::Config server_config(bool mutual) {
    tls::Config c;
    c.certificate = server_cert;
    c.signer = tls::Config::software_signer(server_seed);
    c.require_client_certificate = mutual;
    if (mutual) c.truststore = &trust;
    c.clock = &clock;
    c.rng = &rng;
    return c;
  }

  tls::Config client_config(bool with_cert) {
    tls::Config c;
    if (with_cert) {
      c.certificate = client_cert;
      c.signer = tls::Config::software_signer(client_seed);
    }
    c.truststore = &trust;
    c.clock = &clock;
    c.rng = &rng;
    return c;
  }
};

void BM_TlsRecordProtect(benchmark::State& state) {
  // Single-direction record encryption via the zero-copy path — isolates
  // the record layer from transport threads and handshakes.
  crypto::DeterministicRandom rng(11);
  tls::RecordProtection sender(rng.bytes(16), rng.bytes(12));
  const Bytes payload = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes wire;
  for (auto _ : state) {
    sender.protect_into(tls::ContentType::kApplicationData, payload, wire);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TlsRecordProtect)->Arg(64)->Arg(1024)->Arg(16384);

void BM_TlsRecordUnprotect(benchmark::State& state) {
  // Sender and receiver share keys; re-protect each iteration so the
  // receiver's sequence number always matches.
  crypto::DeterministicRandom rng(12);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(12);
  tls::RecordProtection sender(key, iv);
  tls::RecordProtection receiver(key, iv);
  const Bytes payload = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes wire;
  Bytes record;
  for (auto _ : state) {
    state.PauseTiming();
    sender.protect_into(tls::ContentType::kApplicationData, payload, wire);
    record.assign(wire.begin() + 3, wire.end());
    state.ResumeTiming();
    benchmark::DoNotOptimize(receiver.unprotect_in_place(
        tls::ContentType::kApplicationData, record));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TlsRecordUnprotect)->Arg(64)->Arg(1024)->Arg(16384);

void BM_TlsHandshake(benchmark::State& state) {
  const bool mutual = state.range(0) != 0;
  TlsBed bed;
  for (auto _ : state) {
    auto [client_end, server_end] = net::make_pipe();
    std::thread server([&bed, mutual, s = std::move(server_end)]() mutable {
      auto session = tls::Session::accept(std::move(s), bed.server_config(mutual));
      session->close();
    });
    auto session =
        tls::Session::connect(std::move(client_end), bed.client_config(mutual));
    server.join();
    benchmark::DoNotOptimize(session);
  }
  state.SetLabel(mutual ? "mutual-auth" : "server-auth");
}
BENCHMARK(BM_TlsHandshake)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_TlsEchoRoundTrip(benchmark::State& state) {
  // Request/response of `size` bytes each way over one session.
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  TlsBed bed;
  auto [client_end, server_end] = net::make_pipe();
  std::thread server([&bed, s = std::move(server_end)]() mutable {
    auto session = tls::Session::accept(std::move(s), bed.server_config(true));
    try {
      while (true) {
        std::uint8_t len_buf[4];
        session->read_exact(std::span<std::uint8_t>(len_buf, 4));
        const std::uint32_t n = read_u32(ByteView(len_buf, 4), 0);
        const Bytes payload = session->read_exact(n);
        Bytes reply;
        append_u32(reply, n);
        append(reply, payload);
        session->write(reply);
      }
    } catch (const Error&) {
    }
  });
  auto session =
      tls::Session::connect(std::move(client_end), bed.client_config(true));
  crypto::DeterministicRandom rng(5);
  const Bytes payload = rng.bytes(size);

  for (auto _ : state) {
    Bytes message;
    append_u32(message, static_cast<std::uint32_t>(size));
    append(message, payload);
    session->write(message);
    std::uint8_t len_buf[4];
    session->read_exact(std::span<std::uint8_t>(len_buf, 4));
    const Bytes echoed = session->read_exact(read_u32(ByteView(len_buf, 4), 0));
    benchmark::DoNotOptimize(echoed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size) * 2);
  session->close();
  server.join();
}
BENCHMARK(BM_TlsEchoRoundTrip)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

namespace {

using namespace vnfsgx;

void BM_TlsResumedHandshake(benchmark::State& state) {
  // The "alternative implementation" answer: PSK resumption skips both
  // certificate exchanges (4 Ed25519 sign/verify pairs) while keeping
  // ECDHE forward secrecy. Compare against BM_TlsHandshake/1.
  TlsBed bed;
  const tls::TicketKey ticket_key = tls::TicketKey::generate(bed.rng);

  // Harvest one ticket via a full handshake + one exchange.
  tls::SessionTicket ticket;
  {
    auto [client_end, server_end] = net::make_pipe();
    std::thread server([&bed, &ticket_key, s = std::move(server_end)]() mutable {
      tls::Config cfg = bed.server_config(true);
      cfg.ticket_key = &ticket_key;
      auto session = tls::Session::accept(std::move(s), cfg);
      const Bytes b = session->read_exact(1);
      session->write(b);
    });
    auto session =
        tls::Session::connect(std::move(client_end), bed.client_config(true));
    session->write(Bytes{1});
    session->read_exact(1);
    server.join();
    ticket = *session->session_ticket();
  }

  for (auto _ : state) {
    auto [client_end, server_end] = net::make_pipe();
    std::thread server([&bed, &ticket_key, s = std::move(server_end)]() mutable {
      tls::Config cfg = bed.server_config(true);
      cfg.ticket_key = &ticket_key;
      auto session = tls::Session::accept(std::move(s), cfg);
      session->close();
    });
    tls::Config ccfg = bed.client_config(true);
    ccfg.resumption = &ticket;
    auto session = tls::Session::connect(std::move(client_end), ccfg);
    server.join();
    if (!session->resumed()) state.SkipWithError("fell back to full handshake");
  }
  state.SetLabel("resumed (PSK + ECDHE)");
}
BENCHMARK(BM_TlsResumedHandshake)->Unit(benchmark::kMicrosecond);

}  // namespace
