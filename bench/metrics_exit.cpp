// Compiled into every bench (and example) binary: installs the atexit
// JSON metrics snapshot so each run leaves a machine-readable trace next
// to the google-benchmark output. Destination is controlled by
// VNFSGX_METRICS_OUT / VNFSGX_METRICS_DIR; a run with neither set writes
// nothing. VNFSGX_BENCH_NAME is injected per-target by CMake.
#include "obs/export.h"

#ifndef VNFSGX_BENCH_NAME
#define VNFSGX_BENCH_NAME "run"
#endif

namespace {

[[maybe_unused]] const bool kInstalled = [] {
  vnfsgx::obs::install_exit_snapshot(VNFSGX_BENCH_NAME);
  return true;
}();

}  // namespace
