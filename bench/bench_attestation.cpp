// F1-S12 / F1-S34: Figure-1 attestation latency.
//
// Steps 1-2: host remote attestation (enclave IML report -> QE quote ->
// IAS round-trip -> AVR verification -> IML appraisal), swept over the
// size of the IMA measurement list.
// Steps 3-4: VNF credential-enclave attestation.
//
// The SGX crossing cost defaults to the simulator's realistic 2 us; the
// IAS leg runs over the in-memory network (add LinkOptions latency to
// model a WAN IAS — see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <atomic>
#include <functional>
#include <thread>

#include "controller/controller.h"
#include "http/client.h"
#include "ratls/verifier.h"
#include "testbed.h"

namespace {

using namespace vnfsgx;
using namespace vnfsgx::examples;

/// Add `n` measured files to a host's IML.
void grow_iml(SimHost& host, int n) {
  for (int i = 0; i < n; ++i) {
    const std::string path = "/opt/pkg/bin/tool" + std::to_string(i);
    host.machine->filesystem().write_file(
        path, to_bytes("tool content " + std::to_string(i)),
        ima::FileMeta{.uid = 0, .executable = true});
    host.machine->ima().on_exec(path);
  }
}

void BM_HostAttestation(benchmark::State& state) {
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  grow_iml(host, static_cast<int>(state.range(0)));
  bed.learn_golden(host);

  for (auto _ : state) {
    auto channel = bed.agent_channel(host);
    const core::HostAttestation result = bed.vm.attest_host(*channel);
    if (!result.trustworthy) state.SkipWithError("attestation failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["iml_entries"] =
      static_cast<double>(host.machine->ima().list().size());
}
BENCHMARK(BM_HostAttestation)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_HostAttestationUntrustworthy(benchmark::State& state) {
  // Detection path: compromised host — same protocol cost, appraisal fails.
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  grow_iml(host, 100);
  bed.learn_golden(host);
  host.machine->compromise_file("/usr/bin/dockerd");

  for (auto _ : state) {
    auto channel = bed.agent_channel(host);
    const core::HostAttestation result = bed.vm.attest_host(*channel);
    if (result.trustworthy) state.SkipWithError("compromise missed!");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HostAttestationUntrustworthy)->Unit(benchmark::kMillisecond);

void BM_VnfAttestation(benchmark::State& state) {
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");

  std::vector<std::unique_ptr<vnf::Vnf>> vnfs;
  const int count = static_cast<int>(state.range(0));
  for (int i = 0; i < count; ++i) {
    vnfs.push_back(std::make_unique<vnf::Vnf>(
        "vnf-" + std::to_string(i), *host.machine, bed.vendor.seed,
        std::make_unique<vnf::MonitorFunction>()));
    host.agent->register_vnf(*vnfs.back());
  }
  bed.learn_golden(host);
  {
    auto channel = bed.agent_channel(host);
    if (!bed.vm.attest_host(*channel).trustworthy) {
      state.SkipWithError("host attestation failed");
    }
  }

  // Each iteration attests every deployed VNF enclave (steps 3-4 x N).
  for (auto _ : state) {
    auto channel = bed.agent_channel(host);
    for (int i = 0; i < count; ++i) {
      const auto result =
          bed.vm.attest_vnf(*channel, "vnf-" + std::to_string(i));
      if (!result.trustworthy) state.SkipWithError("vnf attestation failed");
    }
  }
  state.counters["vnfs"] = count;
  state.counters["per_vnf_ms"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_VnfAttestation)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fleet attestation: serial vs overlapped, over a WAN-modelled IAS link
// ---------------------------------------------------------------------------

/// Figure-1 deployment with per-write latency on the IAS pipe, so each IAS
/// round-trip costs a real RTT (the quantity the fleet path overlaps). The
/// host agent runs thread-per-connection so fleet workers get concurrent
/// channels; the shared deterministic RNG is serialized by LockedRandom.
struct FleetBed {
  static constexpr std::chrono::microseconds kIasOneWay{500};

  explicit FleetBed(int vnf_count)
      : base_rng(7),
        rng(base_rng),
        clock(1'700'000'000),
        ias(rng, clock),
        ias_router(ias::make_ias_router(ias)),
        vendor(crypto::ed25519_generate(rng)),
        host("host-1", rng, sgx::PlatformOptions{}),
        vm(rng, clock,
           ias::IasClient([this] { return net.connect("ias:443"); },
                          ias.report_signing_key())),
        agent(host) {
    net.serve(
        "ias:443",
        [this](net::StreamPtr s) { http::serve_connection(*s, ias_router); },
        net::LinkOptions{.latency = kIasOneWay});
    net.serve("host-1:7000",
              [this](net::StreamPtr s) { agent.serve(std::move(s)); });
    host.boot();
    host.load_attestation_enclave(vendor.seed);
    ias.register_platform(
        host.sgx().platform_id(),
        host.sgx().quoting_enclave().attestation_public_key());
    for (int i = 0; i < vnf_count; ++i) {
      vnfs.push_back(std::make_unique<vnf::Vnf>(
          "vnf-" + std::to_string(i), host, vendor.seed,
          std::make_unique<vnf::MonitorFunction>()));
      agent.register_vnf(*vnfs.back());
    }
    vm.appraisal().learn(host.ima().list());
  }

  ~FleetBed() { net.join_all(); }

  crypto::DeterministicRandom base_rng;
  crypto::LockedRandom rng;
  SimClock clock;
  net::InMemoryNetwork net;
  ias::IasService ias;
  http::Router ias_router;
  crypto::Ed25519KeyPair vendor;
  host::ContainerHost host;
  core::VerificationManager vm;
  core::HostAgent agent;
  std::vector<std::unique_ptr<vnf::Vnf>> vnfs;
};

void BM_VnfAttestationSerialWan(benchmark::State& state) {
  // Baseline for the fleet comparison: the same WAN-modelled IAS link,
  // one attest_vnf round (RPC + IAS RTT + verify) per VNF, back to back.
  set_log_level(LogLevel::kOff);
  const int count = static_cast<int>(state.range(0));
  FleetBed bed(count);
  {
    auto channel = bed.net.connect("host-1:7000");
    if (!bed.vm.attest_host(*channel).trustworthy) {
      state.SkipWithError("host attestation failed");
    }
  }
  for (auto _ : state) {
    auto channel = bed.net.connect("host-1:7000");
    for (int i = 0; i < count; ++i) {
      const auto result =
          bed.vm.attest_vnf(*channel, "vnf-" + std::to_string(i));
      if (!result.trustworthy) state.SkipWithError("vnf attestation failed");
    }
  }
  state.counters["vnfs"] = count;
  state.counters["per_vnf_ms"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_VnfAttestationSerialWan)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_VnfAttestationFleet(benchmark::State& state) {
  // Fleet mode: the same N attestations with RPC + IAS legs overlapped on
  // a bounded worker set (IAS traffic on the keep-alive pool) and all AVR
  // signatures checked in one Ed25519 batch verification.
  set_log_level(LogLevel::kOff);
  const int count = static_cast<int>(state.range(0));
  FleetBed bed(count);
  {
    auto channel = bed.net.connect("host-1:7000");
    if (!bed.vm.attest_host(*channel).trustworthy) {
      state.SkipWithError("host attestation failed");
    }
  }
  for (auto _ : state) {
    std::vector<net::StreamPtr> channels;
    std::vector<core::FleetTarget> targets;
    channels.reserve(count);
    targets.reserve(count);
    for (int i = 0; i < count; ++i) {
      channels.push_back(bed.net.connect("host-1:7000"));
      targets.push_back({channels.back().get(), "vnf-" + std::to_string(i)});
    }
    const auto results = bed.vm.attest_fleet(targets, /*max_workers=*/8);
    for (const auto& r : results) {
      if (!r.trustworthy) state.SkipWithError("fleet attestation failed");
    }
  }
  state.counters["vnfs"] = count;
  state.counters["per_vnf_ms"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_VnfAttestationFleet)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fleet enrollment A/B: the PR-5 pipeline (batched steps 3-4 over the WAN
// IAS link, step-5 provisioning, then a first authenticated contact) vs
// RA-TLS (local issuance + ONE attested handshake that simultaneously
// attests, authenticates, and enrolls — zero prior round-trips).
// ---------------------------------------------------------------------------

/// Run fn(0..count-1) on a bounded worker set (both variants overlap their
/// per-VNF connection legs the same way, so the A/B isolates round-trips).
void run_on_workers(int count, int workers, const std::function<void(int)>& fn) {
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1)) fn(i);
    });
  }
  for (auto& t : pool) t.join();
}

/// FleetBed plus a trusted-HTTPS controller the enrolling VNFs contact.
/// In RA-TLS mode the controller's only client trust anchor is the
/// attestation verifier; in pipeline mode it trusts the VM's CA.
struct EnrollBed {
  EnrollBed(int vnf_count, bool ratls_mode)
      : bed(vnf_count),
        verifier(ratls::VerifierPolicy{
            .attestation_key =
                [this](const sgx::PlatformId& id) {
                  return bed.ias.attestation_key(id);
                },
            .enclave_allowed =
                [](const sgx::Measurement& m) {
                  return m == vnf::credential_enclave_measurement();
                },
            .policy_generation = {}}) {
    controller::ControllerConfig cfg;
    cfg.mode = controller::SecurityMode::kTrustedHttps;
    const auto kp = crypto::ed25519_generate(bed.rng);
    cfg.certificate = bed.vm.ca().issue(
        {"controller", ""}, kp.public_key,
        static_cast<std::uint8_t>(pki::KeyUsage::kServerAuth));
    cfg.signer = tls::Config::software_signer(kp.seed);
    cfg.require_attested_clients = ratls_mode;
    cfg.clock = &bed.clock;
    cfg.rng = &bed.rng;
    ctrl = std::make_unique<controller::Controller>(cfg, fabric);
    if (ratls_mode) {
      ctrl->set_attested_verifier(&verifier);
    } else {
      ctrl->trust_ca(bed.vm.ca_certificate());
    }
    client_trust.add_root(bed.vm.ca_certificate());
    bed.net.serve("controller:8443", [this](net::StreamPtr s) {
      ctrl->serve(std::move(s));
    });
    for (auto& v : bed.vnfs) v->credentials().generate_key();
  }

  tls::Config client_config(vnf::Vnf& v, pki::Certificate cert) {
    tls::Config c;
    c.certificate = std::move(cert);
    c.signer = [&v](ByteView data) { return v.credentials().sign(data); };
    c.truststore = &client_trust;
    c.expected_server_name = "controller";
    c.clock = &bed.clock;
    c.rng = &bed.rng;
    return c;
  }

  FleetBed bed;
  dataplane::Fabric fabric;
  ratls::Verifier verifier;
  pki::TrustStore client_trust;  // clients verifying the controller cert
  std::unique_ptr<controller::Controller> ctrl;
};

void BM_FleetEnrollPipeline(benchmark::State& state) {
  // Baseline: attest_fleet (steps 3-4, IAS legs overlapped + batched AVR
  // verify), enroll_vnf per VNF (step 5 over the agent channel), then each
  // VNF's first mutually authenticated contact with the controller.
  set_log_level(LogLevel::kOff);
  const int count = static_cast<int>(state.range(0));
  EnrollBed eb(count, /*ratls_mode=*/false);
  {
    auto channel = eb.bed.net.connect("host-1:7000");
    if (!eb.bed.vm.attest_host(*channel).trustworthy) {
      state.SkipWithError("host attestation failed");
    }
  }
  for (auto _ : state) {
    std::vector<net::StreamPtr> channels;
    std::vector<core::FleetTarget> targets;
    channels.reserve(count);
    targets.reserve(count);
    for (int i = 0; i < count; ++i) {
      channels.push_back(eb.bed.net.connect("host-1:7000"));
      targets.push_back({channels.back().get(), "vnf-" + std::to_string(i)});
    }
    const auto results = eb.bed.vm.attest_fleet(targets, /*max_workers=*/8);
    for (const auto& r : results) {
      if (!r.trustworthy) state.SkipWithError("fleet attestation failed");
    }
    auto channel = eb.bed.net.connect("host-1:7000");
    for (int i = 0; i < count; ++i) {
      const std::string name = "vnf-" + std::to_string(i);
      if (!eb.bed.vm.enroll_vnf(*channel, name, name)) {
        state.SkipWithError("provisioning failed");
      }
    }
    run_on_workers(count, 8, [&eb](int i) {
      vnf::Vnf& v = *eb.bed.vnfs[i];
      http::Client client(tls::Session::connect(
          eb.bed.net.connect("controller:8443"),
          eb.client_config(v, v.credentials().certificate())));
      client.get("/wm/core/controller/summary/json");
      client.close();
    });
  }
  state.counters["vnfs"] = count;
  state.counters["per_vnf_ms"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_FleetEnrollPipeline)
    ->Arg(16)
    ->Arg(64)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true)
    ->Unit(benchmark::kMillisecond);

void BM_FleetEnrollRatls(benchmark::State& state) {
  // RA-TLS: no IAS round-trip, no provisioning leg. Each VNF quotes its
  // in-enclave key locally, self-signs the attestation-bound certificate,
  // and its FIRST connection to the controller both verifies the quote
  // in-handshake and enrolls the identity.
  set_log_level(LogLevel::kOff);
  const int count = static_cast<int>(state.range(0));
  EnrollBed eb(count, /*ratls_mode=*/true);
  std::uint64_t round = 0;
  for (auto _ : state) {
    ++round;
    run_on_workers(count, 8, [&eb, count, round](int i) {
      vnf::Vnf& v = *eb.bed.vnfs[i];
      const std::string name = "vnf-" + std::to_string(i);
      const auto cert = v.credentials().issue_ratls_certificate(
          eb.bed.host.sgx().quoting_enclave(), crypto::Sha256Digest{},
          eb.bed.vendor.public_key,
          /*serial=*/round * static_cast<std::uint64_t>(count) + i + 1,
          {name, ""}, eb.bed.clock.now() - 10, eb.bed.clock.now() + 3600);
      http::Client client(
          tls::Session::connect(eb.bed.net.connect("controller:8443"),
                                eb.client_config(v, cert)));
      client.post("/wm/vnfsgx/enroll/json", "{}");
      client.close();
    });
  }
  if (eb.ctrl->enrolled_identities().size() !=
      static_cast<std::size_t>(count) * round) {
    state.SkipWithError("enrollment incomplete");
  }
  state.counters["vnfs"] = count;
  state.counters["per_vnf_ms"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_FleetEnrollRatls)
    ->Arg(16)
    ->Arg(64)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true)
    ->Unit(benchmark::kMillisecond);

void BM_QuoteGenerationOnly(benchmark::State& state) {
  // The host-local slice of steps 1-2: IML report ECALL + QE signing,
  // without the network or IAS.
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  grow_iml(host, static_cast<int>(state.range(0)));
  auto enclave = host.machine->attestation_enclave();
  const auto qe_target = host.machine->sgx().quoting_enclave().target_info();

  for (auto _ : state) {
    const Bytes iml = host.machine->ima().list().encode();
    std::array<std::uint8_t, 32> nonce{};
    const Bytes report = enclave->call(
        host::kOpCreateImlReport,
        host::encode_iml_report_request(nonce, iml, qe_target));
    const auto quote = host.machine->sgx().quoting_enclave().quote(
        sgx::Report::decode(report));
    benchmark::DoNotOptimize(quote);
  }
}
BENCHMARK(BM_QuoteGenerationOnly)
    ->Arg(10)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_HostAttestationWithTpm(benchmark::State& state) {
  // §4-extension ablation: the same host attestation with the TPM PCR-10
  // cross-check enabled (one extra Ed25519 verify + aggregate recompute).
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  grow_iml(host, static_cast<int>(state.range(0)));
  bed.learn_golden(host);
  bed.vm.enroll_platform_aik(host.machine->sgx().platform_id(),
                             host.machine->tpm().aik_public_key());

  for (auto _ : state) {
    auto channel = bed.agent_channel(host);
    const core::HostAttestation result = bed.vm.attest_host(*channel);
    if (!result.trustworthy || !result.tpm_verified) {
      state.SkipWithError("TPM-verified attestation failed");
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("tpm-anchored");
}
BENCHMARK(BM_HostAttestationWithTpm)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_IasVerifyOnly(benchmark::State& state) {
  // The IAS leg in isolation (HTTP round-trip + quote verify + AVR sign).
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  auto enclave = host.machine->attestation_enclave();
  const auto qe_target = host.machine->sgx().quoting_enclave().target_info();
  const Bytes iml = host.machine->ima().list().encode();
  std::array<std::uint8_t, 32> nonce{};
  const Bytes report = enclave->call(
      host::kOpCreateImlReport,
      host::encode_iml_report_request(nonce, iml, qe_target));
  const Bytes quote = host.machine->sgx()
                          .quoting_enclave()
                          .quote(sgx::Report::decode(report))
                          .encode();
  ias::IasClient client([&bed] { return bed.net.connect("ias.intel.example:443"); },
                        bed.ias.report_signing_key());

  for (auto _ : state) {
    const auto avr = client.verify_quote(quote);
    benchmark::DoNotOptimize(avr);
  }
}
BENCHMARK(BM_IasVerifyOnly)->Unit(benchmark::kMicrosecond);

}  // namespace
