// F1-S12 / F1-S34: Figure-1 attestation latency.
//
// Steps 1-2: host remote attestation (enclave IML report -> QE quote ->
// IAS round-trip -> AVR verification -> IML appraisal), swept over the
// size of the IMA measurement list.
// Steps 3-4: VNF credential-enclave attestation.
//
// The SGX crossing cost defaults to the simulator's realistic 2 us; the
// IAS leg runs over the in-memory network (add LinkOptions latency to
// model a WAN IAS — see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "testbed.h"

namespace {

using namespace vnfsgx;
using namespace vnfsgx::examples;

/// Add `n` measured files to a host's IML.
void grow_iml(SimHost& host, int n) {
  for (int i = 0; i < n; ++i) {
    const std::string path = "/opt/pkg/bin/tool" + std::to_string(i);
    host.machine->filesystem().write_file(
        path, to_bytes("tool content " + std::to_string(i)),
        ima::FileMeta{.uid = 0, .executable = true});
    host.machine->ima().on_exec(path);
  }
}

void BM_HostAttestation(benchmark::State& state) {
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  grow_iml(host, static_cast<int>(state.range(0)));
  bed.learn_golden(host);

  for (auto _ : state) {
    auto channel = bed.agent_channel(host);
    const core::HostAttestation result = bed.vm.attest_host(*channel);
    if (!result.trustworthy) state.SkipWithError("attestation failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["iml_entries"] =
      static_cast<double>(host.machine->ima().list().size());
}
BENCHMARK(BM_HostAttestation)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_HostAttestationUntrustworthy(benchmark::State& state) {
  // Detection path: compromised host — same protocol cost, appraisal fails.
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  grow_iml(host, 100);
  bed.learn_golden(host);
  host.machine->compromise_file("/usr/bin/dockerd");

  for (auto _ : state) {
    auto channel = bed.agent_channel(host);
    const core::HostAttestation result = bed.vm.attest_host(*channel);
    if (result.trustworthy) state.SkipWithError("compromise missed!");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HostAttestationUntrustworthy)->Unit(benchmark::kMillisecond);

void BM_VnfAttestation(benchmark::State& state) {
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");

  std::vector<std::unique_ptr<vnf::Vnf>> vnfs;
  const int count = static_cast<int>(state.range(0));
  for (int i = 0; i < count; ++i) {
    vnfs.push_back(std::make_unique<vnf::Vnf>(
        "vnf-" + std::to_string(i), *host.machine, bed.vendor.seed,
        std::make_unique<vnf::MonitorFunction>()));
    host.agent->register_vnf(*vnfs.back());
  }
  bed.learn_golden(host);
  {
    auto channel = bed.agent_channel(host);
    if (!bed.vm.attest_host(*channel).trustworthy) {
      state.SkipWithError("host attestation failed");
    }
  }

  // Each iteration attests every deployed VNF enclave (steps 3-4 x N).
  for (auto _ : state) {
    auto channel = bed.agent_channel(host);
    for (int i = 0; i < count; ++i) {
      const auto result =
          bed.vm.attest_vnf(*channel, "vnf-" + std::to_string(i));
      if (!result.trustworthy) state.SkipWithError("vnf attestation failed");
    }
  }
  state.counters["vnfs"] = count;
  state.counters["per_vnf_ms"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_VnfAttestation)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fleet attestation: serial vs overlapped, over a WAN-modelled IAS link
// ---------------------------------------------------------------------------

/// Figure-1 deployment with per-write latency on the IAS pipe, so each IAS
/// round-trip costs a real RTT (the quantity the fleet path overlaps). The
/// host agent runs thread-per-connection so fleet workers get concurrent
/// channels; the shared deterministic RNG is serialized by LockedRandom.
struct FleetBed {
  static constexpr std::chrono::microseconds kIasOneWay{500};

  explicit FleetBed(int vnf_count)
      : base_rng(7),
        rng(base_rng),
        clock(1'700'000'000),
        ias(rng, clock),
        ias_router(ias::make_ias_router(ias)),
        vendor(crypto::ed25519_generate(rng)),
        host("host-1", rng, sgx::PlatformOptions{}),
        vm(rng, clock,
           ias::IasClient([this] { return net.connect("ias:443"); },
                          ias.report_signing_key())),
        agent(host) {
    net.serve(
        "ias:443",
        [this](net::StreamPtr s) { http::serve_connection(*s, ias_router); },
        net::LinkOptions{.latency = kIasOneWay});
    net.serve("host-1:7000",
              [this](net::StreamPtr s) { agent.serve(std::move(s)); });
    host.boot();
    host.load_attestation_enclave(vendor.seed);
    ias.register_platform(
        host.sgx().platform_id(),
        host.sgx().quoting_enclave().attestation_public_key());
    for (int i = 0; i < vnf_count; ++i) {
      vnfs.push_back(std::make_unique<vnf::Vnf>(
          "vnf-" + std::to_string(i), host, vendor.seed,
          std::make_unique<vnf::MonitorFunction>()));
      agent.register_vnf(*vnfs.back());
    }
    vm.appraisal().learn(host.ima().list());
  }

  ~FleetBed() { net.join_all(); }

  crypto::DeterministicRandom base_rng;
  crypto::LockedRandom rng;
  SimClock clock;
  net::InMemoryNetwork net;
  ias::IasService ias;
  http::Router ias_router;
  crypto::Ed25519KeyPair vendor;
  host::ContainerHost host;
  core::VerificationManager vm;
  core::HostAgent agent;
  std::vector<std::unique_ptr<vnf::Vnf>> vnfs;
};

void BM_VnfAttestationSerialWan(benchmark::State& state) {
  // Baseline for the fleet comparison: the same WAN-modelled IAS link,
  // one attest_vnf round (RPC + IAS RTT + verify) per VNF, back to back.
  set_log_level(LogLevel::kOff);
  const int count = static_cast<int>(state.range(0));
  FleetBed bed(count);
  {
    auto channel = bed.net.connect("host-1:7000");
    if (!bed.vm.attest_host(*channel).trustworthy) {
      state.SkipWithError("host attestation failed");
    }
  }
  for (auto _ : state) {
    auto channel = bed.net.connect("host-1:7000");
    for (int i = 0; i < count; ++i) {
      const auto result =
          bed.vm.attest_vnf(*channel, "vnf-" + std::to_string(i));
      if (!result.trustworthy) state.SkipWithError("vnf attestation failed");
    }
  }
  state.counters["vnfs"] = count;
  state.counters["per_vnf_ms"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_VnfAttestationSerialWan)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_VnfAttestationFleet(benchmark::State& state) {
  // Fleet mode: the same N attestations with RPC + IAS legs overlapped on
  // a bounded worker set (IAS traffic on the keep-alive pool) and all AVR
  // signatures checked in one Ed25519 batch verification.
  set_log_level(LogLevel::kOff);
  const int count = static_cast<int>(state.range(0));
  FleetBed bed(count);
  {
    auto channel = bed.net.connect("host-1:7000");
    if (!bed.vm.attest_host(*channel).trustworthy) {
      state.SkipWithError("host attestation failed");
    }
  }
  for (auto _ : state) {
    std::vector<net::StreamPtr> channels;
    std::vector<core::FleetTarget> targets;
    channels.reserve(count);
    targets.reserve(count);
    for (int i = 0; i < count; ++i) {
      channels.push_back(bed.net.connect("host-1:7000"));
      targets.push_back({channels.back().get(), "vnf-" + std::to_string(i)});
    }
    const auto results = bed.vm.attest_fleet(targets, /*max_workers=*/8);
    for (const auto& r : results) {
      if (!r.trustworthy) state.SkipWithError("fleet attestation failed");
    }
  }
  state.counters["vnfs"] = count;
  state.counters["per_vnf_ms"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_VnfAttestationFleet)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_QuoteGenerationOnly(benchmark::State& state) {
  // The host-local slice of steps 1-2: IML report ECALL + QE signing,
  // without the network or IAS.
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  grow_iml(host, static_cast<int>(state.range(0)));
  auto enclave = host.machine->attestation_enclave();
  const auto qe_target = host.machine->sgx().quoting_enclave().target_info();

  for (auto _ : state) {
    const Bytes iml = host.machine->ima().list().encode();
    std::array<std::uint8_t, 32> nonce{};
    const Bytes report = enclave->call(
        host::kOpCreateImlReport,
        host::encode_iml_report_request(nonce, iml, qe_target));
    const auto quote = host.machine->sgx().quoting_enclave().quote(
        sgx::Report::decode(report));
    benchmark::DoNotOptimize(quote);
  }
}
BENCHMARK(BM_QuoteGenerationOnly)
    ->Arg(10)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_HostAttestationWithTpm(benchmark::State& state) {
  // §4-extension ablation: the same host attestation with the TPM PCR-10
  // cross-check enabled (one extra Ed25519 verify + aggregate recompute).
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  grow_iml(host, static_cast<int>(state.range(0)));
  bed.learn_golden(host);
  bed.vm.enroll_platform_aik(host.machine->sgx().platform_id(),
                             host.machine->tpm().aik_public_key());

  for (auto _ : state) {
    auto channel = bed.agent_channel(host);
    const core::HostAttestation result = bed.vm.attest_host(*channel);
    if (!result.trustworthy || !result.tpm_verified) {
      state.SkipWithError("TPM-verified attestation failed");
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("tpm-anchored");
}
BENCHMARK(BM_HostAttestationWithTpm)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_IasVerifyOnly(benchmark::State& state) {
  // The IAS leg in isolation (HTTP round-trip + quote verify + AVR sign).
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  auto enclave = host.machine->attestation_enclave();
  const auto qe_target = host.machine->sgx().quoting_enclave().target_info();
  const Bytes iml = host.machine->ima().list().encode();
  std::array<std::uint8_t, 32> nonce{};
  const Bytes report = enclave->call(
      host::kOpCreateImlReport,
      host::encode_iml_report_request(nonce, iml, qe_target));
  const Bytes quote = host.machine->sgx()
                          .quoting_enclave()
                          .quote(sgx::Report::decode(report))
                          .encode();
  ias::IasClient client([&bed] { return bed.net.connect("ias.intel.example:443"); },
                        bed.ias.report_signing_key());

  for (auto _ : state) {
    const auto avr = client.verify_quote(quote);
    benchmark::DoNotOptimize(avr);
  }
}
BENCHMARK(BM_IasVerifyOnly)->Unit(benchmark::kMicrosecond);

}  // namespace
