// SUB-IMA: substrate calibration — IMA measurement and appraisal scaling
// with the number of measured files, plus IML encode/decode (the bytes the
// attestation protocol ships).
#include <benchmark/benchmark.h>

#include "core/appraisal.h"
#include "ima/subsystem.h"

namespace {

using namespace vnfsgx;

void populate(ima::SimulatedFilesystem& fs, int n) {
  for (int i = 0; i < n; ++i) {
    fs.write_file("/opt/bin/tool" + std::to_string(i),
                  to_bytes("binary content #" + std::to_string(i)),
                  ima::FileMeta{.uid = 0, .executable = true});
  }
}

void BM_ImaMeasureFiles(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ima::SimulatedFilesystem fs;
    populate(fs, n);
    ima::ImaSubsystem ima(fs, ima::ImaPolicy::tcb_default());
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      ima.on_exec("/opt/bin/tool" + std::to_string(i));
    }
    benchmark::DoNotOptimize(ima.aggregate());
  }
  state.counters["files"] = n;
}
BENCHMARK(BM_ImaMeasureFiles)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_ImaCacheHit(benchmark::State& state) {
  // Re-measuring unchanged files (the kernel's fast path).
  ima::SimulatedFilesystem fs;
  populate(fs, 100);
  ima::ImaSubsystem ima(fs, ima::ImaPolicy::tcb_default());
  for (int i = 0; i < 100; ++i) ima.on_exec("/opt/bin/tool" + std::to_string(i));
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ima.on_exec("/opt/bin/tool" + std::to_string(i++ % 100)));
  }
}
BENCHMARK(BM_ImaCacheHit)->Unit(benchmark::kNanosecond);

void BM_ImlEncodeDecode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ima::SimulatedFilesystem fs;
  populate(fs, n);
  ima::ImaSubsystem ima(fs, ima::ImaPolicy::tcb_default());
  for (int i = 0; i < n; ++i) ima.on_exec("/opt/bin/tool" + std::to_string(i));

  for (auto _ : state) {
    const Bytes encoded = ima.list().encode();
    const auto decoded = ima::MeasurementList::decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["bytes"] = static_cast<double>(ima.list().encode().size());
}
BENCHMARK(BM_ImlEncodeDecode)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_Appraisal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ima::SimulatedFilesystem fs;
  populate(fs, n);
  ima::ImaSubsystem ima(fs, ima::ImaPolicy::tcb_default());
  for (int i = 0; i < n; ++i) ima.on_exec("/opt/bin/tool" + std::to_string(i));

  core::AppraisalDatabase db;
  db.learn(ima.list());
  for (auto _ : state) {
    const auto result = db.appraise(ima.list());
    if (!result.trustworthy) state.SkipWithError("unexpected verdict");
  }
  state.counters["files"] = n;
}
BENCHMARK(BM_Appraisal)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_AppraisalDetectsTamper(benchmark::State& state) {
  // Worst case is identical to the clean case (full scan either way);
  // this documents that detection latency does not regress.
  const int n = 1000;
  ima::SimulatedFilesystem fs;
  populate(fs, n);
  ima::ImaSubsystem ima(fs, ima::ImaPolicy::tcb_default());
  for (int i = 0; i < n; ++i) ima.on_exec("/opt/bin/tool" + std::to_string(i));
  core::AppraisalDatabase db;
  db.learn(ima.list());
  fs.tamper_file("/opt/bin/tool500");
  ima.on_exec("/opt/bin/tool500");

  for (auto _ : state) {
    const auto result = db.appraise(ima.list());
    if (result.trustworthy) state.SkipWithError("tamper missed");
  }
}
BENCHMARK(BM_AppraisalDetectsTamper)->Unit(benchmark::kMicrosecond);

}  // namespace
