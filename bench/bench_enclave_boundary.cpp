// ENCL-BOUNDARY: quantifies the ECALL boundary disciplines the switchless
// runtime adds (ROADMAP item 2, HotCalls / Snort-SGX motivation):
//
//   * sync       — one full crossing per inspected frame (the seed behavior);
//   * batched    — Enclave::call_batch amortizes one crossing over a burst;
//   * switchless — the hostcall ring's resident worker, no per-job crossing.
//
// Each mode pushes bursts of frames through the in-enclave signature-match
// IDS at 64B/512B/1500B payloads with the simulator's default 2us crossing
// cost, reporting packets/sec (items) and crossings per frame (counter).
// BM_InspectOutsideEnclave runs the identical matcher + flow table in
// untrusted memory as the no-SGX baseline.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "crypto/random.h"
#include "sgx/platform.h"
#include "vnf/inspection_enclave.h"

namespace {

using namespace vnfsgx;

constexpr int kBurst = 64;
constexpr int kFlows = 16;

vnf::RuleSet bench_rules() {
  vnf::RuleSet rules;
  auto add = [&rules](const char* name, const char* pattern,
                      vnf::RuleAction action) {
    vnf::InspectionRule rule;
    rule.name = name;
    rule.pattern = to_bytes(pattern);
    rule.action = action;
    rules.add(std::move(rule));
  };
  add("exploit-shell", "/bin/sh -c", vnf::RuleAction::kDrop);
  add("dns-tunnel", "\x07tunnel\x03", vnf::RuleAction::kDrop);
  add("telnet-probe", "admin admin", vnf::RuleAction::kAlert);
  add("beacon", "GET /gate.php", vnf::RuleAction::kAlert);
  return rules;
}

/// Clean frames cycling over kFlows distinct 5-tuples.
std::vector<dataplane::Packet> make_burst(std::size_t payload_size) {
  crypto::DeterministicRandom rng(41);
  std::vector<dataplane::Packet> burst;
  burst.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    dataplane::Packet p;
    p.src_ip = 0x0a000000u + static_cast<std::uint32_t>(i % kFlows);
    p.dst_ip = 0x0a000064;
    p.src_port = static_cast<std::uint16_t>(30000 + i % kFlows);
    p.dst_port = 80;
    p.proto = dataplane::IpProto::kTcp;
    p.payload = rng.bytes(payload_size);
    // Keep payloads pattern-free so every frame takes the full-scan path.
    for (auto& b : p.payload) b &= 0x3f;
    burst.push_back(std::move(p));
  }
  return burst;
}

struct BoundaryBench {
  crypto::DeterministicRandom rng{23};
  std::unique_ptr<sgx::SgxPlatform> platform;
  std::shared_ptr<sgx::Enclave> enclave;
  std::unique_ptr<vnf::InspectionClient> client;

  explicit BoundaryBench(vnf::InspectionClient::Options client_options) {
    sgx::PlatformOptions options;  // default 2us crossing cost
    platform = std::make_unique<sgx::SgxPlatform>(rng, "bench", options);
    const auto vendor = crypto::ed25519_generate(rng);
    const sgx::EnclaveImage image = vnf::inspection_enclave_image();
    const sgx::SigStruct sig = sgx::sign_enclave(
        vendor.seed, sgx::measure_image(image.code, image.attributes), 11, 1);
    enclave = platform->load_enclave(image, sig);
    client = std::make_unique<vnf::InspectionClient>(enclave, client_options);
    client->load_rules(bench_rules());
  }
  explicit BoundaryBench(vnf::InspectionClient::Mode mode)
      : BoundaryBench(vnf::InspectionClient::Options{.mode = mode}) {}
};

void run_inspection_loop(benchmark::State& state, BoundaryBench& bench,
                         const std::string& label) {
  const auto burst = make_burst(static_cast<std::size_t>(state.range(0)));
  // Fenced snapshots (not raw ecall_count): the switchless worker thread
  // publishes its counts concurrently.
  const sgx::EcallStats before = bench.enclave->ecall_stats();
  std::int64_t frames = 0;
  for (auto _ : state) {
    const auto outcomes = bench.client->inspect_burst(burst, 1);
    benchmark::DoNotOptimize(outcomes.data());
    frames += static_cast<std::int64_t>(outcomes.size());
  }
  const sgx::EcallStats after = bench.enclave->ecall_stats();
  state.SetItemsProcessed(frames);
  state.SetBytesProcessed(frames * state.range(0));
  state.counters["crossings_per_frame"] =
      frames == 0 ? 0.0
                  : static_cast<double>(after.crossings - before.crossings) /
                        static_cast<double>(frames);
  state.counters["crossings_per_sec"] = benchmark::Counter(
      static_cast<double>(after.crossings - before.crossings),
      benchmark::Counter::kIsRate);
  state.SetLabel(label);
}

void run_inspection(benchmark::State& state, vnf::InspectionClient::Mode mode,
                    const char* label) {
  BoundaryBench bench(mode);
  run_inspection_loop(state, bench, label);
}

void BM_InspectSyncEcall(benchmark::State& state) {
  run_inspection(state, vnf::InspectionClient::Mode::kSync,
                 "one crossing per frame");
}
BENCHMARK(BM_InspectSyncEcall)
    ->Arg(64)
    ->Arg(512)
    ->Arg(1500)
    ->Unit(benchmark::kMicrosecond);

void BM_InspectBatched(benchmark::State& state) {
  run_inspection(state, vnf::InspectionClient::Mode::kBatched,
                 "one crossing per 64-frame burst");
}
BENCHMARK(BM_InspectBatched)
    ->Arg(64)
    ->Arg(512)
    ->Arg(1500)
    ->Unit(benchmark::kMicrosecond);

void BM_InspectSwitchless(benchmark::State& state) {
  run_inspection(state, vnf::InspectionClient::Mode::kSwitchless,
                 "hostcall ring, resident worker");
}
BENCHMARK(BM_InspectSwitchless)
    ->Arg(64)
    ->Arg(512)
    ->Arg(1500)
    ->Unit(benchmark::kMicrosecond);

void BM_InspectSwitchlessSweep(benchmark::State& state) {
  // The PR-10 A/B matrix: frame size x ring count x wire codec. codec 0 is
  // the PR-6 TLV format (per-frame heap encode, then a copy into the
  // slot); codec 1 is the zero-copy FrameDescriptor serialized straight
  // into the ring slot with the verdict collected in place.
  vnf::InspectionClient::Options options;
  options.mode = vnf::InspectionClient::Mode::kSwitchless;
  options.rings = static_cast<std::size_t>(state.range(1));
  options.codec = state.range(2) == 0 ? vnf::InspectionClient::Codec::kTlv
                                      : vnf::InspectionClient::Codec::kZeroCopy;
  BoundaryBench bench(options);
  std::string label = state.range(2) == 0 ? "tlv" : "zerocopy";
  label += ", rings=" + std::to_string(state.range(1));
  run_inspection_loop(state, bench, label);
}
BENCHMARK(BM_InspectSwitchlessSweep)
    // Args: {frame bytes, rings, codec (0 = tlv, 1 = zerocopy)}.
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->Args({64, 2, 0})
    ->Args({64, 2, 1})
    ->Args({512, 1, 0})
    ->Args({512, 1, 1})
    ->Args({512, 2, 0})
    ->Args({512, 2, 1})
    ->Args({1500, 1, 0})
    ->Args({1500, 1, 1})
    ->Args({1500, 2, 0})
    ->Args({1500, 2, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_InspectOutsideEnclave(benchmark::State& state) {
  // The no-SGX baseline: identical matcher + flow bookkeeping, but rules
  // and per-flow state sit in untrusted memory (what the paper forbids).
  const vnf::RuleSet rules = bench_rules();
  const vnf::RuleMatcher matcher(rules);
  const auto burst = make_burst(static_cast<std::size_t>(state.range(0)));
  struct Flow {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    bool poisoned = false;
  };
  std::map<std::uint64_t, Flow> flows;
  std::int64_t frames = 0;
  for (auto _ : state) {
    for (const auto& p : burst) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(p.src_ip) << 32) ^ p.dst_ip ^
          (static_cast<std::uint64_t>(p.src_port) << 16) ^ p.dst_port;
      Flow& flow = flows[key];
      ++flow.packets;
      flow.bytes += p.payload.size();
      if (!flow.poisoned) {
        const auto hit = matcher.match(p.payload, p.dst_port,
                                       static_cast<std::uint8_t>(p.proto));
        if (hit) flow.poisoned = true;
        benchmark::DoNotOptimize(hit);
      }
      ++frames;
    }
  }
  state.SetItemsProcessed(frames);
  state.SetBytesProcessed(frames * state.range(0));
  state.counters["crossings_per_frame"] = 0.0;
  state.SetLabel("untrusted matcher, no enclave");
}
BENCHMARK(BM_InspectOutsideEnclave)
    ->Arg(64)
    ->Arg(512)
    ->Arg(1500)
    ->Unit(benchmark::kMicrosecond);

void BM_RawBoundaryEcho(benchmark::State& state) {
  // Strips the NF out: bare opcode dispatch through each discipline shows
  // the boundary cost itself (crossings/sec ceiling).
  const auto mode = static_cast<vnf::InspectionClient::Mode>(state.range(0));
  BoundaryBench bench(mode);
  const Bytes payload(64, 0x2a);
  const sgx::EcallStats before = bench.enclave->ecall_stats();
  std::int64_t calls = 0;
  for (auto _ : state) {
    // kOpFlowStats is the cheapest pure in-enclave op (no rule walk).
    switch (mode) {
      case vnf::InspectionClient::Mode::kSync:
        benchmark::DoNotOptimize(bench.enclave->call(vnf::kOpFlowStats, {}));
        ++calls;
        break;
      case vnf::InspectionClient::Mode::kBatched: {
        std::vector<sgx::BatchCall> jobs(
            kBurst, sgx::BatchCall{vnf::kOpFlowStats, {}});
        benchmark::DoNotOptimize(bench.enclave->call_batch(jobs));
        calls += kBurst;
        break;
      }
      case vnf::InspectionClient::Mode::kSwitchless:
        benchmark::DoNotOptimize(bench.client->flow_stats().inspected);
        ++calls;
        break;
    }
  }
  const sgx::EcallStats after = bench.enclave->ecall_stats();
  state.SetItemsProcessed(calls);
  state.counters["crossings_per_op"] =
      calls == 0 ? 0.0
                 : static_cast<double>(after.crossings - before.crossings) /
                       static_cast<double>(calls);
  static const char* const kLabels[] = {"sync", "batched", "switchless"};
  state.SetLabel(kLabels[state.range(0)]);
}
BENCHMARK(BM_RawBoundaryEcho)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
