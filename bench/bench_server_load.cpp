// SERVER-LOAD: the PR-4 scalability experiment. A controller in trusted
// HTTPS mode (§3's strongest REST mode) serves a fleet of keep-alive TLS
// connections — most of them idle — while a smaller set of active clients
// drives a closed-loop request storm. Two server models run the identical
// workload over the in-memory transport (zero kernel noise, so the series
// isolates the server's own dispatch machinery):
//
//   * threaded — the seed model: one blocking thread per accepted
//     connection, so 512 idle + 64 active conns pin ~576 server threads.
//   * pooled   — the ServerRuntime: idle connections park in the readiness
//     source for free; every burst runs on a bounded worker pool
//     (max(2, 2x hardware_concurrency)).
//
// Counters per series: requests/s (items_per_second), server_threads,
// process_threads (from /proc/self/status), workers, idle/active conns.
// The obs registry snapshot (metrics_exit) additionally captures the
// runtime's queue-depth / queue-wait / burst-duration series for
// BENCH_pr4.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/sim_clock.h"
#include "controller/controller.h"
#include "crypto/random.h"
#include "http/client.h"
#include "http/runtime.h"
#include "http/server.h"
#include "net/inmemory.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "pki/ca.h"
#include "tls/session.h"

namespace {

using namespace vnfsgx;
using controller::Controller;
using controller::ControllerConfig;
using controller::SecurityMode;

// Sanitizer builds run the same shape at reduced scale: the point there is
// correctness under TSan/ASan, not throughput.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define VNFSGX_BENCH_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define VNFSGX_BENCH_SANITIZED 1
#endif

#if defined(VNFSGX_BENCH_SANITIZED)
constexpr int kIdleConnections = 64;
constexpr int kClientThreads = 4;
constexpr int kConnsPerClient = 2;
#else
constexpr int kIdleConnections = 512;
constexpr int kClientThreads = 16;
constexpr int kConnsPerClient = 4;  // 64 active connections total
#endif
constexpr int kActiveConnections = kClientThreads * kConnsPerClient;

constexpr auto kWindow = std::chrono::milliseconds(200);
constexpr const char* kPath = "/wm/core/controller/summary/json";

enum class Model { kThreadPerConnection, kPooled };

const char* to_string(Model model) {
  return model == Model::kPooled ? "pooled" : "threaded";
}

/// DeterministicRandom is not thread-safe; concurrent TLS handshakes on
/// both ends share a crypto::LockedRandom view of it.
using crypto::LockedRandom;

/// Total threads in this process, from /proc/self/status. Counts client
/// threads too, but those are identical across models, so the delta
/// between series is the server-side thread bill.
std::size_t process_threads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      std::istringstream field(line.substr(8));
      std::size_t n = 0;
      field >> n;
      return n;
    }
  }
  return 0;
}

struct LoadBed {
  crypto::DeterministicRandom rng{2026};
  LockedRandom locked_rng{rng};
  SimClock clock{1'700'000'000};
  pki::CertificateAuthority ca{pki::DistinguishedName{"vm-ca", "vnfsgx"}, rng,
                               clock};
  pki::TrustStore truststore;
  dataplane::Fabric fabric;
  net::InMemoryNetwork net;
  net::ServerRuntime runtime{{.workers = 0,
                              .burst_read_timeout = std::chrono::seconds(10),
                              .name = "bench-load"}};
  std::unique_ptr<Controller> controller;
  pki::Certificate client_cert;
  crypto::Ed25519Seed client_seed{};
  Model model;

  explicit LoadBed(Model m) : model(m) {
    set_log_level(LogLevel::kOff);
    fabric.add_switch(1);
    truststore.add_root(ca.root_certificate());
    const auto client_kp = crypto::ed25519_generate(rng);
    client_cert =
        ca.issue({"vnf-client", ""}, client_kp.public_key,
                 static_cast<std::uint8_t>(pki::KeyUsage::kClientAuth));
    client_seed = client_kp.seed;

    ControllerConfig config;
    config.mode = SecurityMode::kTrustedHttps;
    const auto kp = crypto::ed25519_generate(rng);
    config.certificate =
        ca.issue({"controller", ""}, kp.public_key,
                 static_cast<std::uint8_t>(pki::KeyUsage::kServerAuth));
    config.signer = tls::Config::software_signer(kp.seed);
    config.clock = &clock;
    config.rng = &locked_rng;
    controller = std::make_unique<Controller>(std::move(config), fabric);
    controller->trust_ca(ca.root_certificate());

    if (model == Model::kPooled) {
      runtime.listen_inmemory(net, "controller:8443",
                              controller->driver_factory());
    } else {
      net.serve("controller:8443", [this](net::StreamPtr stream) {
        controller->serve(std::move(stream));
      });
    }
  }

  net::StreamPtr connect_stream() {
    tls::Config cfg;
    cfg.truststore = &truststore;
    cfg.expected_server_name = "controller";
    cfg.clock = &clock;
    cfg.rng = &locked_rng;
    cfg.certificate = client_cert;
    cfg.signer = tls::Config::software_signer(client_seed);
    return tls::Session::connect(net.connect("controller:8443"), cfg);
  }

  http::Client connect() { return http::Client(connect_stream()); }

  std::size_t server_threads() {
    return model == Model::kPooled ? runtime.worker_count()
                                   : net.live_connection_threads();
  }
};

void BM_ServerLoad(benchmark::State& state) {
  const Model model =
      state.range(0) == 0 ? Model::kThreadPerConnection : Model::kPooled;
  LoadBed bed(model);

  // Fleet of keep-alive connections: handshake + one request each, then
  // idle. In the threaded model each one keeps a dedicated server thread
  // blocked in read(); in the pooled model they park in the readiness
  // source and cost nothing.
  std::vector<http::Client> idle;
  idle.reserve(kIdleConnections);
  for (int i = 0; i < kIdleConnections; ++i) {
    idle.push_back(bed.connect());
    if (idle.back().get(kPath).status != 200) {
      state.SkipWithError("idle connection setup failed");
      return;
    }
  }

  // Active fleet: each client thread owns kConnsPerClient established
  // connections and drives them as a pipelined batch — write a request on
  // every connection, then collect every response. That keeps
  // kActiveConnections requests outstanding (the keep-alive connection-pool
  // shape real REST clients use): the pooled model's workers find the queue
  // non-empty and never sleep, while the threaded model has all 64
  // per-connection server threads runnable and contending.
  struct Pipelined {
    net::StreamPtr stream;
    http::Connection conn;
    explicit Pipelined(net::StreamPtr s) : stream(std::move(s)), conn(*stream) {}
  };
  http::Request probe_request;
  probe_request.target = kPath;
  std::vector<std::vector<std::unique_ptr<Pipelined>>> active(kClientThreads);
  for (auto& pool : active) {
    pool.reserve(kConnsPerClient);
    for (int i = 0; i < kConnsPerClient; ++i) {
      pool.push_back(std::make_unique<Pipelined>(bed.connect_stream()));
      pool.back()->conn.write(probe_request);
      const auto response = pool.back()->conn.read_response();
      if (!response || response->status != 200) {
        state.SkipWithError("active connection setup failed");
        return;
      }
    }
  }

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int> inflight{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      auto& pool = active[static_cast<std::size_t>(t)];
      http::Request request;
      request.target = kPath;
      while (!stop.load(std::memory_order_acquire)) {
        if (!go.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        inflight.fetch_add(1, std::memory_order_acq_rel);
        try {
          for (auto& p : pool) p->conn.write(request);
          for (auto& p : pool) {
            const auto response = p->conn.read_response();
            if (response && response->status == 200) {
              requests.fetch_add(1, std::memory_order_relaxed);
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } catch (const Error&) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        inflight.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }

  const std::size_t steady_threads = process_threads();
  std::uint64_t total = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t before = requests.load(std::memory_order_relaxed);
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(kWindow);
    go.store(false, std::memory_order_release);
    while (inflight.load(std::memory_order_acquire) != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    total += requests.load(std::memory_order_relaxed) - before;
    state.SetIterationTime(std::chrono::duration<double>(elapsed).count());
  }

  stop.store(true, std::memory_order_release);
  for (auto& thread : clients) thread.join();

  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.SetLabel(to_string(model));
  state.counters["idle_conns"] = kIdleConnections;
  state.counters["active_conns"] = kActiveConnections;
  state.counters["server_threads"] = static_cast<double>(bed.server_threads());
  state.counters["process_threads"] = static_cast<double>(steady_threads);
  state.counters["errors"] = static_cast<double>(errors.load());
  if (model == Model::kPooled) {
    state.counters["workers"] = static_cast<double>(bed.runtime.worker_count());
    state.counters["active_parked"] =
        static_cast<double>(bed.runtime.active_connections());
  }

  // Mirror the headline numbers into the obs registry so the atexit
  // snapshot lands them in BENCH_pr4.json.
  obs::registry()
      .gauge("vnfsgx_bench_server_load_threads", {{"model", to_string(model)}},
             "Server-side threads at steady state, by server model")
      .set(static_cast<double>(bed.server_threads()));
  obs::registry()
      .gauge("vnfsgx_bench_server_load_requests",
             {{"model", to_string(model)}},
             "Closed-loop requests completed, by server model")
      .set(static_cast<double>(total));

  // Teardown: close every client end so threaded-model handlers observe
  // EOF and exit before the bed (runtime, network) is destroyed.
  for (auto& pool : active) {
    for (auto& p : pool) p->stream->close();
  }
  for (auto& conn : idle) conn.close();
  bed.runtime.shutdown();
  bed.net.join_all();
}
BENCHMARK(BM_ServerLoad)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

// ---------------------------------------------------------------------------
// PR-9 sweep: resident-channel scaling. Conns x shards over plain HTTP on
// the in-memory transport: a fleet of `conns` keep-alive connections is
// opened and parked (connection diet), then a fixed 64-connection active
// subset drives a closed-loop storm. The series isolates what sharding the
// dispatch plane buys as the *resident* population grows: per-request p50 /
// p99, requests/s, parked-fleet RSS per connection, steal and pool counters.
//
//   --conns sweep: 512 -> 2048 -> 10240, each at shards=1 and shards=4.
//
// On a single-core host the shards=4 series exercises correctness of the
// sharded path, not a speedup claim (see EXPERIMENTS.md); the worker pool
// is pinned to 4 in both series so the only variable is the shard count.
// ---------------------------------------------------------------------------

/// VmRSS in bytes, from /proc/self/status.
std::size_t process_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream field(line.substr(6));
      std::size_t kb = 0;
      field >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

/// Safety valve for weak CI hosts: VNFSGX_SWEEP_MAX_CONNS caps the fleet.
int sweep_conns_cap() {
  if (const char* env = std::getenv("VNFSGX_SWEEP_MAX_CONNS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
#if defined(VNFSGX_BENCH_SANITIZED)
  return 512;
#else
  return 1 << 20;
#endif
}

constexpr int kSweepThreads = 8;
constexpr int kSweepActive = 64;  // closed-loop subset, fixed across series
constexpr const char* kSweepAddress = "sweep:80";

void BM_ShardedConnSweep(benchmark::State& state) {
  const int conns =
      std::min(static_cast<int>(state.range(0)), sweep_conns_cap());
  const std::size_t shards = static_cast<std::size_t>(state.range(1));
  // Third arg toggles the connection diet: park=0 is the unparked RSS
  // baseline measured in the same run (same process, same allocator state).
  const bool park = state.range(2) != 0;
  set_log_level(LogLevel::kOff);

  http::Router router;
  router.add("GET", "/ping",
             [](const http::Request&, const http::RequestContext&) {
               return http::Response::text(200, "pong");
             });
  net::InMemoryNetwork net;
  net::ServerRuntime runtime({.workers = 4,
                              .shards = shards,
                              .burst_read_timeout = std::chrono::seconds(10),
                              .park_idle_sessions = park,
                              .name = "bench-sweep"});
  runtime.listen_inmemory(net, kSweepAddress,
                          http::make_http_driver_factory(router));

  // Resident fleet: open every connection, serve one request each, park.
  // parked_bytes is the runtime's own accounting of scratch released by
  // the diet — allocator-independent, unlike the RSS delta.
  auto& parked_bytes = obs::registry().counter(
      "vnfsgx_server_parked_bytes_total", {{"runtime", "bench-sweep"}},
      "Scratch bytes released by parking idle connections");
  const std::uint64_t parked_before = parked_bytes.value();
  const std::size_t rss_before = process_rss_bytes();
  std::vector<std::vector<http::Client>> fleet(kSweepThreads);
  {
    std::atomic<int> failures{0};
    std::vector<std::thread> openers;
    for (int t = 0; t < kSweepThreads; ++t) {
      const int share = conns / kSweepThreads + (t < conns % kSweepThreads);
      openers.emplace_back([&, t, share] {
        fleet[t].reserve(share);
        for (int i = 0; i < share; ++i) {
          fleet[t].emplace_back(net.connect(kSweepAddress));
          if (fleet[t].back().get("/ping").status != 200) ++failures;
        }
      });
    }
    for (auto& thread : openers) thread.join();
    if (failures.load() != 0) {
      state.SkipWithError("fleet setup failed");
      return;
    }
  }
  // Let the final bursts finish parking before the RSS sample. The
  // parked-bytes delta is read here too: later bursts park again on every
  // request, so reading after the storm would count churn, not the fleet.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::uint64_t fleet_parked_bytes =
      parked_bytes.value() - parked_before;
  const std::size_t rss_parked = process_rss_bytes();
  const double rss_per_conn =
      conns > 0 && rss_parked > rss_before
          ? static_cast<double>(rss_parked - rss_before) / conns
          : 0.0;

  // Closed-loop storm on a fixed-size active subset (the first connections
  // of each opener thread), with per-request latency sampling for p50/p99.
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int> inflight{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::vector<double>> samples(kSweepThreads);
  const int active_per_thread = kSweepActive / kSweepThreads;
  std::vector<std::thread> drivers;
  for (int t = 0; t < kSweepThreads; ++t) {
    drivers.emplace_back([&, t] {
      auto& mine = fleet[t];
      auto& lat = samples[t];
      lat.reserve(1 << 14);
      const int active =
          std::min(active_per_thread, static_cast<int>(mine.size()));
      while (!stop.load(std::memory_order_acquire)) {
        if (!go.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        inflight.fetch_add(1, std::memory_order_acq_rel);
        try {
          for (int i = 0; i < active; ++i) {
            const auto start = std::chrono::steady_clock::now();
            if (mine[i].get("/ping").status == 200) {
              requests.fetch_add(1, std::memory_order_relaxed);
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
            lat.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
          }
        } catch (const Error&) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        inflight.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }

  std::uint64_t total = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t before = requests.load(std::memory_order_relaxed);
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(kWindow);
    go.store(false, std::memory_order_release);
    while (inflight.load(std::memory_order_acquire) != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    total += requests.load(std::memory_order_relaxed) - before;
    state.SetIterationTime(std::chrono::duration<double>(elapsed).count());
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : drivers) thread.join();

  std::vector<double> merged;
  for (auto& lat : samples) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  const auto percentile = [&](double p) {
    if (merged.empty()) return 0.0;
    const auto nth =
        merged.begin() +
        static_cast<std::ptrdiff_t>(p * static_cast<double>(merged.size() - 1));
    std::nth_element(merged.begin(), nth, merged.end());
    return *nth;
  };
  const double p50 = percentile(0.50);
  const double p99 = percentile(0.99);

  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.SetLabel(std::string("conns=") + std::to_string(conns) +
                 "/shards=" + std::to_string(shards) +
                 (park ? "" : "/no-park"));
  state.counters["conns"] = static_cast<double>(conns);
  state.counters["shards"] = static_cast<double>(runtime.shard_count());
  state.counters["park"] = park ? 1 : 0;
  state.counters["rss_per_conn_bytes"] = rss_per_conn;
  state.counters["parked_bytes_per_conn"] =
      conns > 0 ? static_cast<double>(fleet_parked_bytes) / conns : 0.0;
  state.counters["p50_ms"] = p50;
  state.counters["p99_ms"] = p99;
  state.counters["errors"] = static_cast<double>(errors.load());
  state.counters["pooled_buffers"] =
      static_cast<double>(runtime.pooled_buffers());
  state.counters["steals"] = static_cast<double>(runtime.steal_count());

  const obs::Labels labels{{"conns", std::to_string(conns)},
                           {"shards", std::to_string(shards)},
                           {"park", park ? "1" : "0"}};
  obs::registry()
      .gauge("vnfsgx_bench_sweep_requests", labels,
             "Closed-loop requests completed, by resident-fleet size x shards")
      .set(static_cast<double>(total));
  obs::registry()
      .gauge("vnfsgx_bench_sweep_p99_us", labels,
             "p99 request latency (us), by resident-fleet size x shards")
      .set(static_cast<std::int64_t>(p99 * 1000.0));
  obs::registry()
      .gauge("vnfsgx_bench_sweep_rss_per_conn_bytes", labels,
             "Parked-fleet RSS per resident connection (bytes)")
      .set(rss_per_conn);

  for (auto& bucket : fleet) {
    for (auto& conn : bucket) conn.close();
  }
  runtime.shutdown();
  net.join_all();
}
// The no-park baseline runs FIRST: RSS deltas are only honest while the
// allocator is cold (later series partly reuse freed high-water pages, so
// their rss_per_conn_bytes underestimates — compare cold-to-cold across
// runs, or first-series-to-first-series; vnfsgx_server_parked_bytes_total
// gives the allocator-independent accounting of what parking releases).
BENCHMARK(BM_ShardedConnSweep)
    ->Args({10240, 1, 0})
    ->Args({512, 1, 1})
    ->Args({512, 4, 1})
    ->Args({2048, 1, 1})
    ->Args({2048, 4, 1})
    ->Args({10240, 1, 1})
    ->Args({10240, 4, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

}  // namespace

BENCHMARK_MAIN();
