// SERVER-LOAD: the PR-4 scalability experiment. A controller in trusted
// HTTPS mode (§3's strongest REST mode) serves a fleet of keep-alive TLS
// connections — most of them idle — while a smaller set of active clients
// drives a closed-loop request storm. Two server models run the identical
// workload over the in-memory transport (zero kernel noise, so the series
// isolates the server's own dispatch machinery):
//
//   * threaded — the seed model: one blocking thread per accepted
//     connection, so 512 idle + 64 active conns pin ~576 server threads.
//   * pooled   — the ServerRuntime: idle connections park in the readiness
//     source for free; every burst runs on a bounded worker pool
//     (max(2, 2x hardware_concurrency)).
//
// Counters per series: requests/s (items_per_second), server_threads,
// process_threads (from /proc/self/status), workers, idle/active conns.
// The obs registry snapshot (metrics_exit) additionally captures the
// runtime's queue-depth / queue-wait / burst-duration series for
// BENCH_pr4.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/sim_clock.h"
#include "controller/controller.h"
#include "crypto/random.h"
#include "http/client.h"
#include "net/inmemory.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "pki/ca.h"
#include "tls/session.h"

namespace {

using namespace vnfsgx;
using controller::Controller;
using controller::ControllerConfig;
using controller::SecurityMode;

// Sanitizer builds run the same shape at reduced scale: the point there is
// correctness under TSan/ASan, not throughput.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define VNFSGX_BENCH_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define VNFSGX_BENCH_SANITIZED 1
#endif

#if defined(VNFSGX_BENCH_SANITIZED)
constexpr int kIdleConnections = 64;
constexpr int kClientThreads = 4;
constexpr int kConnsPerClient = 2;
#else
constexpr int kIdleConnections = 512;
constexpr int kClientThreads = 16;
constexpr int kConnsPerClient = 4;  // 64 active connections total
#endif
constexpr int kActiveConnections = kClientThreads * kConnsPerClient;

constexpr auto kWindow = std::chrono::milliseconds(200);
constexpr const char* kPath = "/wm/core/controller/summary/json";

enum class Model { kThreadPerConnection, kPooled };

const char* to_string(Model model) {
  return model == Model::kPooled ? "pooled" : "threaded";
}

/// DeterministicRandom is not thread-safe; concurrent TLS handshakes on
/// both ends share a crypto::LockedRandom view of it.
using crypto::LockedRandom;

/// Total threads in this process, from /proc/self/status. Counts client
/// threads too, but those are identical across models, so the delta
/// between series is the server-side thread bill.
std::size_t process_threads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      std::istringstream field(line.substr(8));
      std::size_t n = 0;
      field >> n;
      return n;
    }
  }
  return 0;
}

struct LoadBed {
  crypto::DeterministicRandom rng{2026};
  LockedRandom locked_rng{rng};
  SimClock clock{1'700'000'000};
  pki::CertificateAuthority ca{pki::DistinguishedName{"vm-ca", "vnfsgx"}, rng,
                               clock};
  pki::TrustStore truststore;
  dataplane::Fabric fabric;
  net::InMemoryNetwork net;
  net::ServerRuntime runtime{{.workers = 0,
                              .burst_read_timeout = std::chrono::seconds(10),
                              .name = "bench-load"}};
  std::unique_ptr<Controller> controller;
  pki::Certificate client_cert;
  crypto::Ed25519Seed client_seed{};
  Model model;

  explicit LoadBed(Model m) : model(m) {
    set_log_level(LogLevel::kOff);
    fabric.add_switch(1);
    truststore.add_root(ca.root_certificate());
    const auto client_kp = crypto::ed25519_generate(rng);
    client_cert =
        ca.issue({"vnf-client", ""}, client_kp.public_key,
                 static_cast<std::uint8_t>(pki::KeyUsage::kClientAuth));
    client_seed = client_kp.seed;

    ControllerConfig config;
    config.mode = SecurityMode::kTrustedHttps;
    const auto kp = crypto::ed25519_generate(rng);
    config.certificate =
        ca.issue({"controller", ""}, kp.public_key,
                 static_cast<std::uint8_t>(pki::KeyUsage::kServerAuth));
    config.signer = tls::Config::software_signer(kp.seed);
    config.clock = &clock;
    config.rng = &locked_rng;
    controller = std::make_unique<Controller>(std::move(config), fabric);
    controller->trust_ca(ca.root_certificate());

    if (model == Model::kPooled) {
      runtime.listen_inmemory(net, "controller:8443",
                              controller->driver_factory());
    } else {
      net.serve("controller:8443", [this](net::StreamPtr stream) {
        controller->serve(std::move(stream));
      });
    }
  }

  net::StreamPtr connect_stream() {
    tls::Config cfg;
    cfg.truststore = &truststore;
    cfg.expected_server_name = "controller";
    cfg.clock = &clock;
    cfg.rng = &locked_rng;
    cfg.certificate = client_cert;
    cfg.signer = tls::Config::software_signer(client_seed);
    return tls::Session::connect(net.connect("controller:8443"), cfg);
  }

  http::Client connect() { return http::Client(connect_stream()); }

  std::size_t server_threads() {
    return model == Model::kPooled ? runtime.worker_count()
                                   : net.live_connection_threads();
  }
};

void BM_ServerLoad(benchmark::State& state) {
  const Model model =
      state.range(0) == 0 ? Model::kThreadPerConnection : Model::kPooled;
  LoadBed bed(model);

  // Fleet of keep-alive connections: handshake + one request each, then
  // idle. In the threaded model each one keeps a dedicated server thread
  // blocked in read(); in the pooled model they park in the readiness
  // source and cost nothing.
  std::vector<http::Client> idle;
  idle.reserve(kIdleConnections);
  for (int i = 0; i < kIdleConnections; ++i) {
    idle.push_back(bed.connect());
    if (idle.back().get(kPath).status != 200) {
      state.SkipWithError("idle connection setup failed");
      return;
    }
  }

  // Active fleet: each client thread owns kConnsPerClient established
  // connections and drives them as a pipelined batch — write a request on
  // every connection, then collect every response. That keeps
  // kActiveConnections requests outstanding (the keep-alive connection-pool
  // shape real REST clients use): the pooled model's workers find the queue
  // non-empty and never sleep, while the threaded model has all 64
  // per-connection server threads runnable and contending.
  struct Pipelined {
    net::StreamPtr stream;
    http::Connection conn;
    explicit Pipelined(net::StreamPtr s) : stream(std::move(s)), conn(*stream) {}
  };
  http::Request probe_request;
  probe_request.target = kPath;
  std::vector<std::vector<std::unique_ptr<Pipelined>>> active(kClientThreads);
  for (auto& pool : active) {
    pool.reserve(kConnsPerClient);
    for (int i = 0; i < kConnsPerClient; ++i) {
      pool.push_back(std::make_unique<Pipelined>(bed.connect_stream()));
      pool.back()->conn.write(probe_request);
      const auto response = pool.back()->conn.read_response();
      if (!response || response->status != 200) {
        state.SkipWithError("active connection setup failed");
        return;
      }
    }
  }

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int> inflight{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      auto& pool = active[static_cast<std::size_t>(t)];
      http::Request request;
      request.target = kPath;
      while (!stop.load(std::memory_order_acquire)) {
        if (!go.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        inflight.fetch_add(1, std::memory_order_acq_rel);
        try {
          for (auto& p : pool) p->conn.write(request);
          for (auto& p : pool) {
            const auto response = p->conn.read_response();
            if (response && response->status == 200) {
              requests.fetch_add(1, std::memory_order_relaxed);
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } catch (const Error&) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        inflight.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }

  const std::size_t steady_threads = process_threads();
  std::uint64_t total = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t before = requests.load(std::memory_order_relaxed);
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(kWindow);
    go.store(false, std::memory_order_release);
    while (inflight.load(std::memory_order_acquire) != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    total += requests.load(std::memory_order_relaxed) - before;
    state.SetIterationTime(std::chrono::duration<double>(elapsed).count());
  }

  stop.store(true, std::memory_order_release);
  for (auto& thread : clients) thread.join();

  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.SetLabel(to_string(model));
  state.counters["idle_conns"] = kIdleConnections;
  state.counters["active_conns"] = kActiveConnections;
  state.counters["server_threads"] = static_cast<double>(bed.server_threads());
  state.counters["process_threads"] = static_cast<double>(steady_threads);
  state.counters["errors"] = static_cast<double>(errors.load());
  if (model == Model::kPooled) {
    state.counters["workers"] = static_cast<double>(bed.runtime.worker_count());
    state.counters["active_parked"] =
        static_cast<double>(bed.runtime.active_connections());
  }

  // Mirror the headline numbers into the obs registry so the atexit
  // snapshot lands them in BENCH_pr4.json.
  obs::registry()
      .gauge("vnfsgx_bench_server_load_threads", {{"model", to_string(model)}},
             "Server-side threads at steady state, by server model")
      .set(static_cast<double>(bed.server_threads()));
  obs::registry()
      .gauge("vnfsgx_bench_server_load_requests",
             {{"model", to_string(model)}},
             "Closed-loop requests completed, by server model")
      .set(static_cast<double>(total));

  // Teardown: close every client end so threaded-model handlers observe
  // EOF and exit before the bed (runtime, network) is destroyed.
  for (auto& pool : active) {
    for (auto& p : pool) p->stream->close();
  }
  for (auto& conn : idle) conn.close();
  bed.runtime.shutdown();
  bed.net.join_all();
}
BENCHMARK(BM_ServerLoad)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

}  // namespace

BENCHMARK_MAIN();
