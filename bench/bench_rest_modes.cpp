// S3-MODES: the paper's §3 comparison — Floodlight's three REST security
// modes (plain HTTP, HTTPS, trusted HTTPS with client authentication).
//
// Two series per mode:
//   * cold: connection setup + one GET (handshake cost dominates TLS modes)
//   * warm: GET on an established keep-alive connection (crypto per-record
//     cost only)
// plus a POST (flow push) series on warm connections.
#include <benchmark/benchmark.h>

#include <thread>

#include "testbed.h"

namespace {

using namespace vnfsgx;
using namespace vnfsgx::examples;

struct ModeBed {
  Testbed bed;
  dataplane::Fabric fabric;
  controller::Controller* ctl = nullptr;
  pki::TrustStore trust;
  pki::Certificate client_cert;
  crypto::Ed25519Seed client_seed;
  controller::SecurityMode mode;

  explicit ModeBed(controller::SecurityMode m) : mode(m) {
    set_log_level(LogLevel::kOff);
    fabric.add_switch(1);
    ctl = &bed.start_controller(fabric, m);
    trust.add_root(bed.vm.ca_certificate());
    const auto kp = crypto::ed25519_generate(bed.rng);
    client_cert = bed.vm.ca().issue(
        {"vnf-1", ""}, kp.public_key,
        static_cast<std::uint8_t>(pki::KeyUsage::kClientAuth), 365 * 24 * 3600);
    client_seed = kp.seed;
  }

  net::StreamPtr open_stream() {
    auto raw = bed.net.connect("controller:8443");
    if (mode == controller::SecurityMode::kHttp) return raw;
    tls::Config cfg;
    cfg.truststore = &trust;
    cfg.expected_server_name = "controller";
    cfg.clock = &bed.clock;
    cfg.rng = &bed.rng;
    if (mode == controller::SecurityMode::kTrustedHttps) {
      cfg.certificate = client_cert;
      cfg.signer = tls::Config::software_signer(client_seed);
    }
    return tls::Session::connect(std::move(raw), cfg);
  }
};

controller::SecurityMode mode_from_arg(std::int64_t arg) {
  switch (arg) {
    case 0:
      return controller::SecurityMode::kHttp;
    case 1:
      return controller::SecurityMode::kHttps;
    default:
      return controller::SecurityMode::kTrustedHttps;
  }
}

void BM_RestGetColdConnection(benchmark::State& state) {
  ModeBed m(mode_from_arg(state.range(0)));
  for (auto _ : state) {
    http::Client client(m.open_stream());
    const auto res = client.get("/wm/core/controller/summary/json");
    if (res.status != 200) state.SkipWithError("bad status");
    client.close();
  }
  state.SetLabel(controller::to_string(m.mode));
}
BENCHMARK(BM_RestGetColdConnection)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_RestGetColdConnectionColdCache(benchmark::State& state) {
  // Ablation for the certificate-validation cache: the same trusted-HTTPS
  // cold connection as BM_RestGetColdConnection/2, but both validation
  // caches (controller's and client's) are flushed before every handshake,
  // so each side pays full chain validation including the Ed25519
  // signature check. The delta against BM_RestGetColdConnection/2 is what
  // a warm cache saves a returning (still-valid, unrevoked) client.
  ModeBed m(controller::SecurityMode::kTrustedHttps);
  for (auto _ : state) {
    m.ctl->truststore().flush_validation_cache();
    m.trust.flush_validation_cache();
    http::Client client(m.open_stream());
    const auto res = client.get("/wm/core/controller/summary/json");
    if (res.status != 200) state.SkipWithError("bad status");
    client.close();
  }
  state.SetLabel("TRUSTED_HTTPS cold-cache");
}
BENCHMARK(BM_RestGetColdConnectionColdCache)->Unit(benchmark::kMicrosecond);

void BM_RestGetWarmConnection(benchmark::State& state) {
  ModeBed m(mode_from_arg(state.range(0)));
  http::Client client(m.open_stream());
  for (auto _ : state) {
    const auto res = client.get("/wm/core/controller/summary/json");
    if (res.status != 200) state.SkipWithError("bad status");
    benchmark::DoNotOptimize(res);
  }
  client.close();
  state.SetLabel(controller::to_string(m.mode));
}
BENCHMARK(BM_RestGetWarmConnection)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_RestFlowPushWarm(benchmark::State& state) {
  ModeBed m(mode_from_arg(state.range(0)));
  http::Client client(m.open_stream());
  int i = 0;
  for (auto _ : state) {
    const auto res = client.post(
        "/wm/staticflowpusher/json",
        R"({"name":"f)" + std::to_string(i++ % 64) +
            R"(","switch":1,"priority":100,"tcp_dst":443,"actions":"drop"})");
    if (res.status != 200) state.SkipWithError("bad status");
  }
  client.close();
  state.SetLabel(controller::to_string(m.mode));
}
BENCHMARK(BM_RestFlowPushWarm)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

namespace {

using namespace vnfsgx;
using namespace vnfsgx::examples;

void BM_RestGetColdWithResumption(benchmark::State& state) {
  // Trusted HTTPS with session tickets: each "cold" connection resumes the
  // first session's ticket, amortizing the mutual-auth handshake. Compare
  // against BM_RestGetColdConnection/2.
  ModeBed m(controller::SecurityMode::kTrustedHttps);
  // Rebuild the controller with tickets enabled.
  controller::ControllerConfig cfg;
  cfg.mode = controller::SecurityMode::kTrustedHttps;
  const auto kp = crypto::ed25519_generate(m.bed.rng);
  cfg.certificate = m.bed.vm.ca().issue(
      {"controller2", ""}, kp.public_key,
      static_cast<std::uint8_t>(pki::KeyUsage::kServerAuth), 365 * 24 * 3600);
  cfg.signer = tls::Config::software_signer(kp.seed);
  cfg.enable_session_tickets = true;
  cfg.clock = &m.bed.clock;
  cfg.rng = &m.bed.rng;
  static dataplane::Fabric fabric2;
  controller::Controller ctl(cfg, fabric2);
  ctl.trust_ca(m.bed.vm.ca_certificate());
  m.bed.runtime.listen_inmemory(m.bed.net, "controller2:8443",
                                ctl.driver_factory());

  auto tls_cfg = [&](const tls::SessionTicket* ticket) {
    tls::Config c;
    c.truststore = &m.trust;
    c.expected_server_name = "controller2";
    c.clock = &m.bed.clock;
    c.rng = &m.bed.rng;
    c.certificate = m.client_cert;
    c.signer = tls::Config::software_signer(m.client_seed);
    c.resumption = ticket;
    return c;
  };

  // Full handshake to harvest the ticket.
  tls::SessionTicket ticket;
  {
    auto session = tls::Session::connect(m.bed.net.connect("controller2:8443"),
                                         tls_cfg(nullptr));
    http::Client client(std::move(session));
    client.get("/wm/core/controller/summary/json");
    ticket = *static_cast<tls::Session*>(&client.stream())->session_ticket();
    client.close();
  }

  for (auto _ : state) {
    auto session = tls::Session::connect(m.bed.net.connect("controller2:8443"),
                                         tls_cfg(&ticket));
    if (!session->resumed()) state.SkipWithError("did not resume");
    http::Client client(std::move(session));
    const auto res = client.get("/wm/core/controller/summary/json");
    if (res.status != 200) state.SkipWithError("bad status");
    client.close();
  }
  state.SetLabel("TRUSTED_HTTPS+resumption");
}
BENCHMARK(BM_RestGetColdWithResumption)->Unit(benchmark::kMicrosecond);

}  // namespace
