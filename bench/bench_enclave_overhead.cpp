// S2-ENCL: "An investigation of alternative implementations (and their
// performance impact) is left for future work" — the paper keeps the whole
// TLS security context inside the enclave. This bench quantifies that
// choice against the alternative (TLS terminated outside, key via enclave
// signer only):
//
//   * in-enclave TLS: every send/recv is an ECALL (plaintext crosses, keys
//     never do) — per-record boundary crossings dominate small messages;
//   * outside TLS: handshake uses the enclave only for CertificateVerify
//     (one ECALL), then records are handled by untrusted code.
//
// Also sweeps the synthetic ECALL crossing cost to show how the gap scales
// with hardware transition latency (an ablation over the simulator's one
// tunable).
#include <benchmark/benchmark.h>

#include <thread>

#include "testbed.h"

namespace {

using namespace vnfsgx;
using namespace vnfsgx::examples;

/// Echo server speaking mutual TLS.
std::thread start_echo_server(net::StreamPtr transport, tls::Config config) {
  return std::thread([transport = std::move(transport),
                      config]() mutable {
    try {
      auto session = tls::Session::accept(std::move(transport), config);
      while (true) {
        std::uint8_t len_buf[4];
        session->read_exact(std::span<std::uint8_t>(len_buf, 4));
        const std::uint32_t n = read_u32(ByteView(len_buf, 4), 0);
        const Bytes payload = session->read_exact(n);
        Bytes reply;
        append_u32(reply, n);
        append(reply, payload);
        session->write(reply);
      }
    } catch (const Error&) {
    }
  });
}

struct Endpoints {
  crypto::DeterministicRandom rng{23};
  SimClock clock{1'700'000'000};
  pki::CertificateAuthority ca{{"vm-ca", ""}, rng, clock};
  pki::TrustStore trust;
  pki::Certificate server_cert;
  crypto::Ed25519Seed server_seed;

  Endpoints() {
    trust.add_root(ca.root_certificate());
    const auto kp = crypto::ed25519_generate(rng);
    server_cert = ca.issue({"controller", ""}, kp.public_key,
                           static_cast<std::uint8_t>(pki::KeyUsage::kServerAuth),
                           365 * 24 * 3600);
    server_seed = kp.seed;
  }

  tls::Config server_config() {
    tls::Config c;
    c.certificate = server_cert;
    c.signer = tls::Config::software_signer(server_seed);
    c.require_client_certificate = true;
    c.truststore = &trust;
    c.clock = &clock;
    c.rng = &rng;
    return c;
  }
};

/// Build a credential enclave on a platform with the given crossing cost,
/// provisioned with a certificate from `ep`'s CA.
struct EnclaveClient {
  std::unique_ptr<sgx::SgxPlatform> platform;
  std::shared_ptr<sgx::Enclave> enclave;
  std::unique_ptr<vnf::CredentialClient> client;
  crypto::Ed25519PublicKey public_key{};

  EnclaveClient(Endpoints& ep, std::chrono::nanoseconds crossing_cost) {
    sgx::PlatformOptions options;
    options.crossing_cost = crossing_cost;
    platform = std::make_unique<sgx::SgxPlatform>(ep.rng, "bench", options);
    const auto vendor = crypto::ed25519_generate(ep.rng);
    const sgx::EnclaveImage image = vnf::credential_enclave_image();
    const sgx::SigStruct sig = sgx::sign_enclave(
        vendor.seed, sgx::measure_image(image.code, image.attributes), 10, 1);
    enclave = platform->load_enclave(image, sig);
    client = std::make_unique<vnf::CredentialClient>(enclave);
    public_key = client->generate_key();
    client->install_certificate(ep.ca.issue(
        {"vnf-1", ""}, public_key,
        static_cast<std::uint8_t>(pki::KeyUsage::kClientAuth), 365 * 24 * 3600));
  }
};

void run_echo(benchmark::State& state, Endpoints& ep, bool in_enclave,
              std::chrono::nanoseconds crossing_cost) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  EnclaveClient ec(ep, crossing_cost);

  auto [client_end, server_end] = net::make_pipe();
  std::thread server = start_echo_server(std::move(server_end),
                                         ep.server_config());

  crypto::DeterministicRandom rng(7);
  const Bytes payload = rng.bytes(size);
  std::uint64_t crossings_before = 0;

  if (in_enclave) {
    // Whole TLS context inside the enclave; I/O via the OCALL bridge.
    ec.client->tls_open(std::move(client_end), ep.clock.now(), "controller",
                        ep.ca.root_certificate());
    crossings_before = ec.platform->total_crossings();
    for (auto _ : state) {
      Bytes message;
      append_u32(message, static_cast<std::uint32_t>(size));
      append(message, payload);
      ec.client->tls_send(message);
      vnf::EnclaveTlsStream tunnel(*ec.client);
      std::uint8_t len_buf[4];
      tunnel.read_exact(std::span<std::uint8_t>(len_buf, 4));
      const Bytes echoed = tunnel.read_exact(read_u32(ByteView(len_buf, 4), 0));
      benchmark::DoNotOptimize(echoed);
    }
    ec.client->tls_close();
  } else {
    // TLS outside; the enclave only signs CertificateVerify (1 ECALL).
    tls::Config cfg;
    cfg.certificate = ec.client->certificate();
    cfg.signer = [&ec](ByteView data) { return ec.client->sign(data); };
    cfg.truststore = &ep.trust;
    cfg.expected_server_name = "controller";
    cfg.clock = &ep.clock;
    cfg.rng = &ep.rng;
    auto session = tls::Session::connect(std::move(client_end), cfg);
    crossings_before = ec.platform->total_crossings();
    for (auto _ : state) {
      Bytes message;
      append_u32(message, static_cast<std::uint32_t>(size));
      append(message, payload);
      session->write(message);
      std::uint8_t len_buf[4];
      session->read_exact(std::span<std::uint8_t>(len_buf, 4));
      const Bytes echoed =
          session->read_exact(read_u32(ByteView(len_buf, 4), 0));
      benchmark::DoNotOptimize(echoed);
    }
    session->close();
  }
  server.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size) * 2);
  state.counters["ecalls_per_op"] =
      static_cast<double>(ec.platform->total_crossings() - crossings_before) /
      static_cast<double>(state.iterations());
}

void BM_TlsInEnclave(benchmark::State& state) {
  Endpoints ep;
  run_echo(state, ep, /*in_enclave=*/true, std::chrono::microseconds(2));
  state.SetLabel("in-enclave TLS (2us crossings)");
}
BENCHMARK(BM_TlsInEnclave)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_TlsOutsideEnclave(benchmark::State& state) {
  Endpoints ep;
  run_echo(state, ep, /*in_enclave=*/false, std::chrono::microseconds(2));
  state.SetLabel("outside TLS, enclave-held key");
}
BENCHMARK(BM_TlsOutsideEnclave)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_TlsInEnclaveCrossingSweep(benchmark::State& state) {
  // Ablation: how the in-enclave penalty scales with transition cost
  // (0 us = idealized hardware, 8 us = pessimistic EPC-pressure regime).
  Endpoints ep;
  const auto cost = std::chrono::microseconds(state.range(1));
  const std::int64_t size = state.range(0);
  benchmark::State& s = state;
  (void)size;
  run_echo(s, ep, /*in_enclave=*/true, cost);
  state.SetLabel("crossing=" + std::to_string(state.range(1)) + "us");
}
BENCHMARK(BM_TlsInEnclaveCrossingSweep)
    ->Args({1024, 0})
    ->Args({1024, 2})
    ->Args({1024, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_EcallNoop(benchmark::State& state) {
  // The raw boundary-crossing cost at the configured setting.
  Endpoints ep;
  EnclaveClient ec(ep, std::chrono::microseconds(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec.client->generate_key());  // cached: ~no work
  }
  state.SetLabel("crossing=" + std::to_string(state.range(0)) + "us");
}
BENCHMARK(BM_EcallNoop)->Arg(0)->Arg(2)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace
