// F1-S5: credential generation + signing + provisioning into the enclave.
//
// Measures the full step 5 (CA issues a certificate for the enclave-held
// key and provisions it over the agent channel), its components (keypair
// generation inside the enclave, certificate signing), and batch
// throughput for fleets of VNFs.
#include <benchmark/benchmark.h>

#include "testbed.h"

namespace {

using namespace vnfsgx;
using namespace vnfsgx::examples;

struct ProvisioningBed {
  Testbed bed;
  SimHost* host;
  std::vector<std::unique_ptr<vnf::Vnf>> vnfs;

  explicit ProvisioningBed(int vnf_count) {
    set_log_level(LogLevel::kOff);
    host = &bed.add_host("host-1");
    for (int i = 0; i < vnf_count; ++i) {
      vnfs.push_back(std::make_unique<vnf::Vnf>(
          "vnf-" + std::to_string(i), *host->machine, bed.vendor.seed,
          std::make_unique<vnf::MonitorFunction>()));
      host->agent->register_vnf(*vnfs.back());
    }
    bed.learn_golden(*host);
    auto channel = bed.agent_channel(*host);
    bed.vm.attest_host(*channel);
    for (int i = 0; i < vnf_count; ++i) {
      bed.vm.attest_vnf(*channel, "vnf-" + std::to_string(i));
    }
  }
};

void BM_EnrollSingleVnf(benchmark::State& state) {
  ProvisioningBed p(1);
  auto channel = p.bed.agent_channel(*p.host);
  for (auto _ : state) {
    const auto cert = p.bed.vm.enroll_vnf(*channel, "vnf-0", "vnf-0");
    if (!cert) state.SkipWithError("enrollment failed");
    benchmark::DoNotOptimize(cert);
  }
  state.counters["certs_issued"] =
      static_cast<double>(p.bed.vm.credentials_issued());
}
BENCHMARK(BM_EnrollSingleVnf)->Unit(benchmark::kMicrosecond);

void BM_EnrollBatch(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  ProvisioningBed p(count);
  auto channel = p.bed.agent_channel(*p.host);
  for (auto _ : state) {
    for (int i = 0; i < count; ++i) {
      const auto cert =
          p.bed.vm.enroll_vnf(*channel, "vnf-" + std::to_string(i),
                              "vnf-" + std::to_string(i));
      if (!cert) state.SkipWithError("enrollment failed");
    }
  }
  state.counters["vnfs"] = count;
  state.counters["enrolls_per_sec"] = benchmark::Counter(
      static_cast<double>(count) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EnrollBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_InEnclaveKeyGeneration(benchmark::State& state) {
  // The enclave-side component: fresh Ed25519 keypair behind one ECALL.
  set_log_level(LogLevel::kOff);
  Testbed bed;
  SimHost& host = bed.add_host("host-1");
  const sgx::EnclaveImage image = vnf::credential_enclave_image();
  const sgx::SigStruct sig = sgx::sign_enclave(
      bed.vendor.seed, sgx::measure_image(image.code, image.attributes), 10, 1);

  for (auto _ : state) {
    auto enclave = host.machine->sgx().load_enclave(image, sig);
    vnf::CredentialClient client(enclave);
    benchmark::DoNotOptimize(client.generate_key());
    enclave->destroy();
  }
}
BENCHMARK(BM_InEnclaveKeyGeneration)->Unit(benchmark::kMicrosecond);

void BM_CertificateIssue(benchmark::State& state) {
  // The CA-side component: sign one client certificate.
  crypto::DeterministicRandom rng(3);
  SimClock clock(1'700'000'000);
  pki::CertificateAuthority ca({"vm-ca", ""}, rng, clock);
  const auto subject = crypto::ed25519_generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ca.issue(
        {"vnf", ""}, subject.public_key,
        static_cast<std::uint8_t>(pki::KeyUsage::kClientAuth)));
  }
}
BENCHMARK(BM_CertificateIssue)->Unit(benchmark::kMicrosecond);

void BM_SealRestoreState(benchmark::State& state) {
  // Persistence path: seal + restore of the credential state.
  ProvisioningBed p(1);
  auto channel = p.bed.agent_channel(*p.host);
  p.bed.vm.enroll_vnf(*channel, "vnf-0", "vnf-0");
  auto& credentials = p.vnfs[0]->credentials();
  for (auto _ : state) {
    const Bytes sealed = credentials.seal_state();
    credentials.restore_state(sealed);
    benchmark::DoNotOptimize(sealed);
  }
}
BENCHMARK(BM_SealRestoreState)->Unit(benchmark::kMicrosecond);

void BM_Revocation(benchmark::State& state) {
  // CRL re-signing as the revoked set grows.
  crypto::DeterministicRandom rng(4);
  SimClock clock(1'700'000'000);
  pki::CertificateAuthority ca({"vm-ca", ""}, rng, clock);
  for (int i = 0; i < state.range(0); ++i) {
    ca.revoke(static_cast<std::uint64_t>(i) + 100);
  }
  std::uint64_t serial = 100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ca.revoke(serial++));
  }
  state.counters["crl_size"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Revocation)->Arg(0)->Arg(100)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_RevocationOutOfOrder(benchmark::State& state) {
  // Worst case for the CA's incrementally-maintained serial block: each
  // revocation lands mid-sequence, forcing a full re-encode before the
  // re-sign (in-order revocations — BM_Revocation — append instead).
  crypto::DeterministicRandom rng(4);
  SimClock clock(1'700'000'000);
  pki::CertificateAuthority ca({"vm-ca", ""}, rng, clock);
  for (int i = 0; i < state.range(0); ++i) {
    ca.revoke(static_cast<std::uint64_t>(i) * 2 + 100);
  }
  std::uint64_t odd = 101;  // falls between existing even serials
  for (auto _ : state) {
    benchmark::DoNotOptimize(ca.revoke(odd));
    odd += 2;
  }
  state.counters["crl_size"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RevocationOutOfOrder)
    ->Arg(100)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_CrlLookup(benchmark::State& state) {
  // Verifier-side revocation check against a CRL of crl_size serials. The
  // sorted-serial index makes this a binary search; every trusted-HTTPS
  // handshake and every cached certificate verdict replays this check.
  crypto::DeterministicRandom rng(5);
  SimClock clock(1'700'000'000);
  pki::CertificateAuthority ca({"vm-ca", ""}, rng, clock);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) ca.revoke(i * 2 + 100);
  const pki::RevocationList crl = ca.current_crl();
  std::uint64_t probe = 100;
  for (auto _ : state) {
    // Alternate hits (even) and misses (odd) across the serial range.
    benchmark::DoNotOptimize(crl.is_revoked(probe));
    probe = (probe + 1) % (2 * n + 200);
  }
  state.counters["crl_size"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CrlLookup)
    ->Arg(100)
    ->Arg(10000)
    ->Unit(benchmark::kNanosecond);

}  // namespace
