// SUB-CRYPTO: throughput/latency of the from-scratch primitives every other
// experiment sits on. Calibrates the absolute numbers reported by the
// workflow benches (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "crypto/ed25519.h"
#include "crypto/gcm.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/random.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"

namespace vnfsgx::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  DeterministicRandom rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  DeterministicRandom rng(2);
  const Bytes key = rng.bytes(32);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AesGcmSeal(benchmark::State& state) {
  DeterministicRandom rng(3);
  const AesGcm gcm(rng.bytes(16));
  const Bytes nonce = rng.bytes(12);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.seal(nonce, data, {}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AesGcmOpen(benchmark::State& state) {
  DeterministicRandom rng(3);
  const AesGcm gcm(rng.bytes(16));
  const Bytes nonce = rng.bytes(12);
  const Bytes sealed =
      gcm.seal(nonce, rng.bytes(static_cast<std::size_t>(state.range(0))), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.open(nonce, sealed, {}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesGcmOpen)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AesGcmSealInPlace(benchmark::State& state) {
  // The TLS record path: no allocation, ciphertext over the plaintext.
  DeterministicRandom rng(3);
  const AesGcm gcm(rng.bytes(16));
  const Bytes nonce = rng.bytes(12);
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  Bytes buf = rng.bytes(len + kGcmTagSize);
  for (auto _ : state) {
    gcm.seal_in_place(nonce, buf.data(), len, {}, buf.data() + len);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesGcmSealInPlace)->Arg(64)->Arg(1024)->Arg(16384);

void BM_X25519SharedSecret(benchmark::State& state) {
  DeterministicRandom rng(4);
  const auto a = x25519_generate(rng);
  const auto b = x25519_generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x25519_shared(a.private_key, b.public_key));
  }
}
BENCHMARK(BM_X25519SharedSecret);

void BM_Ed25519KeyGen(benchmark::State& state) {
  DeterministicRandom rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_generate(rng));
  }
}
BENCHMARK(BM_Ed25519KeyGen);

void BM_Ed25519Sign(benchmark::State& state) {
  DeterministicRandom rng(6);
  const auto kp = ed25519_generate(rng);
  const Bytes msg = rng.bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_sign(kp.seed, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  DeterministicRandom rng(7);
  const auto kp = ed25519_generate(rng);
  const Bytes msg = rng.bytes(256);
  const auto sig = ed25519_sign(kp.seed, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ed25519_verify(kp.public_key, msg, ByteView(sig.data(), sig.size())));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_HkdfExpandLabel(benchmark::State& state) {
  DeterministicRandom rng(8);
  const Bytes secret = rng.bytes(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hkdf_expand_label(secret, "key", {}, 32));
  }
}
BENCHMARK(BM_HkdfExpandLabel);

}  // namespace
}  // namespace vnfsgx::crypto
