// lintcore: the shared lexer and source model behind the repo's AST-lite
// static analyzers (tools/secretlint, tools/boundarycheck).
//
// Both tools trade soundness for zero build-time dependencies: they work on
// comment- and string-stripped source lines plus a handful of structural
// helpers (function segmentation at column-0 closing braces, balanced-paren
// extraction, identifier scans). Everything that is about *reading C++
// text* lives here; everything that is about *policy* stays in the tools.
//
// The stripper understands line and block comments, ordinary string and
// char literals with escapes, raw string literals (R"delim(...)delim",
// including encoding prefixes and multi-line bodies), and digit separators
// (1'000'000 does not open a char literal). Digraphs (<: :> <% %>) pass
// through untouched — they never alter comment/string state, which is all
// the analyzers care about.
#pragma once

#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace lintcore {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
  // Advisory findings are reported but do not fail a tree run (used for
  // boundarycheck's seq_cst-where-acquire/release-suffices B3 nits).
  bool advisory = false;
};

/// One suppression comment parsed from the raw source. A mark with no rule
/// set applies to every rule of the owning tool; a mark without a reason is
/// itself a policy violation the tool must report.
struct Mark {
  bool present = false;
  bool has_reason = false;
  std::set<std::string> rules;  // empty = all rules
};

/// Suppression comment grammar, parameterized by tag:
///   // <tag>: reason                      (all rules)
///   // <tag>(R1,R2): reason               (listed rules only)
///   // <tag>-begin[(rules)]: reason ... // <tag>-end   (region form)
struct MarkSyntax {
  std::string tag;  // e.g. "ct-ok", "bc-ok"
};

struct SourceFile {
  std::string path;    // repo-relative, e.g. src/sgx/hostcall.cpp
  std::string module;  // first directory under src/, e.g. sgx
  std::vector<std::string> raw;   // original lines (for directives/marks)
  std::vector<std::string> code;  // comment- and string-stripped lines
  std::vector<Mark> marks;        // per-line suppression state
  std::optional<std::size_t> unclosed_block;  // -begin with no -end
};

/// Strips // and /* */ comments plus string/char literal *contents* so rule
/// regexes never match words inside comments or quoted text. Keeps line
/// structure (one output line per input line). Handles raw strings and
/// numeric digit separators; see the header comment.
std::vector<std::string> strip_code(const std::vector<std::string>& raw);

/// Splits text into lines, strips code, and parses suppression marks.
SourceFile load_source(std::string path, std::string module,
                       const std::string& text, const MarkSyntax& syntax);

/// True when line `i` of `f` is covered by a reasoned mark applying to
/// `rule` — on the line itself or in the contiguous //-comment block
/// immediately above the statement.
bool suppressed(const SourceFile& f, std::size_t line, const std::string& rule);

/// All identifiers in `expr`, in order, duplicates kept.
std::vector<std::string> idents_in(const std::string& expr);

/// The parenthesized expression starting at code[line][col] (col just past
/// the opening paren), balanced across lines.
std::string balance_parens(const SourceFile& f, std::size_t line,
                           std::size_t col);

/// Splits at top-level (paren/bracket/brace depth 0) occurrences of `sep`.
std::vector<std::string> split_top_level(const std::string& expr, char sep);

/// Function-scope approximation: the file segmented at column-0 closing
/// braces (this codebase puts top-level definitions at column 0). Each
/// segment is a [begin, end) line range.
struct Segment {
  std::size_t begin = 0;
  std::size_t end = 0;
};
std::vector<Segment> function_segments(const std::vector<std::string>& code);

// Filesystem helpers shared by the tool drivers.
std::optional<std::string> read_file(const std::filesystem::path& p);
bool is_source(const std::filesystem::path& p);
/// Sorted list of .h/.hpp/.cpp/.cc files under `root`, recursive.
std::vector<std::filesystem::path> source_files_under(
    const std::filesystem::path& root);

/// Print findings to stderr as file:line: [rule] message.
void print_findings(const std::vector<Finding>& findings);

}  // namespace lintcore
