#include "lintcore/lintcore.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>

namespace lintcore {

namespace {

const std::regex kIdent(R"([A-Za-z_]\w*)");

bool space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::string rtrim(std::string s) {
  while (!s.empty() && space(s.back())) s.pop_back();
  return s;
}

/// Length of the raw-string prefix (R, u8R, uR, UR, LR) ending just before
/// the '"' at position i, or 0 if the quote does not open a raw string.
std::size_t raw_prefix_len(const std::string& line, std::size_t i) {
  if (i == 0 || line[i - 1] != 'R') return 0;
  std::size_t start = i - 1;  // position of 'R'
  if (start > 0) {
    const char p = line[start - 1];
    if (p == '8' && start > 1 && line[start - 2] == 'u') {
      start -= 2;
    } else if (p == 'u' || p == 'U' || p == 'L') {
      start -= 1;
    }
  }
  // `FooR"x"` is an identifier followed by a string, not a raw string.
  if (start > 0) {
    const char before = line[start - 1];
    if (std::isalnum(static_cast<unsigned char>(before)) || before == '_') {
      return 0;
    }
  }
  return i - start;
}

/// A ' between alphanumerics is a numeric digit separator (1'000, 0xFF'FF)
/// unless the character after the next is another quote, which is the
/// char-literal-with-prefix shape (L'a', u8'x').
bool is_digit_separator(const std::string& line, std::size_t i) {
  if (i == 0 || i + 1 >= line.size()) return false;
  if (!std::isalnum(static_cast<unsigned char>(line[i - 1]))) return false;
  if (!std::isalnum(static_cast<unsigned char>(line[i + 1]))) return false;
  return !(i + 2 < line.size() && line[i + 2] == '\'');
}

std::set<std::string> parse_rule_list(const std::string& s) {
  std::set<std::string> out;
  std::string cur;
  for (const char c : s + ",") {
    if (c == ',') {
      std::string t = rtrim(cur);
      std::size_t k = 0;
      while (k < t.size() && space(t[k])) ++k;
      t = t.substr(k);
      if (!t.empty()) out.insert(t);
      cur.clear();
    } else {
      cur += c;
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> strip_code(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  bool in_raw = false;
  std::string raw_close;  // )delim" that terminates the open raw string
  for (const std::string& line : raw) {
    std::string s;
    s.reserve(line.size());
    for (std::size_t i = 0; i < line.size();) {
      if (in_block) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (in_raw) {
        const std::size_t close = line.find(raw_close, i);
        if (close == std::string::npos) {
          i = line.size();
        } else {
          in_raw = false;
          s += '"';
          i = close + raw_close.size();
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;
      if (line.compare(i, 2, "/*") == 0) {
        in_block = true;
        i += 2;
        continue;
      }
      const char c = line[i];
      if (c == '"' && raw_prefix_len(line, i) > 0) {
        // R"delim( ... )delim" — contents skipped, possibly across lines.
        s += c;
        const std::size_t open = line.find('(', i + 1);
        if (open == std::string::npos) {
          // Malformed raw string; drop the rest of the line.
          i = line.size();
          continue;
        }
        raw_close.assign(1, ')');
        raw_close.append(line, i + 1, open - i - 1);
        raw_close.push_back('"');
        const std::size_t close = line.find(raw_close, open + 1);
        if (close == std::string::npos) {
          in_raw = true;
          i = line.size();
        } else {
          s += '"';
          i = close + raw_close.size();
        }
        continue;
      }
      if (c == '\'' && is_digit_separator(line, i)) {
        s += c;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        s += c;
        ++i;
        while (i < line.size() && line[i] != c) {
          i += (line[i] == '\\' && i + 1 < line.size()) ? 2 : 1;
        }
        if (i < line.size()) {
          s += c;
          ++i;
        }
        continue;
      }
      s += c;
      ++i;
    }
    out.push_back(std::move(s));
  }
  return out;
}

SourceFile load_source(std::string path, std::string module,
                       const std::string& text, const MarkSyntax& syntax) {
  SourceFile f;
  f.path = std::move(path);
  f.module = std::move(module);
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.raw.push_back(line);
  }
  f.code = strip_code(f.raw);
  f.marks.resize(f.raw.size());

  // Single-line form; the lookahead keeps it from also matching the block
  // markers below. The optional parenthesized list names specific rules.
  const std::regex single("//\\s*" + syntax.tag +
                          R"((?!-)\s*(?:\(([^)]*)\))?\s*:?\s*(.*))");
  const std::regex begin_re("//\\s*" + syntax.tag +
                            R"(-begin\s*(?:\(([^)]*)\))?\s*:?\s*(.*))");
  const std::regex end_re("//\\s*" + syntax.tag + "-end");

  bool in_block = false;
  bool block_ok = false;
  std::set<std::string> block_rules;
  std::size_t block_start = 0;
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    std::smatch m;
    if (std::regex_search(f.raw[i], m, begin_re)) {
      in_block = true;
      block_ok = !rtrim(m[2].str()).empty();
      block_rules = parse_rule_list(m[1].str());
      block_start = i;
      f.marks[i] = Mark{true, block_ok, block_rules};
    } else if (std::regex_search(f.raw[i], end_re)) {
      in_block = false;
      f.marks[i] = Mark{true, true, block_rules};
    } else if (in_block) {
      // Missing-reason blocks are reported once, at the begin marker; inner
      // lines of a reasoned block inherit its suppression.
      if (block_ok) f.marks[i] = Mark{true, true, block_rules};
    } else if (std::regex_search(f.raw[i], m, single)) {
      f.marks[i] =
          Mark{true, !rtrim(m[2].str()).empty(), parse_rule_list(m[1].str())};
    }
  }
  if (in_block) f.unclosed_block = block_start;
  return f;
}

bool suppressed(const SourceFile& f, std::size_t line,
                const std::string& rule) {
  auto covers = [&](const Mark& m) {
    return m.present && m.has_reason &&
           (m.rules.empty() || m.rules.count(rule) != 0);
  };
  if (line < f.marks.size() && covers(f.marks[line])) return true;
  // Contiguous //-comment block immediately above the statement.
  for (std::size_t j = line; j-- > 0;) {
    std::size_t k = 0;
    const std::string& r = f.raw[j];
    while (k < r.size() && space(r[k])) ++k;
    if (r.compare(k, 2, "//") != 0) break;
    if (covers(f.marks[j])) return true;
  }
  return false;
}

std::vector<std::string> idents_in(const std::string& expr) {
  std::vector<std::string> out;
  for (auto it = std::sregex_iterator(expr.begin(), expr.end(), kIdent);
       it != std::sregex_iterator(); ++it) {
    out.push_back(it->str());
  }
  return out;
}

std::string balance_parens(const SourceFile& f, std::size_t line,
                           std::size_t col) {
  std::string out;
  int depth = 1;
  for (std::size_t i = line; i < f.code.size() && depth > 0; ++i) {
    const std::string& s = f.code[i];
    for (std::size_t j = (i == line ? col : 0); j < s.size(); ++j) {
      if (s[j] == '(') ++depth;
      if (s[j] == ')' && --depth == 0) return out;
      out += s[j];
    }
    out += ' ';
  }
  return out;
}

std::vector<std::string> split_top_level(const std::string& expr, char sep) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (const char c : expr) {
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == sep && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<Segment> function_segments(const std::vector<std::string>& code) {
  std::vector<Segment> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!code[i].empty() && code[i][0] == '}') {
      out.push_back(Segment{start, i + 1});
      start = i + 1;
    }
  }
  if (start < code.size()) out.push_back(Segment{start, code.size()});
  return out;
}

std::optional<std::string> read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool is_source(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

std::vector<std::filesystem::path> source_files_under(
    const std::filesystem::path& root) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && is_source(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void print_findings(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s]%s %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.advisory ? " (advisory)" : "",
                 f.message.c_str());
  }
}

}  // namespace lintcore
