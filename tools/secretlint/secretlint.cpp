// secretlint: secret-hygiene static analyzer for the vnfsgx tree.
//
// A token/AST-lite checker (no compiler dependency, lexer shared with
// tools/boundarycheck via tools/lintcore) enforcing four rule families over
// src/ (see docs/STATIC_ANALYSIS.md for the policy rationale):
//
//   R1 boundary     enclave-private headers must not be included from
//                   untrusted modules (controller/, dataplane/, ias/,
//                   http/), and the OCALL/serialization surface
//                   (vnf/ocall.h, core/protocol.h) must not mention
//                   secret-bearing types. (The ring double-fetch guard that
//                   used to live here is now boundarycheck rule B1, driven
//                   by `// boundary:` annotations instead of a file list.)
//   R2 zeroization  variables that *own* secret bytes (seeds, private
//                   keys, round keys, IKM) must be wrapped in
//                   Zeroizing<T> / SecureBytes so they wipe on destruct.
//   R3 constant-time (src/crypto/ only) branches and table indexing on
//                   key-derived values are flagged via a heuristic taint
//                   pass; `// ct-ok: <reason>` suppresses a finding and
//                   the reason is mandatory.
//   R4 hygiene      no memset() over secrets (use secure_memzero) and no
//                   secret identifiers in log statements.
//
// Modes:
//   secretlint --root <dir>       lint a source tree; exit 1 on findings
//   secretlint --fixtures <dir>   self-test against known_bad/known_good
//                                 snippets carrying secretlint-expect
//                                 directives; exit 1 on any mismatch
//
// The analyzer is deliberately heuristic: it trades soundness for zero
// build-time dependencies. Known blind spots (ternaries, multi-level
// template types, indirect data flow) are documented in
// docs/STATIC_ANALYSIS.md.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lintcore/lintcore.h"

namespace fs = std::filesystem;

namespace {

using lintcore::Finding;
using lintcore::SourceFile;

const lintcore::MarkSyntax kCtOkSyntax{"ct-ok"};

// ---------------------------------------------------------------------------
// Policy tables
// ---------------------------------------------------------------------------

// Modules that run outside the enclave trust boundary.
const std::set<std::string> kUntrustedModules = {"controller", "dataplane",
                                                 "ias", "http"};

// Headers whose contents are enclave-private (key schedules, record keys,
// the vault). Untrusted modules must talk through vnf/ocall.h instead.
const std::set<std::string> kPrivateHeaders = {
    "vnf/credential_enclave.h", "host/attestation_enclave.h",
    "tls/key_schedule.h",       "tls/record.h",
    "sgx/enclave.h",            "sgx/hostcall.h"};

// The marshalling surface between trusted and untrusted code. If a secret
// type leaks into these headers it can be serialized across the boundary.
const std::set<std::string> kBoundaryHeaders = {"src/vnf/ocall.h",
                                                "src/core/protocol.h"};
const std::vector<std::string> kSecretTypeTokens = {
    "Ed25519Seed", "Ed25519KeyPair", "X25519KeyPair", "KeySchedule",
    "TrafficKeys", "Zeroizing",      "SecureBytes"};

// R2: identifiers that denote owned secret material.
const std::regex kSecretIdent("(secret|seed|private_key|round_keys|ikm)",
                              std::regex::icase);

// R2: owning types that can hold secret bytes. References and views are
// excluded by construction (the regex requires whitespace after the type).
const std::regex kOwningDecl(
    R"(\b(?:const\s+)?(?:(?:\w+::)*)(Bytes|Ed25519Seed|X25519Key|array<[^<>]*>)\s+([A-Za-z_]\w*)\s*[;={])");

// R3: identifiers that seed the taint set in crypto code.
const std::regex kTaintSource("(key|seed|secret|scalar|ikm|priv)",
                              std::regex::icase);

// R4: identifiers that make a memset/log line suspicious.
const std::regex kHygieneIdent(
    "(secret|seed|private_key|round_keys|ikm|scalar|_key|key_)",
    std::regex::icase);

const std::regex kInclude(R"(^\s*#\s*include\s*\"([^\"]+)\")");

/// Removes .size()/.empty() accesses: `key.size()` is public metadata.
/// (.data()/.begin()/.end() are NOT stripped: they alias the secret bytes.)
const std::regex kPublicAccess(R"(\w+\s*(\.|->)\s*(size|empty)\s*\(\s*\))");

std::string strip_public_access(const std::string& expr) {
  return std::regex_replace(expr, kPublicAccess, "");
}

// ---------------------------------------------------------------------------
// Linter
// ---------------------------------------------------------------------------

class Linter {
 public:
  std::vector<Finding> lint(const SourceFile& f) {
    findings_.clear();
    rule_boundary(f);
    rule_zeroization(f);
    if (f.module == "crypto") rule_constant_time(f);
    rule_hygiene(f);
    return findings_;
  }

 private:
  void add(const SourceFile& f, std::size_t line_index, const char* rule,
           std::string message) {
    findings_.push_back(Finding{f.path, static_cast<int>(line_index + 1),
                                rule, std::move(message)});
  }

  // R1: trust-boundary includes and marshalling-surface types.
  void rule_boundary(const SourceFile& f) {
    if (kUntrustedModules.count(f.module) != 0) {
      // Raw lines: the stripper blanks string-literal contents, which is
      // exactly where an include path lives.
      for (std::size_t i = 0; i < f.raw.size(); ++i) {
        std::smatch m;
        if (std::regex_search(f.raw[i], m, kInclude) &&
            kPrivateHeaders.count(m[1].str()) != 0) {
          add(f, i, "R1",
              "untrusted module '" + f.module +
                  "' includes enclave-private header \"" + m[1].str() + "\"");
        }
      }
    }
    if (kBoundaryHeaders.count(f.path) != 0) {
      for (std::size_t i = 0; i < f.code.size(); ++i) {
        for (const std::string& tok : kSecretTypeTokens) {
          const std::regex word("\\b" + tok + "\\b");
          if (std::regex_search(f.code[i], word)) {
            add(f, i, "R1",
                "boundary header mentions secret type '" + tok +
                    "' (secrets must not cross the OCALL surface)");
          }
        }
      }
    }
  }

  // R2: owned secret material must be Zeroizing-wrapped.
  void rule_zeroization(const SourceFile& f) {
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      // Already wrapped (or an alias of a wrapper) on this line.
      if (line.find("Zeroizing") != std::string::npos ||
          line.find("SecureBytes") != std::string::npos) {
        continue;
      }
      std::smatch m;
      if (std::regex_search(line, m, kOwningDecl) &&
          std::regex_search(m[2].first, m[2].second, kSecretIdent)) {
        add(f, i, "R2",
            "secret-named variable '" + m[2].str() + "' has raw owning type " +
                m[1].str() + "; wrap it in Zeroizing<> / SecureBytes");
      }
    }
  }

  // R3: heuristic taint from key-like identifiers to branches/indexing.
  //
  // Taint is *function-scoped*: the file is segmented at column-0 closing
  // braces (this codebase puts top-level definitions at column 0), so a
  // nonce named `r` in sign() does not taint an unrelated `r` in slide().
  // Cross-function flow (a helper called with a secret argument) is instead
  // caught by seeding from parameter *names and types* inside the callee.
  void rule_constant_time(const SourceFile& f) {
    for (const lintcore::Segment& seg : lintcore::function_segments(f.code)) {
      ct_segment(f, seg.begin, seg.end);
    }

    // A ct-ok marker with no reason is itself a finding: suppressions must
    // be auditable.
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (f.marks[i].present && !f.marks[i].has_reason) {
        add(f, i, "R3", "ct-ok suppression is missing a reason");
      }
    }
    if (f.unclosed_block) {
      add(f, *f.unclosed_block, "R3",
          "ct-ok-begin block is never closed with ct-ok-end");
    }
  }

  void ct_segment(const SourceFile& f, std::size_t begin, std::size_t end) {
    // Taint seeding: identifiers that *name* key material, plus variables
    // and parameters whose declared *type* names key material (Scalar,
    // Ed25519Seed, ...).
    std::set<std::string> tainted;
    const std::regex typed_decl(
        R"(\b([A-Za-z_][\w:]*)\s*[&*]?\s+([A-Za-z_]\w*)\s*[,)=;{\[])");
    for (std::size_t i = begin; i < end; ++i) {
      for (const std::string& id : lintcore::idents_in(f.code[i])) {
        if (std::regex_search(id, kTaintSource)) tainted.insert(id);
      }
      const std::string& line = f.code[i];
      for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                          typed_decl);
           it != std::sregex_iterator(); ++it) {
        if (std::regex_search((*it)[1].first, (*it)[1].second,
                              kTaintSource)) {
          tainted.insert((*it)[2].str());
        }
      }
    }
    // Propagation: assignments (declarations, plain/compound assignment —
    // possibly through a subscripted lvalue — and range-for bindings) from
    // a tainted right-hand side taint the target name. Fixpoint over the
    // segment. The `[^=]` after `=` rejects `==` comparisons.
    const std::regex assign(
        R"(\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)*(?:[-+*/%&|^]|<<|>>)?=\s*([^=][^;]*);)");
    const std::regex range_for(
        R"(\bfor\s*\(\s*[^:;()]*[\s&*]([A-Za-z_]\w*)\s*:\s*([^)]*)\))");
    for (int pass = 0; pass < 8; ++pass) {
      bool changed = false;
      for (std::size_t i = begin; i < end; ++i) {
        const std::string& line = f.code[i];
        std::smatch m;
        auto try_taint = [&](const std::string& name,
                             const std::string& init) {
          if (tainted.count(name) != 0) return;
          const std::string cleaned = strip_public_access(init);
          for (const std::string& id : lintcore::idents_in(cleaned)) {
            if (tainted.count(id) != 0) {
              tainted.insert(name);
              changed = true;
              return;
            }
          }
        };
        for (auto it = std::sregex_iterator(line.begin(), line.end(), assign);
             it != std::sregex_iterator(); ++it) {
          try_taint((*it)[1].str(), (*it)[2].str());
        }
        if (std::regex_search(line, m, range_for)) {
          try_taint(m[1].str(), m[2].str());
        }
      }
      if (!changed) break;
    }

    auto expr_tainted = [&](const std::string& expr) -> std::string {
      const std::string cleaned = strip_public_access(expr);
      for (const std::string& id : lintcore::idents_in(cleaned)) {
        if (tainted.count(id) != 0) return id;
      }
      return {};
    };

    for (std::size_t i = begin; i < end; ++i) {
      const std::string& line = f.code[i];

      // Branch conditions: if/while/switch (...) and the middle clause of a
      // classic for. Conditions are extracted with paren balancing and may
      // span lines.
      static const std::regex branch(R"(\b(if|while|switch|for)\s*\()");
      for (auto it = std::sregex_iterator(line.begin(), line.end(), branch);
           it != std::sregex_iterator(); ++it) {
        const std::string kw = (*it)[1].str();
        std::string expr = lintcore::balance_parens(
            f, i, static_cast<std::size_t>(it->position(0) + it->length(0)));
        if (kw == "for") {
          // Only the loop condition (between top-level semicolons) can leak
          // timing; range-fors walk the container sequentially.
          const auto clauses = lintcore::split_top_level(expr, ';');
          if (clauses.size() < 2) continue;
          expr = clauses[1];
        }
        const std::string id = expr_tainted(expr);
        if (!id.empty() && !lintcore::suppressed(f, i, "R3")) {
          add(f, i, "R3",
              kw + " condition depends on key-derived value '" + id + "'");
        }
      }

      // Table indexing: subscript *contents* derived from key material.
      for (std::size_t pos = line.find('[');
           pos != std::string::npos; pos = line.find('[', pos + 1)) {
        const std::size_t close = line.find(']', pos + 1);
        if (close == std::string::npos) break;
        const std::string sub = line.substr(pos + 1, close - pos - 1);
        const std::string id = expr_tainted(sub);
        if (!id.empty() && !lintcore::suppressed(f, i, "R3")) {
          add(f, i, "R3",
              "array index depends on key-derived value '" + id + "'");
        }
      }
    }
  }

  // R4: memset over secrets; secrets in logs, metric names/labels, and
  // span annotations. The obs exporters serve everything they are handed
  // over unauthenticated /metrics endpoints, so instrument registration
  // and span annotation are egress points just like log lines.
  void rule_hygiene(const SourceFile& f) {
    // common/secure.* implements secure_memzero and is allowed its memset.
    const bool is_secure_impl = f.path == "src/common/secure.h" ||
                                f.path == "src/common/secure.cpp";
    static const std::regex memset_call(R"(\bmemset\s*\()");
    static const std::regex log_call(R"(\bVNFSGX_LOG_\w+\s*\()");
    static const std::regex obs_call(
        R"(\b(?:counter|gauge|histogram|start_span|annotate)\s*\()");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      std::smatch m;
      if (!is_secure_impl && std::regex_search(line, m, memset_call)) {
        const std::string args = lintcore::balance_parens(
            f, i, static_cast<std::size_t>(m.position(0) + m.length(0)));
        for (const std::string& id : lintcore::idents_in(args)) {
          if (std::regex_search(id, kHygieneIdent)) {
            add(f, i, "R4",
                "memset over secret '" + id +
                    "'; use secure_memzero (memset is dead-store-eliminated)");
            break;
          }
        }
      }
      if (std::regex_search(line, m, log_call)) {
        const std::string args = lintcore::balance_parens(
            f, i, static_cast<std::size_t>(m.position(0) + m.length(0)));
        for (const std::string& id : lintcore::idents_in(args)) {
          if (std::regex_search(id, kHygieneIdent)) {
            add(f, i, "R4",
                "log statement references secret '" + id + "'");
            break;
          }
        }
      }
      if (std::regex_search(line, m, obs_call)) {
        const std::string args = lintcore::balance_parens(
            f, i, static_cast<std::size_t>(m.position(0) + m.length(0)));
        for (const std::string& id : lintcore::idents_in(args)) {
          if (std::regex_search(id, kHygieneIdent)) {
            add(f, i, "R4",
                "metric/span call references secret '" + id +
                    "'; instrument names, label values, and annotations "
                    "are exported over /metrics");
            break;
          }
        }
      }
    }
  }

  std::vector<Finding> findings_;
};

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

int run_root(const fs::path& root) {
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "secretlint: not a directory: %s\n",
                 root.string().c_str());
    return 2;
  }
  const auto files = lintcore::source_files_under(root);

  Linter linter;
  std::vector<Finding> all;
  for (const fs::path& p : files) {
    const auto text = lintcore::read_file(p);
    if (!text) continue;
    const std::string rel = fs::relative(p, root).generic_string();
    const std::string module = rel.substr(0, rel.find('/'));
    auto src = lintcore::load_source("src/" + rel, module, *text, kCtOkSyntax);
    auto fnd = linter.lint(src);
    all.insert(all.end(), fnd.begin(), fnd.end());
  }
  lintcore::print_findings(all);
  std::fprintf(stderr, "secretlint: %zu file(s), %zu finding(s)\n",
               files.size(), all.size());
  return all.empty() ? 0 : 1;
}

// Fixture self-test: every known_bad file declares the rules it must trip
// via `// secretlint-expect: R<n>`; known_good files must be clean.
int run_fixtures(const fs::path& dir) {
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "secretlint: not a directory: %s\n",
                 dir.string().c_str());
    return 2;
  }
  const std::regex d_file(R"(secretlint-file:\s*(\S+))");
  const std::regex d_expect(R"(secretlint-expect:\s*(R\d))");

  Linter linter;
  int failures = 0;
  int checked = 0;
  for (const fs::path& p : lintcore::source_files_under(dir)) {
    const auto text = lintcore::read_file(p);
    if (!text) continue;
    const bool is_bad =
        p.parent_path().filename().string() == "known_bad";
    ++checked;

    // Directives: the virtual path decides module + boundary rules.
    std::string vpath = "src/misc/" + p.filename().string();
    std::set<std::string> expected;
    {
      std::istringstream in(*text);
      for (std::string line; std::getline(in, line);) {
        std::smatch m;
        if (std::regex_search(line, m, d_file)) vpath = m[1].str();
        if (std::regex_search(line, m, d_expect)) expected.insert(m[1].str());
      }
    }
    std::string module = vpath;
    if (module.rfind("src/", 0) == 0) module = module.substr(4);
    module = module.substr(0, module.find('/'));

    const auto findings =
        linter.lint(lintcore::load_source(vpath, module, *text, kCtOkSyntax));
    std::set<std::string> fired;
    for (const Finding& f : findings) fired.insert(f.rule);

    auto fail = [&](const std::string& why) {
      std::fprintf(stderr, "FAIL %s: %s\n", p.filename().string().c_str(),
                   why.c_str());
      lintcore::print_findings(findings);
      ++failures;
    };

    if (is_bad) {
      if (expected.empty()) {
        fail("known_bad fixture declares no secretlint-expect directive");
        continue;
      }
      for (const std::string& rule : expected) {
        if (fired.count(rule) == 0) {
          fail("expected rule " + rule + " did not fire");
        }
      }
      for (const std::string& rule : fired) {
        if (expected.count(rule) == 0) {
          fail("unexpected rule " + rule + " fired");
        }
      }
    } else {
      if (!findings.empty()) {
        fail("known_good fixture produced findings");
      }
    }
  }
  std::fprintf(stderr, "secretlint fixtures: %d checked, %d failure(s)\n",
               checked, failures);
  if (checked == 0) {
    std::fprintf(stderr, "secretlint: no fixtures found under %s\n",
                 dir.string().c_str());
    return 2;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--root") {
    return run_root(argv[2]);
  }
  if (argc == 3 && std::string(argv[1]) == "--fixtures") {
    return run_fixtures(argv[2]);
  }
  std::fprintf(stderr,
               "usage: secretlint --root <src-dir> | --fixtures <dir>\n");
  return 2;
}
