// boundarycheck: function-scoped dataflow analyzer for the enclave trust
// boundary (see docs/STATIC_ANALYSIS.md for the full rule catalog).
//
// Boundary structs are discovered via `// boundary: shared|wire` annotations
// instead of a hardcoded file list; the analyzer then enforces, over every
// enclave-facing source in src/sgx and src/vnf:
//
//   B1 provenance   values from shared/slot/host memory are copied into
//                   enclave-owned locals before any dereference, arithmetic,
//                   indexing, or call-argument use; a second read of the
//                   same field per function is a TOCTOU double fetch.
//   B2 bounds       every length/offset/count copied from untrusted memory
//                   flows through a comparison against a capacity before it
//                   indexes, memcpy's, resizes, or offsets a pointer.
//   B3 atomics      publishing fields are released by the producer and
//                   acquired by the consumer: no relaxed access, no
//                   wrong-direction orders, and seq_cst-where-a-weaker-
//                   order-suffices is flagged as an advisory.
//   B4 egress       taint from Zeroizing/SecureBytes values must not reach
//                   OCALL argument slots, host-visible ring result fields,
//                   or log/metric call sites.
//
// Findings are suppressed by a reasoned `// bc-ok(RULE): why` on the same
// line or in the comment block above; a mark without a reason is itself a
// finding (rule BC), as is an unclosed bc-ok-begin block.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lintcore/lintcore.h"

namespace boundarycheck {

inline constexpr char kMarkTag[] = "bc-ok";

/// `shared` memory is writable by the other side of the boundary while the
/// enclave reads it (ring slots, batch job descriptors): full B1-B4.
/// `wire` data crossed the boundary once and was copied/validated on entry
/// (decoded rule blobs, parsed certificate evidence): B4 egress plus B2 as
/// a *length source* — a length decoded off the wire still needs a bounds
/// check before it indexes or sizes anything. B1 does not apply, so
/// enclave-internal re-reads of decoded fields are not noise.
enum class BoundaryKind { kShared, kWire };

enum class FieldKind { kScalar, kArray, kAtomic };

struct BoundaryField {
  std::string name;
  FieldKind kind = FieldKind::kScalar;
};

struct BoundaryStruct {
  std::string name;  // last :: component of the declared name
  BoundaryKind kind = BoundaryKind::kShared;
  std::string file;
  int line = 0;  // 1-based line of the annotation
  std::vector<BoundaryField> fields;
};

/// The merged view the rules match against. Matching is by field *name*
/// (the analyzer has no type information), so boundary field names should
/// stay distinctive; collisions make the analyzer strictly more paranoid.
struct Model {
  std::vector<BoundaryStruct> structs;
  std::set<std::string> scalar_fields;  // shared scalars: B1 + B2 sources
  std::set<std::string> wire_scalar_fields;  // wire scalars: B2 sources only
  std::set<std::string> atomic_fields;  // shared atomics: B3
  std::set<std::string> array_fields;   // shared arrays: exempt from B1
  std::set<std::string> egress_fields;  // shared + wire: B4 sinks
};

/// Scans one file for `// boundary:` annotations and parses the annotated
/// struct's field list (declarations at brace depth 1; method lines and
/// using/static/friend declarations are skipped).
std::vector<BoundaryStruct> collect_annotations(const lintcore::SourceFile& f);

Model build_model(const std::vector<BoundaryStruct>& structs);

/// Runs B1-B4 file by file, then a tree-wide B3 pairing pass in finish()
/// (a release store of a publishing field must pair with an acquire load
/// somewhere in the analyzed set).
class Analyzer {
 public:
  explicit Analyzer(Model model) : model_(std::move(model)) {}

  void add_file(const lintcore::SourceFile& f);
  std::vector<lintcore::Finding> finish();

 private:
  struct AtomicUse {
    bool release_store = false;
    bool acquire_load = false;
    std::string store_file;
    int store_line = 0;
    bool store_suppressed = false;
  };

  void add(const lintcore::SourceFile& f, std::size_t line_index,
           const char* rule, std::string message, bool advisory = false);

  void rule_marks(const lintcore::SourceFile& f);
  void rule_b1_b2(const lintcore::SourceFile& f, std::size_t begin,
                  std::size_t end);
  void rule_b3(const lintcore::SourceFile& f);
  void rule_b4(const lintcore::SourceFile& f, std::size_t begin,
               std::size_t end);

  Model model_;
  std::map<std::string, AtomicUse> atomic_uses_;  // field -> pairing info
  std::vector<lintcore::Finding> findings_;
};

}  // namespace boundarycheck
