#include "boundarycheck/boundarycheck.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <regex>
#include <tuple>

namespace boundarycheck {

namespace {

using lintcore::SourceFile;

// ---------------------------------------------------------------------------
// Shared regexes
// ---------------------------------------------------------------------------

const std::regex kAnnotation(R"(//\s*boundary:\s*(shared|wire)\b)");
const std::regex kStructDecl(
    R"(\b(?:struct|class)\s+(?:alignas\s*\([^)]*\)\s*)?([A-Za-z_][\w:]*))");

// B2: locals that carry a length/offset/count by name.
const std::regex kLengthish(R"((len|size|count|cnt|num|off|offset|idx|index))",
                            std::regex::icase);

// B2/B4: assignments (declarations, plain/compound assignment — possibly
// through a subscripted lvalue). The `[^=]` after `=` rejects `==`.
const std::regex kAssign(
    R"(\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)*(?:[-+*/%&|^]|<<|>>)?=\s*([^=][^;]*);)");

// B4: taint seeds — declarations whose type wipes on destruct.
const std::regex kSecretDecl(
    R"(\b(?:Zeroizing\s*<[^<>;]*(?:<[^<>]*>)?[^<>;]*>|SecureBytes)\s*[&*]?\s*([A-Za-z_]\w*))");

// B4: egress call sites.
const std::regex kCallee(R"(\b([A-Za-z_][\w:]*)\s*\()");
const std::regex kLogCall(R"(\bVNFSGX_LOG_\w+\s*\()");
const std::regex kObsCall(
    R"(\b(?:counter|gauge|histogram|start_span|annotate)\s*\()");

const std::regex kMemoryOrder(R"(memory_order(?:_|::\s*)(\w+))");

// .size()/.empty() reveal only public metadata, not secret bytes.
const std::regex kPublicAccess(R"(\w+\s*(\.|->)\s*(size|empty)\s*\(\s*\))");

// Callees through which an untrusted scalar may pass without a prior copy:
// checks, clamps, and casts — reading the field inside them is itself the
// validation step (re-reads are still caught by the double-fetch counter).
const std::set<std::string> kCheckCallees = {
    "if",     "while",       "switch", "for",   "return", "assert",
    "min",    "max",         "clamp",  "sizeof", "static_cast",
    "uint8_t", "uint16_t",   "uint32_t", "uint64_t", "size_t"};

bool space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string strip_public_access(const std::string& expr) {
  return std::regex_replace(expr, kPublicAccess, "");
}

std::string join_fields(const std::set<std::string>& fields) {
  std::string alt;
  for (const std::string& f : fields) {
    if (!alt.empty()) alt += '|';
    alt += f;
  }
  return alt;
}

/// `base.field` / `base->field` access regex for the given field set, or
/// nullopt when the set is empty.
std::optional<std::regex> access_regex(const std::set<std::string>& fields) {
  if (fields.empty()) return std::nullopt;
  return std::regex(R"(\b([A-Za-z_]\w*)\s*(?:\.|->)\s*()" +
                    join_fields(fields) + R"()\b)");
}

/// True when the access at [b, e) is a plain write: the next non-space
/// character is `=` and not `==`.
bool is_write(const std::string& line, std::size_t e) {
  while (e < line.size() && space(line[e])) ++e;
  return e < line.size() && line[e] == '=' &&
         (e + 1 >= line.size() || line[e + 1] != '=');
}

/// The callee identifier of the innermost unclosed `(` left of `pos` on the
/// line, "" for a grouping paren, and nullopt when `pos` is not inside a
/// paren (or is inside a `[` subscript, reported via *in_subscript).
std::optional<std::string> enclosing_callee(const std::string& line,
                                            std::size_t pos,
                                            bool* in_subscript) {
  *in_subscript = false;
  std::vector<char> stack;
  for (std::size_t i = 0; i < pos; ++i) {
    const char c = line[i];
    if (c == '(' || c == '[') stack.push_back(c);
    if ((c == ')' || c == ']') && !stack.empty()) stack.pop_back();
  }
  if (stack.empty()) return std::nullopt;
  if (stack.back() == '[') {
    *in_subscript = true;
    return std::nullopt;
  }
  // Find the position of that innermost '(' again.
  std::size_t open = std::string::npos;
  int depth = 0;
  for (std::size_t i = pos; i-- > 0;) {
    const char c = line[i];
    if (c == ')' || c == ']') ++depth;
    if (c == '(' || c == '[') {
      if (depth == 0) {
        open = i;
        break;
      }
      --depth;
    }
  }
  if (open == std::string::npos) return std::string();
  std::size_t j = open;
  while (j > 0 && space(line[j - 1])) --j;
  // Skip a template argument list: static_cast<std::uint32_t>(...)
  if (j > 0 && line[j - 1] == '>') {
    int angle = 1;
    --j;
    while (j > 0 && angle > 0) {
      --j;
      if (line[j] == '>') ++angle;
      if (line[j] == '<') --angle;
    }
    while (j > 0 && space(line[j - 1])) --j;
  }
  std::size_t end = j;
  while (j > 0 && ident_char(line[j - 1])) --j;
  return line.substr(j, end - j);
}

/// Why a direct (uncopied) use of an untrusted scalar is dangerous, or ""
/// when the context is one of the allowed shapes (sole RHS copy, comparison,
/// check/clamp/cast argument, return value, write).
std::string direct_use_reason(const std::string& line, std::size_t b,
                              std::size_t e) {
  bool in_subscript = false;
  const auto callee = enclosing_callee(line, b, &in_subscript);
  if (in_subscript) return "used directly as an array index";
  if (callee && !callee->empty()) {
    std::string last = *callee;
    const std::size_t colons = last.rfind("::");
    if (colons != std::string::npos) last = last.substr(colons + 2);
    if (kCheckCallees.count(last) == 0) {
      return "passed directly to " + *callee + "()";
    }
  }
  // Arithmetic adjacency before the base identifier.
  std::size_t i = b;
  while (i > 0 && space(line[i - 1])) --i;
  if (i > 0) {
    const char c = line[i - 1];
    const char cc = i > 1 ? line[i - 2] : '\0';
    if (c == '+' || c == '*' || c == '/' || c == '%') {
      return "used directly in arithmetic";
    }
    if (c == '-' && cc != '-') return "used directly in arithmetic";
    if (c == '&' && cc != '&') return "address taken / aliased";
  }
  // Arithmetic adjacency after the field name.
  std::size_t j = e;
  while (j < line.size() && space(line[j])) ++j;
  if (j < line.size()) {
    const char c = line[j];
    const char cn = j + 1 < line.size() ? line[j + 1] : '\0';
    if (c == '+' || c == '-' || c == '*' || c == '/' || c == '%') {
      return "used directly in arithmetic";
    }
    if ((c == '&' || c == '|' || c == '^') && cn != c && cn != '=') {
      return "used directly in arithmetic";
    }
    if ((c == '<' || c == '>') && cn == c) {
      return "used directly in arithmetic";
    }
  }
  return {};
}

std::string classify_order(const std::string& args_text, bool* has_order) {
  std::smatch m;
  *has_order = std::regex_search(args_text, m, kMemoryOrder);
  return *has_order ? m[1].str() : std::string();
}

}  // namespace

// ---------------------------------------------------------------------------
// Annotation discovery
// ---------------------------------------------------------------------------

std::vector<BoundaryStruct> collect_annotations(const SourceFile& f) {
  std::vector<BoundaryStruct> out;
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.raw[i], m, kAnnotation)) continue;
    BoundaryStruct bs;
    bs.kind = m[1].str() == "shared" ? BoundaryKind::kShared
                                     : BoundaryKind::kWire;
    bs.file = f.path;
    bs.line = static_cast<int>(i + 1);

    // The annotated struct declaration must follow within a few lines
    // (doc comments between annotation and declaration are fine).
    std::size_t decl = f.code.size();
    for (std::size_t j = i; j < std::min(i + 6, f.code.size()); ++j) {
      std::smatch d;
      if (std::regex_search(f.code[j], d, kStructDecl)) {
        std::string name = d[1].str();
        const std::size_t colons = name.rfind("::");
        if (colons != std::string::npos) name = name.substr(colons + 2);
        bs.name = name;
        decl = j;
        break;
      }
    }
    if (decl == f.code.size()) continue;  // stray annotation; ignore

    // Walk the struct body, collecting field declarations at depth 1.
    int depth = 0;
    bool body = false;
    for (std::size_t j = decl; j < f.code.size(); ++j) {
      const std::string& line = f.code[j];
      const int depth_at_start = depth;
      for (const char c : line) {
        if (c == '{') {
          ++depth;
          body = true;
        }
        if (c == '}') --depth;
      }
      if (body && depth <= 0) break;
      if (!body || depth_at_start != 1 || j == decl) continue;

      std::string s = line;
      std::size_t k = 0;
      while (k < s.size() && space(s[k])) ++k;
      s = s.substr(k);
      if (s.empty() || s.find('(') != std::string::npos) continue;
      static const std::regex non_field(
          R"(^(?:using|static|friend|typedef|enum|struct|class|template|public|private|protected)\b)");
      if (std::regex_search(s, non_field)) continue;
      const std::size_t semi = s.find(';');
      if (semi == std::string::npos) continue;
      const std::string decl_text = s.substr(0, semi);
      std::string cut = decl_text;
      const std::size_t stop = cut.find_first_of("={");
      if (stop != std::string::npos) cut = cut.substr(0, stop);
      const std::size_t bracket = cut.find('[');
      if (bracket != std::string::npos) cut = cut.substr(0, bracket);
      const auto ids = lintcore::idents_in(cut);
      if (ids.size() < 2) continue;

      BoundaryField field;
      field.name = ids.back();
      if (decl_text.find("atomic") != std::string::npos) {
        field.kind = FieldKind::kAtomic;
      } else if (decl_text.find("array<") != std::string::npos ||
                 decl_text.find("Bytes") != std::string::npos ||
                 decl_text.find("string") != std::string::npos ||
                 decl_text.find("vector") != std::string::npos ||
                 decl_text.find("span") != std::string::npos ||
                 decl_text.find('[') != std::string::npos) {
        field.kind = FieldKind::kArray;
      } else {
        field.kind = FieldKind::kScalar;
      }
      bs.fields.push_back(std::move(field));
    }
    if (!bs.fields.empty()) out.push_back(std::move(bs));
  }
  return out;
}

Model build_model(const std::vector<BoundaryStruct>& structs) {
  Model m;
  m.structs = structs;
  for (const BoundaryStruct& s : structs) {
    for (const BoundaryField& f : s.fields) {
      m.egress_fields.insert(f.name);
      if (s.kind != BoundaryKind::kShared) {
        // Wire structs get no B1 (the copy already happened at decode), but
        // a scalar decoded off the wire is still an untrusted B2 source.
        if (f.kind == FieldKind::kScalar) m.wire_scalar_fields.insert(f.name);
        continue;
      }
      switch (f.kind) {
        case FieldKind::kScalar:
          m.scalar_fields.insert(f.name);
          break;
        case FieldKind::kArray:
          m.array_fields.insert(f.name);
          break;
        case FieldKind::kAtomic:
          m.atomic_fields.insert(f.name);
          break;
      }
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

void Analyzer::add(const SourceFile& f, std::size_t line_index,
                   const char* rule, std::string message, bool advisory) {
  findings_.push_back(lintcore::Finding{f.path,
                                        static_cast<int>(line_index + 1), rule,
                                        std::move(message), advisory});
}

void Analyzer::add_file(const SourceFile& f) {
  rule_marks(f);
  for (const lintcore::Segment& seg : lintcore::function_segments(f.code)) {
    rule_b1_b2(f, seg.begin, seg.end);
    rule_b4(f, seg.begin, seg.end);
  }
  rule_b3(f);
}

// A bc-ok marker with no reason is itself a finding: suppressions must be
// auditable.
void Analyzer::rule_marks(const SourceFile& f) {
  for (std::size_t i = 0; i < f.marks.size(); ++i) {
    if (f.marks[i].present && !f.marks[i].has_reason) {
      add(f, i, "BC", "bc-ok suppression is missing a reason");
    }
  }
  if (f.unclosed_block) {
    add(f, *f.unclosed_block, "BC",
        "bc-ok-begin block is never closed with bc-ok-end");
  }
}

// B1 untrusted-pointer provenance + B2 bounds-before-use, per function
// segment. The two rules share the scan: B1 polices raw field accesses of
// *shared* scalars, B2 follows the blessed copies — sourced from shared
// scalars and from wire scalars (a decoded length is just as untrusted).
void Analyzer::rule_b1_b2(const SourceFile& f, std::size_t begin,
                          std::size_t end) {
  const auto scalar_access = access_regex(model_.scalar_fields);
  std::set<std::string> b2_sources = model_.scalar_fields;
  b2_sources.insert(model_.wire_scalar_fields.begin(),
                    model_.wire_scalar_fields.end());
  const auto length_source = access_regex(b2_sources);
  if (!length_source) return;

  std::map<std::string, int> reads;
  std::set<std::string> reported;
  // B2 state: lengthish locals copied from boundary fields, with the first
  // line where each was compared against a capacity.
  struct Tracked {
    std::size_t decl_line = 0;
    std::size_t checked_line = SIZE_MAX;
    std::set<std::size_t> flagged;
  };
  std::map<std::string, Tracked> lengths;

  for (std::size_t i = begin; i < end; ++i) {
    const std::string& line = f.code[i];

    // --- B1: every raw read of a shared scalar field ---
    for (auto it = scalar_access
                       ? std::sregex_iterator(line.begin(), line.end(),
                                              *scalar_access)
                       : std::sregex_iterator();
         it != std::sregex_iterator(); ++it) {
      const std::string base = (*it)[1].str();
      if (base == "this") continue;
      const std::size_t b = static_cast<std::size_t>(it->position(0));
      const std::size_t e =
          static_cast<std::size_t>(it->position(0) + it->length(0));
      if (is_write(line, e)) continue;  // publishing a result back

      const std::string key = base + "." + (*it)[2].str();
      if (++reads[key] >= 2) {
        if (reported.insert(key).second && !lintcore::suppressed(f, i, "B1")) {
          add(f, i, "B1",
              "double fetch of untrusted field '" + key +
                  "'; copy it into a local once, validate the copy, and "
                  "never re-read the shared memory");
        }
        continue;
      }
      const std::string why = direct_use_reason(line, b, e);
      if (!why.empty() && !lintcore::suppressed(f, i, "B1")) {
        add(f, i, "B1",
            "untrusted field '" + key + "' " + why +
                " without being copied into an enclave-owned local first");
      }
    }

    // --- B2: record lengthish locals copied from boundary fields ---
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kAssign);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (!std::regex_search(name, kLengthish)) continue;
      const std::string rhs = (*it)[2].str();
      if (std::regex_search(rhs, *length_source)) {
        lengths.emplace(name, Tracked{i, SIZE_MAX, {}});
      }
    }
  }
  if (lengths.empty()) return;

  // --- B2: check events, then uses before the first check ---
  for (auto& [name, t] : lengths) {
    const std::regex cmp_after("\\b" + name + R"(\s*[<>]=?)");
    const std::regex cmp_before(R"([<>]=?\s*)" + name + "\\b");
    const std::regex clamp(R"(\b(?:min|max|clamp)\s*\([^)]*\b)" + name +
                           "\\b");
    for (std::size_t i = t.decl_line; i < end; ++i) {
      const std::string& line = f.code[i];
      if (std::regex_search(line, cmp_after) ||
          std::regex_search(line, cmp_before) ||
          std::regex_search(line, clamp)) {
        t.checked_line = i;
        break;
      }
    }
  }
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& line = f.code[i];
    for (auto& [name, t] : lengths) {
      if (i <= t.decl_line || i >= t.checked_line) continue;
      bool used = false;
      // Subscript contents.
      for (std::size_t pos = line.find('['); pos != std::string::npos;
           pos = line.find('[', pos + 1)) {
        const std::size_t close = line.find(']', pos + 1);
        if (close == std::string::npos) break;
        const std::string sub = line.substr(pos + 1, close - pos - 1);
        for (const std::string& id : lintcore::idents_in(sub)) {
          if (id == name) used = true;
        }
      }
      // Size-consuming calls and iterator arithmetic.
      const std::regex consume(
          R"(\b(?:memcpy|memmove|resize|reserve|assign)\s*\([^;]*\b)" + name +
          "\\b");
      const std::regex iter_arith(R"(\b(?:begin|data)\s*\(\s*\)\s*\+\s*)" +
                                  name + "\\b");
      if (std::regex_search(line, consume) ||
          std::regex_search(line, iter_arith)) {
        used = true;
      }
      if (used && t.flagged.insert(i).second &&
          !lintcore::suppressed(f, i, "B2")) {
        add(f, i, "B2",
            "untrusted length '" + name +
                "' is used before being bounds-checked against a capacity");
      }
    }
  }
}

// B3 atomics discipline on publishing fields, file-scoped (the pairing
// check in finish() is tree-wide).
void Analyzer::rule_b3(const SourceFile& f) {
  const auto atomic_access = access_regex(model_.atomic_fields);
  if (!atomic_access) return;
  static const std::regex atomic_op(
      R"(^\s*\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\()");

  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];

    // atomic_ref over a plain boundary field with a relaxed order: the
    // payload fields are published by the state release store; any relaxed
    // peeking re-introduces the race the ring protocol exists to prevent.
    if (line.find("atomic_ref") != std::string::npos &&
        line.find("relaxed") != std::string::npos &&
        (std::regex_search(line, *atomic_access) ||
         (access_regex(model_.scalar_fields) &&
          std::regex_search(line, *access_regex(model_.scalar_fields))))) {
      if (!lintcore::suppressed(f, i, "B3")) {
        add(f, i, "B3",
            "relaxed atomic_ref access to a boundary field; publishing "
            "fields need release/acquire ordering");
      }
      continue;
    }

    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        *atomic_access);
         it != std::sregex_iterator(); ++it) {
      const std::string field = (*it)[2].str();
      const std::size_t e =
          static_cast<std::size_t>(it->position(0) + it->length(0));
      const std::string rest = line.substr(e);
      std::smatch op;
      if (!std::regex_search(rest, op, atomic_op)) {
        // Operator-form access (slot.state = x; y = slot.state) compiles to
        // seq_cst; the ring wants explicit load/store with orders.
        if (!lintcore::suppressed(f, i, "B3")) {
          add(f, i, "B3",
              "implicit seq_cst operator access to atomic field '" + field +
                  "'; use explicit .load/.store with an ordering",
              /*advisory=*/true);
        }
        continue;
      }
      const std::string name = op[1].str();
      const std::size_t args_at =
          e + static_cast<std::size_t>(op.position(0) + op.length(0));
      const std::string args = lintcore::balance_parens(f, i, args_at);
      AtomicUse& use = atomic_uses_[field];
      const bool quiet = lintcore::suppressed(f, i, "B3");
      auto hard = [&](const std::string& msg) {
        if (!quiet) add(f, i, "B3", msg);
      };
      auto advisory = [&](const std::string& msg) {
        if (!quiet) add(f, i, "B3", msg, /*advisory=*/true);
      };

      if (name == "store") {
        bool has_order = false;
        const std::string order = classify_order(args, &has_order);
        if (order == "relaxed") {
          hard("relaxed store to publishing field '" + field +
               "'; the consumer will observe stale payload bytes");
        } else if (order == "acquire" || order == "consume" ||
                   order == "acq_rel") {
          hard("store to '" + field + "' with invalid order memory_order_" +
               order + "; publication needs memory_order_release");
        } else if (!has_order || order == "seq_cst") {
          advisory("seq_cst store to '" + field +
                   "' where memory_order_release suffices");
          use.release_store = true;  // seq_cst is release-or-stronger
          if (!use.store_line) {
            use.store_file = f.path;
            use.store_line = static_cast<int>(i + 1);
            use.store_suppressed = quiet;
          }
        } else if (order == "release") {
          use.release_store = true;
          if (!use.store_line) {
            use.store_file = f.path;
            use.store_line = static_cast<int>(i + 1);
            use.store_suppressed = quiet;
          }
        }
      } else if (name == "load") {
        bool has_order = false;
        const std::string order = classify_order(args, &has_order);
        if (order == "relaxed") {
          hard("relaxed load of publishing field '" + field +
               "'; payload reads may be reordered before it");
        } else if (order == "release" || order == "acq_rel") {
          hard("load of '" + field + "' with invalid order memory_order_" +
               order + "; consumption needs memory_order_acquire");
        } else {
          if (!has_order || order == "seq_cst") {
            advisory("seq_cst load of '" + field +
                     "' where memory_order_acquire suffices");
          }
          use.acquire_load = true;  // acquire, consume, or seq_cst
        }
      } else if (name.rfind("compare_exchange", 0) == 0) {
        // Only the success order matters for publication; the failure order
        // (the last argument, when present) is a pure load and may be
        // relaxed.
        const auto parts = lintcore::split_top_level(args, ',');
        std::string success;
        bool has_order = false;
        for (const std::string& part : parts) {
          bool h = false;
          const std::string o = classify_order(part, &h);
          if (h) {
            success = o;
            has_order = true;
            break;
          }
        }
        if (success == "relaxed") {
          hard("compare_exchange on '" + field +
               "' with relaxed success order; the claim/publish transition "
               "needs acq_rel");
        } else if (!has_order || success == "seq_cst") {
          advisory("seq_cst compare_exchange on '" + field +
                   "' where memory_order_acq_rel suffices");
        }
        use.release_store = true;
        use.acquire_load = true;
      } else {  // exchange / fetch_*
        bool has_order = false;
        const std::string order = classify_order(args, &has_order);
        if (order == "relaxed") {
          hard("relaxed " + name + " on publishing field '" + field + "'");
        } else if (!has_order || order == "seq_cst") {
          advisory("seq_cst " + name + " on '" + field +
                   "' where memory_order_acq_rel suffices");
        }
        use.release_store = true;
        use.acquire_load = true;
      }
    }
  }
}

// B4 secret egress, per function segment: taint seeded from wiping types,
// propagated through assignments, checked at boundary writes, OCALLs, and
// log/metric call sites.
void Analyzer::rule_b4(const SourceFile& f, std::size_t begin,
                       std::size_t end) {
  std::set<std::string> tainted;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& line = f.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kSecretDecl);
         it != std::sregex_iterator(); ++it) {
      tainted.insert((*it)[1].str());
    }
  }
  if (tainted.empty()) return;

  // Fixpoint propagation through assignments, .size()/.empty() laundered.
  for (int pass = 0; pass < 8; ++pass) {
    bool changed = false;
    for (std::size_t i = begin; i < end; ++i) {
      const std::string& line = f.code[i];
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kAssign);
           it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (tainted.count(name) != 0) continue;
        const std::string rhs = strip_public_access((*it)[2].str());
        for (const std::string& id : lintcore::idents_in(rhs)) {
          if (tainted.count(id) != 0) {
            tainted.insert(name);
            changed = true;
            break;
          }
        }
      }
    }
    if (!changed) break;
  }

  auto expr_tainted = [&](const std::string& expr) -> std::string {
    const std::string cleaned = strip_public_access(expr);
    for (const std::string& id : lintcore::idents_in(cleaned)) {
      if (tainted.count(id) != 0) return id;
    }
    return {};
  };

  const auto egress_access = access_regex(model_.egress_fields);
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& line = f.code[i];

    // Writes of tainted data into boundary fields (assignment form).
    if (egress_access) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                          *egress_access);
           it != std::sregex_iterator(); ++it) {
        const std::size_t e =
            static_cast<std::size_t>(it->position(0) + it->length(0));
        if (!is_write(line, e)) continue;
        const std::size_t eq = line.find('=', e);
        if (eq == std::string::npos) continue;
        const std::size_t semi = line.find(';', eq);
        const std::string rhs =
            line.substr(eq + 1, semi == std::string::npos
                                    ? std::string::npos
                                    : semi - eq - 1);
        const std::string id = expr_tainted(rhs);
        if (!id.empty() && !lintcore::suppressed(f, i, "B4")) {
          add(f, i, "B4",
              "secret-tainted value '" + id +
                  "' written to host-visible boundary field '" +
                  (*it)[2].str() + "'");
        }
      }
      // memcpy/std::copy of tainted bytes into a boundary field.
      static const std::regex copy_call(
          R"(\b(?:memcpy|memmove|copy|copy_n)\s*\()");
      std::smatch m;
      if (std::regex_search(line, m, copy_call) &&
          std::regex_search(line, *egress_access)) {
        const std::string args = lintcore::balance_parens(
            f, i, static_cast<std::size_t>(m.position(0) + m.length(0)));
        const std::string id = expr_tainted(args);
        if (!id.empty() && !lintcore::suppressed(f, i, "B4")) {
          add(f, i, "B4",
              "secret-tainted value '" + id +
                  "' copied into a host-visible boundary field");
        }
      }
    }

    // OCALL argument slots.
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kCallee);
         it != std::sregex_iterator(); ++it) {
      std::string callee = (*it)[1].str();
      std::transform(callee.begin(), callee.end(), callee.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (callee.find("ocall") == std::string::npos) continue;
      const std::string args = lintcore::balance_parens(
          f, i, static_cast<std::size_t>(it->position(0) + it->length(0)));
      const std::string id = expr_tainted(args);
      if (!id.empty() && !lintcore::suppressed(f, i, "B4")) {
        add(f, i, "B4",
            "secret-tainted value '" + id + "' passed to OCALL '" +
                (*it)[1].str() + "'; secrets must not cross to the host");
      }
    }

    // Log and metric call sites (exported over /metrics and log sinks).
    for (const std::regex* re : {&kLogCall, &kObsCall}) {
      std::smatch m;
      if (!std::regex_search(line, m, *re)) continue;
      const std::string args = lintcore::balance_parens(
          f, i, static_cast<std::size_t>(m.position(0) + m.length(0)));
      const std::string id = expr_tainted(args);
      if (!id.empty() && !lintcore::suppressed(f, i, "B4")) {
        add(f, i, "B4",
            "secret-tainted value '" + id +
                "' reaches a log/metric call site");
      }
    }
  }
}

std::vector<lintcore::Finding> Analyzer::finish() {
  for (const auto& [field, use] : atomic_uses_) {
    if (use.release_store && !use.acquire_load && !use.store_suppressed) {
      findings_.push_back(lintcore::Finding{
          use.store_file, use.store_line, "B3",
          "release store of publishing field '" + field +
              "' has no pairing acquire load in the analyzed sources"});
    }
  }
  std::sort(findings_.begin(), findings_.end(),
            [](const lintcore::Finding& a, const lintcore::Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings_;
}

}  // namespace boundarycheck
