// boundarycheck driver.
//
// Modes:
//   boundarycheck --root <src-dir>    discover `// boundary:` annotations
//                                     across the whole tree, then enforce
//                                     B1-B4 on every enclave-facing source
//                                     (src/sgx, src/vnf); exit 1 on any
//                                     non-advisory finding
//   boundarycheck --fixtures <dir>    self-test against known_bad/known_good
//                                     snippets carrying boundarycheck-expect
//                                     directives; exit 1 on any mismatch
//
// Fixtures are self-contained: each declares its own `// boundary:` structs
// and is analyzed against a model built from that file alone.

#include <cstdio>
#include <filesystem>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "boundarycheck/boundarycheck.h"
#include "lintcore/lintcore.h"

namespace fs = std::filesystem;

namespace {

// Modules whose sources face the enclave boundary and are enforced.
const std::set<std::string> kEnforcedModules = {"sgx", "vnf", "ratls"};

lintcore::SourceFile load(const std::string& vpath, const std::string& module,
                          const std::string& text) {
  return lintcore::load_source(
      vpath, module, text, lintcore::MarkSyntax{boundarycheck::kMarkTag});
}

int run_root(const fs::path& root) {
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "boundarycheck: not a directory: %s\n",
                 root.string().c_str());
    return 2;
  }
  const auto paths = lintcore::source_files_under(root);
  std::vector<lintcore::SourceFile> sources;
  std::vector<boundarycheck::BoundaryStruct> structs;
  for (const fs::path& p : paths) {
    const auto text = lintcore::read_file(p);
    if (!text) continue;
    const std::string rel = fs::relative(p, root).generic_string();
    const std::string module = rel.substr(0, rel.find('/'));
    auto src = load("src/" + rel, module, *text);
    auto found = boundarycheck::collect_annotations(src);
    structs.insert(structs.end(), found.begin(), found.end());
    if (kEnforcedModules.count(module) != 0) {
      sources.push_back(std::move(src));
    }
  }

  boundarycheck::Analyzer analyzer(boundarycheck::build_model(structs));
  for (const lintcore::SourceFile& src : sources) analyzer.add_file(src);
  const auto findings = analyzer.finish();
  lintcore::print_findings(findings);

  std::size_t hard = 0;
  std::size_t advisory = 0;
  for (const lintcore::Finding& f : findings) {
    (f.advisory ? advisory : hard) += 1;
  }
  std::fprintf(stderr,
               "boundarycheck: %zu boundary struct(s), %zu file(s) enforced, "
               "%zu finding(s), %zu advisory\n",
               structs.size(), sources.size(), hard, advisory);
  return hard == 0 ? 0 : 1;
}

int run_fixtures(const fs::path& dir) {
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "boundarycheck: not a directory: %s\n",
                 dir.string().c_str());
    return 2;
  }
  const std::regex d_file(R"(boundarycheck-file:\s*(\S+))");
  const std::regex d_expect(R"(boundarycheck-expect:\s*(B\d|BC))");
  const std::regex d_advisory(R"(boundarycheck-expect-advisory:\s*(B\d))");

  int failures = 0;
  int checked = 0;
  for (const fs::path& p : lintcore::source_files_under(dir)) {
    const auto text = lintcore::read_file(p);
    if (!text) continue;
    const bool is_bad = p.parent_path().filename().string() == "known_bad";
    ++checked;

    std::string vpath = "src/sgx/" + p.filename().string();
    std::set<std::string> expected;
    std::set<std::string> expected_advisory;
    {
      std::istringstream in(*text);
      for (std::string line; std::getline(in, line);) {
        std::smatch m;
        if (std::regex_search(line, m, d_file)) vpath = m[1].str();
        if (std::regex_search(line, m, d_expect)) expected.insert(m[1].str());
        if (std::regex_search(line, m, d_advisory)) {
          expected_advisory.insert(m[1].str());
        }
      }
    }
    std::string module = vpath;
    if (module.rfind("src/", 0) == 0) module = module.substr(4);
    module = module.substr(0, module.find('/'));

    const auto src = load(vpath, module, *text);
    boundarycheck::Analyzer analyzer(
        boundarycheck::build_model(boundarycheck::collect_annotations(src)));
    analyzer.add_file(src);
    const auto findings = analyzer.finish();

    std::set<std::string> fired;
    std::set<std::string> fired_advisory;
    for (const lintcore::Finding& f : findings) {
      (f.advisory ? fired_advisory : fired).insert(f.rule);
    }

    auto fail = [&](const std::string& why) {
      std::fprintf(stderr, "FAIL %s: %s\n", p.filename().string().c_str(),
                   why.c_str());
      lintcore::print_findings(findings);
      ++failures;
    };

    if (is_bad) {
      if (expected.empty() && expected_advisory.empty()) {
        fail("known_bad fixture declares no boundarycheck-expect directive");
        continue;
      }
      for (const std::string& rule : expected) {
        if (fired.count(rule) == 0) {
          fail("expected rule " + rule + " did not fire");
        }
      }
      for (const std::string& rule : fired) {
        if (expected.count(rule) == 0) {
          fail("unexpected rule " + rule + " fired");
        }
      }
      for (const std::string& rule : expected_advisory) {
        if (fired_advisory.count(rule) == 0) {
          fail("expected advisory " + rule + " did not fire");
        }
      }
      for (const std::string& rule : fired_advisory) {
        if (expected_advisory.count(rule) == 0) {
          fail("unexpected advisory " + rule + " fired");
        }
      }
    } else if (!findings.empty()) {
      fail("known_good fixture produced findings");
    }
  }
  std::fprintf(stderr, "boundarycheck fixtures: %d checked, %d failure(s)\n",
               checked, failures);
  if (checked == 0) {
    std::fprintf(stderr, "boundarycheck: no fixtures found under %s\n",
                 dir.string().c_str());
    return 2;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--root") {
    return run_root(argv[2]);
  }
  if (argc == 3 && std::string(argv[1]) == "--fixtures") {
    return run_fixtures(argv[2]);
  }
  std::fprintf(stderr,
               "usage: boundarycheck --root <src-dir> | --fixtures <dir>\n");
  return 2;
}
