#include "ratls/verifier.h"

#include "common/error.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace vnfsgx::ratls {

namespace {

void meter(const char* result) {
  obs::registry()
      .counter("vnfsgx_ratls_appraisals_total", {{"result", result}},
               "RA-TLS certificate appraisals by outcome")
      .add();
}

ByteView sig_view(const crypto::Ed25519Signature& sig) {
  return ByteView(sig.data(), sig.size());
}

}  // namespace

Verifier::Verifier(VerifierPolicy policy) : policy_(std::move(policy)) {
  if (!policy_.attestation_key || !policy_.enclave_allowed) {
    throw Error(
        "ratls: verifier policy requires attestation_key and enclave_allowed");
  }
}

bool Verifier::recognizes(const pki::Certificate& leaf) const {
  return carries_evidence(leaf);
}

std::uint64_t Verifier::policy_generation() const {
  return policy_.policy_generation ? policy_.policy_generation() : 0;
}

const char* Verifier::pre_check(const pki::Certificate& leaf,
                                std::optional<Evidence>& evidence) const {
  try {
    evidence = find_evidence(leaf);
  } catch (const ParseError&) {
    return "malformed";
  }
  if (!evidence) return "malformed";
  // The quote must speak for THIS certificate's key: a quote lifted from a
  // genuine enclave cannot vouch for an attacker-chosen key.
  if (evidence->quote.body.report_data !=
      report_data_for_key(leaf.public_key)) {
    return "key_binding";
  }
  // SIGSTRUCT identity: the claimed vendor key must hash to the quote's
  // MRSIGNER, and the ISV identity must match what the quote reports.
  crypto::Sha256 h;
  h.update(evidence->vendor_key);
  if (h.finish() != evidence->quote.body.mr_signer ||
      evidence->isv_prod_id != evidence->quote.body.isv_prod_id ||
      evidence->isv_svn != evidence->quote.body.isv_svn) {
    return "sigstruct_identity";
  }
  return nullptr;
}

const char* Verifier::post_check(const Evidence& evidence) const {
  if (!policy_.enclave_allowed(evidence.quote.body.mr_enclave)) {
    return "measurement";
  }
  return nullptr;
}

pki::VerifyStatus Verifier::appraise(const pki::Certificate& leaf) const {
  static obs::Histogram& duration = obs::registry().histogram(
      "vnfsgx_ratls_appraise_duration_us", {}, {},
      "RA-TLS appraisal wall time (in-handshake attestation)");
  obs::Span span =
      obs::tracer().start_span("ratls_appraise", obs::kStepQuoteVerification);
  std::optional<Evidence> evidence;
  const char* why = pre_check(leaf, evidence);
  if (!why && !leaf.verify_signature(leaf.public_key)) {
    why = "self_signature";
  }
  if (!why) {
    const auto attestation_key =
        policy_.attestation_key(evidence->quote.platform_id);
    if (!attestation_key) {
      why = "unknown_platform";
    } else if (!crypto::ed25519_verify(*attestation_key,
                                       evidence->quote.encode_tbs(),
                                       sig_view(evidence->quote.signature))) {
      why = "quote_signature";
    }
  }
  if (!why) why = post_check(*evidence);
  meter(why ? why : "ok");
  span.annotate("result", why ? why : "ok");
  span.end();
  duration.observe(span.elapsed_us());
  return why ? pki::VerifyStatus::kAttestationFailed : pki::VerifyStatus::kOk;
}

std::vector<pki::VerifyStatus> Verifier::appraise_batch(
    std::span<const pki::Certificate* const> leaves) const {
  static obs::Histogram& batch_size = obs::registry().histogram(
      "vnfsgx_ed25519_batch_size", {}, {1, 2, 4, 8, 16, 32, 64, 128, 256},
      "Signatures checked per Ed25519 batch verification");
  obs::Span span = obs::tracer().start_span("ratls_appraise_batch",
                                            obs::kStepQuoteVerification);
  span.annotate("leaves", std::to_string(leaves.size()));

  std::vector<const char*> why(leaves.size(), nullptr);
  std::vector<std::optional<Evidence>> evidence(leaves.size());
  std::vector<std::size_t> pending;  // leaves awaiting signature verdicts
  std::vector<Bytes> messages;       // stable storage for message views
  std::vector<crypto::Ed25519BatchItem> items;

  for (std::size_t i = 0; i < leaves.size(); ++i) {
    why[i] = pre_check(*leaves[i], evidence[i]);
    if (why[i]) continue;
    const auto attestation_key =
        policy_.attestation_key(evidence[i]->quote.platform_id);
    if (!attestation_key) {
      why[i] = "unknown_platform";
      continue;
    }
    // Two batch items per leaf: certificate self-signature, quote signature.
    pending.push_back(i);
    messages.push_back(leaves[i]->tbs());
    crypto::Ed25519BatchItem self_sig;
    self_sig.public_key = leaves[i]->public_key;
    self_sig.signature = sig_view(leaves[i]->signature);
    items.push_back(self_sig);
    messages.push_back(evidence[i]->quote.encode_tbs());
    crypto::Ed25519BatchItem quote_sig;
    quote_sig.public_key = *attestation_key;
    quote_sig.signature = sig_view(evidence[i]->quote.signature);
    items.push_back(quote_sig);
  }
  // messages stops growing here, so the views stay valid.
  for (std::size_t j = 0; j < items.size(); ++j) {
    items[j].message = ByteView(messages[j]);
  }
  if (!items.empty()) {
    batch_size.observe(static_cast<double>(items.size()));
    const std::vector<bool> sig_ok = crypto::ed25519_verify_batch(
        std::span<const crypto::Ed25519BatchItem>(items), nullptr);
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const std::size_t i = pending[j];
      if (!sig_ok[2 * j]) {
        why[i] = "self_signature";
      } else if (!sig_ok[2 * j + 1]) {
        why[i] = "quote_signature";
      }
    }
  }

  std::vector<pki::VerifyStatus> results(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (!why[i]) why[i] = post_check(*evidence[i]);
    meter(why[i] ? why[i] : "ok");
    results[i] = why[i] ? pki::VerifyStatus::kAttestationFailed
                        : pki::VerifyStatus::kOk;
  }
  span.annotate("result", "done");
  span.end();
  return results;
}

}  // namespace vnfsgx::ratls
