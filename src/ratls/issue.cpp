#include "ratls/issue.h"

namespace vnfsgx::ratls {

pki::Certificate make_certificate(const CertificateSpec& spec,
                                  const crypto::Ed25519PublicKey& key,
                                  const Evidence& evidence,
                                  const SignCallback& sign) {
  pki::Certificate cert;
  cert.serial = spec.serial;
  cert.subject = spec.subject;
  cert.issuer = spec.subject;  // self-signed: the quote is the chain
  cert.not_before = spec.not_before;
  cert.not_after = spec.not_after;
  cert.public_key = key;
  cert.is_ca = false;
  cert.key_usage = spec.key_usage;
  cert.extensions.push_back(to_extension(evidence));
  cert.signature = sign(cert.tbs());
  return cert;
}

}  // namespace vnfsgx::ratls
