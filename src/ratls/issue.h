// Self-signed RA-TLS certificate issuance.
//
// An RA-TLS certificate needs no CA: the subject signs its own TBS (proof
// of key possession) and the embedded quote vouches for the key's enclave
// residency. In production the signer callback is the credential enclave's
// kOpSign ECALL, so issuance happens without the private key ever leaving
// the enclave; tests use a software key.
#pragma once

#include <cstdint>
#include <functional>

#include "common/sim_clock.h"
#include "pki/certificate.h"
#include "ratls/evidence.h"

namespace vnfsgx::ratls {

struct CertificateSpec {
  std::uint64_t serial = 1;
  pki::DistinguishedName subject;
  UnixTime not_before = 0;
  UnixTime not_after = 0;
  /// Both auth usages by default: a VNF<->VNF attested channel has the same
  /// certificate acting as client on one side and server on the other.
  std::uint8_t key_usage =
      static_cast<std::uint8_t>(pki::KeyUsage::kClientAuth) |
      static_cast<std::uint8_t>(pki::KeyUsage::kServerAuth);
};

using SignCallback = std::function<crypto::Ed25519Signature(ByteView)>;

/// Build the self-signed certificate: subject == issuer, public key `key`,
/// the evidence attached as the RA-TLS extension, TBS signed by `sign`
/// (which must hold the private half of `key`).
pki::Certificate make_certificate(const CertificateSpec& spec,
                                  const crypto::Ed25519PublicKey& key,
                                  const Evidence& evidence,
                                  const SignCallback& sign);

}  // namespace vnfsgx::ratls
