// RA-TLS evidence: an SGX quote (plus platform-integrity context) carried
// in an X.509 certificate extension, binding the certificate's key to an
// attested enclave (Knauth et al., "Integrating Remote Attestation with
// TLS"). The quote's report data commits to the TLS public key, so a
// verifier that appraises the quote has simultaneously authenticated the
// handshake key — one handshake both attests and authenticates, replacing
// the separate attest round-trips (Fig. 1 steps 3-4) and the certificate
// provisioning leg (step 5).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/bytes.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"
#include "pki/certificate.h"
#include "sgx/structs.h"

namespace vnfsgx::ratls {

/// Extension id of the RA-TLS evidence in pki::Certificate::extensions
/// ("RAT1"). Validators that do not know this id ignore it (and still
/// round-trip the certificate byte-identically).
inline constexpr std::uint32_t kEvidenceExtensionId = 0x52415431;

/// Domain separator hashed into the quote's report data ahead of the TLS
/// public key, so an RA-TLS quote can never be replayed as the enrollment
/// protocol's nonce binding (SHA256(nonce || key)) or vice versa.
inline constexpr std::string_view kReportDataContext = "vnfsgx-ratls-v1";

/// Decoded RA-TLS extension payload.
///
/// boundary: wire — parsed from attacker-supplied certificate bytes at the
/// trust boundary; decode() copies and validates each field exactly once,
/// and boundarycheck keeps B2 (length discipline) and B4 (secret egress)
/// pointed at the quote parse path.
struct Evidence {
  /// The Quoting Enclave's signed statement about the presenting enclave;
  /// report_data must equal report_data_for_key(certificate public key).
  sgx::Quote quote;
  /// SHA-256 of the host's encoded IMA measurement list at issuance time
  /// (all-zero when the issuer had no IML context) — correlates the enclave
  /// quote with the platform-integrity leg of Fig. 1.
  crypto::Sha256Digest iml_digest{};
  /// SIGSTRUCT identity: the vendor key whose hash must equal the quote's
  /// MRSIGNER, plus the product/SVN pair that vendor signed.
  crypto::Ed25519PublicKey vendor_key{};
  std::uint16_t isv_prod_id = 0;
  std::uint16_t isv_svn = 0;

  Bytes encode() const;
  static Evidence decode(ByteView data);
};

/// Report data binding the TLS key into the quote:
/// SHA256(kReportDataContext || public_key) || zeros.
sgx::ReportData report_data_for_key(const crypto::Ed25519PublicKey& key);

/// Wrap evidence as a certificate extension.
pki::CertificateExtension to_extension(const Evidence& evidence);

/// True when the certificate carries an RA-TLS extension (well-formed or
/// not) — the recognizer for verifier delegation and downgrade checks.
bool carries_evidence(const pki::Certificate& cert);

/// Parse the RA-TLS extension off a certificate. nullopt when absent;
/// throws ParseError when present but malformed.
std::optional<Evidence> find_evidence(const pki::Certificate& cert);

}  // namespace vnfsgx::ratls
