// Handshake-time RA-TLS appraisal: the pki::AttestedCertVerifier
// implementation TLS truststores delegate to when a peer certificate
// carries the RA-TLS extension.
//
// Appraisal checks (all must pass for kOk; the cheap structural checks run
// before any signature work):
//   1. extension parses (stale/garbage evidence bytes fail here),
//   2. certificate self-signature — proof of key possession,
//   3. report-data <-> public-key binding — the quote speaks for THIS key,
//   4. quote signature under the platform's registered attestation key,
//   5. SIGSTRUCT identity: MRSIGNER == SHA-256(vendor key), ISV prod/SVN
//      consistent between evidence and quote body,
//   6. measurement (MRENCLAVE) allowed by the appraisal policy.
// Any failure maps to VerifyStatus::kAttestationFailed, which the TLS
// layer escalates to a SecurityViolation.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "pki/truststore.h"
#include "ratls/evidence.h"
#include "sgx/measurement.h"

namespace vnfsgx::ratls {

/// Trust-anchor callbacks. Function-typed so this module needs no core/ias
/// dependency (core sits above vnf, which links ratls): deployments bind
/// these to IasService platform registrations and the Verification
/// Manager's AppraisalDatabase.
struct VerifierPolicy {
  /// Attestation public key for a platform, from IAS provisioning state;
  /// nullopt for unknown or revoked platforms. Required.
  std::function<std::optional<crypto::Ed25519PublicKey>(
      const sgx::PlatformId&)>
      attestation_key;
  /// Enclave-measurement whitelist (AppraisalDatabase::enclave_allowed).
  /// Required.
  std::function<bool(const sgx::Measurement&)> enclave_allowed;
  /// Appraisal-policy generation backing the truststore cache key
  /// (AppraisalDatabase::generation). Optional; constant 0 when unset.
  std::function<std::uint64_t()> policy_generation;
};

class Verifier final : public pki::AttestedCertVerifier {
 public:
  explicit Verifier(VerifierPolicy policy);

  bool recognizes(const pki::Certificate& leaf) const override;
  pki::VerifyStatus appraise(const pki::Certificate& leaf) const override;
  /// One Ed25519 batch covers every leaf's self-signature and quote
  /// signature (2 items per leaf) — the PR-5 batching reused in-handshake.
  std::vector<pki::VerifyStatus> appraise_batch(
      std::span<const pki::Certificate* const> leaves) const override;
  std::uint64_t policy_generation() const override;

 private:
  /// The checks before any signature work; returns the failure label
  /// ("malformed", "key_binding", ...) or nullptr, plus parsed evidence.
  const char* pre_check(const pki::Certificate& leaf,
                        std::optional<Evidence>& evidence) const;
  /// The checks after the signatures verified; label or nullptr.
  const char* post_check(const Evidence& evidence) const;

  VerifierPolicy policy_;
};

}  // namespace vnfsgx::ratls
