#include "ratls/evidence.h"

#include "pki/tlv.h"

namespace vnfsgx::ratls {

namespace {
enum : std::uint8_t {
  kTagQuote = 0x01,
  kTagImlDigest = 0x02,
  kTagVendorKey = 0x03,
  kTagIsvProdId = 0x04,
  kTagIsvSvn = 0x05,
};
}  // namespace

Bytes Evidence::encode() const {
  pki::TlvWriter w;
  w.add_bytes(kTagQuote, quote.encode());
  w.add_bytes(kTagImlDigest, iml_digest);
  w.add_bytes(kTagVendorKey, vendor_key);
  w.add_u32(kTagIsvProdId, isv_prod_id);
  w.add_u32(kTagIsvSvn, isv_svn);
  return w.take();
}

Evidence Evidence::decode(ByteView data) {
  pki::TlvReader r(data);
  Evidence ev;
  ev.quote = sgx::Quote::decode(r.expect(kTagQuote));
  ev.iml_digest = r.expect_array<crypto::kSha256DigestSize>(kTagImlDigest);
  ev.vendor_key = r.expect_array<crypto::kEd25519PublicKeySize>(kTagVendorKey);
  const std::uint32_t prod = r.expect_u32(kTagIsvProdId);
  const std::uint32_t svn = r.expect_u32(kTagIsvSvn);
  if (prod > 0xffff || svn > 0xffff) {
    throw ParseError("ratls: isv identity out of range");
  }
  ev.isv_prod_id = static_cast<std::uint16_t>(prod);
  ev.isv_svn = static_cast<std::uint16_t>(svn);
  if (!r.done()) throw ParseError("ratls: trailing evidence data");
  return ev;
}

sgx::ReportData report_data_for_key(const crypto::Ed25519PublicKey& key) {
  crypto::Sha256 h;
  h.update(to_bytes(kReportDataContext));
  h.update(key);
  const crypto::Sha256Digest digest = h.finish();
  sgx::ReportData data{};
  std::copy(digest.begin(), digest.end(), data.begin());
  return data;
}

pki::CertificateExtension to_extension(const Evidence& evidence) {
  return pki::CertificateExtension{kEvidenceExtensionId, evidence.encode()};
}

bool carries_evidence(const pki::Certificate& cert) {
  return cert.find_extension(kEvidenceExtensionId) != nullptr;
}

std::optional<Evidence> find_evidence(const pki::Certificate& cert) {
  const pki::CertificateExtension* ext =
      cert.find_extension(kEvidenceExtensionId);
  if (!ext) return std::nullopt;
  return Evidence::decode(ext->value);
}

}  // namespace vnfsgx::ratls
