#include "dataplane/southbound.h"

#include "common/logging.h"
#include "net/framing.h"
#include "pki/tlv.h"

namespace vnfsgx::dataplane {

namespace {

enum : std::uint8_t {
  kTagDpid = 0x01,
  kTagName = 0x02,
  kTagPriority = 0x03,
  kTagSrcMac = 0x04,
  kTagDstMac = 0x05,
  kTagSrcIp = 0x06,
  kTagDstIp = 0x07,
  kTagSrcPort = 0x08,
  kTagDstPort = 0x09,
  kTagProto = 0x0a,
  kTagInPort = 0x0b,
  kTagActionType = 0x0c,
  kTagOutPort = 0x0d,
  kTagPayload = 0x0e,
  kTagToken = 0x0f,
  kTagPktSrcMac = 0x10,
  kTagPktDstMac = 0x11,
  kTagPktSrcIp = 0x12,
  kTagPktDstIp = 0x13,
  kTagPktSrcPort = 0x14,
  kTagPktDstPort = 0x15,
  kTagPktProto = 0x16,
};

Bytes with_type(SbType type, Bytes body) {
  Bytes out;
  out.reserve(body.size() + 1);
  append_u8(out, static_cast<std::uint8_t>(type));
  append(out, body);
  return out;
}

void encode_match(pki::TlvWriter& w, const Match& match) {
  if (match.src_mac) w.add_u64(kTagSrcMac, *match.src_mac);
  if (match.dst_mac) w.add_u64(kTagDstMac, *match.dst_mac);
  if (match.src_ip) w.add_u32(kTagSrcIp, *match.src_ip);
  if (match.dst_ip) w.add_u32(kTagDstIp, *match.dst_ip);
  if (match.src_port) w.add_u32(kTagSrcPort, *match.src_port);
  if (match.dst_port) w.add_u32(kTagDstPort, *match.dst_port);
  if (match.proto) {
    w.add_u8(kTagProto, static_cast<std::uint8_t>(*match.proto));
  }
  if (match.in_port) w.add_u32(kTagInPort, *match.in_port);
}

void encode_packet(pki::TlvWriter& w, const Packet& p) {
  w.add_u64(kTagPktSrcMac, p.src_mac);
  w.add_u64(kTagPktDstMac, p.dst_mac);
  w.add_u32(kTagPktSrcIp, p.src_ip);
  w.add_u32(kTagPktDstIp, p.dst_ip);
  w.add_u32(kTagPktSrcPort, p.src_port);
  w.add_u32(kTagPktDstPort, p.dst_port);
  w.add_u8(kTagPktProto, static_cast<std::uint8_t>(p.proto));
  w.add_bytes(kTagPayload, p.payload);
}

}  // namespace

Bytes encode_hello(std::uint64_t dpid) {
  pki::TlvWriter w;
  w.add_u64(kTagDpid, dpid);
  return with_type(SbType::kHello, w.take());
}

Bytes encode_flow_mod(SbType type, const FlowEntry& entry) {
  pki::TlvWriter w;
  w.add_string(kTagName, entry.name);
  w.add_u32(kTagPriority, static_cast<std::uint32_t>(entry.priority));
  encode_match(w, entry.match);
  w.add_u8(kTagActionType, static_cast<std::uint8_t>(entry.action.type));
  w.add_u32(kTagOutPort, entry.action.out_port);
  return with_type(type, w.take());
}

Bytes encode_packet_in(const Packet& packet, std::uint16_t in_port) {
  pki::TlvWriter w;
  w.add_u32(kTagInPort, in_port);
  encode_packet(w, packet);
  return with_type(SbType::kPacketIn, w.take());
}

Bytes encode_echo(SbType type, std::uint64_t token) {
  pki::TlvWriter w;
  w.add_u64(kTagToken, token);
  return with_type(type, w.take());
}

SbMessage decode_sb(ByteView frame) {
  if (frame.empty()) throw ParseError("southbound: empty frame");
  SbMessage msg;
  msg.type = static_cast<SbType>(frame[0]);
  pki::TlvReader r(frame.subspan(1));
  switch (msg.type) {
    case SbType::kHello:
      msg.dpid = r.expect_u64(kTagDpid);
      break;
    case SbType::kFlowModAdd:
    case SbType::kFlowModRemove: {
      msg.flow.name = r.expect_string(kTagName);
      msg.flow.priority = static_cast<int>(r.expect_u32(kTagPriority));
      while (!r.done()) {
        switch (r.peek_tag()) {
          case kTagSrcMac:
            msg.flow.match.src_mac = r.expect_u64(kTagSrcMac);
            break;
          case kTagDstMac:
            msg.flow.match.dst_mac = r.expect_u64(kTagDstMac);
            break;
          case kTagSrcIp:
            msg.flow.match.src_ip = r.expect_u32(kTagSrcIp);
            break;
          case kTagDstIp:
            msg.flow.match.dst_ip = r.expect_u32(kTagDstIp);
            break;
          case kTagSrcPort:
            msg.flow.match.src_port =
                static_cast<std::uint16_t>(r.expect_u32(kTagSrcPort));
            break;
          case kTagDstPort:
            msg.flow.match.dst_port =
                static_cast<std::uint16_t>(r.expect_u32(kTagDstPort));
            break;
          case kTagProto:
            msg.flow.match.proto = static_cast<IpProto>(r.expect_u8(kTagProto));
            break;
          case kTagInPort:
            msg.flow.match.in_port =
                static_cast<std::uint16_t>(r.expect_u32(kTagInPort));
            break;
          case kTagActionType:
            msg.flow.action.type =
                static_cast<ActionType>(r.expect_u8(kTagActionType));
            break;
          case kTagOutPort:
            msg.flow.action.out_port =
                static_cast<std::uint16_t>(r.expect_u32(kTagOutPort));
            break;
          default:
            throw ParseError("southbound: unknown flow-mod field");
        }
      }
      break;
    }
    case SbType::kPacketIn: {
      msg.in_port = static_cast<std::uint16_t>(r.expect_u32(kTagInPort));
      msg.packet.src_mac = r.expect_u64(kTagPktSrcMac);
      msg.packet.dst_mac = r.expect_u64(kTagPktDstMac);
      msg.packet.src_ip = r.expect_u32(kTagPktSrcIp);
      msg.packet.dst_ip = r.expect_u32(kTagPktDstIp);
      msg.packet.src_port = static_cast<std::uint16_t>(r.expect_u32(kTagPktSrcPort));
      msg.packet.dst_port = static_cast<std::uint16_t>(r.expect_u32(kTagPktDstPort));
      msg.packet.proto = static_cast<IpProto>(r.expect_u8(kTagPktProto));
      msg.packet.payload = r.expect_bytes(kTagPayload);
      break;
    }
    case SbType::kEchoRequest:
    case SbType::kEchoReply:
      msg.token = r.expect_u64(kTagToken);
      break;
    default:
      throw ParseError("southbound: unknown message type");
  }
  return msg;
}

// ---------------------------------------------------------------------------
// SwitchAgent
// ---------------------------------------------------------------------------

SwitchAgent::SwitchAgent(Switch& sw, net::StreamPtr channel)
    : switch_(sw), channel_(std::move(channel)) {
  net::write_frame(*channel_, encode_hello(switch_.dpid()));
}

void SwitchAgent::pump_packet_ins() {
  while (auto packet_in = switch_.pop_packet_in()) {
    net::write_frame(*channel_,
                     encode_packet_in(packet_in->packet, packet_in->in_port));
  }
}

bool SwitchAgent::serve_one() {
  Bytes frame;
  try {
    frame = net::read_frame(*channel_);
  } catch (const IoError&) {
    return false;
  }
  const SbMessage msg = decode_sb(frame);
  switch (msg.type) {
    case SbType::kFlowModAdd:
      switch_.add_flow(msg.flow);
      break;
    case SbType::kFlowModRemove:
      switch_.remove_flow(msg.flow.name);
      break;
    case SbType::kEchoRequest:
      net::write_frame(*channel_, encode_echo(SbType::kEchoReply, msg.token));
      break;
    default:
      throw ProtocolError("switch agent: unexpected message");
  }
  return true;
}

// ---------------------------------------------------------------------------
// ControllerEndpoint
// ---------------------------------------------------------------------------

void ControllerEndpoint::serve(net::StreamPtr channel) {
  // First frame must be Hello.
  std::uint64_t dpid = 0;
  try {
    const SbMessage hello = decode_sb(net::read_frame(*channel));
    if (hello.type != SbType::kHello) {
      throw ProtocolError("southbound: expected Hello");
    }
    dpid = hello.dpid;
  } catch (const Error& e) {
    VNFSGX_LOG_WARN("southbound", "agent rejected: ", e.what());
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    datapaths_[dpid] = channel.get();
  }
  VNFSGX_LOG_INFO("southbound", "datapath connected: ", dpid);

  try {
    while (true) {
      Bytes frame;
      try {
        frame = net::read_frame(*channel);
      } catch (const IoError&) {
        break;
      }
      const SbMessage msg = decode_sb(frame);
      switch (msg.type) {
        case SbType::kPacketIn:
          packet_ins_.fetch_add(1, std::memory_order_relaxed);
          if (on_packet_in_) {
            on_packet_in_(dpid, PacketIn{msg.packet, msg.in_port});
          }
          break;
        case SbType::kEchoReply:
          break;  // liveness bookkeeping only
        default:
          throw ProtocolError("southbound: unexpected agent message");
      }
    }
  } catch (const Error& e) {
    VNFSGX_LOG_WARN("southbound", "datapath ", dpid, " error: ", e.what());
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  datapaths_.erase(dpid);
}

bool ControllerEndpoint::send_to(std::uint64_t dpid, const Bytes& frame) {
  net::Stream* channel = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = datapaths_.find(dpid);
    if (it == datapaths_.end()) return false;
    channel = it->second;
  }
  try {
    net::write_frame(*channel, frame);
    return true;
  } catch (const IoError&) {
    return false;
  }
}

bool ControllerEndpoint::add_flow(std::uint64_t dpid, const FlowEntry& entry) {
  return send_to(dpid, encode_flow_mod(SbType::kFlowModAdd, entry));
}

bool ControllerEndpoint::remove_flow(std::uint64_t dpid,
                                     const std::string& name) {
  FlowEntry entry;
  entry.name = name;
  return send_to(dpid, encode_flow_mod(SbType::kFlowModRemove, entry));
}

bool ControllerEndpoint::ping(std::uint64_t dpid, std::uint64_t token) {
  return send_to(dpid, encode_echo(SbType::kEchoRequest, token));
}

std::vector<std::uint64_t> ControllerEndpoint::connected_dpids() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(datapaths_.size());
  for (const auto& [dpid, stream] : datapaths_) out.push_back(dpid);
  return out;
}

}  // namespace vnfsgx::dataplane
