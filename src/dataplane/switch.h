// OpenFlow-style switch: prioritized flow table, per-flow counters,
// packet-in for table misses. The controller's staticflowpusher REST
// endpoints program these tables.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dataplane/packet.h"

namespace vnfsgx::dataplane {

enum class ActionType : std::uint8_t {
  kForward,
  kDrop,
  kSendToController,
  kInspect,  // punt through the registered inspector, then forward/drop
};

struct Action {
  ActionType type = ActionType::kDrop;
  std::uint16_t out_port = 0;  // for kForward / kInspect pass verdicts

  static Action forward(std::uint16_t port) {
    return Action{ActionType::kForward, port};
  }
  static Action drop() { return Action{ActionType::kDrop, 0}; }
  static Action to_controller() {
    return Action{ActionType::kSendToController, 0};
  }
  /// Punt to the inspector NF; clean verdicts forward out `port`.
  static Action inspect(std::uint16_t port) {
    return Action{ActionType::kInspect, port};
  }
};

/// Inspector NF verdict for one punted packet.
enum class InspectVerdict : std::uint8_t {
  kForward,  // clean: forward along the flow's out_port
  kDrop,     // signature hit: discard
  kAlert,    // signature hit on an alert rule: forward, notify controller
};

struct InspectionOutcome {
  InspectVerdict verdict = InspectVerdict::kForward;
  std::string rule;  // matched rule name for kDrop / kAlert
};

/// The punt-path hook. Deliberately an opaque callable: the dataplane knows
/// nothing about enclaves — the VNF layer binds this to its in-enclave
/// inspection NF (vnf::InspectionClient::as_inspector).
using InspectorFn =
    std::function<InspectionOutcome(const Packet&, std::uint16_t in_port)>;

/// Burst punt-path hook: all packets a burst punted, inspected in one
/// pipelined pass (the switchless ring keeps the whole burst in flight).
/// Packets are passed by pointer because the punted subset of a burst is
/// rarely contiguous; outcomes must be positional and complete — a short
/// or throwing reply fails the whole punted set CLOSED.
using BurstInspectorFn = std::function<std::vector<InspectionOutcome>(
    std::span<const Packet* const>, std::uint16_t in_port)>;

struct FlowEntry {
  std::string name;  // staticflowpusher identifier
  int priority = 0;
  Match match;
  Action action;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

/// A packet punted to the controller, with its arrival port.
struct PacketIn {
  Packet packet;
  std::uint16_t in_port = 0;
};

/// Result of running a packet through a switch.
struct ForwardingResult {
  enum class Kind { kForwarded, kDropped, kPacketIn, kTableMiss };
  Kind kind = Kind::kTableMiss;
  std::uint16_t out_port = 0;
  const FlowEntry* entry = nullptr;
  // Punt-path trace: set when the matched action was kInspect.
  bool inspected = false;
  InspectVerdict verdict = InspectVerdict::kForward;
  std::string inspect_rule;  // rule behind a kDrop/kAlert verdict
};

class Switch {
 public:
  explicit Switch(std::uint64_t dpid) : dpid_(dpid) {}

  std::uint64_t dpid() const { return dpid_; }
  std::string dpid_string() const;

  /// Add or replace (by name) a flow entry.
  void add_flow(FlowEntry entry);
  bool remove_flow(const std::string& name);
  const std::vector<FlowEntry>& flows() const { return flows_; }

  /// Process a packet: highest priority match wins; ties broken by match
  /// specificity, then insertion order.
  ForwardingResult process(const Packet& packet, std::uint16_t in_port);

  /// Process a burst. Equivalent to calling process() per packet, except
  /// that punted packets are gathered and handed to the burst inspector in
  /// one call (falling back to the per-packet inspector, then to the
  /// fail-closed drop, when no burst inspector is bound). Results are
  /// positional.
  std::vector<ForwardingResult> process_burst(std::span<const Packet> packets,
                                              std::uint16_t in_port);

  /// Bind the inspection NF serving this switch's kInspect actions. With no
  /// inspector bound (or an inspector that throws), kInspect fails CLOSED:
  /// the packet is dropped rather than forwarded uninspected.
  void set_inspector(InspectorFn inspector) {
    inspector_ = std::move(inspector);
  }
  bool has_inspector() const { return static_cast<bool>(inspector_); }

  /// Bind the burst inspector used by process_burst (the per-packet
  /// inspector still serves process()). Same fail-closed contract.
  void set_burst_inspector(BurstInspectorFn inspector) {
    burst_inspector_ = std::move(inspector);
  }
  bool has_burst_inspector() const {
    return static_cast<bool>(burst_inspector_);
  }

  /// Packets punted to the controller (table miss or explicit action).
  const std::deque<PacketIn>& packet_in_queue() const { return packet_ins_; }
  void clear_packet_ins() { packet_ins_.clear(); }
  /// Remove and return the oldest packet-in (nullopt when empty).
  std::optional<PacketIn> pop_packet_in();

  std::uint64_t total_packets() const { return total_packets_; }

 private:
  FlowEntry* match_flow(const Packet& packet, std::uint16_t in_port);
  ForwardingResult apply_entry(FlowEntry* entry, const Packet& packet,
                               std::uint16_t in_port, bool defer_inspection);
  ForwardingResult run_inspection(FlowEntry& entry, const Packet& packet,
                                  std::uint16_t in_port);
  ForwardingResult finish_inspection(FlowEntry& entry, const Packet& packet,
                                     std::uint16_t in_port,
                                     InspectionOutcome outcome);
  static ForwardingResult inspection_failure(FlowEntry& entry,
                                             std::string rule);

  std::uint64_t dpid_;
  std::vector<FlowEntry> flows_;
  std::deque<PacketIn> packet_ins_;
  InspectorFn inspector_;
  BurstInspectorFn burst_inspector_;
  std::uint64_t total_packets_ = 0;
};

}  // namespace vnfsgx::dataplane
