// Packets and header matching for the simulated forwarding plane.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace vnfsgx::dataplane {

enum class IpProto : std::uint8_t { kTcp = 6, kUdp = 17, kIcmp = 1 };

struct Packet {
  std::uint64_t src_mac = 0;
  std::uint64_t dst_mac = 0;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kTcp;
  Bytes payload;
};

/// Parse dotted-quad to host-order u32; throws std::invalid_argument.
std::uint32_t ipv4(const std::string& dotted);
std::string ipv4_to_string(std::uint32_t ip);

/// OpenFlow-style match: unset fields are wildcards.
struct Match {
  std::optional<std::uint64_t> src_mac;
  std::optional<std::uint64_t> dst_mac;
  std::optional<std::uint32_t> src_ip;
  std::optional<std::uint32_t> dst_ip;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<IpProto> proto;
  std::optional<std::uint16_t> in_port;

  bool matches(const Packet& packet, std::uint16_t packet_in_port) const;
  /// Number of specified fields (used to break priority ties).
  int specificity() const;
};

}  // namespace vnfsgx::dataplane
