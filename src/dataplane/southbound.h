// Southbound channel: the OpenFlow-equivalent control protocol between
// switches and the controller, over any net::Stream.
//
// Floodlight programs real switches over OpenFlow; in this simulator the
// REST layer mutates a local Fabric directly (like Floodlight's in-process
// providers), and this module supplies the distributed variant: a
// SwitchAgent wraps a switch and speaks the channel protocol; a
// ControllerEndpoint accepts agent connections, tracks the connected
// datapaths, pushes flow-mods, and receives packet-ins.
//
// Message flow:
//   agent -> controller : Hello{dpid}
//   controller -> agent : FlowMod{add|remove, FlowEntry}
//   agent -> controller : PacketIn{packet, in_port}   (pumped explicitly)
//   agent -> controller : EchoReply  (in response to EchoRequest)
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "dataplane/switch.h"
#include "net/stream.h"

namespace vnfsgx::dataplane {

enum class SbType : std::uint8_t {
  kHello = 1,
  kFlowModAdd = 2,
  kFlowModRemove = 3,
  kPacketIn = 4,
  kEchoRequest = 5,
  kEchoReply = 6,
};

/// Serialized forms (TLV bodies; see docs/PROTOCOL.md).
Bytes encode_hello(std::uint64_t dpid);
Bytes encode_flow_mod(SbType type, const FlowEntry& entry);
Bytes encode_packet_in(const Packet& packet, std::uint16_t in_port);
Bytes encode_echo(SbType type, std::uint64_t token);

struct SbMessage {
  SbType type;
  std::uint64_t dpid = 0;        // kHello
  FlowEntry flow;                // kFlowMod*
  Packet packet;                 // kPacketIn
  std::uint16_t in_port = 0;     // kPacketIn
  std::uint64_t token = 0;       // kEcho*
};

SbMessage decode_sb(ByteView frame);

/// Switch-side endpoint: owns the connection to the controller.
class SwitchAgent {
 public:
  /// Sends Hello{dpid} immediately. The agent borrows the switch; the
  /// caller keeps ownership and must outlive the agent.
  SwitchAgent(Switch& sw, net::StreamPtr channel);

  /// Forward all queued packet-ins to the controller.
  void pump_packet_ins();

  /// Process one controller message (blocking). Returns false on EOF.
  /// FlowMods are applied to the switch; echo requests are answered.
  bool serve_one();

  /// Serve until the controller disconnects.
  void serve() {
    while (serve_one()) {
    }
  }

  Switch& device() { return switch_; }

 private:
  Switch& switch_;
  net::StreamPtr channel_;
};

/// Controller-side endpoint: one instance per controller, one connection
/// handler call per agent.
class ControllerEndpoint {
 public:
  using PacketInHandler =
      std::function<void(std::uint64_t dpid, const PacketIn&)>;

  explicit ControllerEndpoint(PacketInHandler on_packet_in = nullptr)
      : on_packet_in_(std::move(on_packet_in)) {}

  /// Serve one agent connection until EOF (call from a per-connection
  /// thread). Registers the datapath on Hello, unregisters on disconnect.
  void serve(net::StreamPtr channel);

  /// Push a flow to a connected datapath. Returns false if unknown.
  bool add_flow(std::uint64_t dpid, const FlowEntry& entry);
  bool remove_flow(std::uint64_t dpid, const std::string& name);

  /// Liveness probe: sends EchoRequest; the reply is consumed by the
  /// serve loop (fire-and-forget here).
  bool ping(std::uint64_t dpid, std::uint64_t token);

  std::vector<std::uint64_t> connected_dpids() const;
  std::uint64_t packet_ins_received() const { return packet_ins_; }

 private:
  bool send_to(std::uint64_t dpid, const Bytes& frame);

  mutable std::mutex mutex_;
  std::map<std::uint64_t, net::Stream*> datapaths_;
  PacketInHandler on_packet_in_;
  std::atomic<std::uint64_t> packet_ins_{0};
};

}  // namespace vnfsgx::dataplane
