// A fabric of switches with point-to-point links; supports injecting a
// packet at a port and tracing the forwarding path hop by hop.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "dataplane/switch.h"

namespace vnfsgx::dataplane {

struct LinkEnd {
  std::uint64_t dpid = 0;
  std::uint16_t port = 0;
  bool operator<(const LinkEnd& other) const {
    return dpid != other.dpid ? dpid < other.dpid : port < other.port;
  }
  bool operator==(const LinkEnd&) const = default;
};

struct PathHop {
  std::uint64_t dpid = 0;
  std::uint16_t in_port = 0;
  ForwardingResult result;
};

class Fabric {
 public:
  Switch& add_switch(std::uint64_t dpid);
  Switch* find_switch(std::uint64_t dpid);
  const std::map<std::uint64_t, std::unique_ptr<Switch>>& switches() const {
    return switches_;
  }

  /// Bidirectional link between two switch ports.
  void link(LinkEnd a, LinkEnd b);
  const std::vector<std::pair<LinkEnd, LinkEnd>>& links() const {
    return links_;
  }

  /// Inject a packet and follow forwarding decisions until it is dropped,
  /// punted, leaves the fabric (forwarded out an unlinked port), or exceeds
  /// `max_hops` (loop guard).
  std::vector<PathHop> inject(std::uint64_t dpid, std::uint16_t in_port,
                              const Packet& packet, int max_hops = 32);

 private:
  std::map<std::uint64_t, std::unique_ptr<Switch>> switches_;
  std::vector<std::pair<LinkEnd, LinkEnd>> links_;
  std::map<LinkEnd, LinkEnd> peer_;
};

}  // namespace vnfsgx::dataplane
