// A fabric of switches with point-to-point links; supports injecting a
// packet at a port and tracing the forwarding path hop by hop.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "dataplane/switch.h"

namespace vnfsgx::dataplane {

struct LinkEnd {
  std::uint64_t dpid = 0;
  std::uint16_t port = 0;
  bool operator<(const LinkEnd& other) const {
    return dpid != other.dpid ? dpid < other.dpid : port < other.port;
  }
  bool operator==(const LinkEnd&) const = default;
};

struct PathHop {
  std::uint64_t dpid = 0;
  std::uint16_t in_port = 0;
  ForwardingResult result;
};

/// Why a traced packet stopped moving. Distinguishes "left the fabric"
/// from "the loop guard killed it" — the raw hop list cannot.
enum class PathOutcome : std::uint8_t {
  kDelivered,  // forwarded out an unlinked (edge) port: left the fabric
  kDropped,    // a switch dropped it (drop action or inspection verdict)
  kPunted,     // handed to the controller (packet-in or table miss)
  kLoopGuard,  // still circulating at max_hops; forwarding loop suspected
};

const char* to_string(PathOutcome outcome);

/// Hop-by-hop trace of one injected packet plus its terminal outcome.
struct PathTrace {
  std::vector<PathHop> hops;
  PathOutcome outcome = PathOutcome::kDropped;
};

class Fabric {
 public:
  Switch& add_switch(std::uint64_t dpid);
  Switch* find_switch(std::uint64_t dpid);
  const std::map<std::uint64_t, std::unique_ptr<Switch>>& switches() const {
    return switches_;
  }

  /// Bidirectional link between two switch ports.
  void link(LinkEnd a, LinkEnd b);
  const std::vector<std::pair<LinkEnd, LinkEnd>>& links() const {
    return links_;
  }

  /// Inject a packet and follow forwarding decisions until it is dropped,
  /// punted, leaves the fabric (forwarded out an unlinked port), or exceeds
  /// `max_hops` (loop guard). The trace's outcome says which of those
  /// actually terminated the walk.
  PathTrace inject(std::uint64_t dpid, std::uint16_t in_port,
                   const Packet& packet, int max_hops = 32);

 private:
  std::map<std::uint64_t, std::unique_ptr<Switch>> switches_;
  std::vector<std::pair<LinkEnd, LinkEnd>> links_;
  std::map<LinkEnd, LinkEnd> peer_;
};

}  // namespace vnfsgx::dataplane
