#include "dataplane/fabric.h"

#include "common/error.h"

namespace vnfsgx::dataplane {

Switch& Fabric::add_switch(std::uint64_t dpid) {
  auto [it, inserted] =
      switches_.emplace(dpid, std::make_unique<Switch>(dpid));
  if (!inserted) throw Error("fabric: duplicate dpid");
  return *it->second;
}

Switch* Fabric::find_switch(std::uint64_t dpid) {
  const auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : it->second.get();
}

void Fabric::link(LinkEnd a, LinkEnd b) {
  if (!switches_.count(a.dpid) || !switches_.count(b.dpid)) {
    throw Error("fabric: link references unknown switch");
  }
  links_.emplace_back(a, b);
  peer_[a] = b;
  peer_[b] = a;
}

std::vector<PathHop> Fabric::inject(std::uint64_t dpid, std::uint16_t in_port,
                                    const Packet& packet, int max_hops) {
  std::vector<PathHop> path;
  std::uint64_t current_dpid = dpid;
  std::uint16_t current_port = in_port;
  for (int hop = 0; hop < max_hops; ++hop) {
    Switch* sw = find_switch(current_dpid);
    if (!sw) throw Error("fabric: packet at unknown switch");
    const ForwardingResult result = sw->process(packet, current_port);
    path.push_back(PathHop{current_dpid, current_port, result});
    if (result.kind != ForwardingResult::Kind::kForwarded) break;
    const auto peer = peer_.find(LinkEnd{current_dpid, result.out_port});
    if (peer == peer_.end()) break;  // egress port: packet leaves the fabric
    current_dpid = peer->second.dpid;
    current_port = peer->second.port;
  }
  return path;
}

}  // namespace vnfsgx::dataplane
