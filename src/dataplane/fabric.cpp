#include "dataplane/fabric.h"

#include "common/error.h"

namespace vnfsgx::dataplane {

Switch& Fabric::add_switch(std::uint64_t dpid) {
  auto [it, inserted] =
      switches_.emplace(dpid, std::make_unique<Switch>(dpid));
  if (!inserted) throw Error("fabric: duplicate dpid");
  return *it->second;
}

Switch* Fabric::find_switch(std::uint64_t dpid) {
  const auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : it->second.get();
}

void Fabric::link(LinkEnd a, LinkEnd b) {
  if (!switches_.count(a.dpid) || !switches_.count(b.dpid)) {
    throw Error("fabric: link references unknown switch");
  }
  links_.emplace_back(a, b);
  peer_[a] = b;
  peer_[b] = a;
}

const char* to_string(PathOutcome outcome) {
  switch (outcome) {
    case PathOutcome::kDelivered:
      return "delivered";
    case PathOutcome::kDropped:
      return "dropped";
    case PathOutcome::kPunted:
      return "punted";
    case PathOutcome::kLoopGuard:
      return "loop-guard";
  }
  return "unknown";
}

PathTrace Fabric::inject(std::uint64_t dpid, std::uint16_t in_port,
                         const Packet& packet, int max_hops) {
  PathTrace trace;
  trace.outcome = PathOutcome::kLoopGuard;
  std::uint64_t current_dpid = dpid;
  std::uint16_t current_port = in_port;
  for (int hop = 0; hop < max_hops; ++hop) {
    Switch* sw = find_switch(current_dpid);
    if (!sw) throw Error("fabric: packet at unknown switch");
    const ForwardingResult result = sw->process(packet, current_port);
    trace.hops.push_back(PathHop{current_dpid, current_port, result});
    if (result.kind == ForwardingResult::Kind::kDropped) {
      trace.outcome = PathOutcome::kDropped;
      return trace;
    }
    if (result.kind == ForwardingResult::Kind::kPacketIn ||
        result.kind == ForwardingResult::Kind::kTableMiss) {
      trace.outcome = PathOutcome::kPunted;
      return trace;
    }
    const auto peer = peer_.find(LinkEnd{current_dpid, result.out_port});
    if (peer == peer_.end()) {
      // Egress port: the packet leaves the fabric toward a host.
      trace.outcome = PathOutcome::kDelivered;
      return trace;
    }
    current_dpid = peer->second.dpid;
    current_port = peer->second.port;
  }
  // Ran out of hop budget while still being forwarded switch-to-switch.
  return trace;
}

}  // namespace vnfsgx::dataplane
