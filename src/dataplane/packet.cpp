#include "dataplane/packet.h"

#include <sstream>
#include <stdexcept>

namespace vnfsgx::dataplane {

std::uint32_t ipv4(const std::string& dotted) {
  std::uint32_t out = 0;
  std::istringstream in(dotted);
  for (int i = 0; i < 4; ++i) {
    int octet;
    if (!(in >> octet) || octet < 0 || octet > 255) {
      throw std::invalid_argument("bad IPv4 address: " + dotted);
    }
    out = (out << 8) | static_cast<std::uint32_t>(octet);
    if (i < 3) {
      char dot;
      if (!(in >> dot) || dot != '.') {
        throw std::invalid_argument("bad IPv4 address: " + dotted);
      }
    }
  }
  char extra;
  if (in >> extra) throw std::invalid_argument("bad IPv4 address: " + dotted);
  return out;
}

std::string ipv4_to_string(std::uint32_t ip) {
  std::ostringstream out;
  out << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.'
      << ((ip >> 8) & 0xff) << '.' << (ip & 0xff);
  return out.str();
}

bool Match::matches(const Packet& p, std::uint16_t packet_in_port) const {
  if (src_mac && *src_mac != p.src_mac) return false;
  if (dst_mac && *dst_mac != p.dst_mac) return false;
  if (src_ip && *src_ip != p.src_ip) return false;
  if (dst_ip && *dst_ip != p.dst_ip) return false;
  if (src_port && *src_port != p.src_port) return false;
  if (dst_port && *dst_port != p.dst_port) return false;
  if (proto && *proto != p.proto) return false;
  if (in_port && *in_port != packet_in_port) return false;
  return true;
}

int Match::specificity() const {
  int n = 0;
  n += src_mac.has_value();
  n += dst_mac.has_value();
  n += src_ip.has_value();
  n += dst_ip.has_value();
  n += src_port.has_value();
  n += dst_port.has_value();
  n += proto.has_value();
  n += in_port.has_value();
  return n;
}

}  // namespace vnfsgx::dataplane
