#include "dataplane/switch.h"

#include <algorithm>
#include <cstdio>

namespace vnfsgx::dataplane {

std::string Switch::dpid_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "00:00:%012llx",
                static_cast<unsigned long long>(dpid_ & 0xffffffffffffULL));
  return buf;
}

void Switch::add_flow(FlowEntry entry) {
  for (auto& existing : flows_) {
    if (existing.name == entry.name) {
      existing = std::move(entry);
      return;
    }
  }
  flows_.push_back(std::move(entry));
}

bool Switch::remove_flow(const std::string& name) {
  const auto it =
      std::find_if(flows_.begin(), flows_.end(),
                   [&name](const FlowEntry& e) { return e.name == name; });
  if (it == flows_.end()) return false;
  flows_.erase(it);
  return true;
}

std::optional<PacketIn> Switch::pop_packet_in() {
  if (packet_ins_.empty()) return std::nullopt;
  PacketIn front = std::move(packet_ins_.front());
  packet_ins_.pop_front();
  return front;
}

FlowEntry* Switch::match_flow(const Packet& packet, std::uint16_t in_port) {
  FlowEntry* best = nullptr;
  for (auto& entry : flows_) {
    if (!entry.match.matches(packet, in_port)) continue;
    if (!best || entry.priority > best->priority ||
        (entry.priority == best->priority &&
         entry.match.specificity() > best->match.specificity())) {
      best = &entry;
    }
  }
  return best;
}

ForwardingResult Switch::apply_entry(FlowEntry* entry, const Packet& packet,
                                     std::uint16_t in_port,
                                     bool defer_inspection) {
  ++total_packets_;
  ForwardingResult result;
  if (!entry) {
    packet_ins_.push_back(PacketIn{packet, in_port});
    result.kind = ForwardingResult::Kind::kTableMiss;
    return result;
  }
  ++entry->packet_count;
  entry->byte_count += packet.payload.size();
  result.entry = entry;
  switch (entry->action.type) {
    case ActionType::kForward:
      result.kind = ForwardingResult::Kind::kForwarded;
      result.out_port = entry->action.out_port;
      break;
    case ActionType::kDrop:
      result.kind = ForwardingResult::Kind::kDropped;
      break;
    case ActionType::kSendToController:
      packet_ins_.push_back(PacketIn{packet, in_port});
      result.kind = ForwardingResult::Kind::kPacketIn;
      break;
    case ActionType::kInspect:
      if (defer_inspection) {
        // process_burst() collects these and punts them in one call; mark
        // the result so the caller knows it still owes a verdict.
        result.inspected = true;
      } else {
        return run_inspection(*entry, packet, in_port);
      }
      break;
  }
  return result;
}

ForwardingResult Switch::process(const Packet& packet, std::uint16_t in_port) {
  return apply_entry(match_flow(packet, in_port), packet, in_port,
                     /*defer_inspection=*/false);
}

std::vector<ForwardingResult> Switch::process_burst(
    std::span<const Packet> packets, std::uint16_t in_port) {
  std::vector<ForwardingResult> results;
  results.reserve(packets.size());
  // First pass: match + apply every non-punt action. Punted packets are
  // gathered for one burst-inspector call when it is bound; otherwise they
  // take the per-packet punt path (which itself fails closed).
  std::vector<const Packet*> punted;
  std::vector<std::size_t> punted_index;
  std::vector<FlowEntry*> punted_entry;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Packet& packet = packets[i];
    FlowEntry* entry = match_flow(packet, in_port);
    const bool punt = entry != nullptr &&
                      entry->action.type == ActionType::kInspect &&
                      has_burst_inspector();
    results.push_back(apply_entry(entry, packet, in_port, punt));
    if (punt) {
      punted.push_back(&packet);
      punted_index.push_back(i);
      punted_entry.push_back(entry);
    }
  }
  if (punted.empty()) return results;
  // Second pass: one pipelined inspection for the whole punted set. Fail
  // closed as a unit — a throwing or short-counting inspector must not let
  // any punted frame through uninspected.
  std::vector<InspectionOutcome> outcomes;
  std::string error;
  try {
    outcomes = burst_inspector_(punted, in_port);
    if (outcomes.size() != punted.size()) {
      error = "inspector-error: burst verdict count mismatch";
    }
  } catch (const std::exception& e) {
    error = std::string("inspector-error: ") + e.what();
  }
  for (std::size_t j = 0; j < punted.size(); ++j) {
    results[punted_index[j]] =
        error.empty()
            ? finish_inspection(*punted_entry[j], *punted[j], in_port,
                                std::move(outcomes[j]))
            : inspection_failure(*punted_entry[j], error);
  }
  return results;
}

ForwardingResult Switch::run_inspection(FlowEntry& entry, const Packet& packet,
                                        std::uint16_t in_port) {
  // Fail closed: a punt flow with no reachable inspector must not let
  // traffic bypass inspection.
  if (!inspector_) {
    return inspection_failure(entry, "no-inspector");
  }
  InspectionOutcome outcome;
  try {
    outcome = inspector_(packet, in_port);
  } catch (const std::exception& e) {
    return inspection_failure(entry,
                              std::string("inspector-error: ") + e.what());
  }
  return finish_inspection(entry, packet, in_port, std::move(outcome));
}

ForwardingResult Switch::finish_inspection(FlowEntry& entry,
                                           const Packet& packet,
                                           std::uint16_t in_port,
                                           InspectionOutcome outcome) {
  ForwardingResult result;
  result.entry = &entry;
  result.inspected = true;
  result.verdict = outcome.verdict;
  result.inspect_rule = std::move(outcome.rule);
  switch (outcome.verdict) {
    case InspectVerdict::kDrop:
      result.kind = ForwardingResult::Kind::kDropped;
      break;
    case InspectVerdict::kAlert:
      // Alert rules forward the packet but copy it to the controller.
      packet_ins_.push_back(PacketIn{packet, in_port});
      [[fallthrough]];
    case InspectVerdict::kForward:
      result.kind = ForwardingResult::Kind::kForwarded;
      result.out_port = entry.action.out_port;
      break;
  }
  return result;
}

ForwardingResult Switch::inspection_failure(FlowEntry& entry,
                                            std::string rule) {
  ForwardingResult result;
  result.entry = &entry;
  result.inspected = true;
  result.kind = ForwardingResult::Kind::kDropped;
  result.verdict = InspectVerdict::kDrop;
  result.inspect_rule = std::move(rule);
  return result;
}

}  // namespace vnfsgx::dataplane
