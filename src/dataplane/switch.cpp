#include "dataplane/switch.h"

#include <algorithm>
#include <cstdio>

namespace vnfsgx::dataplane {

std::string Switch::dpid_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "00:00:%012llx",
                static_cast<unsigned long long>(dpid_ & 0xffffffffffffULL));
  return buf;
}

void Switch::add_flow(FlowEntry entry) {
  for (auto& existing : flows_) {
    if (existing.name == entry.name) {
      existing = std::move(entry);
      return;
    }
  }
  flows_.push_back(std::move(entry));
}

bool Switch::remove_flow(const std::string& name) {
  const auto it =
      std::find_if(flows_.begin(), flows_.end(),
                   [&name](const FlowEntry& e) { return e.name == name; });
  if (it == flows_.end()) return false;
  flows_.erase(it);
  return true;
}

std::optional<PacketIn> Switch::pop_packet_in() {
  if (packet_ins_.empty()) return std::nullopt;
  PacketIn front = std::move(packet_ins_.front());
  packet_ins_.pop_front();
  return front;
}

ForwardingResult Switch::process(const Packet& packet, std::uint16_t in_port) {
  ++total_packets_;
  FlowEntry* best = nullptr;
  for (auto& entry : flows_) {
    if (!entry.match.matches(packet, in_port)) continue;
    if (!best || entry.priority > best->priority ||
        (entry.priority == best->priority &&
         entry.match.specificity() > best->match.specificity())) {
      best = &entry;
    }
  }
  ForwardingResult result;
  if (!best) {
    packet_ins_.push_back(PacketIn{packet, in_port});
    result.kind = ForwardingResult::Kind::kTableMiss;
    return result;
  }
  ++best->packet_count;
  best->byte_count += packet.payload.size();
  result.entry = best;
  switch (best->action.type) {
    case ActionType::kForward:
      result.kind = ForwardingResult::Kind::kForwarded;
      result.out_port = best->action.out_port;
      break;
    case ActionType::kDrop:
      result.kind = ForwardingResult::Kind::kDropped;
      break;
    case ActionType::kSendToController:
      packet_ins_.push_back(PacketIn{packet, in_port});
      result.kind = ForwardingResult::Kind::kPacketIn;
      break;
    case ActionType::kInspect:
      return run_inspection(*best, packet, in_port);
  }
  return result;
}

ForwardingResult Switch::run_inspection(FlowEntry& entry, const Packet& packet,
                                        std::uint16_t in_port) {
  ForwardingResult result;
  result.entry = &entry;
  result.inspected = true;
  // Fail closed: a punt flow with no reachable inspector must not let
  // traffic bypass inspection.
  if (!inspector_) {
    result.kind = ForwardingResult::Kind::kDropped;
    result.verdict = InspectVerdict::kDrop;
    result.inspect_rule = "no-inspector";
    return result;
  }
  InspectionOutcome outcome;
  try {
    outcome = inspector_(packet, in_port);
  } catch (const std::exception& e) {
    result.kind = ForwardingResult::Kind::kDropped;
    result.verdict = InspectVerdict::kDrop;
    result.inspect_rule = std::string("inspector-error: ") + e.what();
    return result;
  }
  result.verdict = outcome.verdict;
  result.inspect_rule = std::move(outcome.rule);
  switch (outcome.verdict) {
    case InspectVerdict::kDrop:
      result.kind = ForwardingResult::Kind::kDropped;
      break;
    case InspectVerdict::kAlert:
      // Alert rules forward the packet but copy it to the controller.
      packet_ins_.push_back(PacketIn{packet, in_port});
      [[fallthrough]];
    case InspectVerdict::kForward:
      result.kind = ForwardingResult::Kind::kForwarded;
      result.out_port = entry.action.out_port;
      break;
  }
  return result;
}

}  // namespace vnfsgx::dataplane
