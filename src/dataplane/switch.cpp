#include "dataplane/switch.h"

#include <algorithm>
#include <cstdio>

namespace vnfsgx::dataplane {

std::string Switch::dpid_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "00:00:%012llx",
                static_cast<unsigned long long>(dpid_ & 0xffffffffffffULL));
  return buf;
}

void Switch::add_flow(FlowEntry entry) {
  for (auto& existing : flows_) {
    if (existing.name == entry.name) {
      existing = std::move(entry);
      return;
    }
  }
  flows_.push_back(std::move(entry));
}

bool Switch::remove_flow(const std::string& name) {
  const auto it =
      std::find_if(flows_.begin(), flows_.end(),
                   [&name](const FlowEntry& e) { return e.name == name; });
  if (it == flows_.end()) return false;
  flows_.erase(it);
  return true;
}

std::optional<PacketIn> Switch::pop_packet_in() {
  if (packet_ins_.empty()) return std::nullopt;
  PacketIn front = std::move(packet_ins_.front());
  packet_ins_.pop_front();
  return front;
}

ForwardingResult Switch::process(const Packet& packet, std::uint16_t in_port) {
  ++total_packets_;
  FlowEntry* best = nullptr;
  for (auto& entry : flows_) {
    if (!entry.match.matches(packet, in_port)) continue;
    if (!best || entry.priority > best->priority ||
        (entry.priority == best->priority &&
         entry.match.specificity() > best->match.specificity())) {
      best = &entry;
    }
  }
  if (!best) {
    packet_ins_.push_back(PacketIn{packet, in_port});
    return ForwardingResult{ForwardingResult::Kind::kTableMiss, 0, nullptr};
  }
  ++best->packet_count;
  best->byte_count += packet.payload.size();
  switch (best->action.type) {
    case ActionType::kForward:
      return ForwardingResult{ForwardingResult::Kind::kForwarded,
                              best->action.out_port, best};
    case ActionType::kDrop:
      return ForwardingResult{ForwardingResult::Kind::kDropped, 0, best};
    case ActionType::kSendToController:
      packet_ins_.push_back(PacketIn{packet, in_port});
      return ForwardingResult{ForwardingResult::Kind::kPacketIn, 0, best};
  }
  return ForwardingResult{};
}

}  // namespace vnfsgx::dataplane
