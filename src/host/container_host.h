// The container host: one machine with a filesystem, an IMA subsystem, an
// SGX platform, a container runtime, and the integrity attestation enclave
// — everything inside the "Container Host" box of Figure 1.
#pragma once

#include <memory>
#include <string>

#include "common/sim_clock.h"
#include "host/attestation_enclave.h"
#include "host/runtime.h"
#include "ima/subsystem.h"
#include "sgx/platform.h"

namespace vnfsgx::host {

class ContainerHost {
 public:
  ContainerHost(std::string name, crypto::RandomSource& rng,
                sgx::PlatformOptions sgx_options = {},
                ima::ImaPolicy policy = ima::ImaPolicy::tcb_default());

  const std::string& name() const { return name_; }
  ima::SimulatedFilesystem& filesystem() { return fs_; }
  ima::ImaSubsystem& ima() { return ima_; }
  sgx::SgxPlatform& sgx() { return sgx_; }
  ContainerRuntime& runtime() { return runtime_; }
  /// Hardware root of trust anchoring the IML (the paper's §4 extension);
  /// IMA extends PCR 10 on every measurement.
  ima::Tpm& tpm() { return tpm_; }

  /// Install and measure the base OS stack (kernel modules, container
  /// runtime, libraries) — what a freshly booted, healthy host looks like.
  void boot();
  bool booted() const { return booted_; }

  /// Load the integrity attestation enclave, vendor-signed with
  /// `vendor_seed`. Idempotent per host.
  std::shared_ptr<sgx::Enclave> load_attestation_enclave(
      const crypto::Ed25519Seed& vendor_seed);
  std::shared_ptr<sgx::Enclave> attestation_enclave() const {
    return attestation_enclave_;
  }

  /// Simulate a host compromise: tamper an OS binary, then re-trigger its
  /// measurement (e.g. the attacker's modified binary gets executed).
  void compromise_file(const std::string& path);

 private:
  std::string name_;
  crypto::RandomSource& rng_;
  ima::SimulatedFilesystem fs_;
  ima::Tpm tpm_;
  ima::ImaSubsystem ima_;
  sgx::SgxPlatform sgx_;
  ContainerRuntime runtime_;
  std::shared_ptr<sgx::Enclave> attestation_enclave_;
  bool booted_ = false;
};

}  // namespace vnfsgx::host
