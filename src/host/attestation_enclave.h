// The Integrity Attestation Enclave (TEE on the container host, "Integrity
// Attestation Enclave" in Figure 1).
//
// Its single job: bind the host's IMA measurement list to an SGX report so
// the Verification Manager can appraise the host. The enclave hashes
// (nonce || IML) into the report data, preventing replay of stale lists.
// As the paper's §4 notes, without a TPM the IML itself is delivered by
// untrusted host code — the enclave attests freshness and integrity of the
// *transport*, not the kernel log's provenance.
#pragma once

#include <array>

#include "ima/measurement_list.h"
#include "sgx/enclave.h"

namespace vnfsgx::host {

/// ECALL opcodes understood by the attestation enclave.
enum AttestationEnclaveOp : std::uint32_t {
  /// input : TLV{nonce(32), iml_bytes, qe_target_info}
  /// output: serialized sgx::Report whose report_data =
  ///         SHA256(nonce || iml_bytes) || zeros.
  kOpCreateImlReport = 1,
};

/// Build the ECALL input.
Bytes encode_iml_report_request(const std::array<std::uint8_t, 32>& nonce,
                                ByteView iml_bytes,
                                const sgx::TargetInfo& target);

/// The enclave image (fixed code identity + logic factory). All container
/// hosts run this same image, so the Verification Manager knows its
/// expected MRENCLAVE.
sgx::EnclaveImage attestation_enclave_image();

/// The expected measurement of the (untampered) attestation enclave.
sgx::Measurement attestation_enclave_measurement();

/// Compute the report-data binding the VM recomputes during appraisal.
sgx::ReportData iml_report_data(const std::array<std::uint8_t, 32>& nonce,
                                ByteView iml_bytes);

}  // namespace vnfsgx::host
