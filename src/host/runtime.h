// Container runtime (docker-like): pull, run, stop, list. Running a
// container triggers the IMA measurement of the runtime binary and the
// container's entrypoint, per the host policy.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "host/container.h"
#include "ima/subsystem.h"

namespace vnfsgx::host {

class ContainerRuntime {
 public:
  ContainerRuntime(ima::SimulatedFilesystem& fs, ima::ImaSubsystem& ima);

  /// Install an image's entrypoint into the host filesystem.
  void pull(const ContainerImage& image);
  bool has_image(const std::string& name) const;

  /// Create and start a container from a pulled image. Throws Error if the
  /// image is unknown. Measures the entrypoint via IMA.
  std::shared_ptr<Container> run(const std::string& image_name,
                                 const std::string& container_id);

  void stop(const std::string& container_id);
  std::shared_ptr<Container> find(const std::string& container_id) const;
  std::vector<std::shared_ptr<Container>> list() const;

 private:
  ima::SimulatedFilesystem& fs_;
  ima::ImaSubsystem& ima_;
  std::map<std::string, ContainerImage> images_;
  std::map<std::string, std::shared_ptr<Container>> containers_;
};

}  // namespace vnfsgx::host
