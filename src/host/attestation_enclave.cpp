#include "host/attestation_enclave.h"

#include "crypto/sha256.h"
#include "pki/tlv.h"

namespace vnfsgx::host {

namespace {

enum : std::uint8_t {
  kTagNonce = 0x01,
  kTagIml = 0x02,
  kTagTargetInfo = 0x03,
};

/// The bytes standing for the enclave binary. Changing them (a tampered
/// enclave) changes MRENCLAVE and fails appraisal.
Bytes attestation_enclave_code() {
  return to_bytes(
      "vnfsgx integrity attestation enclave v1.0\n"
      "role: bind IMA measurement list into SGX report data\n");
}

class AttestationEnclaveLogic final : public sgx::TrustedLogic {
 public:
  Bytes handle_call(std::uint32_t opcode, ByteView input,
                    sgx::EnclaveServices& services) override {
    if (opcode != kOpCreateImlReport) {
      throw Error("attestation enclave: unknown opcode " +
                  std::to_string(opcode));
    }
    pki::TlvReader r(input);
    const auto nonce = r.expect_array<32>(kTagNonce);
    const Bytes iml = r.expect_bytes(kTagIml);
    const sgx::TargetInfo target =
        sgx::TargetInfo::decode(r.expect(kTagTargetInfo));

    const sgx::Report report =
        services.create_report(target, iml_report_data(nonce, iml));
    return report.encode();
  }
};

}  // namespace

Bytes encode_iml_report_request(const std::array<std::uint8_t, 32>& nonce,
                                ByteView iml_bytes,
                                const sgx::TargetInfo& target) {
  pki::TlvWriter w;
  w.add_bytes(kTagNonce, nonce);
  w.add_bytes(kTagIml, iml_bytes);
  w.add_bytes(kTagTargetInfo, target.encode());
  return w.take();
}

sgx::ReportData iml_report_data(const std::array<std::uint8_t, 32>& nonce,
                                ByteView iml_bytes) {
  crypto::Sha256 h;
  h.update(nonce);
  h.update(iml_bytes);
  const auto digest = h.finish();
  sgx::ReportData data{};
  std::copy(digest.begin(), digest.end(), data.begin());
  return data;
}

sgx::EnclaveImage attestation_enclave_image() {
  sgx::EnclaveImage image;
  image.name = "integrity-attestation-enclave";
  image.code = attestation_enclave_code();
  image.attributes = 0;
  image.factory = [] { return std::make_unique<AttestationEnclaveLogic>(); };
  return image;
}

sgx::Measurement attestation_enclave_measurement() {
  return sgx::measure_image(attestation_enclave_code(), 0);
}

}  // namespace vnfsgx::host
