// Container images and containers (the Docker-level substrate).
//
// An image's rootfs bytes stand for its layers; pulling an image installs
// its entrypoint binary into the host filesystem, where IMA measures it on
// container start — reproducing what the paper's prototype measures on the
// container host.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "ima/measurement_list.h"

namespace vnfsgx::host {

struct ContainerImage {
  std::string name;        // "vnf-firewall:1.0"
  Bytes rootfs;            // content standing in for the image layers
  std::string entrypoint;  // binary path inside the image

  /// Content digest (like a Docker image digest).
  ima::Digest digest() const;

  /// Host path where the entrypoint is installed after a pull.
  std::string installed_path() const {
    return "/var/lib/containers/" + name + entrypoint;
  }
};

enum class ContainerState { kCreated, kRunning, kStopped };

std::string to_string(ContainerState state);

class Container {
 public:
  Container(std::string id, ContainerImage image)
      : id_(std::move(id)), image_(std::move(image)) {}

  const std::string& id() const { return id_; }
  const ContainerImage& image() const { return image_; }
  ContainerState state() const { return state_; }

 private:
  friend class ContainerRuntime;
  std::string id_;
  ContainerImage image_;
  ContainerState state_ = ContainerState::kCreated;
};

}  // namespace vnfsgx::host
