#include "host/runtime.h"

#include "common/error.h"
#include "common/logging.h"
#include "crypto/sha256.h"

namespace vnfsgx::host {

ima::Digest ContainerImage::digest() const {
  Bytes data;
  append(data, name);
  append_u8(data, 0);
  append(data, rootfs);
  append_u8(data, 0);
  append(data, entrypoint);
  return crypto::Sha256::hash(data);
}

std::string to_string(ContainerState state) {
  switch (state) {
    case ContainerState::kCreated:
      return "created";
    case ContainerState::kRunning:
      return "running";
    case ContainerState::kStopped:
      return "stopped";
  }
  return "?";
}

ContainerRuntime::ContainerRuntime(ima::SimulatedFilesystem& fs,
                                   ima::ImaSubsystem& ima)
    : fs_(fs), ima_(ima) {}

void ContainerRuntime::pull(const ContainerImage& image) {
  // Install the entrypoint binary: its bytes are the image rootfs, so a
  // tampered image yields a different IMA measurement on start.
  fs_.write_file(image.installed_path(), image.rootfs,
                 ima::FileMeta{.uid = 0, .executable = true});
  images_[image.name] = image;
  VNFSGX_LOG_INFO("runtime", "pulled image ", image.name);
}

bool ContainerRuntime::has_image(const std::string& name) const {
  return images_.count(name) > 0;
}

std::shared_ptr<Container> ContainerRuntime::run(
    const std::string& image_name, const std::string& container_id) {
  const auto it = images_.find(image_name);
  if (it == images_.end()) {
    throw Error("runtime: unknown image '" + image_name + "'");
  }
  if (containers_.count(container_id) > 0) {
    throw Error("runtime: container id in use: " + container_id);
  }
  auto container = std::make_shared<Container>(container_id, it->second);
  // Starting a container executes the runtime helper and the entrypoint;
  // both are measured by IMA (BPRM_CHECK as root).
  ima_.on_exec("/usr/bin/containerd-shim");
  ima_.on_exec(it->second.installed_path());
  container->state_ = ContainerState::kRunning;
  containers_[container_id] = container;
  VNFSGX_LOG_INFO("runtime", "container ", container_id, " running (image ",
                  image_name, ")");
  return container;
}

void ContainerRuntime::stop(const std::string& container_id) {
  const auto it = containers_.find(container_id);
  if (it == containers_.end()) {
    throw Error("runtime: no such container: " + container_id);
  }
  it->second->state_ = ContainerState::kStopped;
}

std::shared_ptr<Container> ContainerRuntime::find(
    const std::string& container_id) const {
  const auto it = containers_.find(container_id);
  return it == containers_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Container>> ContainerRuntime::list() const {
  std::vector<std::shared_ptr<Container>> out;
  for (const auto& [id, c] : containers_) out.push_back(c);
  return out;
}

}  // namespace vnfsgx::host
