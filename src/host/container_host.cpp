#include "host/container_host.h"

#include "common/logging.h"

namespace vnfsgx::host {

namespace {

/// The base software stack every healthy host runs; paths and contents are
/// fixed so all untampered hosts produce identical measurements.
const std::pair<const char*, const char*> kBaseSystem[] = {
    {"/boot/vmlinuz", "linux kernel 4.4.0-51-generic"},
    {"/usr/bin/dockerd", "docker daemon 1.12.2"},
    {"/usr/bin/containerd-shim", "containerd shim 0.2.4"},
    {"/usr/lib/libc.so.6", "glibc 2.23"},
    {"/usr/lib/libssl.so", "openssl 1.0.2g"},
    {"/usr/sbin/sshd", "openssh server 7.2p2"},
};

}  // namespace

ContainerHost::ContainerHost(std::string name, crypto::RandomSource& rng,
                             sgx::PlatformOptions sgx_options,
                             ima::ImaPolicy policy)
    : name_(std::move(name)),
      rng_(rng),
      fs_(),
      tpm_(rng),
      ima_(fs_, std::move(policy)),
      sgx_(rng, name_, sgx_options),
      runtime_(fs_, ima_) {
  ima_.attach_tpm(&tpm_);
}

void ContainerHost::boot() {
  for (const auto& [path, content] : kBaseSystem) {
    fs_.write_file(path, to_bytes(content),
                   ima::FileMeta{.uid = 0, .executable = true});
  }
  // Boot executes the stack; IMA measures per policy.
  for (const auto& [path, content] : kBaseSystem) {
    ima_.on_exec(path);
  }
  booted_ = true;
  VNFSGX_LOG_INFO("host", name_, " booted, IML entries: ", ima_.list().size());
}

std::shared_ptr<sgx::Enclave> ContainerHost::load_attestation_enclave(
    const crypto::Ed25519Seed& vendor_seed) {
  if (attestation_enclave_) return attestation_enclave_;
  const sgx::EnclaveImage image = attestation_enclave_image();
  const sgx::SigStruct sig = sgx::sign_enclave(
      vendor_seed, sgx::measure_image(image.code, image.attributes), 1, 1);
  attestation_enclave_ = sgx_.load_enclave(image, sig);
  return attestation_enclave_;
}

void ContainerHost::compromise_file(const std::string& path) {
  fs_.tamper_file(path);
  // The tampered binary runs, so IMA records the new digest.
  ima_.on_exec(path);
  VNFSGX_LOG_WARN("host", name_, ": file compromised: ", path);
}

}  // namespace vnfsgx::host
