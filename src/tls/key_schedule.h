// TLS 1.3-style HKDF key schedule (RFC 8446 §7.1, specialized to one suite:
// X25519 / AES-128-GCM / SHA-256 / Ed25519).
#pragma once

#include "common/bytes.h"
#include "common/secure.h"
#include "crypto/sha256.h"

namespace vnfsgx::tls {

/// Record-layer keys; both halves derive from a traffic secret and wipe
/// themselves (the IV is XORed with sequence numbers to form nonces, so
/// leaking it weakens nonce privacy even though it is not a key proper).
struct TrafficKeys {
  SecureBytes key;  // 16 bytes (AES-128)
  SecureBytes iv;   // 12 bytes
};

/// Derive-Secret(secret, label, transcript_hash).
SecureBytes derive_secret(ByteView secret, std::string_view label,
                          ByteView transcript_hash);

/// Key schedule state machine; feed the ECDHE secret and transcript hashes
/// as the handshake progresses.
class KeySchedule {
 public:
  /// Full handshakes use an empty PSK; resumption seeds the early secret
  /// with the previous session's resumption secret (RFC 8446 §4.6.1).
  explicit KeySchedule(ByteView psk = {});

  /// Binder key for PSK offers: authenticated proof of PSK possession
  /// carried in the ClientHello.
  SecureBytes binder_key() const;

  /// Mix in the ECDHE shared secret after ServerHello.
  void set_handshake_secret(ByteView ecdhe_shared);

  /// Traffic secrets for the handshake phase (transcript through ServerHello).
  SecureBytes client_handshake_traffic(ByteView transcript_hash) const;
  SecureBytes server_handshake_traffic(ByteView transcript_hash) const;

  /// Advance to the master secret (after server Finished is sent).
  void set_master_secret();

  /// Application traffic secrets (transcript through server Finished).
  SecureBytes client_application_traffic(ByteView transcript_hash) const;
  SecureBytes server_application_traffic(ByteView transcript_hash) const;

  /// Resumption master secret (transcript through client Finished); the
  /// PSK for the next session.
  SecureBytes resumption_secret(ByteView transcript_hash) const;

  /// finished_key = HKDF-Expand-Label(traffic_secret, "finished", "", 32).
  static SecureBytes finished_key(ByteView traffic_secret);
  /// verify_data = HMAC(finished_key, transcript_hash). The MAC itself
  /// goes on the wire, so it stays a plain Bytes.
  static Bytes finished_mac(ByteView traffic_secret, ByteView transcript_hash);

  /// Record keys from a traffic secret.
  static TrafficKeys traffic_keys(ByteView traffic_secret);

 private:
  SecureBytes early_secret_;
  SecureBytes handshake_secret_;
  SecureBytes master_secret_;
};

/// Running transcript hash over handshake messages.
class Transcript {
 public:
  void add(ByteView message) { hash_.update(message); }
  Bytes digest() const {
    crypto::Sha256 copy = hash_;  // snapshot
    const auto d = copy.finish();
    return Bytes(d.begin(), d.end());
  }

 private:
  crypto::Sha256 hash_;
};

}  // namespace vnfsgx::tls
