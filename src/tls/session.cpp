#include "tls/session.h"

#include <cstring>

#include "common/error.h"
#include "common/logging.h"
#include "crypto/ct.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/x25519.h"
#include "net/buffer_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "pki/tlv.h"

namespace vnfsgx::tls {

namespace {

enum class HsType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kNewSessionTicket = 4,
  kCertificateRequest = 13,
  kCertificate = 11,
  kCertificateVerify = 15,
  kFinished = 20,
};

enum class AlertCode : std::uint8_t {
  kCloseNotify = 0,
  kHandshakeFailure = 40,
  kBadCertificate = 42,
  kCertificateRevoked = 44,
  kCertificateExpired = 45,
  kCertificateUnknown = 46,
  kDecryptError = 51,
  kCertificateRequired = 116,
};

Bytes hs_message(HsType type, ByteView body) {
  Bytes msg;
  append_u8(msg, static_cast<std::uint8_t>(type));
  append_u24(msg, static_cast<std::uint32_t>(body.size()));
  append(msg, body);
  return msg;
}

/// Signature context for CertificateVerify (RFC 8446 §4.4.3 shape).
Bytes certificate_verify_content(bool server, ByteView transcript_hash) {
  Bytes content;
  content.reserve(64 + 40 + 1 + transcript_hash.size());
  content.assign(64, 0x20);
  const std::string_view label = server
                                     ? "TLS 1.3, server CertificateVerify"
                                     : "TLS 1.3, client CertificateVerify";
  append(content, label);
  append_u8(content, 0);
  append(content, transcript_hash);
  return content;
}

AlertCode alert_for(pki::VerifyStatus status) {
  switch (status) {
    case pki::VerifyStatus::kExpired:
    case pki::VerifyStatus::kNotYetValid:
      return AlertCode::kCertificateExpired;
    case pki::VerifyStatus::kRevoked:
      return AlertCode::kCertificateRevoked;
    case pki::VerifyStatus::kUnknownIssuer:
      return AlertCode::kCertificateUnknown;
    case pki::VerifyStatus::kAttestationFailed:
    default:
      return AlertCode::kBadCertificate;
  }
}

// ---------------------------------------------------------------------------
// Session tickets: server-encrypted resumption state.
// ---------------------------------------------------------------------------

enum : std::uint8_t {
  kTagResumptionSecret = 0x01,
  kTagIdentity = 0x02,
  kTagSerial = 0x03,
  kTagExpiry = 0x04,
  kTagAttested = 0x05,
};

struct TicketPlaintext {
  SecureBytes resumption_secret;
  std::string identity;        // authenticated client CN ("" = anonymous)
  std::uint64_t serial = 0;    // client certificate serial (0 = none)
  UnixTime expiry = 0;
  bool attested = false;       // original handshake verified RA-TLS evidence
};

Bytes seal_ticket(const TicketKey& key, const TicketPlaintext& plain,
                  crypto::RandomSource& rng) {
  pki::TlvWriter w;
  w.add_bytes(kTagResumptionSecret, plain.resumption_secret);
  w.add_string(kTagIdentity, plain.identity);
  w.add_u64(kTagSerial, plain.serial);
  w.add_u64(kTagExpiry, static_cast<std::uint64_t>(plain.expiry));
  w.add_u8(kTagAttested, plain.attested ? 1 : 0);

  Bytes nonce(12);
  rng.fill(nonce);
  const crypto::AesGcm aead(key.key);
  Bytes out = nonce;
  const Bytes sealed = aead.seal(nonce, w.bytes(), to_bytes("session-ticket"));
  append(out, sealed);
  return out;
}

std::optional<TicketPlaintext> open_ticket(const TicketKey& key,
                                           ByteView ticket) {
  if (ticket.size() < 12 + crypto::kGcmTagSize) return std::nullopt;
  const crypto::AesGcm aead(key.key);
  const auto plain = aead.open(ticket.subspan(0, 12), ticket.subspan(12),
                               to_bytes("session-ticket"));
  if (!plain) return std::nullopt;
  try {
    pki::TlvReader r(*plain);
    TicketPlaintext t;
    t.resumption_secret = r.expect_bytes(kTagResumptionSecret);
    t.identity = r.expect_string(kTagIdentity);
    t.serial = r.expect_u64(kTagSerial);
    t.expiry = static_cast<UnixTime>(r.expect_u64(kTagExpiry));
    t.attested = r.expect_u8(kTagAttested) != 0;
    return t;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

/// Binder proves PSK possession over the offer contents.
Bytes compute_binder(const KeySchedule& schedule, ByteView random,
                     const crypto::X25519Key& share, ByteView ticket) {
  Bytes data;
  append(data, random);
  append(data, ByteView(share.data(), share.size()));
  append(data, ticket);
  return crypto::hmac_sha256(schedule.binder_key(), data);
}

}  // namespace

// ---------------------------------------------------------------------------
// Handshake driver shared by both sides.
// ---------------------------------------------------------------------------

struct Session::Handshaker {
  net::Stream& stream;
  const Config& config;
  Transcript transcript;
  KeySchedule schedule;

  std::optional<RecordProtection> read_protection;
  std::optional<RecordProtection> write_protection;
  Bytes pending_handshake;  // coalesced handshake bytes not yet consumed
  Bytes wire_scratch;       // reused wire-record buffer for protect_into
  std::size_t pending_pos = 0;

  explicit Handshaker(net::Stream& s, const Config& c) : stream(s), config(c) {
    if (!c.clock || !c.rng) {
      throw Error("tls: config requires clock and rng");
    }
  }

  [[noreturn]] void fail(AlertCode code, const std::string& why) {
    try {
      Record alert;
      alert.type = ContentType::kAlert;
      append_u8(alert.payload, 2);  // fatal
      append_u8(alert.payload, static_cast<std::uint8_t>(code));
      if (write_protection) {
        write_protection->protect_into(alert.type, alert.payload, wire_scratch);
        stream.write(wire_scratch);
      } else {
        write_record(stream, alert);
      }
    } catch (...) {
      // Best effort; the transport may already be gone.
    }
    throw ProtocolError("tls: " + why);
  }

  /// Attestation-policy failures alert like fail() but throw
  /// SecurityViolation: a rejected quote or a downgrade attempt is an
  /// attack signal, not a protocol hiccup.
  [[noreturn]] void fail_security(AlertCode code, const std::string& why) {
    try {
      fail(code, why);
    } catch (const ProtocolError&) {
      throw SecurityViolation("tls: " + why);
    }
  }

  void send_handshake(HsType type, ByteView body) {
    const Bytes msg = hs_message(type, body);
    transcript.add(msg);
    if (write_protection) {
      write_protection->protect_into(ContentType::kHandshake, msg, wire_scratch);
      stream.write(wire_scratch);
    } else {
      write_record(stream, Record{ContentType::kHandshake, msg});
    }
  }

  std::pair<HsType, Bytes> next_handshake() {
    while (pending_handshake.size() - pending_pos < 4) {
      refill();
    }
    const std::uint8_t type = pending_handshake[pending_pos];
    const std::uint32_t len = read_u24(pending_handshake, pending_pos + 1);
    while (pending_handshake.size() - pending_pos < 4 + len) {
      refill();
    }
    const ByteView full(pending_handshake.data() + pending_pos, 4 + len);
    transcript.add(full);
    Bytes body(pending_handshake.begin() +
                   static_cast<std::ptrdiff_t>(pending_pos + 4),
               pending_handshake.begin() +
                   static_cast<std::ptrdiff_t>(pending_pos + 4 + len));
    pending_pos += 4 + len;
    if (pending_pos == pending_handshake.size()) {
      pending_handshake.clear();
      pending_pos = 0;
    }
    return {static_cast<HsType>(type), std::move(body)};
  }

  void refill() {
    auto record = read_record(stream);
    if (!record) fail(AlertCode::kHandshakeFailure, "peer closed mid-handshake");
    if (read_protection) {
      record->type =
          read_protection->unprotect_in_place(record->type, record->payload);
    }
    if (record->type == ContentType::kAlert) {
      throw ProtocolError("tls: peer sent alert during handshake");
    }
    if (record->type != ContentType::kHandshake) {
      fail(AlertCode::kHandshakeFailure, "unexpected record during handshake");
    }
    append(pending_handshake, record->payload);
  }

  Bytes expect(HsType want) {
    auto [type, body] = next_handshake();
    if (type != want) {
      fail(AlertCode::kHandshakeFailure,
           "unexpected handshake message type " +
               std::to_string(static_cast<int>(type)));
    }
    return std::move(body);
  }

  // -- message bodies -------------------------------------------------------

  /// ClientHello: random(32) || share(32) || u16 ticket_len ||
  ///              [ticket bytes || binder(32)]
  static Bytes client_hello_body(ByteView random, const crypto::X25519Key& share,
                                 ByteView ticket, ByteView binder) {
    Bytes body;
    append(body, random);
    append(body, ByteView(share.data(), share.size()));
    append_u16(body, static_cast<std::uint16_t>(ticket.size()));
    if (!ticket.empty()) {
      append(body, ticket);
      append(body, binder);
    }
    return body;
  }

  struct ClientHello {
    crypto::X25519Key share{};
    Bytes random;
    Bytes ticket;
    Bytes binder;
  };

  static ClientHello parse_client_hello(ByteView body) {
    if (body.size() < 66) throw ParseError("tls: short ClientHello");
    ClientHello ch;
    ch.random = Bytes(body.begin(), body.begin() + 32);
    std::copy(body.begin() + 32, body.begin() + 64, ch.share.begin());
    const std::uint16_t ticket_len = read_u16(body, 64);
    if (ticket_len > 0) {
      if (body.size() != 66u + ticket_len + 32u) {
        throw ParseError("tls: bad ClientHello PSK offer");
      }
      ch.ticket = Bytes(body.begin() + 66,
                        body.begin() + 66 + ticket_len);
      ch.binder = Bytes(body.begin() + 66 + ticket_len, body.end());
    } else if (body.size() != 66) {
      throw ParseError("tls: trailing ClientHello data");
    }
    return ch;
  }

  /// ServerHello: random(32) || share(32) || u8 resumed.
  static Bytes server_hello_body(ByteView random,
                                 const crypto::X25519Key& share, bool resumed) {
    Bytes body;
    append(body, random);
    append(body, ByteView(share.data(), share.size()));
    append_u8(body, resumed ? 1 : 0);
    return body;
  }

  struct ServerHello {
    crypto::X25519Key share{};
    bool resumed = false;
  };

  static ServerHello parse_server_hello(ByteView body) {
    if (body.size() != 65) throw ParseError("tls: bad ServerHello");
    ServerHello sh;
    std::copy(body.begin() + 32, body.begin() + 64, sh.share.begin());
    sh.resumed = body[64] != 0;
    return sh;
  }

  void send_certificate() {
    if (!config.certificate || !config.signer) {
      fail(AlertCode::kHandshakeFailure, "no local certificate configured");
    }
    send_handshake(HsType::kCertificate, config.certificate->encode());
  }

  void send_certificate_verify(bool server) {
    const Bytes content =
        certificate_verify_content(server, transcript.digest());
    const auto sig = config.signer(content);
    send_handshake(HsType::kCertificateVerify, ByteView(sig.data(), sig.size()));
  }

  struct VerifiedCert {
    pki::Certificate cert;
    bool attested = false;
  };

  VerifiedCert receive_certificate(pki::KeyUsage usage) {
    const Bytes body = expect(HsType::kCertificate);
    pki::Certificate cert;
    try {
      cert = pki::Certificate::decode(body);
    } catch (const ParseError&) {
      fail(AlertCode::kBadCertificate, "undecodable certificate");
    }
    if (!config.truststore) {
      fail(AlertCode::kCertificateUnknown, "no truststore configured");
    }
    const auto result = config.truststore->verify(cert, usage,
                                                  config.clock->now());
    if (result.status == pki::VerifyStatus::kAttestationFailed) {
      fail_security(alert_for(result.status),
                    "peer attestation evidence rejected");
    }
    if (!result.ok()) {
      fail(alert_for(result.status),
           "peer certificate rejected: " + pki::to_string(result.status));
    }
    if (config.require_attested_peer && !result.attested) {
      // Downgrade attempt: a valid but unattested certificate where policy
      // demands in-handshake attestation.
      fail_security(AlertCode::kBadCertificate,
                    "peer presented an unattested certificate where policy "
                    "requires attestation");
    }
    return {std::move(cert), result.attested};
  }

  void receive_certificate_verify(bool peer_is_server,
                                  const pki::Certificate& peer_cert,
                                  ByteView transcript_before) {
    const Bytes sig = expect(HsType::kCertificateVerify);
    const Bytes content =
        certificate_verify_content(peer_is_server, transcript_before);
    if (!crypto::ed25519_verify(peer_cert.public_key, content, sig)) {
      fail(AlertCode::kDecryptError, "CertificateVerify signature invalid");
    }
  }

  void send_finished(ByteView traffic_secret) {
    const Bytes mac =
        KeySchedule::finished_mac(traffic_secret, transcript.digest());
    send_handshake(HsType::kFinished, mac);
  }

  void receive_finished(ByteView traffic_secret) {
    const Bytes expected_mac =
        KeySchedule::finished_mac(traffic_secret, transcript.digest());
    const Bytes mac = expect(HsType::kFinished);
    if (!crypto::ct_equal(expected_mac, mac)) {
      fail(AlertCode::kDecryptError, "Finished verification failed");
    }
  }
};

// ---------------------------------------------------------------------------
// Handshake instrumentation.
// ---------------------------------------------------------------------------

namespace {

using HandshakeFn = std::unique_ptr<Session> (*)(net::StreamPtr,
                                                 const Config&);

/// Step-6 span + handshake counters/latency. Only the handshake pays for
/// observability here — the record path (Session::write/read) adds nothing
/// beyond cached relaxed counter adds, keeping hot-path overhead flat.
std::unique_ptr<Session> handshake_instrumented(const char* role,
                                                net::StreamPtr transport,
                                                const Config& config,
                                                HandshakeFn fn) {
  obs::Histogram& duration = obs::registry().histogram(
      "vnfsgx_tls_handshake_duration_us", {{"role", role}}, {},
      "TLS handshake wall time (Figure-1 step 6)");
  obs::Span span =
      obs::tracer().start_span("tls_handshake", obs::kStepSecureChannel);
  span.annotate("role", role);
  try {
    std::unique_ptr<Session> session = fn(std::move(transport), config);
    const char* kind = session->resumed() ? "resumed" : "full";
    span.annotate("kind", kind);
    span.end();
    duration.observe(span.elapsed_us());
    obs::registry()
        .counter("vnfsgx_tls_handshakes_total",
                 {{"role", role}, {"kind", kind}, {"result", "ok"}},
                 "TLS handshake outcomes")
        .add();
    return session;
  } catch (...) {
    span.annotate("result", "fail");
    obs::registry()
        .counter("vnfsgx_tls_handshakes_total",
                 {{"role", role}, {"kind", "unknown"}, {"result", "fail"}},
                 "TLS handshake outcomes")
        .add();
    throw;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Client handshake.
// ---------------------------------------------------------------------------

std::unique_ptr<Session> Session::connect(net::StreamPtr transport,
                                          const Config& config) {
  return handshake_instrumented("client", std::move(transport), config,
                                &Session::connect_impl);
}

std::unique_ptr<Session> Session::connect_impl(net::StreamPtr transport,
                                               const Config& config) {
  Handshaker hs(*transport, config);
  if (!config.truststore) {
    throw Error("tls: client requires a truststore");
  }

  // PSK offer? Never when attestation is required: resumption would skip
  // the certificate exchange and with it the evidence re-appraisal.
  const bool offering = config.resumption && config.resumption->valid() &&
                        !config.require_attested_peer;
  if (offering) {
    hs.schedule = KeySchedule(config.resumption->resumption_secret);
  }

  // ClientHello.
  const auto kex = crypto::x25519_generate(*config.rng);
  const Bytes client_random = config.rng->bytes(32);
  Bytes binder;
  if (offering) {
    binder = compute_binder(hs.schedule, client_random, kex.public_key,
                            config.resumption->ticket);
  }
  hs.send_handshake(
      HsType::kClientHello,
      Handshaker::client_hello_body(
          client_random, kex.public_key,
          offering ? ByteView(config.resumption->ticket) : ByteView{}, binder));

  // ServerHello.
  const Bytes sh_body = hs.expect(HsType::kServerHello);
  Handshaker::ServerHello sh;
  try {
    sh = Handshaker::parse_server_hello(sh_body);
  } catch (const ParseError&) {
    hs.fail(AlertCode::kHandshakeFailure, "malformed ServerHello");
  }
  if (sh.resumed && !offering) {
    hs.fail(AlertCode::kHandshakeFailure, "server resumed unoffered PSK");
  }
  if (!sh.resumed && offering) {
    // Fallback to a full handshake: discard the PSK early secret.
    hs.schedule = KeySchedule();
  }
  const bool resumed = sh.resumed;

  const SecureBytes shared = crypto::x25519_shared(kex.private_key, sh.share);
  hs.schedule.set_handshake_secret(shared);
  const Bytes th_hello = hs.transcript.digest();
  const SecureBytes client_hs = hs.schedule.client_handshake_traffic(th_hello);
  const SecureBytes server_hs = hs.schedule.server_handshake_traffic(th_hello);
  const auto server_keys = KeySchedule::traffic_keys(server_hs);
  const auto client_keys = KeySchedule::traffic_keys(client_hs);
  hs.read_protection.emplace(server_keys.key, server_keys.iv);
  hs.write_protection.emplace(client_keys.key, client_keys.iv);

  // Server's encrypted flight.
  std::optional<pki::Certificate> server_cert;
  bool server_attested = false;
  bool client_cert_requested = false;
  if (!resumed) {
    // Peek: next message may be CertificateRequest.
    while (hs.pending_handshake.size() - hs.pending_pos < 1) hs.refill();
    if (static_cast<HsType>(hs.pending_handshake[hs.pending_pos]) ==
        HsType::kCertificateRequest) {
      hs.expect(HsType::kCertificateRequest);
      client_cert_requested = true;
    }

    auto verified = hs.receive_certificate(pki::KeyUsage::kServerAuth);
    server_cert = std::move(verified.cert);
    server_attested = verified.attested;
    if (!config.expected_server_name.empty() &&
        server_cert->subject.common_name != config.expected_server_name) {
      hs.fail(AlertCode::kBadCertificate,
              "server name mismatch: got " + server_cert->subject.common_name);
    }
    const Bytes th_before_cv = hs.transcript.digest();
    hs.receive_certificate_verify(/*peer_is_server=*/true, *server_cert,
                                  th_before_cv);
  }
  hs.receive_finished(server_hs);

  // Application secrets derive from the transcript through server Finished.
  hs.schedule.set_master_secret();
  const Bytes th_server_finished = hs.transcript.digest();
  const SecureBytes client_app =
      hs.schedule.client_application_traffic(th_server_finished);
  const SecureBytes server_app =
      hs.schedule.server_application_traffic(th_server_finished);

  // Client's flight (still under handshake keys).
  if (client_cert_requested) {
    if (!config.certificate || !config.signer) {
      hs.fail(AlertCode::kCertificateRequired,
              "server requires a client certificate");
    }
    hs.send_certificate();
    hs.send_certificate_verify(/*server=*/false);
  }
  hs.send_finished(client_hs);

  // The PSK for the next session (the ticket itself arrives post-handshake
  // as a NewSessionTicket; see Session::read).
  const SecureBytes resumption_secret =
      hs.schedule.resumption_secret(hs.transcript.digest());

  std::string peer_identity =
      server_cert ? server_cert->subject.common_name
                  : (config.resumption ? config.resumption->server_name : "");

  const auto app_server_keys = KeySchedule::traffic_keys(server_app);
  const auto app_client_keys = KeySchedule::traffic_keys(client_app);
  auto session = std::unique_ptr<Session>(new Session(
      std::move(transport),
      RecordProtection(app_server_keys.key, app_server_keys.iv),
      RecordProtection(app_client_keys.key, app_client_keys.iv),
      std::move(server_cert), std::move(peer_identity), resumed,
      std::nullopt));
  session->peer_attested_ = server_attested;
  session->resumption_secret_pending_ = resumption_secret;
  session->server_name_ = config.expected_server_name.empty()
                              ? session->peer_identity_
                              : config.expected_server_name;
  return session;
}

// ---------------------------------------------------------------------------
// Server handshake.
// ---------------------------------------------------------------------------

std::unique_ptr<Session> Session::accept(net::StreamPtr transport,
                                         const Config& config) {
  return handshake_instrumented("server", std::move(transport), config,
                                &Session::accept_impl);
}

std::unique_ptr<Session> Session::accept_impl(net::StreamPtr transport,
                                              const Config& config) {
  Handshaker hs(*transport, config);
  if (!config.certificate || !config.signer) {
    throw Error("tls: server requires certificate and signer");
  }
  if (config.require_client_certificate && !config.truststore) {
    throw Error("tls: mutual auth requires a truststore");
  }
  if (config.require_attested_peer && !config.require_client_certificate) {
    throw Error(
        "tls: require_attested_peer needs require_client_certificate");
  }

  // ClientHello.
  const Bytes ch_body = hs.expect(HsType::kClientHello);
  Handshaker::ClientHello ch;
  try {
    ch = Handshaker::parse_client_hello(ch_body);
  } catch (const ParseError&) {
    hs.fail(AlertCode::kHandshakeFailure, "malformed ClientHello");
  }

  // Resumption decision.
  bool resumed = false;
  TicketPlaintext resumed_state;
  if (!ch.ticket.empty() && config.ticket_key) {
    auto opened = open_ticket(*config.ticket_key, ch.ticket);
    if (opened && opened->expiry >= config.clock->now()) {
      // Re-check revocation: a revoked credential must not resume.
      const bool revoked = config.truststore && opened->serial != 0 &&
                           config.truststore->serial_revoked(opened->serial);
      if (!revoked) {
        const KeySchedule psk_schedule{opened->resumption_secret};
        const Bytes expected_binder = [&] {
          Bytes data;
          append(data, ch.random);
          append(data, ByteView(ch.share.data(), ch.share.size()));
          append(data, ch.ticket);
          return crypto::hmac_sha256(psk_schedule.binder_key(), data);
        }();
        if (crypto::ct_equal(expected_binder, ch.binder)) {
          resumed = true;
          resumed_state = std::move(*opened);
          hs.schedule = KeySchedule(resumed_state.resumption_secret);
        }
      }
    }
    // Any failure falls back silently to a full handshake (RFC behavior).
  }

  // ServerHello.
  const auto kex = crypto::x25519_generate(*config.rng);
  const Bytes server_random = config.rng->bytes(32);
  hs.send_handshake(
      HsType::kServerHello,
      Handshaker::server_hello_body(server_random, kex.public_key, resumed));

  const SecureBytes shared = crypto::x25519_shared(kex.private_key, ch.share);
  hs.schedule.set_handshake_secret(shared);
  const Bytes th_hello = hs.transcript.digest();
  const SecureBytes client_hs = hs.schedule.client_handshake_traffic(th_hello);
  const SecureBytes server_hs = hs.schedule.server_handshake_traffic(th_hello);
  const auto server_keys = KeySchedule::traffic_keys(server_hs);
  const auto client_keys = KeySchedule::traffic_keys(client_hs);
  hs.read_protection.emplace(client_keys.key, client_keys.iv);
  hs.write_protection.emplace(server_keys.key, server_keys.iv);

  // Encrypted server flight.
  if (!resumed) {
    if (config.require_client_certificate) {
      hs.send_handshake(HsType::kCertificateRequest, {});
    }
    hs.send_certificate();
    hs.send_certificate_verify(/*server=*/true);
  }
  hs.send_finished(server_hs);

  hs.schedule.set_master_secret();
  const Bytes th_server_finished = hs.transcript.digest();
  const SecureBytes client_app =
      hs.schedule.client_application_traffic(th_server_finished);
  const SecureBytes server_app =
      hs.schedule.server_application_traffic(th_server_finished);

  // Client flight.
  std::optional<pki::Certificate> client_cert;
  bool client_attested = false;
  if (!resumed && config.require_client_certificate) {
    auto verified = hs.receive_certificate(pki::KeyUsage::kClientAuth);
    client_cert = std::move(verified.cert);
    client_attested = verified.attested;
    const Bytes th_before_cv = hs.transcript.digest();
    hs.receive_certificate_verify(/*peer_is_server=*/false, *client_cert,
                                  th_before_cv);
  } else if (resumed && config.require_client_certificate &&
             resumed_state.identity.empty()) {
    // The original session was anonymous; resumption cannot mint identity.
    hs.fail(AlertCode::kCertificateRequired,
            "resumed session lacks client identity");
  } else if (resumed && config.require_attested_peer &&
             !resumed_state.attested) {
    // A ticket from an unattested handshake must not satisfy an
    // attestation requirement introduced (or enforced) since.
    hs.fail_security(AlertCode::kBadCertificate,
                     "resumed session lacks peer attestation");
  }
  if (resumed) client_attested = resumed_state.attested;
  hs.receive_finished(client_hs);

  std::string peer_identity = client_cert
                                  ? client_cert->subject.common_name
                                  : (resumed ? resumed_state.identity : "");

  RecordProtection app_read(KeySchedule::traffic_keys(client_app).key,
                            KeySchedule::traffic_keys(client_app).iv);
  RecordProtection app_write(KeySchedule::traffic_keys(server_app).key,
                             KeySchedule::traffic_keys(server_app).iv);

  // Post-handshake: issue a session ticket on full handshakes (under the
  // application keys, so the client reads it in its normal record stream).
  if (!resumed && config.ticket_key) {
    TicketPlaintext plain;
    plain.resumption_secret =
        hs.schedule.resumption_secret(hs.transcript.digest());
    plain.identity = peer_identity;
    plain.serial = client_cert ? client_cert->serial : 0;
    plain.attested = client_attested;
    plain.expiry = config.clock->now() + config.ticket_lifetime_seconds;
    const Bytes ticket = seal_ticket(*config.ticket_key, plain, *config.rng);
    const Bytes msg = hs_message(HsType::kNewSessionTicket, ticket);
    app_write.protect_into(ContentType::kHandshake, msg, hs.wire_scratch);
    transport->write(hs.wire_scratch);
  }

  auto session = std::unique_ptr<Session>(new Session(
      std::move(transport), std::move(app_read), std::move(app_write),
      std::move(client_cert), std::move(peer_identity), resumed,
      std::nullopt));
  session->peer_attested_ = client_attested;
  return session;
}

// ---------------------------------------------------------------------------
// Application data.
// ---------------------------------------------------------------------------

Session::Session(net::StreamPtr transport, RecordProtection read_protection,
                 RecordProtection write_protection,
                 std::optional<pki::Certificate> peer_certificate,
                 std::string peer_identity, bool resumed,
                 std::optional<SessionTicket> session_ticket)
    : transport_(std::move(transport)),
      read_protection_(std::move(read_protection)),
      write_protection_(std::move(write_protection)),
      peer_certificate_(std::move(peer_certificate)),
      peer_identity_(std::move(peer_identity)),
      resumed_(resumed),
      session_ticket_(std::move(session_ticket)) {}

Session::~Session() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; the transport is going away regardless.
  }
  if (parked_) {
    parked_ = false;
    parked_sessions_gauge().add(-1);
  }
}

obs::Gauge& Session::parked_sessions_gauge() {
  static obs::Gauge& gauge = obs::registry().gauge(
      "vnfsgx_tls_parked_sessions", {},
      "TLS sessions currently parked on the connection diet (record "
      "scratch and expanded cipher state released)");
  return gauge;
}

std::size_t Session::park_buffers(net::BufferPool* pool) {
  if (closed_) return 0;
  buffer_pool_ = pool;
  std::size_t released = 0;
  // Never discard decrypted bytes the reader has not consumed yet; only a
  // fully-drained read buffer goes back to the pool.
  if (read_pos_ >= read_buffer_.size() && read_buffer_.capacity() > 0) {
    released += read_buffer_.capacity();
    if (pool) {
      pool->release(std::move(read_buffer_));
    } else {
      Bytes().swap(read_buffer_);
    }
    read_buffer_.clear();
    read_pos_ = 0;
  }
  if (write_wire_.capacity() > 0) {
    released += write_wire_.capacity();
    if (pool) {
      pool->release(std::move(write_wire_));
    } else {
      Bytes().swap(write_wire_);
    }
    write_wire_.clear();
  }
  if (!read_protection_.parked()) {
    released += RecordProtection::expanded_state_size();
    read_protection_.park();
  }
  if (!write_protection_.parked()) {
    released += RecordProtection::expanded_state_size();
    write_protection_.park();
  }
  released += transport_->park_buffers(pool);
  if (!parked_) {
    parked_ = true;
    parked_sessions_gauge().add(1);
  }
  return released;
}

void Session::unpark() {
  if (!parked_) return;
  parked_ = false;
  parked_sessions_gauge().add(-1);
  // Write scratch is the one buffer protect_into reuses; pull a pooled one
  // so the first record after an idle interval skips the allocation. The
  // read buffer needs nothing: each record's decrypted payload is moved in.
  if (buffer_pool_ != nullptr && write_wire_.capacity() == 0) {
    write_wire_ = buffer_pool_->acquire();
  }
}

void Session::release_handshake_state() { peer_certificate_.reset(); }

void Session::write(ByteView data) {
  // Cached references: registration cost is paid once per process; the
  // per-record cost is two relaxed adds on a thread-striped shard.
  static obs::Counter& bytes_out = obs::registry().counter(
      "vnfsgx_tls_bytes_total", {{"direction", "out"}},
      "Application bytes through the TLS record layer");
  static obs::Counter& records_out = obs::registry().counter(
      "vnfsgx_tls_records_total", {{"direction", "out"}},
      "TLS application-data records processed");
  if (closed_) throw IoError("tls: session closed");
  unpark();
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t take = std::min<std::size_t>(16384, data.size() - off);
    write_protection_.protect_into(ContentType::kApplicationData,
                                   data.subspan(off, take), write_wire_);
    transport_->write(write_wire_);
    off += take;
    records_out.add();
  }
  bytes_out.add(data.size());
}

std::size_t Session::read(std::span<std::uint8_t> out) {
  unpark();
  while (read_pos_ == read_buffer_.size()) {
    if (peer_closed_) return 0;
    std::optional<Record> record = read_record(*transport_);
    if (!record) {
      peer_closed_ = true;
      return 0;
    }
    // Decrypt in place: record->payload becomes the inner plaintext.
    Record plain = std::move(*record);
    plain.type = read_protection_.unprotect_in_place(plain.type, plain.payload);
    if (plain.type == ContentType::kAlert) {
      // close_notify or fatal alert: either way the stream ends.
      peer_closed_ = true;
      return 0;
    }
    if (plain.type == ContentType::kHandshake) {
      // Post-handshake message: NewSessionTicket.
      if (plain.payload.size() >= 4 &&
          static_cast<HsType>(plain.payload[0]) == HsType::kNewSessionTicket) {
        const std::uint32_t len = read_u24(plain.payload, 1);
        if (plain.payload.size() == 4u + len) {
          SessionTicket ticket;
          ticket.ticket = Bytes(plain.payload.begin() + 4, plain.payload.end());
          ticket.resumption_secret = resumption_secret_pending_;
          ticket.server_name = server_name_;
          session_ticket_ = std::move(ticket);
          continue;
        }
      }
      throw ProtocolError("tls: unexpected post-handshake message");
    }
    if (plain.type != ContentType::kApplicationData) {
      throw ProtocolError("tls: unexpected record type after handshake");
    }
    static obs::Counter& bytes_in = obs::registry().counter(
        "vnfsgx_tls_bytes_total", {{"direction", "in"}},
        "Application bytes through the TLS record layer");
    static obs::Counter& records_in = obs::registry().counter(
        "vnfsgx_tls_records_total", {{"direction", "in"}},
        "TLS application-data records processed");
    records_in.add();
    bytes_in.add(plain.payload.size());
    read_buffer_ = std::move(plain.payload);
    read_pos_ = 0;
  }
  const std::size_t take = std::min(out.size(), read_buffer_.size() - read_pos_);
  std::memcpy(out.data(), read_buffer_.data() + read_pos_, take);
  read_pos_ += take;
  return take;
}

void Session::close() {
  if (closed_) return;
  unpark();
  closed_ = true;
  try {
    Record alert{ContentType::kAlert, {}};
    append_u8(alert.payload, 1);  // warning
    append_u8(alert.payload, static_cast<std::uint8_t>(AlertCode::kCloseNotify));
    write_protection_.protect_into(alert.type, alert.payload, write_wire_);
    transport_->write(write_wire_);
  } catch (...) {
    // Peer may already be gone.
  }
  transport_->close();
}

}  // namespace vnfsgx::tls
