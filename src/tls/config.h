// TLS session configuration.
//
// The signing operation is a callback rather than a raw private key: in the
// paper's design the VNF's client key lives inside an SGX enclave and never
// leaves it, so the TLS stack asks the enclave to produce the
// CertificateVerify signature. Software-held keys just wrap
// ed25519_sign in the callback.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/secure.h"
#include "common/sim_clock.h"
#include "crypto/ed25519.h"
#include "crypto/random.h"
#include "pki/certificate.h"
#include "pki/truststore.h"

namespace vnfsgx::tls {

using SignFunction = std::function<crypto::Ed25519Signature(ByteView)>;

/// Server-side session-ticket protection key (rotate by replacing).
struct TicketKey {
  Zeroizing<std::array<std::uint8_t, 16>> key;

  static TicketKey generate(crypto::RandomSource& rng) {
    TicketKey k;
    rng.fill(k.key);
    return k;
  }
};

/// A resumable session handle held by the client after a full handshake.
struct SessionTicket {
  Bytes ticket;                   // opaque server-encrypted blob
  SecureBytes resumption_secret;  // the PSK (client-side secret, never sent)
  std::string server_name;        // which server it resumes to

  bool valid() const { return !ticket.empty(); }
};

struct Config {
  /// Local identity (required for servers; for clients only when the peer
  /// requests client authentication).
  std::optional<pki::Certificate> certificate;
  SignFunction signer;

  /// Verification policy for the peer's certificate. Clients must set this;
  /// servers set it when requiring client authentication.
  const pki::TrustStore* truststore = nullptr;

  /// Server side: demand and verify a client certificate ("trusted HTTPS").
  bool require_client_certificate = false;

  /// Require the peer's certificate to carry *verified* attestation
  /// evidence (RA-TLS): the truststore's attested verifier must appraise it
  /// kOk. A peer presenting a plain CA certificate — even a valid one — is
  /// rejected with SecurityViolation (the downgrade case). On the client
  /// side this also disables resumption offers, so the evidence is
  /// re-appraised on every connection. Requires a truststore with an
  /// attested verifier installed (and, server-side,
  /// require_client_certificate).
  bool require_attested_peer = false;

  /// Client side: if non-empty, the server certificate's CN must match.
  std::string expected_server_name;

  /// Server side: when set, issue a session ticket after each full
  /// handshake; clients may resume with it, skipping both certificate
  /// exchanges (the authenticated identity carries over). Revoked
  /// credentials cannot resume (the truststore's CRLs are re-checked).
  const TicketKey* ticket_key = nullptr;
  /// Ticket validity window.
  std::int64_t ticket_lifetime_seconds = 600;

  /// Client side: offer this ticket for resumption (ignored if invalid;
  /// the handshake transparently falls back to a full one).
  const SessionTicket* resumption = nullptr;

  const Clock* clock = nullptr;        // required
  crypto::RandomSource* rng = nullptr; // required

  /// Convenience: identity from a certificate + software key. The closure
  /// holds its seed copy in a Zeroizing so it is wiped with the Config.
  static SignFunction software_signer(const crypto::Ed25519Seed& seed) {
    return [seed = Zeroizing<crypto::Ed25519Seed>(seed)](ByteView data) {
      return crypto::ed25519_sign(seed, data);
    };
  }
};

}  // namespace vnfsgx::tls
