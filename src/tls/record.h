// TLS record layer: framing, and AES-128-GCM protection with per-direction
// sequence-number nonces (RFC 8446 §5 style).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/bytes.h"
#include "common/secure.h"
#include "crypto/gcm.h"
#include "net/stream.h"

namespace vnfsgx::tls {

enum class ContentType : std::uint8_t {
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

inline constexpr std::size_t kMaxRecordPayload = 16384 + 256;

struct Record {
  ContentType type = ContentType::kHandshake;
  Bytes payload;
};

/// Plaintext record framing: type(1) || length(2) || payload.
void write_record(net::Stream& stream, const Record& record);
/// Returns nullopt on clean EOF at a record boundary.
std::optional<Record> read_record(net::Stream& stream);

/// One direction of record protection. Nonce = iv XOR seq (seq in the last
/// 8 bytes); AAD = the 3-byte record header of the protected record.
class RecordProtection {
 public:
  RecordProtection(ByteView key, ByteView iv);

  /// Encrypt a record; the inner content type is appended to the plaintext
  /// (TLSInnerPlaintext) and the outer type is ApplicationData.
  Record protect(const Record& plain);

  /// Decrypt; throws ProtocolError on authentication failure.
  Record unprotect(const Record& wire);

  /// Zero-copy protect: assembles the full wire record — 3-byte header,
  /// ciphertext, tag — into `wire` (cleared and reused; one append of the
  /// payload, encrypted in place, no intermediate buffers). The result is
  /// ready for Stream::write as-is.
  void protect_into(ContentType type, ByteView payload, Bytes& wire);

  /// Zero-copy unprotect: decrypts a wire record payload (ciphertext||tag)
  /// in place, strips the tag and inner type byte, and leaves the plaintext
  /// in `payload`. Throws ProtocolError on a non-ApplicationData outer type
  /// or authentication failure. Returns the inner content type.
  ContentType unprotect_in_place(ContentType outer_type, Bytes& payload);

  std::uint64_t seq() const { return seq_; }

  /// Connection diet: drop the expanded AES key schedule and GHASH
  /// multiplication tables (~1 KB per direction) while the connection
  /// idles. The raw traffic key + IV + sequence number stay, so the next
  /// protect/unprotect rebuilds the cipher transparently.
  void park();

  /// True while the expanded cipher state is released (between park() and
  /// the next protect/unprotect).
  bool parked() const { return aead_ == nullptr; }

  /// Heap + inline footprint of the expanded cipher state park() releases.
  static std::size_t expanded_state_size() { return sizeof(crypto::AesGcm); }

 private:
  std::array<std::uint8_t, 12> nonce_for_seq() const;
  crypto::AesGcm& aead();

  SecureBytes key_;  // raw traffic key, kept to rebuild aead_ after park()
  std::unique_ptr<crypto::AesGcm> aead_;
  std::array<std::uint8_t, 12> iv_{};
  std::uint64_t seq_ = 0;
};

}  // namespace vnfsgx::tls
