#include "tls/record.h"

#include "common/error.h"

namespace vnfsgx::tls {

void write_record(net::Stream& stream, const Record& record) {
  if (record.payload.size() > kMaxRecordPayload) {
    throw ProtocolError("tls: record payload too large");
  }
  Bytes wire;
  append_u8(wire, static_cast<std::uint8_t>(record.type));
  append_u16(wire, static_cast<std::uint16_t>(record.payload.size()));
  append(wire, record.payload);
  stream.write(wire);
}

std::optional<Record> read_record(net::Stream& stream) {
  std::uint8_t header[3];
  // Distinguish clean EOF (0 bytes at boundary) from truncation.
  const std::size_t first = stream.read(std::span<std::uint8_t>(header, 3));
  if (first == 0) return std::nullopt;
  if (first < 3) {
    stream.read_exact(std::span<std::uint8_t>(header + first, 3 - first));
  }
  Record record;
  record.type = static_cast<ContentType>(header[0]);
  const std::uint16_t len = read_u16(ByteView(header, 3), 1);
  if (len > kMaxRecordPayload) throw ProtocolError("tls: oversized record");
  record.payload = stream.read_exact(len);
  return record;
}

RecordProtection::RecordProtection(ByteView key, ByteView iv)
    : key_(Bytes(key.begin(), key.end())),
      // Built eagerly so a bad key size still throws at construction.
      aead_(std::make_unique<crypto::AesGcm>(key)) {
  if (iv.size() != iv_.size()) throw CryptoError("tls: bad record IV size");
  std::copy(iv.begin(), iv.end(), iv_.begin());
}

void RecordProtection::park() { aead_.reset(); }

crypto::AesGcm& RecordProtection::aead() {
  if (!aead_) aead_ = std::make_unique<crypto::AesGcm>(ByteView(key_));
  return *aead_;
}

std::array<std::uint8_t, 12> RecordProtection::nonce_for_seq() const {
  std::array<std::uint8_t, 12> nonce = iv_;
  for (int i = 0; i < 8; ++i) {
    nonce[11 - static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(seq_ >> (8 * i));
  }
  return nonce;
}

void RecordProtection::protect_into(ContentType type, ByteView payload,
                                    Bytes& wire) {
  const std::size_t inner_len = payload.size() + 1;  // TLSInnerPlaintext
  const std::size_t ct_len = inner_len + crypto::kGcmTagSize;
  if (ct_len > kMaxRecordPayload) {
    throw ProtocolError("tls: record payload too large");
  }
  wire.clear();
  wire.reserve(3 + ct_len);
  append_u8(wire, static_cast<std::uint8_t>(ContentType::kApplicationData));
  append_u16(wire, static_cast<std::uint16_t>(ct_len));
  append(wire, payload);
  append_u8(wire, static_cast<std::uint8_t>(type));
  wire.resize(3 + ct_len);

  const auto nonce = nonce_for_seq();
  // AAD is the 3-byte header just written; ciphertext replaces the inner
  // plaintext in place, tag lands directly after it.
  aead().seal_in_place(nonce, wire.data() + 3, inner_len,
                       ByteView(wire.data(), 3), wire.data() + 3 + inner_len);
  ++seq_;
}

ContentType RecordProtection::unprotect_in_place(ContentType outer_type,
                                                 Bytes& payload) {
  if (outer_type != ContentType::kApplicationData) {
    throw ProtocolError("tls: expected protected record");
  }
  if (payload.size() < crypto::kGcmTagSize + 1) {
    throw ProtocolError("tls: record authentication failed");
  }
  std::uint8_t aad[3];
  aad[0] = static_cast<std::uint8_t>(ContentType::kApplicationData);
  aad[1] = static_cast<std::uint8_t>(payload.size() >> 8);
  aad[2] = static_cast<std::uint8_t>(payload.size());

  const std::size_t inner_len = payload.size() - crypto::kGcmTagSize;
  const auto nonce = nonce_for_seq();
  if (!aead().open_in_place(nonce, payload.data(), inner_len, ByteView(aad, 3),
                            ByteView(payload.data() + inner_len,
                                     crypto::kGcmTagSize))) {
    throw ProtocolError("tls: record authentication failed");
  }
  ++seq_;
  const auto type = static_cast<ContentType>(payload[inner_len - 1]);
  payload.resize(inner_len - 1);
  return type;
}

Record RecordProtection::protect(const Record& plain) {
  Bytes wire_bytes;
  protect_into(plain.type, plain.payload, wire_bytes);
  Record wire;
  wire.type = ContentType::kApplicationData;
  // Strip the 3-byte header protect_into assembled; Record carries it
  // implicitly and write_record re-emits it.
  wire.payload.assign(wire_bytes.begin() + 3, wire_bytes.end());
  return wire;
}

Record RecordProtection::unprotect(const Record& wire) {
  Record plain;
  plain.payload = wire.payload;
  plain.type = unprotect_in_place(wire.type, plain.payload);
  return plain;
}

}  // namespace vnfsgx::tls
