#include "tls/record.h"

#include "common/error.h"

namespace vnfsgx::tls {

void write_record(net::Stream& stream, const Record& record) {
  if (record.payload.size() > kMaxRecordPayload) {
    throw ProtocolError("tls: record payload too large");
  }
  Bytes wire;
  append_u8(wire, static_cast<std::uint8_t>(record.type));
  append_u16(wire, static_cast<std::uint16_t>(record.payload.size()));
  append(wire, record.payload);
  stream.write(wire);
}

std::optional<Record> read_record(net::Stream& stream) {
  std::uint8_t header[3];
  // Distinguish clean EOF (0 bytes at boundary) from truncation.
  const std::size_t first = stream.read(std::span<std::uint8_t>(header, 3));
  if (first == 0) return std::nullopt;
  if (first < 3) {
    stream.read_exact(std::span<std::uint8_t>(header + first, 3 - first));
  }
  Record record;
  record.type = static_cast<ContentType>(header[0]);
  const std::uint16_t len = read_u16(ByteView(header, 3), 1);
  if (len > kMaxRecordPayload) throw ProtocolError("tls: oversized record");
  record.payload = stream.read_exact(len);
  return record;
}

RecordProtection::RecordProtection(ByteView key, ByteView iv) : aead_(key) {
  if (iv.size() != iv_.size()) throw CryptoError("tls: bad record IV size");
  std::copy(iv.begin(), iv.end(), iv_.begin());
}

std::array<std::uint8_t, 12> RecordProtection::nonce_for_seq() const {
  std::array<std::uint8_t, 12> nonce = iv_;
  for (int i = 0; i < 8; ++i) {
    nonce[11 - static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(seq_ >> (8 * i));
  }
  return nonce;
}

Record RecordProtection::protect(const Record& plain) {
  Bytes inner = plain.payload;
  append_u8(inner, static_cast<std::uint8_t>(plain.type));

  const std::size_t ct_len = inner.size() + crypto::kGcmTagSize;
  Bytes aad;
  append_u8(aad, static_cast<std::uint8_t>(ContentType::kApplicationData));
  append_u16(aad, static_cast<std::uint16_t>(ct_len));

  const auto nonce = nonce_for_seq();
  ++seq_;
  Record wire;
  wire.type = ContentType::kApplicationData;
  wire.payload = aead_.seal(nonce, inner, aad);
  return wire;
}

Record RecordProtection::unprotect(const Record& wire) {
  if (wire.type != ContentType::kApplicationData) {
    throw ProtocolError("tls: expected protected record");
  }
  Bytes aad;
  append_u8(aad, static_cast<std::uint8_t>(ContentType::kApplicationData));
  append_u16(aad, static_cast<std::uint16_t>(wire.payload.size()));

  const auto nonce = nonce_for_seq();
  auto inner = aead_.open(nonce, wire.payload, aad);
  if (!inner) throw ProtocolError("tls: record authentication failed");
  ++seq_;
  if (inner->empty()) throw ProtocolError("tls: empty inner plaintext");
  Record plain;
  plain.type = static_cast<ContentType>(inner->back());
  inner->pop_back();
  plain.payload = std::move(*inner);
  return plain;
}

}  // namespace vnfsgx::tls
