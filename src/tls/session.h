// TLS session: 1.3-style handshake + protected application data stream.
//
// One cipher suite (X25519 ECDHE, Ed25519 certificates, AES-128-GCM,
// SHA-256 transcript). Supports server-only and mutual authentication —
// the controller's "HTTPS" and "trusted HTTPS" modes. Implements
// net::Stream so HTTP runs over it unchanged.
#pragma once

#include <memory>
#include <optional>

#include "net/stream.h"
#include "pki/certificate.h"
#include "tls/config.h"
#include "tls/key_schedule.h"
#include "tls/record.h"

namespace vnfsgx::obs {
class Gauge;
}

namespace vnfsgx::tls {

class Session final : public net::Stream {
 public:
  /// Run the client side of the handshake. Throws ProtocolError/Error on
  /// any verification failure (after sending a fatal alert).
  static std::unique_ptr<Session> connect(net::StreamPtr transport,
                                          const Config& config);

  /// Run the server side of the handshake.
  static std::unique_ptr<Session> accept(net::StreamPtr transport,
                                         const Config& config);

  ~Session() override;

  // net::Stream — application data.
  void write(ByteView data) override;
  std::size_t read(std::span<std::uint8_t> out) override;
  void close() override;
  void set_read_timeout(std::chrono::milliseconds timeout) override {
    transport_->set_read_timeout(timeout);
  }
  /// Decrypted application bytes already queued in userspace — invisible
  /// to transport-level readiness polling.
  bool buffered() const override { return read_pos_ < read_buffer_.size(); }

  /// Connection diet (net::Stream hook): release the record scratch
  /// buffers into `pool` (nullptr = just free), drop both directions'
  /// expanded cipher state, and remember the pool so the next read/write
  /// reacquires scratch lazily. Fully-consumed read buffers only — bytes
  /// still queued for the reader are never discarded. Also forwards to the
  /// underlying transport. Returns an estimate of bytes released.
  std::size_t park_buffers(net::BufferPool* pool) override;

  /// Drop handshake-only state that is no longer needed once the caller
  /// has recorded the peer's identity: the parsed peer certificate chain.
  /// peer_identity() and peer_attested() keep working; peer_certificate()
  /// returns nullopt afterwards. Callers that inspect certificate fields
  /// post-handshake must not call this.
  void release_handshake_state();

  /// The peer's verified certificate (servers in mutual-auth mode and
  /// clients always have one — on *full* handshakes; resumed sessions
  /// carry the identity string instead).
  const std::optional<pki::Certificate>& peer_certificate() const {
    return peer_certificate_;
  }

  /// Authenticated peer identity: the certificate CN on full handshakes,
  /// or the identity carried over in the session ticket on resumption.
  /// Empty when the peer is anonymous (server-auth-only clients).
  const std::string& peer_identity() const { return peer_identity_; }

  /// True if this session was established via ticket resumption.
  bool resumed() const { return resumed_; }

  /// True when the peer's certificate carried attestation evidence the
  /// truststore's attested verifier accepted (RA-TLS) — the handshake both
  /// attested and authenticated the peer. Resumed server sessions carry the
  /// flag over from the original handshake via the ticket.
  bool peer_attested() const { return peer_attested_; }

  /// Client side: the resumption ticket issued by the server during this
  /// session, if any (valid after the handshake; tickets arrive with the
  /// server's first flight).
  const std::optional<SessionTicket>& session_ticket() const {
    return session_ticket_;
  }

 private:
  struct Handshaker;

  // Handshake bodies; the public wrappers add the step-6 span + metrics.
  static std::unique_ptr<Session> connect_impl(net::StreamPtr transport,
                                               const Config& config);
  static std::unique_ptr<Session> accept_impl(net::StreamPtr transport,
                                              const Config& config);

  Session(net::StreamPtr transport, RecordProtection read_protection,
          RecordProtection write_protection,
          std::optional<pki::Certificate> peer_certificate,
          std::string peer_identity, bool resumed,
          std::optional<SessionTicket> session_ticket);

  net::StreamPtr transport_;
  RecordProtection read_protection_;
  RecordProtection write_protection_;
  std::optional<pki::Certificate> peer_certificate_;
  std::string peer_identity_;
  bool resumed_ = false;
  bool peer_attested_ = false;
  std::optional<SessionTicket> session_ticket_;
  SecureBytes resumption_secret_pending_;  // client: PSK for a future ticket
  std::string server_name_;          // client: ticket scope
  Bytes read_buffer_;
  Bytes write_wire_;  // reused wire-record scratch for protect_into
  std::size_t read_pos_ = 0;
  bool closed_ = false;
  bool peer_closed_ = false;
  net::BufferPool* buffer_pool_ = nullptr;  // set by park_buffers
  bool parked_ = false;  // tracked for the vnfsgx_tls_parked_sessions gauge

  /// Reacquire write scratch from the pool after a park and clear the
  /// parked flag/gauge on first activity.
  void unpark();

  static obs::Gauge& parked_sessions_gauge();
};

}  // namespace vnfsgx::tls
