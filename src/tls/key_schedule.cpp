#include "tls/key_schedule.h"

#include "crypto/hkdf.h"
#include "crypto/hmac.h"

namespace vnfsgx::tls {

SecureBytes derive_secret(ByteView secret, std::string_view label,
                          ByteView transcript_hash) {
  return crypto::hkdf_expand_label(secret, label, transcript_hash,
                                   crypto::kSha256DigestSize);
}

KeySchedule::KeySchedule(ByteView psk) {
  if (psk.empty()) {
    const Bytes zeros(crypto::kSha256DigestSize, 0);
    early_secret_ = crypto::hkdf_extract({}, zeros);
  } else {
    early_secret_ = crypto::hkdf_extract({}, psk);
  }
}

SecureBytes KeySchedule::binder_key() const {
  return crypto::hkdf_expand_label(early_secret_, "res binder", {},
                                   crypto::kSha256DigestSize);
}

void KeySchedule::set_handshake_secret(ByteView ecdhe_shared) {
  const Bytes empty_hash = crypto::sha256({});
  const SecureBytes derived = derive_secret(early_secret_, "derived", empty_hash);
  handshake_secret_ = crypto::hkdf_extract(derived, ecdhe_shared);
}

SecureBytes KeySchedule::client_handshake_traffic(ByteView transcript_hash) const {
  return derive_secret(handshake_secret_, "c hs traffic", transcript_hash);
}

SecureBytes KeySchedule::server_handshake_traffic(ByteView transcript_hash) const {
  return derive_secret(handshake_secret_, "s hs traffic", transcript_hash);
}

void KeySchedule::set_master_secret() {
  const Bytes empty_hash = crypto::sha256({});
  const SecureBytes derived = derive_secret(handshake_secret_, "derived", empty_hash);
  const Bytes zeros(crypto::kSha256DigestSize, 0);
  master_secret_ = crypto::hkdf_extract(derived, zeros);
}

SecureBytes KeySchedule::client_application_traffic(ByteView transcript_hash) const {
  return derive_secret(master_secret_, "c ap traffic", transcript_hash);
}

SecureBytes KeySchedule::server_application_traffic(ByteView transcript_hash) const {
  return derive_secret(master_secret_, "s ap traffic", transcript_hash);
}

SecureBytes KeySchedule::resumption_secret(ByteView transcript_hash) const {
  return derive_secret(master_secret_, "res master", transcript_hash);
}

SecureBytes KeySchedule::finished_key(ByteView traffic_secret) {
  return crypto::hkdf_expand_label(traffic_secret, "finished", {},
                                   crypto::kSha256DigestSize);
}

Bytes KeySchedule::finished_mac(ByteView traffic_secret,
                                ByteView transcript_hash) {
  return crypto::hmac_sha256(finished_key(traffic_secret), transcript_hash);
}

TrafficKeys KeySchedule::traffic_keys(ByteView traffic_secret) {
  TrafficKeys keys;
  keys.key = crypto::hkdf_expand_label(traffic_secret, "key", {}, 16);
  keys.iv = crypto::hkdf_expand_label(traffic_secret, "iv", {}, 12);
  return keys;
}

}  // namespace vnfsgx::tls
