// Minimal JSON value model, parser and serializer.
//
// Carries controller REST bodies (Floodlight-style endpoints) and IAS
// attestation-verification-report payloads. Supports the full JSON grammar
// except \uXXXX escapes beyond Latin-1 (sufficient for this system's
// ASCII protocol surface).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.h"

namespace vnfsgx::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps serialization deterministic (sorted keys), which the
/// attestation code relies on when signing report bodies.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(unsigned i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::uint64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return get<bool>("bool"); }
  double as_number() const { return get<double>("number"); }
  std::int64_t as_int() const { return static_cast<std::int64_t>(as_number()); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  const Object& as_object() const { return get<Object>("object"); }
  Array& as_array() { return get<Array>("array"); }
  Object& as_object() { return get<Object>("object"); }

  /// Object field access; throws ParseError when missing (protocol bodies
  /// are validated by their consumers, which want a hard error).
  const Value& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;
  /// Object field or fallback when absent.
  const Value& get_or(const std::string& key, const Value& fallback) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  template <typename T>
  const T& get(const char* name) const {
    const T* p = std::get_if<T>(&data_);
    if (!p) throw ParseError(std::string("json: value is not a ") + name);
    return *p;
  }
  template <typename T>
  T& get(const char* name) {
    T* p = std::get_if<T>(&data_);
    if (!p) throw ParseError(std::string("json: value is not a ") + name);
    return *p;
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a complete JSON document. Throws ParseError on malformed input or
/// trailing garbage.
Value parse(std::string_view text);

/// Compact serialization (no whitespace), deterministic key order.
std::string serialize(const Value& v);

/// Pretty-printed serialization for logs and examples.
std::string serialize_pretty(const Value& v, int indent = 2);

}  // namespace vnfsgx::json
