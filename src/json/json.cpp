#include "json/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vnfsgx::json {

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw ParseError("json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) > 0;
}

const Value& Value::get_or(const std::string& key, const Value& fallback) const {
  if (!is_object()) return fallback;
  const Object& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw ParseError("json: trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw ParseError("json: " + why + " at offset " + std::to_string(pos_));
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void number_into(std::string& out, double d) {
  // Integers within the exactly-representable range print without a
  // fractional part; protocol fields are integral almost everywhere.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

void serialize_into(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int d) {
    if (pretty) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };

  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    number_into(out, v.as_number());
  } else if (v.is_string()) {
    escape_into(out, v.as_string());
  } else if (v.is_array()) {
    const Array& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const Value& item : arr) {
      if (!first) out.push_back(',');
      first = false;
      newline_pad(depth + 1);
      serialize_into(out, item, indent, depth + 1);
    }
    newline_pad(depth);
    out.push_back(']');
  } else {
    const Object& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, item] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline_pad(depth + 1);
      escape_into(out, key);
      out.push_back(':');
      if (pretty) out.push_back(' ');
      serialize_into(out, item, indent, depth + 1);
    }
    newline_pad(depth);
    out.push_back('}');
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string serialize(const Value& v) {
  std::string out;
  serialize_into(out, v, 0, 0);
  return out;
}

std::string serialize_pretty(const Value& v, int indent) {
  std::string out;
  serialize_into(out, v, indent, 0);
  return out;
}

}  // namespace vnfsgx::json
