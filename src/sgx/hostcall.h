// Switchless ECALL runtime (the HotCalls design): a shared-memory job ring
// between untrusted submitters and one dedicated in-enclave worker thread.
//
// Untrusted threads claim a ring slot, copy opcode + payload into it, and
// mark it queued; the worker — resident inside the enclave via a single
// long-lived ECALL entry — polls the ring, copies each job *into* enclave
// memory (exactly one read per slot field: untrusted memory is never
// re-read after validation), executes it, and posts the result back into
// the slot. No per-job boundary crossing happens on this path.
//
// Idle policy is spin-then-park: after `spin_polls` empty polls the worker
// exits the enclave and parks on a condition variable, so an idle enclave
// burns no CPU; the next submission performs a classic ECALL-style wakeup
// (one crossing when the worker re-enters).
//
// Capacity is bounded and submission applies backpressure (blocks for a
// free slot) rather than dropping. See docs/ENCLAVE_BOUNDARY.md for the
// memory layout and the trusted/untrusted ownership rules.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "sgx/enclave.h"

namespace vnfsgx::obs {
class Gauge;
}

namespace vnfsgx::sgx {

/// Upper bound on a ring job's payload and result. Oversized payloads are
/// rejected at the untrusted gate (submit throws); oversized results are
/// truncated to an error inside the enclave.
inline constexpr std::size_t kMaxHostCallPayload = 2048;

struct HostCallOptions {
  /// Ring slots; rounded up to a power of two, minimum 2.
  std::size_t ring_capacity = 128;
  /// Empty polls before the worker exits the enclave and parks.
  int spin_polls = 4096;
  /// Metrics label for this ring's occupancy gauge.
  std::string name = "hostcall";
};

/// Counters exposed for tests and benchmarks (monotonic, relaxed).
struct HostCallStats {
  std::uint64_t jobs = 0;                // jobs completed through the ring
  std::uint64_t parks = 0;               // spin budget exhausted, worker slept
  std::uint64_t wakeups = 0;             // park -> run transitions
  std::uint64_t backpressure_waits = 0;  // submits that blocked on a full ring
};

class HostCallRing {
 public:
  /// Starts the in-enclave worker thread. The ring shares ownership of the
  /// enclave so the worker can never outlive it.
  explicit HostCallRing(std::shared_ptr<Enclave> enclave,
                        HostCallOptions options = {});
  ~HostCallRing();

  HostCallRing(const HostCallRing&) = delete;
  HostCallRing& operator=(const HostCallRing&) = delete;

  /// Handle to a submitted job; pass to wait() exactly once.
  using Ticket = std::uint32_t;

  /// Enqueue a job. Blocks only when the ring is full (backpressure) —
  /// never drops. Throws Error if the payload exceeds kMaxHostCallPayload
  /// or the ring has been stopped.
  Ticket submit(std::uint32_t opcode, ByteView payload);

  /// Collect a submitted job's result, freeing its slot. Rethrows the
  /// trusted handler's failure as Error.
  Bytes wait(Ticket ticket);

  /// submit + wait: the drop-in replacement for Enclave::call.
  Bytes call(std::uint32_t opcode, ByteView payload);

  /// Stop accepting jobs, let in-flight submitters finish, drain every
  /// queued job through the worker, then join it. Idempotent; also run by
  /// the destructor. After stop(), submit/call throw Error.
  void stop();
  bool stopped() const {
    return !accepting_.load(std::memory_order_acquire);
  }

  /// Slots currently claimed/queued/executing/unconsumed.
  std::size_t occupancy() const {
    return occupancy_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }
  HostCallStats stats() const;

 private:
  struct Slot;

  Slot* try_claim();
  Slot& claim_slot();
  bool process_one(EnclaveEntry& entry);
  void worker_main();
  void set_occupancy_gauge();

  std::shared_ptr<Enclave> enclave_;
  HostCallOptions options_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{true};
  std::atomic<std::size_t> occupancy_{0};
  std::atomic<std::uint64_t> queued_{0};      // enqueued, not yet claimed
  std::atomic<std::uint64_t> submitters_{0};  // calls inside submit/wait
  std::atomic<std::uint32_t> claim_hint_{0};
  std::size_t scan_ = 0;  // worker-only cursor

  // Worker park/wake (the "classic ECALL wakeup" edge).
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> parked_{false};

  // Submitters blocked on a full ring (backpressure) or on a result.
  std::mutex space_mutex_;
  std::condition_variable space_cv_;
  std::atomic<std::uint32_t> space_waiters_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::atomic<std::uint32_t> done_waiters_{0};

  // stop() rendezvous with in-flight submitters.
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  std::once_flag stop_once_;

  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> backpressure_waits_{0};

  // Cached metric instrument (registered once per ring name).
  obs::Gauge* occupancy_gauge_ = nullptr;

  std::thread worker_;
};

}  // namespace vnfsgx::sgx
