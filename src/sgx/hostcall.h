// Switchless ECALL runtime (the HotCalls design): a shared-memory job ring
// between untrusted submitters and one dedicated in-enclave worker thread.
//
// Untrusted threads claim a ring slot, copy opcode + payload into it, and
// mark it queued; the worker — resident inside the enclave via a single
// long-lived ECALL entry — polls the ring, copies each job *into* enclave
// memory (exactly one read per slot field: untrusted memory is never
// re-read after validation), executes it, and posts the result back into
// the slot. No per-job boundary crossing happens on this path.
//
// Two submission shapes:
//   * submit(opcode, bytes): classic copying submit (payload memcpy'd from
//     a caller buffer into the slot).
//   * begin_submit()/publish(): zero-copy submit — the caller serializes
//     its message directly into the claimed slot's payload region, so the
//     only untrusted-side copy is the serialization itself. Paired with
//     wait_into(), which lands the result in a caller buffer, a frame
//     round-trip performs zero heap allocations.
//
// A RingGroup scales the substrate past one resident worker: N rings, one
// in-enclave worker each, with producer affinity (a submitting thread
// sticks to its home ring for cache locality and contention-free claims)
// and round-robin fallback ("steal" a slot on a sibling ring rather than
// block when home is full).
//
// Idle policy is spin-then-park: after `spin_polls` empty polls the worker
// exits the enclave and parks on a condition variable, so an idle enclave
// burns no CPU; the next submission performs a classic ECALL-style wakeup
// (one crossing when the worker re-enters).
//
// Capacity is bounded and submission applies backpressure (blocks for a
// free slot) rather than dropping. See docs/ENCLAVE_BOUNDARY.md for the
// memory layout and the trusted/untrusted ownership rules.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sgx/enclave.h"

namespace vnfsgx::obs {
class Counter;
class Gauge;
}  // namespace vnfsgx::obs

namespace vnfsgx::sgx {

/// Upper bound on a ring job's payload and result. Oversized payloads are
/// rejected at the untrusted gate (submit throws); oversized results are
/// truncated to an error inside the enclave.
inline constexpr std::size_t kMaxHostCallPayload = 2048;

struct HostCallOptions {
  /// Ring slots; rounded up to a power of two, minimum 2.
  std::size_t ring_capacity = 128;
  /// Empty polls before the worker exits the enclave and parks.
  int spin_polls = 4096;
  /// Metrics label for this ring's occupancy gauge.
  std::string name = "hostcall";
};

/// Counters exposed for tests and benchmarks (monotonic, relaxed).
struct HostCallStats {
  std::uint64_t submits = 0;             // jobs published into the ring
  std::uint64_t jobs = 0;                // jobs completed through the ring
  std::uint64_t parks = 0;               // spin budget exhausted, worker slept
  std::uint64_t wakeups = 0;             // park -> run transitions
  std::uint64_t backpressure_waits = 0;  // submits that blocked on a full ring
};

class HostCallRing {
 public:
  /// Starts the in-enclave worker thread. The ring shares ownership of the
  /// enclave so the worker can never outlive it.
  explicit HostCallRing(std::shared_ptr<Enclave> enclave,
                        HostCallOptions options = {});
  ~HostCallRing();

  HostCallRing(const HostCallRing&) = delete;
  HostCallRing& operator=(const HostCallRing&) = delete;

  /// Handle to a submitted job; pass to wait() exactly once.
  using Ticket = std::uint32_t;

  /// A claimed-but-unpublished slot for zero-copy submission. The caller
  /// serializes its message directly into `payload` (the slot's inline
  /// region, kMaxHostCallPayload bytes) and then either publish()es or
  /// abandon()s the handle — exactly one of the two, exactly once. Between
  /// begin_submit() and that call the slot is caller-owned and stop()
  /// waits for it, so never hold a handle across blocking work.
  struct SubmitHandle {
    Ticket ticket = 0;
    std::span<std::uint8_t> payload;
  };

  /// Claim a slot for zero-copy submission. Blocks only when the ring is
  /// full (backpressure) — never drops. Throws Error once stopped.
  SubmitHandle begin_submit(std::uint32_t opcode);

  /// Non-blocking variant: nullopt when the ring is currently full.
  /// Still throws Error once stopped.
  std::optional<SubmitHandle> try_begin_submit(std::uint32_t opcode);

  /// Hand a filled handle to the worker. `payload_len` is how many bytes of
  /// handle.payload the caller wrote; the handle is consumed. Throws Error
  /// (and frees the slot) if payload_len exceeds kMaxHostCallPayload.
  void publish(const SubmitHandle& handle, std::size_t payload_len);

  /// Release an unpublished handle without running a job (error paths).
  void abandon(const SubmitHandle& handle);

  /// Enqueue a job, copying `payload` into the slot. Blocks only when the
  /// ring is full (backpressure) — never drops. Throws Error if the payload
  /// exceeds kMaxHostCallPayload or the ring has been stopped.
  Ticket submit(std::uint32_t opcode, ByteView payload);

  /// Collect a submitted job's result, freeing its slot. Rethrows the
  /// trusted handler's failure as Error.
  Bytes wait(Ticket ticket);

  /// Zero-copy collect: the result bytes land in `out` and the result
  /// length is returned. Throws Error (still freeing the slot) when the
  /// result does not fit in `out`; rethrows trusted failures like wait().
  std::size_t wait_into(Ticket ticket, std::span<std::uint8_t> out);

  /// submit + wait: the drop-in replacement for Enclave::call.
  Bytes call(std::uint32_t opcode, ByteView payload);

  /// Stop accepting jobs, let in-flight submitters finish, drain every
  /// queued job through the worker, then join it. Idempotent; also run by
  /// the destructor. After stop(), submit/call throw Error.
  void stop();
  bool stopped() const {
    return !accepting_.load(std::memory_order_acquire);
  }

  /// Slots currently claimed/queued/executing/unconsumed.
  std::size_t occupancy() const {
    return occupancy_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }
  const std::string& name() const { return options_.name; }
  HostCallStats stats() const;

 private:
  struct Slot;
  struct WorkerScratch;

  Slot* try_claim();
  Slot& claim_slot();
  void enter_submitter();
  void leave_submitter();
  void release_slot(Slot& slot);
  void publish_slot(Slot& slot, std::size_t payload_len);
  void await_done(Slot& slot);
  bool process_one(EnclaveEntry& entry, WorkerScratch& scratch);
  void worker_main();
  void set_occupancy_gauge();

  std::shared_ptr<Enclave> enclave_;
  HostCallOptions options_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{true};
  std::atomic<std::size_t> occupancy_{0};
  std::atomic<std::uint64_t> queued_{0};      // enqueued, not yet claimed
  std::atomic<std::uint64_t> submitters_{0};  // threads holding slots/handles
  std::atomic<std::uint32_t> claim_hint_{0};
  std::size_t scan_ = 0;  // worker-only cursor

  // Worker park/wake (the "classic ECALL wakeup" edge).
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> parked_{false};

  // Submitters blocked on a full ring (backpressure) or on a result.
  std::mutex space_mutex_;
  std::condition_variable space_cv_;
  std::atomic<std::uint32_t> space_waiters_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::atomic<std::uint32_t> done_waiters_{0};

  // stop() rendezvous with in-flight submitters.
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  std::once_flag stop_once_;

  std::atomic<std::uint64_t> submits_{0};
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> backpressure_waits_{0};

  // Cached metric instruments (registered once per ring name).
  obs::Gauge* occupancy_gauge_ = nullptr;
  obs::Counter* submits_counter_ = nullptr;

  std::thread worker_;
};

struct RingGroupOptions {
  /// Rings (= resident enclave workers). One per producer core is the
  /// intended shape; 1 degenerates to a plain HostCallRing.
  std::size_t rings = 1;
  /// Per-ring slot count; rounded up to a power of two, minimum 2.
  std::size_t ring_capacity = 128;
  /// Empty polls before a worker exits the enclave and parks.
  int spin_polls = 4096;
  /// Metrics label prefix; ring i is labeled "<name>/<i>".
  std::string name = "hostcall";
};

/// Aggregated group counters plus the per-ring breakdown. Snapshot pays one
/// seq_cst fence total, then relaxed reads — never one fence per ring.
struct RingGroupStats {
  HostCallStats total;
  std::vector<HostCallStats> per_ring;
  std::uint64_t affinity_submits = 0;  // claims landed on the home ring
  std::uint64_t steals = 0;            // claims diverted to a sibling ring
};

/// N hostcall rings over one enclave, each with its own resident worker.
/// Submitting threads are assigned a home ring on first contact
/// (round-robin); a full home ring falls back to stealing a slot on a
/// sibling before blocking. All rings dispatch into the same TrustedLogic,
/// which therefore must tolerate concurrent calls when rings > 1.
class RingGroup {
 public:
  explicit RingGroup(std::shared_ptr<Enclave> enclave,
                     RingGroupOptions options = {});
  ~RingGroup();

  RingGroup(const RingGroup&) = delete;
  RingGroup& operator=(const RingGroup&) = delete;

  /// Group tickets/handles carry the ring index that owns the slot.
  struct Ticket {
    std::uint32_t ring = 0;
    HostCallRing::Ticket slot = 0;
  };
  struct SubmitHandle {
    std::uint32_t ring = 0;
    HostCallRing::SubmitHandle inner;
  };

  std::size_t rings() const { return rings_.size(); }
  HostCallRing& ring(std::size_t index) { return *rings_[index]; }

  /// The calling thread's affine ring (assigned round-robin on first use).
  std::size_t home_ring() const { return home_index(); }

  /// Zero-copy claim with affinity: home ring first, then steal round-robin
  /// from siblings, then block on the home ring.
  SubmitHandle begin_submit(std::uint32_t opcode);

  /// Zero-copy claim pinned to one ring (burst striping). Blocks on that
  /// ring when full.
  SubmitHandle begin_submit_on(std::size_t ring_index, std::uint32_t opcode);

  void publish(const SubmitHandle& handle, std::size_t payload_len);
  void abandon(const SubmitHandle& handle);

  /// Copying submit with the same affinity policy as begin_submit().
  Ticket submit(std::uint32_t opcode, ByteView payload);

  Bytes wait(Ticket ticket);
  std::size_t wait_into(Ticket ticket, std::span<std::uint8_t> out);
  Bytes call(std::uint32_t opcode, ByteView payload);

  /// Stop every ring (same three-phase drain as HostCallRing::stop, run
  /// per ring). Idempotent; also run by the destructor.
  void stop();
  bool stopped() const { return rings_.front()->stopped(); }

  RingGroupStats stats() const;

 private:
  std::size_t home_index() const;

  std::uint64_t group_id_ = 0;
  std::vector<std::unique_ptr<HostCallRing>> rings_;
  mutable std::atomic<std::uint32_t> next_home_{0};
  std::atomic<std::uint64_t> affinity_submits_{0};
  std::atomic<std::uint64_t> steals_{0};
  // Cached per-ring steal counters (label: the ring that donated the slot).
  std::vector<obs::Counter*> steal_counters_;
};

}  // namespace vnfsgx::sgx
