#include "sgx/structs.h"

#include "pki/tlv.h"

namespace vnfsgx::sgx {

namespace {
enum : std::uint8_t {
  kTagMrEnclave = 0x01,
  kTagMrSigner = 0x02,
  kTagIsvProdId = 0x03,
  kTagIsvSvn = 0x04,
  kTagAttributes = 0x05,
  kTagReportData = 0x06,
  kTagBody = 0x07,
  kTagMac = 0x08,
  kTagVersion = 0x09,
  kTagPlatformId = 0x0a,
  kTagSignature = 0x0b,
};
}  // namespace

Bytes TargetInfo::encode() const {
  pki::TlvWriter w;
  w.add_bytes(kTagMrEnclave, mr_enclave);
  return w.take();
}

TargetInfo TargetInfo::decode(ByteView data) {
  pki::TlvReader r(data);
  TargetInfo info;
  info.mr_enclave = r.expect_array<32>(kTagMrEnclave);
  if (!r.done()) throw ParseError("target_info: trailing data");
  return info;
}

Bytes ReportBody::encode() const {
  pki::TlvWriter w;
  w.add_bytes(kTagMrEnclave, mr_enclave);
  w.add_bytes(kTagMrSigner, mr_signer);
  w.add_u32(kTagIsvProdId, isv_prod_id);
  w.add_u32(kTagIsvSvn, isv_svn);
  w.add_u64(kTagAttributes, attributes);
  w.add_bytes(kTagReportData, report_data);
  return w.take();
}

ReportBody ReportBody::decode(ByteView data) {
  pki::TlvReader r(data);
  ReportBody body;
  body.mr_enclave = r.expect_array<32>(kTagMrEnclave);
  body.mr_signer = r.expect_array<32>(kTagMrSigner);
  body.isv_prod_id = static_cast<std::uint16_t>(r.expect_u32(kTagIsvProdId));
  body.isv_svn = static_cast<std::uint16_t>(r.expect_u32(kTagIsvSvn));
  body.attributes = r.expect_u64(kTagAttributes);
  body.report_data = r.expect_array<64>(kTagReportData);
  if (!r.done()) throw ParseError("report_body: trailing data");
  return body;
}

Bytes Report::encode() const {
  pki::TlvWriter w;
  w.add_bytes(kTagBody, body.encode());
  w.add_bytes(kTagMac, mac);
  return w.take();
}

Report Report::decode(ByteView data) {
  pki::TlvReader r(data);
  Report report;
  report.body = ReportBody::decode(r.expect(kTagBody));
  report.mac = r.expect_array<32>(kTagMac);
  if (!r.done()) throw ParseError("report: trailing data");
  return report;
}

Bytes Quote::encode_tbs() const {
  pki::TlvWriter w;
  w.add_u32(kTagVersion, version);
  w.add_bytes(kTagPlatformId, platform_id);
  w.add_bytes(kTagBody, body.encode());
  return w.take();
}

Bytes Quote::encode() const {
  pki::TlvWriter w;
  w.add_bytes(kTagBody, encode_tbs());
  w.add_bytes(kTagSignature, signature);
  return w.take();
}

Quote Quote::decode(ByteView data) {
  pki::TlvReader outer(data);
  const Bytes tbs = outer.expect_bytes(kTagBody);
  Quote quote;
  quote.signature = outer.expect_array<64>(kTagSignature);
  if (!outer.done()) throw ParseError("quote: trailing data");

  pki::TlvReader r(tbs);
  quote.version = static_cast<std::uint16_t>(r.expect_u32(kTagVersion));
  quote.platform_id = r.expect_array<16>(kTagPlatformId);
  quote.body = ReportBody::decode(r.expect(kTagBody));
  if (!r.done()) throw ParseError("quote: trailing tbs data");
  return quote;
}

}  // namespace vnfsgx::sgx
