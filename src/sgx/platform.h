// Simulated SGX platform: device keys, EPC accounting, enclave loading
// (ECREATE..EINIT), report/seal key derivation, and the Quoting Enclave.
//
// The device root key stands in for the fused SGX keys: every platform-
// bound derivation (report keys, seal keys, the attestation key) descends
// from it via label-separated HKDF, so blobs and reports are meaningless
// on any other platform — the property real SGX gets from silicon.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/secure.h"
#include "crypto/random.h"
#include "sgx/enclave.h"

namespace vnfsgx::sgx {

struct PlatformOptions {
  /// Total EPC capacity; enclave loading fails beyond it (mirrors the
  /// 93.5 MiB usable EPC of v1 hardware by default).
  std::size_t epc_capacity = 93 * 1024 * 1024;

  /// Synthetic cost of one enclave crossing (ECALL entry+exit), the
  /// dominant SGX overhead the paper's future-work section asks about.
  /// Real-world transitions cost ~8k cycles ≈ 2-4 µs.
  std::chrono::nanoseconds crossing_cost{2000};
};

class QuotingEnclave;

class SgxPlatform {
 public:
  explicit SgxPlatform(crypto::RandomSource& rng, std::string name = "host",
                       PlatformOptions options = {});
  ~SgxPlatform();

  SgxPlatform(const SgxPlatform&) = delete;
  SgxPlatform& operator=(const SgxPlatform&) = delete;

  const std::string& name() const { return name_; }
  const PlatformId& platform_id() const { return platform_id_; }
  const PlatformOptions& options() const { return options_; }

  /// ECREATE..EINIT: measure the image, verify the SIGSTRUCT (vendor
  /// signature + measurement match), reserve EPC, and construct the
  /// trusted logic. Throws SecurityViolation on any mismatch.
  std::shared_ptr<Enclave> load_enclave(const EnclaveImage& image,
                                        const SigStruct& sigstruct);

  /// EPC currently in use / capacity.
  std::size_t epc_used() const;

  QuotingEnclave& quoting_enclave() { return *quoting_enclave_; }

  /// Total ECALL crossings across all enclaves on this platform.
  std::uint64_t total_crossings() const {
    return total_crossings_.load(std::memory_order_relaxed);
  }

 private:
  friend class Enclave;
  friend class EnclaveEntry;
  friend class QuotingEnclave;

  /// Report key for reports targeted at the enclave with `target_mr`.
  SecureBytes report_key(const Measurement& target_mr) const;

  /// Seal key bound to identity + key id.
  SecureBytes seal_key(SealPolicy policy, const Measurement& identity,
                       ByteView key_id) const;

  void release_epc(std::size_t bytes);
  void charge_crossing();

  std::string name_;
  PlatformOptions options_;
  crypto::RandomSource& rng_;
  SecureBytes device_root_key_;  // stand-in for the fused SGX keys
  PlatformId platform_id_{};
  mutable std::mutex mutex_;
  std::size_t epc_used_ = 0;
  std::atomic<std::uint64_t> total_crossings_{0};
  std::unique_ptr<QuotingEnclave> quoting_enclave_;
};

/// The Quoting Enclave: verifies local-attestation reports targeted at it
/// and converts them into quotes signed with the platform attestation key
/// (the simulator's EPID membership). The key is registered with the IAS
/// simulator during platform provisioning.
class QuotingEnclave {
 public:
  explicit QuotingEnclave(SgxPlatform& platform, crypto::RandomSource& rng);

  /// Target info other enclaves use to direct reports at the QE.
  TargetInfo target_info() const;

  /// Verify the report's MAC (local attestation) and produce a signed
  /// quote. Throws SecurityViolation if the report does not verify.
  Quote quote(const Report& report) const;

  /// Public half of the attestation key, for IAS registration.
  const crypto::Ed25519PublicKey& attestation_public_key() const {
    return attestation_key_.public_key;
  }

 private:
  SgxPlatform& platform_;
  Measurement measurement_;
  crypto::Ed25519KeyPair attestation_key_;
};

}  // namespace vnfsgx::sgx
