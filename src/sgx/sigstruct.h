// Enclave signature structure (SIGSTRUCT simulation).
//
// EINIT only accepts an enclave whose measurement is signed by the vendor
// key named in the SIGSTRUCT; MRSIGNER is the hash of that vendor public
// key. This gives the simulator the same two identities real SGX has:
// MRENCLAVE (exact code) and MRSIGNER (vendor).
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "crypto/ed25519.h"
#include "sgx/measurement.h"

namespace vnfsgx::sgx {

struct SigStruct {
  crypto::Ed25519PublicKey vendor_public_key{};
  Measurement enclave_measurement{};
  std::uint16_t isv_prod_id = 0;
  std::uint16_t isv_svn = 0;
  crypto::Ed25519Signature signature{};

  Bytes tbs() const;
  Bytes encode() const;
  static SigStruct decode(ByteView data);

  bool verify() const;
  /// MRSIGNER = SHA-256(vendor public key).
  Measurement mr_signer() const;
};

/// Vendor-side helper: sign a measurement to produce the SIGSTRUCT.
SigStruct sign_enclave(const crypto::Ed25519Seed& vendor_seed,
                       const Measurement& measurement,
                       std::uint16_t isv_prod_id, std::uint16_t isv_svn);

}  // namespace vnfsgx::sgx
