#include "sgx/measurement.h"

#include "common/error.h"
#include "common/hex.h"

namespace vnfsgx::sgx {

namespace {
constexpr std::size_t kPageSize = 4096;
}

std::string to_hex_string(const Measurement& m) {
  return to_hex(ByteView(m.data(), m.size()));
}

MeasurementBuilder::MeasurementBuilder() = default;

void MeasurementBuilder::ecreate(std::uint64_t enclave_size,
                                 std::uint64_t attributes) {
  Bytes record;
  append(record, std::string_view("ECREATE\0", 8));
  append_u64(record, enclave_size);
  append_u64(record, attributes);
  hash_.update(record);
}

void MeasurementBuilder::add_page(std::uint64_t offset, ByteView content) {
  if (finalized_) throw Error("measurement: already finalized");
  Bytes header;
  append(header, std::string_view("EEXTEND\0", 8));
  append_u64(header, offset);
  hash_.update(header);
  // Pages are measured zero-padded to the page size, like EEXTEND's
  // 256-byte chunks cover the whole page.
  hash_.update(content);
  if (content.size() < kPageSize) {
    const Bytes padding(kPageSize - content.size(), 0);
    hash_.update(padding);
  }
}

Measurement MeasurementBuilder::finalize() {
  if (finalized_) throw Error("measurement: already finalized");
  finalized_ = true;
  Bytes record;
  append(record, std::string_view("EINIT\0\0\0", 8));
  hash_.update(record);
  return hash_.finish();
}

Measurement measure_image(ByteView code, std::uint64_t attributes) {
  MeasurementBuilder builder;
  builder.ecreate(code.size(), attributes);
  std::uint64_t offset = 0;
  while (offset < code.size()) {
    const std::size_t take =
        std::min<std::size_t>(kPageSize, code.size() - offset);
    builder.add_page(offset, code.subspan(offset, take));
    offset += take;
  }
  return builder.finalize();
}

}  // namespace vnfsgx::sgx
