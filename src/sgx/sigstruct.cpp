#include "sgx/sigstruct.h"

#include "crypto/sha256.h"
#include "pki/tlv.h"

namespace vnfsgx::sgx {

namespace {
enum : std::uint8_t {
  kTagVendorKey = 0x01,
  kTagMeasurement = 0x02,
  kTagProdId = 0x03,
  kTagSvn = 0x04,
  kTagSignature = 0x05,
  kTagTbs = 0x06,
};
}  // namespace

Bytes SigStruct::tbs() const {
  pki::TlvWriter w;
  w.add_bytes(kTagVendorKey, vendor_public_key);
  w.add_bytes(kTagMeasurement, enclave_measurement);
  w.add_u32(kTagProdId, isv_prod_id);
  w.add_u32(kTagSvn, isv_svn);
  return w.take();
}

Bytes SigStruct::encode() const {
  pki::TlvWriter w;
  w.add_bytes(kTagTbs, tbs());
  w.add_bytes(kTagSignature, signature);
  return w.take();
}

SigStruct SigStruct::decode(ByteView data) {
  pki::TlvReader outer(data);
  const Bytes tbs_bytes = outer.expect_bytes(kTagTbs);
  SigStruct s;
  s.signature = outer.expect_array<64>(kTagSignature);
  if (!outer.done()) throw ParseError("sigstruct: trailing data");

  pki::TlvReader r(tbs_bytes);
  s.vendor_public_key = r.expect_array<32>(kTagVendorKey);
  s.enclave_measurement = r.expect_array<32>(kTagMeasurement);
  s.isv_prod_id = static_cast<std::uint16_t>(r.expect_u32(kTagProdId));
  s.isv_svn = static_cast<std::uint16_t>(r.expect_u32(kTagSvn));
  if (!r.done()) throw ParseError("sigstruct: trailing tbs data");
  return s;
}

bool SigStruct::verify() const {
  return crypto::ed25519_verify(vendor_public_key, tbs(),
                                ByteView(signature.data(), signature.size()));
}

Measurement SigStruct::mr_signer() const {
  return crypto::Sha256::hash(vendor_public_key);
}

SigStruct sign_enclave(const crypto::Ed25519Seed& vendor_seed,
                       const Measurement& measurement,
                       std::uint16_t isv_prod_id, std::uint16_t isv_svn) {
  SigStruct s;
  s.vendor_public_key = crypto::ed25519_public_key(vendor_seed);
  s.enclave_measurement = measurement;
  s.isv_prod_id = isv_prod_id;
  s.isv_svn = isv_svn;
  s.signature = crypto::ed25519_sign(vendor_seed, s.tbs());
  return s;
}

}  // namespace vnfsgx::sgx
