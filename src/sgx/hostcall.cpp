#include "sgx/hostcall.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace vnfsgx::sgx {

namespace {

// Slot lifecycle. Transitions are one-directional around the cycle:
//   kFree -(submitter CAS)-> kClaimed -(submitter store)-> kQueued
//   kQueued -(worker CAS)-> kExecuting -(worker store)-> kDone
//   kDone -(waiter store)-> kFree
constexpr std::uint32_t kFree = 0;
constexpr std::uint32_t kClaimed = 1;
constexpr std::uint32_t kQueued = 2;
constexpr std::uint32_t kExecuting = 3;
constexpr std::uint32_t kDone = 4;

// Yield-polls a waiter spends on its own slot before blocking on done_cv_.
constexpr int kWaitSpinPolls = 256;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// One ring slot. `state` is the synchronization point: every plain field is
// written strictly before a release store of `state` and read strictly after
// an acquire load of it, so the non-atomic payload/result bytes hand off
// cleanly between the untrusted submitter and the enclave worker.
//
// boundary: shared — host-writable while the enclave reads it. boundarycheck
// enforces copy-in-once (B1), bounds-before-use (B2), release/acquire on
// `state` (B3), and no secret egress (B4) on every access to these fields.
struct alignas(64) HostCallRing::Slot {
  std::atomic<std::uint32_t> state{kFree};
  std::uint32_t opcode = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t result_len = 0;
  std::uint8_t failed = 0;
  std::array<std::uint8_t, kMaxHostCallPayload> payload{};
  // Result shares the error channel: when failed != 0 the bytes hold the
  // trusted handler's exception text instead of output.
  std::array<std::uint8_t, kMaxHostCallPayload> result{};
};

HostCallRing::HostCallRing(std::shared_ptr<Enclave> enclave,
                           HostCallOptions options)
    : enclave_(std::move(enclave)), options_(std::move(options)) {
  if (!enclave_) throw Error("hostcall: null enclave");
  capacity_ = round_up_pow2(std::max<std::size_t>(options_.ring_capacity, 2));
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
  occupancy_gauge_ = &obs::registry().gauge(
      "vnfsgx_hostcall_ring_occupancy", {{"ring", options_.name}},
      "Hostcall ring slots currently claimed, queued, executing, or "
      "holding an uncollected result");
  worker_ = std::thread(&HostCallRing::worker_main, this);
}

HostCallRing::~HostCallRing() { stop(); }

void HostCallRing::set_occupancy_gauge() {
  occupancy_gauge_->set(
      static_cast<std::int64_t>(occupancy_.load(std::memory_order_relaxed)));
}

HostCallRing::Slot* HostCallRing::try_claim() {
  const std::uint32_t start = claim_hint_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[(start + i) & mask_];
    std::uint32_t expected = kFree;
    if (slot.state.compare_exchange_strong(expected, kClaimed,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
      claim_hint_.store(static_cast<std::uint32_t>((start + i + 1) & mask_),
                        std::memory_order_relaxed);
      occupancy_.fetch_add(1, std::memory_order_relaxed);
      set_occupancy_gauge();
      return &slot;
    }
  }
  return nullptr;
}

HostCallRing::Slot& HostCallRing::claim_slot() {
  if (Slot* slot = try_claim()) return *slot;
  // Ring full: backpressure. Block until a waiter frees a slot — never drop.
  backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(space_mutex_);
  space_waiters_.fetch_add(1, std::memory_order_seq_cst);
  Slot* claimed = nullptr;
  space_cv_.wait(lk, [&] {
    if (!accepting_.load(std::memory_order_seq_cst)) return true;
    claimed = try_claim();
    return claimed != nullptr;
  });
  space_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  if (claimed == nullptr) {
    throw Error("hostcall: ring '" + options_.name + "' stopped");
  }
  return *claimed;
}

HostCallRing::Ticket HostCallRing::submit(std::uint32_t opcode,
                                          ByteView payload) {
  if (payload.size() > kMaxHostCallPayload) {
    throw Error("hostcall: payload of " + std::to_string(payload.size()) +
                " bytes exceeds ring limit of " +
                std::to_string(kMaxHostCallPayload));
  }
  submitters_.fetch_add(1, std::memory_order_seq_cst);
  struct SubmitGuard {
    HostCallRing* ring;
    ~SubmitGuard() {
      if (ring->submitters_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
        std::lock_guard<std::mutex> lk(ring->stop_mutex_);
        ring->stop_cv_.notify_all();
      }
    }
  } guard{this};
  if (!accepting_.load(std::memory_order_seq_cst)) {
    throw Error("hostcall: ring '" + options_.name + "' stopped");
  }
  Slot& slot = claim_slot();
  slot.opcode = opcode;
  slot.payload_len = static_cast<std::uint32_t>(payload.size());
  if (!payload.empty()) {
    std::memcpy(slot.payload.data(), payload.data(), payload.size());
  }
  slot.state.store(kQueued, std::memory_order_release);
  queued_.fetch_add(1, std::memory_order_seq_cst);
  // Classic-ECALL wakeup edge: only pay the lock when the worker is parked.
  if (parked_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    wake_cv_.notify_one();
  }
  return static_cast<Ticket>(&slot - slots_.get());
}

Bytes HostCallRing::wait(Ticket ticket) {
  if (ticket >= capacity_) throw Error("hostcall: invalid ticket");
  Slot& slot = slots_[ticket];
  for (int i = 0; i < kWaitSpinPolls; ++i) {
    if (slot.state.load(std::memory_order_acquire) == kDone) break;
    std::this_thread::yield();
  }
  if (slot.state.load(std::memory_order_acquire) != kDone) {
    std::unique_lock<std::mutex> lk(done_mutex_);
    done_waiters_.fetch_add(1, std::memory_order_seq_cst);
    done_cv_.wait(lk, [&] {
      // bc-ok(B3): seq_cst required — Dekker hand-off with done_waiters_:
      // the predicate load must not reorder before the waiter-count store,
      // or the worker could miss a sleeper and skip the notify.
      return slot.state.load(std::memory_order_seq_cst) == kDone;
    });
    done_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  const std::uint32_t result_len = slot.result_len;
  const bool failed = slot.failed != 0;
  // The ring lives in shared memory: validate the copied length against the
  // slot capacity before it offsets anything, and free the slot either way
  // so a corrupted length cannot leak ring occupancy.
  const bool length_ok = result_len <= kMaxHostCallPayload;
  Bytes out;
  if (length_ok) {
    out.assign(slot.result.begin(), slot.result.begin() + result_len);
  }
  slot.state.store(kFree, std::memory_order_release);
  occupancy_.fetch_sub(1, std::memory_order_relaxed);
  set_occupancy_gauge();
  if (space_waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(space_mutex_);
    space_cv_.notify_all();
  }
  if (!length_ok) {
    throw Error("hostcall: result_len exceeds ring slot capacity");
  }
  if (failed) throw Error(std::string(out.begin(), out.end()));
  return out;
}

Bytes HostCallRing::call(std::uint32_t opcode, ByteView payload) {
  return wait(submit(opcode, payload));
}

bool HostCallRing::process_one(EnclaveEntry& entry) {
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[(scan_ + i) & mask_];
    if (slot.state.load(std::memory_order_acquire) != kQueued) continue;
    std::uint32_t expected = kQueued;
    if (!slot.state.compare_exchange_strong(expected, kExecuting,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      continue;
    }
    scan_ = (scan_ + i + 1) & mask_;
    queued_.fetch_sub(1, std::memory_order_seq_cst);

    // Copy-in ONCE from the untrusted slot: each field is read exactly one
    // time into an enclave-local value, then validated and used only via
    // that copy. Trusted code never re-reads untrusted memory after a
    // check, so a concurrently scribbling host cannot flip a validated
    // length or opcode (the classic TOCTOU double-fetch).
    const std::uint32_t opcode_copy = slot.opcode;
    const std::uint32_t payload_len_copy = slot.payload_len;
    bool ok = false;
    Bytes output;
    std::string error;
    if (payload_len_copy > kMaxHostCallPayload) {
      error = "hostcall: untrusted payload_len out of range";
    } else {
      const Bytes input(slot.payload.begin(),
                        slot.payload.begin() + payload_len_copy);
      try {
        output = entry.dispatch(opcode_copy, input);
        ok = true;
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    if (ok && output.size() > kMaxHostCallPayload) {
      ok = false;
      error = "hostcall: trusted result exceeds ring slot capacity";
    }
    if (!ok) output.assign(error.begin(), error.end());
    const std::size_t reply_len = std::min(output.size(), kMaxHostCallPayload);
    if (reply_len != 0) std::memcpy(slot.result.data(), output.data(), reply_len);
    slot.result_len = static_cast<std::uint32_t>(reply_len);
    slot.failed = ok ? 0 : 1;
    // bc-ok(B3): seq_cst required — StoreLoad ordering against the
    // done_waiters_ load below (Dekker pattern): a plain release would let
    // this store reorder after the waiter check and strand a sleeper.
    slot.state.store(kDone, std::memory_order_seq_cst);
    jobs_.fetch_add(1, std::memory_order_relaxed);
    if (done_waiters_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lk(done_mutex_);
      done_cv_.notify_all();
    }
    return true;
  }
  return false;
}

void HostCallRing::worker_main() {
  while (true) {
    {
      // One crossing to enter; every job dispatched inside this scope is
      // switchless. Re-entry after a park is the "classic ECALL wakeup".
      EnclaveEntry entry(*enclave_);
      int empty_polls = 0;
      while (true) {
        if (process_one(entry)) {
          empty_polls = 0;
          continue;
        }
        if (!running_.load(std::memory_order_seq_cst)) {
          // stop() already drained submitters; the ring is empty. Done.
          return;
        }
        if (++empty_polls >= options_.spin_polls) break;
        std::this_thread::yield();
      }
    }  // exit the enclave before sleeping: idle enclaves burn no CPU
    parks_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lk(wake_mutex_);
      parked_.store(true, std::memory_order_seq_cst);
      wake_cv_.wait(lk, [&] {
        return !running_.load(std::memory_order_seq_cst) ||
               queued_.load(std::memory_order_seq_cst) > 0;
      });
      parked_.store(false, std::memory_order_seq_cst);
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HostCallRing::stop() {
  std::call_once(stop_once_, [this] {
    // Phase 1: refuse new jobs and kick backpressure-blocked claimants.
    accepting_.store(false, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(space_mutex_);
      space_cv_.notify_all();
    }
    // Phase 2: let in-flight submitters land their jobs (the worker is
    // still running, so anything they queued will execute).
    {
      std::unique_lock<std::mutex> lk(stop_mutex_);
      stop_cv_.wait(lk, [this] {
        return submitters_.load(std::memory_order_seq_cst) == 0;
      });
    }
    // Phase 3: tell the worker to finish its final drain and exit.
    running_.store(false, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(wake_mutex_);
      wake_cv_.notify_one();
    }
    worker_.join();
  });
}

HostCallStats HostCallRing::stats() const {
  HostCallStats s;
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.backpressure_waits = backpressure_waits_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace vnfsgx::sgx
