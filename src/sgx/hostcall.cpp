#include "sgx/hostcall.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace vnfsgx::sgx {

namespace {

// Slot lifecycle. Transitions are one-directional around the cycle:
//   kFree -(submitter CAS)-> kClaimed -(submitter store)-> kQueued
//   kQueued -(worker CAS)-> kExecuting -(worker store)-> kDone
//   kDone -(waiter store)-> kFree
// abandon() short-circuits kClaimed -> kFree without a worker pass.
constexpr std::uint32_t kFree = 0;
constexpr std::uint32_t kClaimed = 1;
constexpr std::uint32_t kQueued = 2;
constexpr std::uint32_t kExecuting = 3;
constexpr std::uint32_t kDone = 4;

// Yield-polls a waiter spends on its own slot before blocking on done_cv_.
constexpr int kWaitSpinPolls = 256;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

std::atomic<std::uint64_t> g_next_group_id{1};

}  // namespace

// One ring slot. `state` is the synchronization point: every plain field is
// written strictly before a release store of `state` and read strictly after
// an acquire load of it, so the non-atomic payload/result bytes hand off
// cleanly between the untrusted submitter and the enclave worker.
//
// boundary: shared — host-writable while the enclave reads it. boundarycheck
// enforces copy-in-once (B1), bounds-before-use (B2), release/acquire on
// `state` (B3), and no secret egress (B4) on every access to these fields.
struct alignas(64) HostCallRing::Slot {
  std::atomic<std::uint32_t> state{kFree};
  std::uint32_t opcode = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t result_len = 0;
  std::uint8_t failed = 0;
  std::array<std::uint8_t, kMaxHostCallPayload> payload{};
  // Result shares the error channel: when failed != 0 the bytes hold the
  // trusted handler's exception text instead of output.
  std::array<std::uint8_t, kMaxHostCallPayload> result{};
};

// Enclave-local fixed buffers the worker copies jobs into and results out
// of. One instance lives on the worker's stack for its whole residency:
// the switchless hot path allocates nothing per job on the trusted side.
struct HostCallRing::WorkerScratch {
  std::array<std::uint8_t, kMaxHostCallPayload> input{};
  std::array<std::uint8_t, kMaxHostCallPayload> output{};
};

HostCallRing::HostCallRing(std::shared_ptr<Enclave> enclave,
                           HostCallOptions options)
    : enclave_(std::move(enclave)), options_(std::move(options)) {
  if (!enclave_) throw Error("hostcall: null enclave");
  capacity_ = round_up_pow2(std::max<std::size_t>(options_.ring_capacity, 2));
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
  occupancy_gauge_ = &obs::registry().gauge(
      "vnfsgx_hostcall_ring_occupancy", {{"ring", options_.name}},
      "Hostcall ring slots currently claimed, queued, executing, or "
      "holding an uncollected result");
  submits_counter_ = &obs::registry().counter(
      "vnfsgx_hostcall_submits_total", {{"ring", options_.name}},
      "Jobs published into this hostcall ring (copying and zero-copy)");
  worker_ = std::thread(&HostCallRing::worker_main, this);
}

HostCallRing::~HostCallRing() { stop(); }

void HostCallRing::set_occupancy_gauge() {
  occupancy_gauge_->set(
      static_cast<std::int64_t>(occupancy_.load(std::memory_order_relaxed)));
}

HostCallRing::Slot* HostCallRing::try_claim() {
  const std::uint32_t start = claim_hint_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[(start + i) & mask_];
    std::uint32_t expected = kFree;
    if (slot.state.compare_exchange_strong(expected, kClaimed,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
      claim_hint_.store(static_cast<std::uint32_t>((start + i + 1) & mask_),
                        std::memory_order_relaxed);
      occupancy_.fetch_add(1, std::memory_order_relaxed);
      set_occupancy_gauge();
      return &slot;
    }
  }
  return nullptr;
}

HostCallRing::Slot& HostCallRing::claim_slot() {
  if (Slot* slot = try_claim()) return *slot;
  // Ring full: backpressure. Block until a waiter frees a slot — never drop.
  backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(space_mutex_);
  space_waiters_.fetch_add(1, std::memory_order_seq_cst);
  Slot* claimed = nullptr;
  space_cv_.wait(lk, [&] {
    if (!accepting_.load(std::memory_order_seq_cst)) return true;
    claimed = try_claim();
    return claimed != nullptr;
  });
  space_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  if (claimed == nullptr) {
    throw Error("hostcall: ring '" + options_.name + "' stopped");
  }
  return *claimed;
}

void HostCallRing::enter_submitter() {
  submitters_.fetch_add(1, std::memory_order_seq_cst);
}

void HostCallRing::leave_submitter() {
  if (submitters_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    std::lock_guard<std::mutex> lk(stop_mutex_);
    stop_cv_.notify_all();
  }
}

void HostCallRing::release_slot(Slot& slot) {
  slot.state.store(kFree, std::memory_order_release);
  occupancy_.fetch_sub(1, std::memory_order_relaxed);
  set_occupancy_gauge();
  if (space_waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(space_mutex_);
    space_cv_.notify_all();
  }
}

void HostCallRing::publish_slot(Slot& slot, std::size_t payload_len) {
  slot.payload_len = static_cast<std::uint32_t>(payload_len);
  slot.state.store(kQueued, std::memory_order_release);
  queued_.fetch_add(1, std::memory_order_seq_cst);
  submits_.fetch_add(1, std::memory_order_relaxed);
  submits_counter_->add();
  // Classic-ECALL wakeup edge: only pay the lock when the worker is parked.
  if (parked_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    wake_cv_.notify_one();
  }
}

HostCallRing::SubmitHandle HostCallRing::begin_submit(std::uint32_t opcode) {
  // The submitter count stays elevated until publish()/abandon(): stop()
  // phase 2 must wait out claimed-but-unpublished handles too, or phase 3
  // could join the worker while a publish is still in flight.
  enter_submitter();
  try {
    if (!accepting_.load(std::memory_order_seq_cst)) {
      throw Error("hostcall: ring '" + options_.name + "' stopped");
    }
    Slot& slot = claim_slot();
    slot.opcode = opcode;
    return SubmitHandle{
        static_cast<Ticket>(&slot - slots_.get()),
        std::span<std::uint8_t>(slot.payload.data(), kMaxHostCallPayload)};
  } catch (...) {
    leave_submitter();
    throw;
  }
}

std::optional<HostCallRing::SubmitHandle> HostCallRing::try_begin_submit(
    std::uint32_t opcode) {
  enter_submitter();
  try {
    if (!accepting_.load(std::memory_order_seq_cst)) {
      throw Error("hostcall: ring '" + options_.name + "' stopped");
    }
    Slot* slot = try_claim();
    if (slot == nullptr) {
      leave_submitter();
      return std::nullopt;
    }
    slot->opcode = opcode;
    return SubmitHandle{
        static_cast<Ticket>(slot - slots_.get()),
        std::span<std::uint8_t>(slot->payload.data(), kMaxHostCallPayload)};
  } catch (...) {
    leave_submitter();
    throw;
  }
}

void HostCallRing::publish(const SubmitHandle& handle,
                           std::size_t payload_len) {
  if (handle.ticket >= capacity_) {
    throw Error("hostcall: invalid submit handle");
  }
  Slot& slot = slots_[handle.ticket];
  if (payload_len > kMaxHostCallPayload) {
    // The handle is consumed either way: free the slot so a bad length
    // cannot leak ring occupancy, then report the gate rejection.
    release_slot(slot);
    leave_submitter();
    throw Error("hostcall: payload of " + std::to_string(payload_len) +
                " bytes exceeds ring limit of " +
                std::to_string(kMaxHostCallPayload));
  }
  publish_slot(slot, payload_len);
  leave_submitter();
}

void HostCallRing::abandon(const SubmitHandle& handle) {
  if (handle.ticket >= capacity_) {
    throw Error("hostcall: invalid submit handle");
  }
  release_slot(slots_[handle.ticket]);
  leave_submitter();
}

HostCallRing::Ticket HostCallRing::submit(std::uint32_t opcode,
                                          ByteView payload) {
  if (payload.size() > kMaxHostCallPayload) {
    throw Error("hostcall: payload of " + std::to_string(payload.size()) +
                " bytes exceeds ring limit of " +
                std::to_string(kMaxHostCallPayload));
  }
  const SubmitHandle handle = begin_submit(opcode);
  if (!payload.empty()) {
    std::memcpy(handle.payload.data(), payload.data(), payload.size());
  }
  publish(handle, payload.size());
  return handle.ticket;
}

void HostCallRing::await_done(Slot& slot) {
  for (int i = 0; i < kWaitSpinPolls; ++i) {
    if (slot.state.load(std::memory_order_acquire) == kDone) return;
    std::this_thread::yield();
  }
  if (slot.state.load(std::memory_order_acquire) != kDone) {
    std::unique_lock<std::mutex> lk(done_mutex_);
    done_waiters_.fetch_add(1, std::memory_order_seq_cst);
    done_cv_.wait(lk, [&] {
      // bc-ok(B3): seq_cst required — Dekker hand-off with done_waiters_:
      // the predicate load must not reorder before the waiter-count store,
      // or the worker could miss a sleeper and skip the notify.
      return slot.state.load(std::memory_order_seq_cst) == kDone;
    });
    done_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

Bytes HostCallRing::wait(Ticket ticket) {
  if (ticket >= capacity_) throw Error("hostcall: invalid ticket");
  Slot& slot = slots_[ticket];
  await_done(slot);
  const std::uint32_t result_len = slot.result_len;
  const bool failed = slot.failed != 0;
  // The ring lives in shared memory: validate the copied length against the
  // slot capacity before it offsets anything, and free the slot either way
  // so a corrupted length cannot leak ring occupancy.
  const bool length_ok = result_len <= kMaxHostCallPayload;
  Bytes out;
  if (length_ok) {
    out.assign(slot.result.begin(), slot.result.begin() + result_len);
  }
  release_slot(slot);
  if (!length_ok) {
    throw Error("hostcall: result_len exceeds ring slot capacity");
  }
  if (failed) throw Error(std::string(out.begin(), out.end()));
  return out;
}

std::size_t HostCallRing::wait_into(Ticket ticket,
                                    std::span<std::uint8_t> out) {
  if (ticket >= capacity_) throw Error("hostcall: invalid ticket");
  Slot& slot = slots_[ticket];
  await_done(slot);
  const std::uint32_t result_len = slot.result_len;
  const bool failed = slot.failed != 0;
  const bool length_ok = result_len <= kMaxHostCallPayload;
  const bool fits = length_ok && result_len <= out.size();
  // Copy everything needed out of the slot before releasing it: a released
  // slot can be reclaimed and rewritten by another submitter immediately.
  std::string error;
  if (length_ok && failed) {
    error.assign(slot.result.begin(), slot.result.begin() + result_len);
  } else if (fits && result_len != 0) {
    std::memcpy(out.data(), slot.result.data(), result_len);
  }
  release_slot(slot);
  if (!length_ok) {
    throw Error("hostcall: result_len exceeds ring slot capacity");
  }
  if (failed) throw Error(error);
  if (!fits) {
    throw Error("hostcall: result of " + std::to_string(result_len) +
                " bytes exceeds caller buffer of " +
                std::to_string(out.size()));
  }
  return result_len;
}

Bytes HostCallRing::call(std::uint32_t opcode, ByteView payload) {
  return wait(submit(opcode, payload));
}

bool HostCallRing::process_one(EnclaveEntry& entry, WorkerScratch& scratch) {
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[(scan_ + i) & mask_];
    if (slot.state.load(std::memory_order_acquire) != kQueued) continue;
    std::uint32_t expected = kQueued;
    if (!slot.state.compare_exchange_strong(expected, kExecuting,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      continue;
    }
    scan_ = (scan_ + i + 1) & mask_;
    queued_.fetch_sub(1, std::memory_order_seq_cst);

    // Copy-in ONCE from the untrusted slot: each field is read exactly one
    // time into an enclave-local value, then validated and used only via
    // that copy. Trusted code never re-reads untrusted memory after a
    // check, so a concurrently scribbling host cannot flip a validated
    // length or opcode (the classic TOCTOU double-fetch). The payload is
    // memcpy'd once into the worker's fixed scratch buffer and the result
    // produced in place — no trusted-side allocation per job.
    const std::uint32_t opcode_copy = slot.opcode;
    const std::uint32_t payload_len_copy = slot.payload_len;
    bool ok = false;
    std::size_t reply_len = 0;
    std::string error;
    if (payload_len_copy > kMaxHostCallPayload) {
      error = "hostcall: untrusted payload_len out of range";
    } else {
      if (payload_len_copy != 0) {
        std::memcpy(scratch.input.data(), slot.payload.data(),
                    payload_len_copy);
      }
      try {
        reply_len = entry.dispatch_into(
            opcode_copy, ByteView(scratch.input.data(), payload_len_copy),
            std::span<std::uint8_t>(scratch.output));
        ok = reply_len <= kMaxHostCallPayload;
        if (!ok) error = "hostcall: trusted result exceeds ring slot capacity";
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    if (ok) {
      if (reply_len != 0) {
        std::memcpy(slot.result.data(), scratch.output.data(), reply_len);
      }
    } else {
      reply_len = std::min(error.size(), kMaxHostCallPayload);
      if (reply_len != 0) {
        std::memcpy(slot.result.data(), error.data(), reply_len);
      }
    }
    slot.result_len = static_cast<std::uint32_t>(reply_len);
    slot.failed = ok ? 0 : 1;
    // bc-ok(B3): seq_cst required — StoreLoad ordering against the
    // done_waiters_ load below (Dekker pattern): a plain release would let
    // this store reorder after the waiter check and strand a sleeper.
    slot.state.store(kDone, std::memory_order_seq_cst);
    jobs_.fetch_add(1, std::memory_order_relaxed);
    if (done_waiters_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lk(done_mutex_);
      done_cv_.notify_all();
    }
    return true;
  }
  return false;
}

void HostCallRing::worker_main() {
  WorkerScratch scratch;
  while (true) {
    {
      // One crossing to enter; every job dispatched inside this scope is
      // switchless. Re-entry after a park is the "classic ECALL wakeup".
      EnclaveEntry entry(*enclave_);
      int empty_polls = 0;
      while (true) {
        if (process_one(entry, scratch)) {
          empty_polls = 0;
          continue;
        }
        if (!running_.load(std::memory_order_seq_cst)) {
          // stop() already drained submitters; the ring is empty. Done.
          return;
        }
        if (++empty_polls >= options_.spin_polls) break;
        std::this_thread::yield();
      }
    }  // exit the enclave before sleeping: idle enclaves burn no CPU
    parks_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lk(wake_mutex_);
      parked_.store(true, std::memory_order_seq_cst);
      wake_cv_.wait(lk, [&] {
        return !running_.load(std::memory_order_seq_cst) ||
               queued_.load(std::memory_order_seq_cst) > 0;
      });
      parked_.store(false, std::memory_order_seq_cst);
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HostCallRing::stop() {
  std::call_once(stop_once_, [this] {
    // Phase 1: refuse new jobs and kick backpressure-blocked claimants.
    accepting_.store(false, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(space_mutex_);
      space_cv_.notify_all();
    }
    // Phase 2: let in-flight submitters land their jobs (the worker is
    // still running, so anything they queued will execute). Unpublished
    // zero-copy handles count as submitters until publish()/abandon().
    {
      std::unique_lock<std::mutex> lk(stop_mutex_);
      stop_cv_.wait(lk, [this] {
        return submitters_.load(std::memory_order_seq_cst) == 0;
      });
    }
    // Phase 3: tell the worker to finish its final drain and exit.
    running_.store(false, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(wake_mutex_);
      wake_cv_.notify_one();
    }
    worker_.join();
  });
}

HostCallStats HostCallRing::stats() const {
  HostCallStats s;
  s.submits = submits_.load(std::memory_order_relaxed);
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.backpressure_waits = backpressure_waits_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// RingGroup
// ---------------------------------------------------------------------------

RingGroup::RingGroup(std::shared_ptr<Enclave> enclave,
                     RingGroupOptions options)
    : group_id_(g_next_group_id.fetch_add(1, std::memory_order_relaxed)) {
  if (!enclave) throw Error("hostcall: null enclave");
  const std::size_t n = std::max<std::size_t>(options.rings, 1);
  rings_.reserve(n);
  steal_counters_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    HostCallOptions ring_options;
    ring_options.ring_capacity = options.ring_capacity;
    ring_options.spin_polls = options.spin_polls;
    ring_options.name = options.name + "/" + std::to_string(i);
    rings_.push_back(
        std::make_unique<HostCallRing>(enclave, std::move(ring_options)));
    steal_counters_.push_back(&obs::registry().counter(
        "vnfsgx_hostcall_steals_total", {{"ring", rings_.back()->name()}},
        "Slot claims diverted to this ring because the submitter's home "
        "ring was full"));
  }
}

RingGroup::~RingGroup() { stop(); }

std::size_t RingGroup::home_index() const {
  // Home-ring assignment is sticky per (thread, group): the first claim a
  // thread makes picks the next ring round-robin, and every later claim
  // from that thread prefers it. Keyed by a unique group id, not `this`,
  // so a recycled allocation cannot inherit a dead group's affinity map.
  thread_local std::vector<std::pair<std::uint64_t, std::uint32_t>> homes;
  for (const auto& [id, ring] : homes) {
    if (id == group_id_) return ring;
  }
  const std::uint32_t assigned =
      next_home_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<std::uint32_t>(rings_.size());
  homes.emplace_back(group_id_, assigned);
  return assigned;
}

RingGroup::SubmitHandle RingGroup::begin_submit(std::uint32_t opcode) {
  const std::size_t home = home_index();
  if (auto handle = rings_[home]->try_begin_submit(opcode)) {
    affinity_submits_.fetch_add(1, std::memory_order_relaxed);
    return SubmitHandle{static_cast<std::uint32_t>(home), *handle};
  }
  // Home ring full: steal a slot from a sibling before blocking.
  for (std::size_t offset = 1; offset < rings_.size(); ++offset) {
    const std::size_t r = (home + offset) % rings_.size();
    if (auto handle = rings_[r]->try_begin_submit(opcode)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      steal_counters_[r]->add();
      return SubmitHandle{static_cast<std::uint32_t>(r), *handle};
    }
  }
  // Every ring full: backpressure on home (never drop).
  affinity_submits_.fetch_add(1, std::memory_order_relaxed);
  return SubmitHandle{static_cast<std::uint32_t>(home),
                      rings_[home]->begin_submit(opcode)};
}

RingGroup::SubmitHandle RingGroup::begin_submit_on(std::size_t ring_index,
                                                   std::uint32_t opcode) {
  if (ring_index >= rings_.size()) {
    throw Error("hostcall: ring index out of range");
  }
  return SubmitHandle{static_cast<std::uint32_t>(ring_index),
                      rings_[ring_index]->begin_submit(opcode)};
}

void RingGroup::publish(const SubmitHandle& handle, std::size_t payload_len) {
  if (handle.ring >= rings_.size()) {
    throw Error("hostcall: invalid submit handle");
  }
  rings_[handle.ring]->publish(handle.inner, payload_len);
}

void RingGroup::abandon(const SubmitHandle& handle) {
  if (handle.ring >= rings_.size()) {
    throw Error("hostcall: invalid submit handle");
  }
  rings_[handle.ring]->abandon(handle.inner);
}

RingGroup::Ticket RingGroup::submit(std::uint32_t opcode, ByteView payload) {
  if (payload.size() > kMaxHostCallPayload) {
    throw Error("hostcall: payload of " + std::to_string(payload.size()) +
                " bytes exceeds ring limit of " +
                std::to_string(kMaxHostCallPayload));
  }
  const SubmitHandle handle = begin_submit(opcode);
  if (!payload.empty()) {
    std::memcpy(handle.inner.payload.data(), payload.data(), payload.size());
  }
  publish(handle, payload.size());
  return Ticket{handle.ring, handle.inner.ticket};
}

Bytes RingGroup::wait(Ticket ticket) {
  if (ticket.ring >= rings_.size()) throw Error("hostcall: invalid ticket");
  return rings_[ticket.ring]->wait(ticket.slot);
}

std::size_t RingGroup::wait_into(Ticket ticket, std::span<std::uint8_t> out) {
  if (ticket.ring >= rings_.size()) throw Error("hostcall: invalid ticket");
  return rings_[ticket.ring]->wait_into(ticket.slot, out);
}

Bytes RingGroup::call(std::uint32_t opcode, ByteView payload) {
  return wait(submit(opcode, payload));
}

void RingGroup::stop() {
  for (auto& ring : rings_) ring->stop();
}

RingGroupStats RingGroup::stats() const {
  // One fence for the whole snapshot (HostCallRing::stats is relaxed-only):
  // the per-ring loop must not re-fence, or an N-ring group would pay N
  // barriers per scrape.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  RingGroupStats s;
  s.per_ring.reserve(rings_.size());
  for (const auto& ring : rings_) {
    const HostCallStats r = ring->stats();
    s.total.submits += r.submits;
    s.total.jobs += r.jobs;
    s.total.parks += r.parks;
    s.total.wakeups += r.wakeups;
    s.total.backpressure_waits += r.backpressure_waits;
    s.per_ring.push_back(r);
  }
  s.affinity_submits = affinity_submits_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace vnfsgx::sgx
