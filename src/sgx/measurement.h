// Enclave measurement (MRENCLAVE) simulation.
//
// Real SGX builds MRENCLAVE as a SHA-256 over the ECREATE/EADD/EEXTEND
// sequence of the enclave's initial contents. The simulator reproduces the
// extend-chain structure: a context tag per lifecycle operation, hashed in
// order, so any change to any loaded page (or the load order) changes the
// measurement — which is exactly the property the paper's attestation
// workflow relies on.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace vnfsgx::sgx {

using Measurement = std::array<std::uint8_t, 32>;

std::string to_hex_string(const Measurement& m);

/// Builds a measurement by replaying the enclave-load operations.
class MeasurementBuilder {
 public:
  MeasurementBuilder();

  /// ECREATE: fixes the enclave's declared size and attributes.
  void ecreate(std::uint64_t enclave_size, std::uint64_t attributes);

  /// EADD+EEXTEND: measure one page of initial content at `offset`.
  void add_page(std::uint64_t offset, ByteView content);

  /// EINIT: finalize. The builder must not be reused afterwards.
  Measurement finalize();

 private:
  crypto::Sha256 hash_;
  bool finalized_ = false;
};

/// Measure a full image: ecreate + one add_page per 4 KiB chunk.
Measurement measure_image(ByteView code, std::uint64_t attributes);

}  // namespace vnfsgx::sgx
