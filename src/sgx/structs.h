// SGX data structures: TargetInfo, Report, Quote (simulator equivalents of
// sgx_target_info_t, sgx_report_t, sgx_quote_t).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/ed25519.h"
#include "sgx/measurement.h"

namespace vnfsgx::sgx {

/// 16-byte platform identifier — the simulator's stand-in for the EPID
/// group/pseudonym. IAS maps it to a registered attestation key.
using PlatformId = std::array<std::uint8_t, 16>;

/// 64 bytes of caller-chosen data bound into reports and quotes; the
/// attestation protocol uses it to bind nonces and channel keys.
using ReportData = std::array<std::uint8_t, 64>;

/// Identifies the enclave a local-attestation report is destined for
/// (the verifying enclave derives the matching report key).
struct TargetInfo {
  Measurement mr_enclave{};

  Bytes encode() const;
  static TargetInfo decode(ByteView data);
};

/// EREPORT output: enclave identity + report data, MACed with a key only
/// the target enclave (and the platform) can derive.
struct ReportBody {
  Measurement mr_enclave{};
  Measurement mr_signer{};
  std::uint16_t isv_prod_id = 0;
  std::uint16_t isv_svn = 0;
  std::uint64_t attributes = 0;
  ReportData report_data{};

  Bytes encode() const;
  static ReportBody decode(ByteView data);
  bool operator==(const ReportBody&) const = default;
};

struct Report {
  ReportBody body;
  std::array<std::uint8_t, 32> mac{};  // HMAC-SHA256 under the report key

  Bytes encode() const;
  static Report decode(ByteView data);
};

/// Remote-attestation quote produced by the Quoting Enclave: a report body
/// signed with the platform's attestation key (EPID stand-in).
struct Quote {
  std::uint16_t version = 2;
  PlatformId platform_id{};
  ReportBody body;
  crypto::Ed25519Signature signature{};  // over encode_tbs()

  Bytes encode_tbs() const;
  Bytes encode() const;
  static Quote decode(ByteView data);
};

}  // namespace vnfsgx::sgx
