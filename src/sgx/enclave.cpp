#include "sgx/enclave.h"

#include <cstring>
#include <vector>

#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "obs/metrics.h"
#include "sgx/platform.h"

namespace vnfsgx::sgx {

namespace {

// Dispatch counters by boundary path (see docs/ENCLAVE_BOUNDARY.md).
obs::Counter& ecall_sync_total() {
  static obs::Counter& c = obs::registry().counter(
      "vnfsgx_ecall_sync_total", {},
      "ECALL jobs dispatched as classic one-crossing-per-call ECALLs");
  return c;
}
obs::Counter& ecall_batched_total() {
  static obs::Counter& c = obs::registry().counter(
      "vnfsgx_ecall_batched_total", {},
      "ECALL jobs dispatched via call_batch (one crossing per batch)");
  return c;
}
obs::Counter& ecall_switchless_total() {
  static obs::Counter& c = obs::registry().counter(
      "vnfsgx_ecall_switchless_total", {},
      "ECALL jobs dispatched by the switchless hostcall ring worker");
  return c;
}

// Stack of enclaves the current thread is executing inside (ECALLs may
// nest when trusted logic calls into another enclave via untrusted glue).
thread_local std::vector<const Enclave*> t_enclave_stack;

struct EnclaveEntryGuard {
  explicit EnclaveEntryGuard(const Enclave* enclave) {
    t_enclave_stack.push_back(enclave);
  }
  ~EnclaveEntryGuard() { t_enclave_stack.pop_back(); }
};

bool inside(const Enclave* enclave) {
  for (const Enclave* e : t_enclave_stack) {
    if (e == enclave) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// EnclaveVault
// ---------------------------------------------------------------------------

void EnclaveVault::check_access(const char* op) const {
  if (!inside(&owner_)) {
    throw SecurityViolation(std::string("EPC access denied: ") + op +
                            " on vault of enclave '" + owner_.name() +
                            "' from outside the enclave");
  }
}

void EnclaveVault::store(const std::string& key, Bytes value) {
  check_access("store");
  entries_[key] = std::move(value);
}

const Bytes& EnclaveVault::load(const std::string& key) const {
  check_access("load");
  const auto it = entries_.find(key);
  if (it == entries_.end()) throw Error("vault: no such key: " + key);
  return it->second;
}

bool EnclaveVault::contains(const std::string& key) const {
  return entries_.count(key) > 0;
}

void EnclaveVault::erase(const std::string& key) {
  check_access("erase");
  entries_.erase(key);
}

// ---------------------------------------------------------------------------
// EnclaveServices implementation
// ---------------------------------------------------------------------------

class Enclave::ServicesImpl final : public EnclaveServices {
 public:
  ServicesImpl(Enclave& enclave, SgxPlatform& platform)
      : enclave_(enclave), platform_(platform), vault_(enclave) {}

  Report create_report(const TargetInfo& target,
                       const ReportData& data) override {
    require_inside("create_report");
    Report report;
    report.body = enclave_.body_;
    report.body.report_data = data;
    const SecureBytes key = platform_.report_key(target.mr_enclave);
    const auto mac = crypto::HmacSha256::mac(key, report.body.encode());
    std::copy(mac.begin(), mac.end(), report.mac.begin());
    return report;
  }

  Bytes seal(SealPolicy policy, ByteView plaintext, ByteView aad) override {
    require_inside("seal");
    const Measurement identity = policy == SealPolicy::kMrEnclave
                                     ? enclave_.body_.mr_enclave
                                     : enclave_.body_.mr_signer;
    Bytes key_id(16);
    platform_.rng_.fill(key_id);
    const SecureBytes key = platform_.seal_key(policy, identity, key_id);
    Bytes nonce(12);
    platform_.rng_.fill(nonce);

    const crypto::AesGcm aead(key);
    const Bytes sealed = aead.seal(nonce, plaintext, aad);

    Bytes blob;
    append_u8(blob, static_cast<std::uint8_t>(policy));
    append(blob, key_id);
    append(blob, nonce);
    append(blob, sealed);
    return blob;
  }

  std::optional<Bytes> unseal(ByteView blob, ByteView aad) override {
    require_inside("unseal");
    if (blob.size() < 1 + 16 + 12 + crypto::kGcmTagSize) return std::nullopt;
    const auto policy = static_cast<SealPolicy>(blob[0]);
    if (policy != SealPolicy::kMrEnclave && policy != SealPolicy::kMrSigner) {
      return std::nullopt;
    }
    const ByteView key_id = blob.subspan(1, 16);
    const ByteView nonce = blob.subspan(17, 12);
    const ByteView sealed = blob.subspan(29);
    const Measurement identity = policy == SealPolicy::kMrEnclave
                                     ? enclave_.body_.mr_enclave
                                     : enclave_.body_.mr_signer;
    const SecureBytes key = platform_.seal_key(policy, identity, key_id);
    const crypto::AesGcm aead(key);
    return aead.open(nonce, sealed, aad);
  }

  void read_rand(std::span<std::uint8_t> out) override {
    require_inside("read_rand");
    platform_.rng_.fill(out);
  }

  const ReportBody& self() const override { return enclave_.body_; }

  EnclaveVault& vault() override { return vault_; }

 private:
  void require_inside(const char* op) const {
    if (!inside(&enclave_)) {
      throw SecurityViolation(std::string("enclave service '") + op +
                              "' invoked from outside enclave '" +
                              enclave_.name() + "'");
    }
  }

  Enclave& enclave_;
  SgxPlatform& platform_;
  EnclaveVault vault_;
};

// ---------------------------------------------------------------------------
// Enclave
// ---------------------------------------------------------------------------

Enclave::Enclave(SgxPlatform& platform, std::string name, ReportBody body,
                 std::unique_ptr<TrustedLogic> logic, std::size_t epc_bytes)
    : platform_(platform),
      name_(std::move(name)),
      body_(body),
      logic_(std::move(logic)),
      services_(std::make_unique<ServicesImpl>(*this, platform)),
      epc_bytes_(epc_bytes) {}

Enclave::~Enclave() { destroy(); }

Bytes Enclave::call(std::uint32_t opcode, ByteView input) {
  if (destroyed_) {
    throw SecurityViolation("ECALL into destroyed enclave '" + name_ + "'");
  }
  platform_.charge_crossing();
  ecall_count_.fetch_add(1, std::memory_order_relaxed);
  note_dispatch(opcode, DispatchPath::kSync);
  const EnclaveEntryGuard guard(this);
  return logic_->handle_call(opcode, input, *services_);
}

std::vector<BatchResult> Enclave::call_batch(std::span<const BatchCall> jobs) {
  if (destroyed_) {
    throw SecurityViolation("batched ECALL into destroyed enclave '" + name_ +
                            "'");
  }
  std::vector<BatchResult> results;
  results.reserve(jobs.size());
  if (jobs.empty()) return results;
  // One crossing for the whole batch; per-job dispatch happens inside.
  platform_.charge_crossing();
  ecall_count_.fetch_add(1, std::memory_order_relaxed);
  const EnclaveEntryGuard guard(this);
  for (const BatchCall& job : jobs) {
    // Copy the opcode in once: the job descriptors live in host-owned
    // memory, and dispatching on a second read would let a concurrently
    // scribbling host route the accounting and the handler differently.
    const std::uint32_t opcode = job.opcode;
    note_dispatch(opcode, DispatchPath::kBatched);
    BatchResult r;
    try {
      r.output = logic_->handle_call(opcode, job.input, *services_);
      r.ok = true;
    } catch (const std::exception& e) {
      r.ok = false;
      r.error = e.what();
    }
    results.push_back(std::move(r));
  }
  return results;
}

EcallStats Enclave::ecall_stats() const {
  // Publish/consume fence: writers use relaxed adds on hot paths, so make
  // every count published before this snapshot visible to the caller. The
  // counters are enclave-global, so N ring workers (RingGroup) aggregate
  // here for free — one fence per snapshot, never one per ring.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  EcallStats stats;
  stats.crossings = ecall_count_.load(std::memory_order_relaxed);
  stats.sync_calls = sync_calls_.load(std::memory_order_relaxed);
  stats.batched_jobs = batched_jobs_.load(std::memory_order_relaxed);
  stats.switchless_jobs = switchless_jobs_.load(std::memory_order_relaxed);
  for (std::uint32_t op = 0; op < kTrackedOpcodes; ++op) {
    const std::uint64_t n = opcode_counts_[op].load(std::memory_order_relaxed);
    if (n != 0) stats.per_opcode.emplace_back(op, n);
  }
  const std::uint64_t overflow =
      opcode_counts_[kTrackedOpcodes].load(std::memory_order_relaxed);
  if (overflow != 0) stats.per_opcode.emplace_back(kOpcodeOverflow, overflow);
  return stats;
}

void Enclave::note_dispatch(std::uint32_t opcode, DispatchPath path) {
  const std::uint32_t slot =
      opcode < kTrackedOpcodes ? opcode : kTrackedOpcodes;
  opcode_counts_[slot].fetch_add(1, std::memory_order_relaxed);
  switch (path) {
    case DispatchPath::kSync:
      sync_calls_.fetch_add(1, std::memory_order_relaxed);
      ecall_sync_total().add();
      break;
    case DispatchPath::kBatched:
      batched_jobs_.fetch_add(1, std::memory_order_relaxed);
      ecall_batched_total().add();
      break;
    case DispatchPath::kSwitchless:
      switchless_jobs_.fetch_add(1, std::memory_order_relaxed);
      ecall_switchless_total().add();
      break;
  }
}

bool Enclave::currently_inside() const { return inside(this); }

void Enclave::destroy() {
  if (destroyed_) return;
  destroyed_ = true;
  platform_.release_epc(epc_bytes_);
}

// ---------------------------------------------------------------------------
// EnclaveEntry (switchless worker residency)
// ---------------------------------------------------------------------------

EnclaveEntry::EnclaveEntry(Enclave& enclave) : enclave_(enclave) {
  if (enclave_.destroyed_) {
    throw SecurityViolation("ECALL into destroyed enclave '" +
                            enclave_.name() + "'");
  }
  enclave_.platform_.charge_crossing();
  enclave_.ecall_count_.fetch_add(1, std::memory_order_relaxed);
  t_enclave_stack.push_back(&enclave_);
}

EnclaveEntry::~EnclaveEntry() { t_enclave_stack.pop_back(); }

Bytes EnclaveEntry::dispatch(std::uint32_t opcode, ByteView input) {
  if (enclave_.destroyed_) {
    throw SecurityViolation("switchless dispatch into destroyed enclave '" +
                            enclave_.name() + "'");
  }
  enclave_.note_dispatch(opcode, Enclave::DispatchPath::kSwitchless);
  return enclave_.logic_->handle_call(opcode, input, *enclave_.services_);
}

std::size_t EnclaveEntry::dispatch_into(std::uint32_t opcode, ByteView input,
                                        std::span<std::uint8_t> out) {
  if (enclave_.destroyed_) {
    throw SecurityViolation("switchless dispatch into destroyed enclave '" +
                            enclave_.name() + "'");
  }
  enclave_.note_dispatch(opcode, Enclave::DispatchPath::kSwitchless);
  if (std::optional<std::size_t> n = enclave_.logic_->handle_call_into(
          opcode, input, out, *enclave_.services_)) {
    if (*n > out.size()) {
      throw Error("hostcall: trusted result exceeds ring slot capacity");
    }
    return *n;
  }
  const Bytes result =
      enclave_.logic_->handle_call(opcode, input, *enclave_.services_);
  if (result.size() > out.size()) {
    throw Error("hostcall: trusted result exceeds ring slot capacity");
  }
  if (!result.empty()) {
    std::memcpy(out.data(), result.data(), result.size());
  }
  return result.size();
}

}  // namespace vnfsgx::sgx
