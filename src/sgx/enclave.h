// Enclave runtime: trusted-logic interface, in-enclave services (the SDK
// intrinsics), the protected-memory vault, and the ECALL gate.
//
// The simulator enforces the SGX security contract in software:
//   * an enclave is immutable once initialized (no page changes),
//   * enclave memory (the vault) is readable only while executing inside
//     that enclave — any other access throws SecurityViolation,
//   * reports can only be created from inside an enclave,
//   * sealed blobs only unseal inside an enclave with the same identity
//     (measurement or signer, per policy) on the same platform.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "common/secure.h"
#include "sgx/measurement.h"
#include "sgx/sigstruct.h"
#include "sgx/structs.h"

namespace vnfsgx::sgx {

class Enclave;
class SgxPlatform;

enum class SealPolicy : std::uint8_t {
  kMrEnclave = 1,  // only the exact same enclave can unseal
  kMrSigner = 2,   // any enclave from the same vendor can unseal
};

/// Key-value storage living in (simulated) EPC memory. Reads and writes are
/// permitted only while the owning enclave is executing an ECALL.
class EnclaveVault {
 public:
  explicit EnclaveVault(const Enclave& owner) : owner_(owner) {}

  void store(const std::string& key, Bytes value);
  const Bytes& load(const std::string& key) const;
  bool contains(const std::string& key) const;  // metadata; callable anywhere
  void erase(const std::string& key);
  std::size_t size() const { return entries_.size(); }

 private:
  void check_access(const char* op) const;

  const Enclave& owner_;
  // Vault entries model EPC-resident secrets: each value wipes itself on
  // erase() and on enclave teardown (EREMOVE scrubs EPC pages).
  std::map<std::string, SecureBytes> entries_;
};

/// The in-enclave API surface (mirrors sgx_create_report, sgx_seal_data,
/// sgx_read_rand, ...). Handed to TrustedLogic during ECALLs.
class EnclaveServices {
 public:
  virtual ~EnclaveServices() = default;

  /// EREPORT: a report about this enclave, MACed for `target`.
  virtual Report create_report(const TargetInfo& target,
                               const ReportData& data) = 0;

  /// Seal data to this enclave's identity. Returns the sealed blob.
  virtual Bytes seal(SealPolicy policy, ByteView plaintext, ByteView aad) = 0;

  /// Unseal a blob sealed on this platform to a matching identity.
  /// Returns nullopt if the blob fails authentication or policy.
  virtual std::optional<Bytes> unseal(ByteView blob, ByteView aad) = 0;

  /// sgx_read_rand.
  virtual void read_rand(std::span<std::uint8_t> out) = 0;

  /// This enclave's own identity (for report_data construction etc).
  virtual const ReportBody& self() const = 0;

  /// Protected storage.
  virtual EnclaveVault& vault() = 0;
};

/// The "code inside the enclave". Receives opcode-dispatched ECALLs.
class TrustedLogic {
 public:
  virtual ~TrustedLogic() = default;
  virtual Bytes handle_call(std::uint32_t opcode, ByteView input,
                            EnclaveServices& services) = 0;

  /// Allocation-free fast path used by the switchless ring: write the
  /// result directly into `out` (enclave-local memory backing the worker's
  /// scratch buffer) and return its length. Return nullopt to fall back to
  /// handle_call() for this opcode. Implementations must never write past
  /// out.size(); dispatch re-validates the returned length anyway.
  virtual std::optional<std::size_t> handle_call_into(
      std::uint32_t opcode, ByteView input, std::span<std::uint8_t> out,
      EnclaveServices& services) {
    (void)opcode;
    (void)input;
    (void)out;
    (void)services;
    return std::nullopt;
  }
};

using LogicFactory = std::function<std::unique_ptr<TrustedLogic>()>;

/// One job of a batched ECALL: K of these amortize a single crossing.
///
/// boundary: shared — host-owned job descriptors the enclave reads while
/// dispatching; trusted code must copy each field in once (boundarycheck B1).
struct BatchCall {
  std::uint32_t opcode = 0;
  Bytes input;
};

/// Per-job outcome of a batched ECALL. Failures are isolated: one job
/// throwing does not poison its batch siblings.
///
/// boundary: wire — written by the enclave, consumed host-side after the
/// crossing; only the secret-egress rule (boundarycheck B4) applies.
struct BatchResult {
  bool ok = false;
  Bytes output;
  std::string error;  // what() of the job's exception when !ok
};

/// Coherent snapshot of an enclave's ECALL accounting (see ecall_stats()).
struct EcallStats {
  /// Boundary crossings: sync ECALLs + batch entries + switchless-worker
  /// (re)entries. This is what the crossing cost is charged per.
  std::uint64_t crossings = 0;
  /// Jobs dispatched per path. sync_calls jobs paid one crossing each;
  /// batched_jobs shared one crossing per batch; switchless_jobs crossed
  /// only when their worker woke from a park.
  std::uint64_t sync_calls = 0;
  std::uint64_t batched_jobs = 0;
  std::uint64_t switchless_jobs = 0;
  /// Dispatch counts keyed by opcode (all paths combined), ascending by
  /// opcode. Opcodes >= kTrackedOpcodes aggregate under kOpcodeOverflow.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> per_opcode;

  std::uint64_t dispatches() const {
    return sync_calls + batched_jobs + switchless_jobs;
  }
};

/// Opcodes tracked individually in EcallStats::per_opcode; everything at or
/// above this aggregates under the kOpcodeOverflow pseudo-opcode.
inline constexpr std::uint32_t kTrackedOpcodes = 64;
inline constexpr std::uint32_t kOpcodeOverflow = 0xffffffff;

/// An enclave image: the measured byte contents plus the behavior those
/// bytes stand for in the simulation. Tampering `code` changes the
/// measurement exactly as flipping bits in a real enclave binary would.
struct EnclaveImage {
  std::string name;  // debugging label only; not measured
  Bytes code;
  std::uint64_t attributes = 0;
  LogicFactory factory;
};

/// A loaded, initialized enclave. Created via SgxPlatform::load_enclave.
class Enclave {
 public:
  ~Enclave();
  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  const Measurement& mr_enclave() const { return body_.mr_enclave; }
  const Measurement& mr_signer() const { return body_.mr_signer; }
  const ReportBody& identity() const { return body_; }
  const std::string& name() const { return name_; }

  /// ECALL: enter the enclave and dispatch to the trusted logic.
  /// Throws SecurityViolation if the enclave has been destroyed.
  Bytes call(std::uint32_t opcode, ByteView input);

  /// Batched ECALL: one boundary crossing amortized over all jobs. Each
  /// job's failure is captured in its BatchResult rather than thrown, so a
  /// bad job cannot abort its siblings mid-batch. Results are positional.
  std::vector<BatchResult> call_batch(std::span<const BatchCall> jobs);

  /// Number of ECALL crossings so far (used by the overhead benchmarks).
  std::uint64_t ecall_count() const {
    return ecall_count_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the crossing/dispatch counters. Issues a fence before
  /// reading so counts published by other threads (benchmark workers, the
  /// switchless ring's enclave thread) are visible to before/after deltas;
  /// prefer this over raw ecall_count() reads across threads.
  EcallStats ecall_stats() const;

  /// EREMOVE: tear down; EPC pages are freed and further calls throw.
  void destroy();
  bool destroyed() const { return destroyed_; }

  /// True iff the calling thread is currently executing inside this
  /// enclave (used by the vault access checks).
  bool currently_inside() const;

  /// Size of this enclave's EPC reservation.
  std::size_t epc_bytes() const { return epc_bytes_; }

 private:
  friend class SgxPlatform;
  friend class EnclaveEntry;
  Enclave(SgxPlatform& platform, std::string name, ReportBody body,
          std::unique_ptr<TrustedLogic> logic, std::size_t epc_bytes);

  class ServicesImpl;

  enum class DispatchPath { kSync, kBatched, kSwitchless };
  void note_dispatch(std::uint32_t opcode, DispatchPath path);

  SgxPlatform& platform_;
  std::string name_;
  ReportBody body_;
  std::unique_ptr<TrustedLogic> logic_;
  std::unique_ptr<ServicesImpl> services_;
  std::size_t epc_bytes_;
  std::atomic<std::uint64_t> ecall_count_{0};
  std::atomic<std::uint64_t> sync_calls_{0};
  std::atomic<std::uint64_t> batched_jobs_{0};
  std::atomic<std::uint64_t> switchless_jobs_{0};
  // Per-opcode dispatch counts; slot kTrackedOpcodes is the overflow bin.
  std::array<std::atomic<std::uint64_t>, kTrackedOpcodes + 1> opcode_counts_{};
  bool destroyed_ = false;
};

/// RAII enclave entry for the switchless hostcall worker: the constructor
/// performs ONE classic crossing (charged + counted); dispatch() then runs
/// jobs inside the enclave with no further crossings until destruction
/// exits. Must be entered and exited on the same thread.
class EnclaveEntry {
 public:
  explicit EnclaveEntry(Enclave& enclave);
  ~EnclaveEntry();
  EnclaveEntry(const EnclaveEntry&) = delete;
  EnclaveEntry& operator=(const EnclaveEntry&) = delete;

  /// Dispatch one job to the trusted logic without a boundary crossing.
  Bytes dispatch(std::uint32_t opcode, ByteView input);

  /// Allocation-free variant: the result is written straight into `out`
  /// (the ring worker's enclave-local scratch) and its length returned.
  /// Prefers TrustedLogic::handle_call_into; falls back to handle_call plus
  /// one copy when the logic has no fixed-buffer path for the opcode.
  /// Throws Error if the result does not fit in `out`.
  std::size_t dispatch_into(std::uint32_t opcode, ByteView input,
                            std::span<std::uint8_t> out);

 private:
  Enclave& enclave_;
};

}  // namespace vnfsgx::sgx
