#include "sgx/platform.h"

#include <thread>

#include "common/logging.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"

namespace vnfsgx::sgx {

SgxPlatform::SgxPlatform(crypto::RandomSource& rng, std::string name,
                         PlatformOptions options)
    : name_(std::move(name)), options_(options), rng_(rng) {
  device_root_key_ = rng_.bytes(32);
  rng_.fill(platform_id_);
  quoting_enclave_ = std::make_unique<QuotingEnclave>(*this, rng_);
  VNFSGX_LOG_INFO("sgx", "platform '", name_, "' initialized");
}

SgxPlatform::~SgxPlatform() = default;

std::shared_ptr<Enclave> SgxPlatform::load_enclave(const EnclaveImage& image,
                                                   const SigStruct& sigstruct) {
  // EINIT checks: vendor signature, then measurement match.
  if (!sigstruct.verify()) {
    throw SecurityViolation("EINIT: SIGSTRUCT signature invalid for '" +
                            image.name + "'");
  }
  const Measurement measured = measure_image(image.code, image.attributes);
  if (measured != sigstruct.enclave_measurement) {
    throw SecurityViolation(
        "EINIT: measurement mismatch for '" + image.name +
        "' (image does not match the vendor-signed measurement)");
  }
  if (!image.factory) {
    throw Error("load_enclave: image has no logic factory");
  }

  // EPC reservation: code pages + a fixed heap/stack allowance.
  const std::size_t epc_bytes = image.code.size() + 64 * 1024;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (epc_used_ + epc_bytes > options_.epc_capacity) {
      throw Error("load_enclave: EPC exhausted (" +
                  std::to_string(epc_used_) + " + " +
                  std::to_string(epc_bytes) + " > " +
                  std::to_string(options_.epc_capacity) + ")");
    }
    epc_used_ += epc_bytes;
  }

  ReportBody body;
  body.mr_enclave = measured;
  body.mr_signer = sigstruct.mr_signer();
  body.isv_prod_id = sigstruct.isv_prod_id;
  body.isv_svn = sigstruct.isv_svn;
  body.attributes = image.attributes;

  VNFSGX_LOG_INFO("sgx", "enclave '", image.name, "' loaded on '", name_,
                  "' mrenclave=", to_hex_string(measured).substr(0, 16));
  return std::shared_ptr<Enclave>(
      new Enclave(*this, image.name, body, image.factory(), epc_bytes));
}

std::size_t SgxPlatform::epc_used() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epc_used_;
}

SecureBytes SgxPlatform::report_key(const Measurement& target_mr) const {
  return crypto::hkdf(device_root_key_, to_bytes("sgx-report-key"), target_mr,
                      32);
}

SecureBytes SgxPlatform::seal_key(SealPolicy policy,
                                  const Measurement& identity,
                                  ByteView key_id) const {
  Bytes info;
  append_u8(info, static_cast<std::uint8_t>(policy));
  append(info, identity);
  append(info, key_id);
  return crypto::hkdf(device_root_key_, to_bytes("sgx-seal-key"), info, 16);
}

void SgxPlatform::release_epc(std::size_t bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  epc_used_ -= std::min(epc_used_, bytes);
}

void SgxPlatform::charge_crossing() {
  total_crossings_.fetch_add(1, std::memory_order_relaxed);
  if (options_.crossing_cost.count() <= 0) return;
  // Spin: crossings are sub-microsecond, far below sleep granularity.
  const auto until = std::chrono::steady_clock::now() + options_.crossing_cost;
  while (std::chrono::steady_clock::now() < until) {
    // busy-wait
  }
}

// ---------------------------------------------------------------------------
// QuotingEnclave
// ---------------------------------------------------------------------------

QuotingEnclave::QuotingEnclave(SgxPlatform& platform, crypto::RandomSource& rng)
    : platform_(platform), attestation_key_(crypto::ed25519_generate(rng)) {
  // The QE has its own (fixed) identity; other enclaves target reports at it.
  const Bytes qe_code = to_bytes("vnfsgx-quoting-enclave-v1");
  measurement_ = measure_image(qe_code, 0);
}

TargetInfo QuotingEnclave::target_info() const {
  TargetInfo info;
  info.mr_enclave = measurement_;
  return info;
}

Quote QuotingEnclave::quote(const Report& report) const {
  // Local attestation: recompute the MAC with the QE's report key.
  const SecureBytes key = platform_.report_key(measurement_);
  if (!crypto::hmac_sha256_verify(key, report.body.encode(),
                                  ByteView(report.mac.data(),
                                           report.mac.size()))) {
    throw SecurityViolation(
        "quoting enclave: report MAC invalid (not produced on this "
        "platform or targeted elsewhere)");
  }
  Quote quote;
  quote.platform_id = platform_.platform_id();
  quote.body = report.body;
  quote.signature =
      crypto::ed25519_sign(attestation_key_.seed, quote.encode_tbs());
  return quote;
}

}  // namespace vnfsgx::sgx
