// Simulated Trusted Platform Module (TPM 2.0-style, minimal profile).
//
// The paper's §4 future work: "integrity measurements are thus vulnerable
// to tampering by an adversary having root access... we intend to implement
// a communication protocol to enable the integrity attestation enclave to
// retrieve authenticated integrity measurements from a TPM deployed on the
// platform."
//
// This module implements that protocol's hardware end: PCR banks with
// extend semantics, an attestation identity key (AIK), and TPM quotes
// (signed PCR digests bound to a caller nonce). The kernel-side IMA
// subsystem extends PCR 10 on every measurement, so a root attacker who
// rewrites the in-memory IML can no longer produce a matching PCR-10 quote
// — the tamper the paper could not detect becomes detectable.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "common/bytes.h"
#include "crypto/ed25519.h"
#include "crypto/random.h"

namespace vnfsgx::ima {

using Pcr = std::array<std::uint8_t, 32>;

inline constexpr std::size_t kTpmPcrCount = 24;
inline constexpr std::uint32_t kImaPcrIndex = 10;

/// A signed TPM quote: selected PCR values digest + nonce, AIK-signed.
struct TpmQuote {
  std::uint32_t pcr_index = 0;
  Pcr pcr_value{};
  std::array<std::uint8_t, 32> nonce{};
  crypto::Ed25519Signature signature{};

  Bytes tbs() const;
  Bytes encode() const;
  static TpmQuote decode(ByteView data);

  /// Verify against the platform's AIK public key.
  bool verify(const crypto::Ed25519PublicKey& aik) const;
};

class Tpm {
 public:
  explicit Tpm(crypto::RandomSource& rng);

  /// TPM2_PCR_Extend: pcr' = SHA256(pcr || digest). Thread-safe.
  void extend(std::uint32_t pcr_index, ByteView digest);

  /// TPM2_PCR_Read.
  Pcr read(std::uint32_t pcr_index) const;

  /// TPM2_Quote over one PCR, bound to a fresh caller nonce.
  TpmQuote quote(std::uint32_t pcr_index,
                 const std::array<std::uint8_t, 32>& nonce) const;

  /// The attestation identity key's public half (enrolled with verifiers
  /// out of band, like an AIK certificate).
  const crypto::Ed25519PublicKey& aik_public_key() const {
    return aik_.public_key;
  }

 private:
  mutable std::mutex mutex_;
  std::array<Pcr, kTpmPcrCount> pcrs_{};
  crypto::Ed25519KeyPair aik_;
};

}  // namespace vnfsgx::ima
