#include "ima/filesystem.h"

namespace vnfsgx::ima {

void SimulatedFilesystem::write_file(const std::string& path, Bytes content,
                                     FileMeta meta) {
  files_[path] = File{std::move(content), meta};
}

void SimulatedFilesystem::tamper_file(const std::string& path,
                                      std::size_t offset) {
  auto it = files_.find(path);
  if (it == files_.end()) throw Error("fs: no such file: " + path);
  if (it->second.content.empty()) {
    it->second.content.push_back(0xff);
    return;
  }
  it->second.content[offset % it->second.content.size()] ^= 0xff;
}

void SimulatedFilesystem::remove_file(const std::string& path) {
  files_.erase(path);
}

bool SimulatedFilesystem::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

const Bytes& SimulatedFilesystem::read_file(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) throw Error("fs: no such file: " + path);
  return it->second.content;
}

const FileMeta& SimulatedFilesystem::metadata(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) throw Error("fs: no such file: " + path);
  return it->second.meta;
}

std::vector<std::string> SimulatedFilesystem::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, file] : files_) out.push_back(path);
  return out;
}

}  // namespace vnfsgx::ima
