#include "ima/subsystem.h"

#include "crypto/sha256.h"

namespace vnfsgx::ima {

bool ImaSubsystem::on_event(const ImaEvent& event) {
  if (!fs_.exists(event.path)) return false;
  ImaEvent enriched = event;
  enriched.fowner = fs_.metadata(event.path).uid;
  if (!policy_.should_measure(enriched)) return false;

  const Digest digest = crypto::Sha256::hash(fs_.read_file(event.path));
  const auto it = cache_.find(event.path);
  if (it != cache_.end() && it->second == digest) {
    return false;  // measurement cache hit: unchanged since last time
  }
  cache_[event.path] = digest;
  list_.add_measurement(digest, event.path);
  if (tpm_) {
    tpm_->extend(kImaPcrIndex, list_.entries().back().template_hash);
  }
  return true;
}

bool ImaSubsystem::on_exec(const std::string& path, std::uint32_t uid) {
  ImaEvent event;
  event.hook = ImaHook::kBprmCheck;
  event.uid = uid;
  event.path = path;
  return on_event(event);
}

void ImaSubsystem::report_violation(const std::string& path) {
  list_.add_violation(path);
  if (tpm_) {
    tpm_->extend(kImaPcrIndex, list_.entries().back().template_hash);
  }
}

}  // namespace vnfsgx::ima
