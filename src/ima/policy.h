// IMA policy: which file events produce measurements.
//
// Parses the measure/dont_measure rule syntax of the kernel's IMA policy
// file ("the measurement targets are configured by the administrator in a
// policy file" — §2 of the paper). First matching rule decides; no match
// means no measurement, like the kernel's default-deny for measure rules.
//
// Supported conditions: func= (BPRM_CHECK | FILE_MMAP | FILE_CHECK),
// uid=, fowner=, path= (prefix match; a simulator extension standing in
// for fsmagic/label selectors).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace vnfsgx::ima {

enum class ImaHook : std::uint8_t {
  kBprmCheck,  // executable launched
  kFileMmap,   // mmapped with exec
  kFileCheck,  // opened for read
};

std::string to_string(ImaHook hook);

struct ImaEvent {
  ImaHook hook = ImaHook::kBprmCheck;
  std::uint32_t uid = 0;     // acting user
  std::uint32_t fowner = 0;  // file owner
  std::string path;
};

struct PolicyRule {
  bool measure = true;  // measure vs dont_measure
  std::optional<ImaHook> func;
  std::optional<std::uint32_t> uid;
  std::optional<std::uint32_t> fowner;
  std::optional<std::string> path_prefix;

  bool matches(const ImaEvent& event) const;
};

class ImaPolicy {
 public:
  /// Parse policy text; one rule per line, '#' comments. Throws ParseError
  /// on unknown actions/keys.
  static ImaPolicy parse(const std::string& text);

  /// The kernel's ima_tcb-equivalent default used by the prototype:
  /// measure everything root executes or mmaps.
  static ImaPolicy tcb_default();

  void add_rule(PolicyRule rule) { rules_.push_back(std::move(rule)); }

  /// First matching rule decides; default: do not measure.
  bool should_measure(const ImaEvent& event) const;

  const std::vector<PolicyRule>& rules() const { return rules_; }

 private:
  std::vector<PolicyRule> rules_;
};

}  // namespace vnfsgx::ima
