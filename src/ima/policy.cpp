#include "ima/policy.h"

#include <sstream>

namespace vnfsgx::ima {

std::string to_string(ImaHook hook) {
  switch (hook) {
    case ImaHook::kBprmCheck:
      return "BPRM_CHECK";
    case ImaHook::kFileMmap:
      return "FILE_MMAP";
    case ImaHook::kFileCheck:
      return "FILE_CHECK";
  }
  return "?";
}

namespace {
ImaHook hook_from_string(const std::string& s) {
  if (s == "BPRM_CHECK") return ImaHook::kBprmCheck;
  if (s == "FILE_MMAP") return ImaHook::kFileMmap;
  if (s == "FILE_CHECK") return ImaHook::kFileCheck;
  throw ParseError("ima policy: unknown func '" + s + "'");
}
}  // namespace

bool PolicyRule::matches(const ImaEvent& event) const {
  if (func && *func != event.hook) return false;
  if (uid && *uid != event.uid) return false;
  if (fowner && *fowner != event.fowner) return false;
  if (path_prefix &&
      event.path.compare(0, path_prefix->size(), *path_prefix) != 0) {
    return false;
  }
  return true;
}

ImaPolicy ImaPolicy::parse(const std::string& text) {
  ImaPolicy policy;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string action;
    if (!(words >> action)) continue;

    PolicyRule rule;
    if (action == "measure") {
      rule.measure = true;
    } else if (action == "dont_measure") {
      rule.measure = false;
    } else {
      throw ParseError("ima policy: unknown action '" + action + "'");
    }
    std::string token;
    while (words >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        throw ParseError("ima policy: malformed condition '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "func") {
        rule.func = hook_from_string(value);
      } else if (key == "uid") {
        rule.uid = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "fowner") {
        rule.fowner = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "path") {
        rule.path_prefix = value;
      } else {
        throw ParseError("ima policy: unknown key '" + key + "'");
      }
    }
    policy.add_rule(std::move(rule));
  }
  return policy;
}

ImaPolicy ImaPolicy::tcb_default() {
  return parse(
      "# ima_tcb equivalent\n"
      "measure func=BPRM_CHECK\n"
      "measure func=FILE_MMAP\n"
      "measure func=FILE_CHECK uid=0\n");
}

bool ImaPolicy::should_measure(const ImaEvent& event) const {
  for (const PolicyRule& rule : rules_) {
    if (rule.matches(event)) return rule.measure;
  }
  return false;
}

}  // namespace vnfsgx::ima
