// Simulated filesystem backing the container host.
//
// Holds the "software running on the container host" that IMA measures:
// binaries, libraries, container images' entry points. Tests and examples
// tamper files here to emulate a compromised host.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace vnfsgx::ima {

struct FileMeta {
  std::uint32_t uid = 0;       // owner
  bool executable = false;
};

class SimulatedFilesystem {
 public:
  /// Create or replace a file.
  void write_file(const std::string& path, Bytes content, FileMeta meta = {});

  /// Flip one byte of an existing file (compromise injection).
  void tamper_file(const std::string& path, std::size_t offset = 0);

  void remove_file(const std::string& path);

  bool exists(const std::string& path) const;
  const Bytes& read_file(const std::string& path) const;  // throws if missing
  const FileMeta& metadata(const std::string& path) const;

  std::vector<std::string> list() const;
  std::size_t file_count() const { return files_.size(); }

 private:
  struct File {
    Bytes content;
    FileMeta meta;
  };
  std::map<std::string, File> files_;
};

}  // namespace vnfsgx::ima
