#include "ima/tpm.h"

#include "common/error.h"
#include "crypto/sha256.h"
#include "pki/tlv.h"

namespace vnfsgx::ima {

namespace {
enum : std::uint8_t {
  kTagPcrIndex = 0x01,
  kTagPcrValue = 0x02,
  kTagNonce = 0x03,
  kTagSignature = 0x04,
  kTagTbs = 0x05,
};
}  // namespace

Bytes TpmQuote::tbs() const {
  pki::TlvWriter w;
  w.add_u32(kTagPcrIndex, pcr_index);
  w.add_bytes(kTagPcrValue, pcr_value);
  w.add_bytes(kTagNonce, nonce);
  return w.take();
}

Bytes TpmQuote::encode() const {
  pki::TlvWriter w;
  w.add_bytes(kTagTbs, tbs());
  w.add_bytes(kTagSignature, signature);
  return w.take();
}

TpmQuote TpmQuote::decode(ByteView data) {
  pki::TlvReader outer(data);
  const Bytes tbs_bytes = outer.expect_bytes(kTagTbs);
  TpmQuote q;
  q.signature = outer.expect_array<64>(kTagSignature);
  if (!outer.done()) throw ParseError("tpm quote: trailing data");

  pki::TlvReader r(tbs_bytes);
  q.pcr_index = r.expect_u32(kTagPcrIndex);
  q.pcr_value = r.expect_array<32>(kTagPcrValue);
  q.nonce = r.expect_array<32>(kTagNonce);
  if (!r.done()) throw ParseError("tpm quote: trailing tbs data");
  return q;
}

bool TpmQuote::verify(const crypto::Ed25519PublicKey& aik) const {
  return crypto::ed25519_verify(aik, tbs(),
                                ByteView(signature.data(), signature.size()));
}

Tpm::Tpm(crypto::RandomSource& rng) : aik_(crypto::ed25519_generate(rng)) {}

void Tpm::extend(std::uint32_t pcr_index, ByteView digest) {
  if (pcr_index >= kTpmPcrCount) throw Error("tpm: PCR index out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  crypto::Sha256 h;
  h.update(pcrs_[pcr_index]);
  h.update(digest);
  pcrs_[pcr_index] = h.finish();
}

Pcr Tpm::read(std::uint32_t pcr_index) const {
  if (pcr_index >= kTpmPcrCount) throw Error("tpm: PCR index out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return pcrs_[pcr_index];
}

TpmQuote Tpm::quote(std::uint32_t pcr_index,
                    const std::array<std::uint8_t, 32>& nonce) const {
  TpmQuote q;
  q.pcr_index = pcr_index;
  q.pcr_value = read(pcr_index);
  q.nonce = nonce;
  q.signature = crypto::ed25519_sign(aik_.seed, q.tbs());
  return q;
}

}  // namespace vnfsgx::ima
