// IMA measurement list (the kernel's binary_runtime_measurements) in the
// ima-ng template, plus the PCR-10-style aggregate.
//
// The integrity attestation enclave embeds a digest of this list in its
// quote's report data; the Verification Manager appraises the full list
// against its expected-measurements database.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace vnfsgx::ima {

using Digest = std::array<std::uint8_t, 32>;

struct ImaEntry {
  std::uint32_t pcr = 10;
  Digest template_hash{};  // sha256 over the template data
  std::string template_name = "ima-ng";
  Digest file_digest{};    // sha256 of file contents (zero for violations)
  std::string file_path;

  bool is_violation() const;
  bool operator==(const ImaEntry&) const = default;
};

/// Compute the ima-ng template hash for a digest+path pair.
Digest template_hash_for(const Digest& file_digest, const std::string& path);

class MeasurementList {
 public:
  /// Append a measurement entry for a file.
  void add_measurement(const Digest& file_digest, const std::string& path);

  /// Append a violation entry (ToMToU / open-writers): zero digest, which
  /// invalidates the aggregate for the verifier, as in the kernel.
  void add_violation(const std::string& path);

  const std::vector<ImaEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool has_violation() const;

  /// PCR-10 extend chain: pcr' = SHA256(pcr || template_hash).
  Digest aggregate() const;

  Bytes encode() const;
  static MeasurementList decode(ByteView data);

 private:
  std::vector<ImaEntry> entries_;
};

}  // namespace vnfsgx::ima
