#include "ima/measurement_list.h"

#include <algorithm>

#include "common/error.h"
#include "crypto/sha256.h"
#include "pki/tlv.h"

namespace vnfsgx::ima {

namespace {
enum : std::uint8_t {
  kTagEntry = 0x01,
  kTagPcr = 0x02,
  kTagTemplateHash = 0x03,
  kTagTemplateName = 0x04,
  kTagFileDigest = 0x05,
  kTagFilePath = 0x06,
};
}  // namespace

bool ImaEntry::is_violation() const {
  return std::all_of(file_digest.begin(), file_digest.end(),
                     [](std::uint8_t b) { return b == 0; });
}

Digest template_hash_for(const Digest& file_digest, const std::string& path) {
  // ima-ng template data: "sha256:" || digest || path
  Bytes data;
  append(data, std::string_view("sha256:"));
  append(data, file_digest);
  append(data, path);
  return crypto::Sha256::hash(data);
}

void MeasurementList::add_measurement(const Digest& file_digest,
                                      const std::string& path) {
  ImaEntry entry;
  entry.file_digest = file_digest;
  entry.file_path = path;
  entry.template_hash = template_hash_for(file_digest, path);
  entries_.push_back(std::move(entry));
}

void MeasurementList::add_violation(const std::string& path) {
  ImaEntry entry;
  entry.file_digest = Digest{};  // zeros
  entry.file_path = path;
  // The kernel stores 0xFF.. as the violation template hash input; what
  // matters for the verifier is that it cannot be reproduced from file
  // content. We hash a distinguished marker.
  Bytes data;
  append(data, std::string_view("violation:"));
  append(data, path);
  entry.template_hash = crypto::Sha256::hash(data);
  entries_.push_back(std::move(entry));
}

bool MeasurementList::has_violation() const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [](const ImaEntry& e) { return e.is_violation(); });
}

Digest MeasurementList::aggregate() const {
  Digest pcr{};  // PCR starts at zero
  for (const ImaEntry& entry : entries_) {
    crypto::Sha256 h;
    h.update(pcr);
    h.update(entry.template_hash);
    pcr = h.finish();
  }
  return pcr;
}

Bytes MeasurementList::encode() const {
  pki::TlvWriter w;
  for (const ImaEntry& entry : entries_) {
    pki::TlvWriter e;
    e.add_u32(kTagPcr, entry.pcr);
    e.add_bytes(kTagTemplateHash, entry.template_hash);
    e.add_string(kTagTemplateName, entry.template_name);
    e.add_bytes(kTagFileDigest, entry.file_digest);
    e.add_string(kTagFilePath, entry.file_path);
    w.add_bytes(kTagEntry, e.bytes());
  }
  return w.take();
}

MeasurementList MeasurementList::decode(ByteView data) {
  MeasurementList list;
  pki::TlvReader r(data);
  while (!r.done()) {
    pki::TlvReader e(r.expect(kTagEntry));
    ImaEntry entry;
    entry.pcr = e.expect_u32(kTagPcr);
    entry.template_hash = e.expect_array<32>(kTagTemplateHash);
    entry.template_name = e.expect_string(kTagTemplateName);
    entry.file_digest = e.expect_array<32>(kTagFileDigest);
    entry.file_path = e.expect_string(kTagFilePath);
    if (!e.done()) throw ParseError("ima entry: trailing data");
    list.entries_.push_back(std::move(entry));
  }
  return list;
}

}  // namespace vnfsgx::ima
