// The IMA runtime subsystem: wires the policy to filesystem events and
// maintains the measurement list, with the kernel's measurement cache
// (a file is re-measured only when its content changed).
#pragma once

#include <map>

#include "ima/filesystem.h"
#include "ima/measurement_list.h"
#include "ima/policy.h"
#include "ima/tpm.h"

namespace vnfsgx::ima {

class ImaSubsystem {
 public:
  ImaSubsystem(const SimulatedFilesystem& fs, ImaPolicy policy)
      : fs_(fs), policy_(std::move(policy)) {}

  /// Anchor measurements in a hardware root of trust: every new entry's
  /// template hash is extended into the TPM's PCR 10, exactly like the
  /// kernel's ima_pcr_extend. The TPM must outlive this subsystem.
  void attach_tpm(Tpm* tpm) { tpm_ = tpm; }
  bool tpm_attached() const { return tpm_ != nullptr; }

  /// A file event (exec/mmap/open) occurred; measure it if the policy says
  /// so. Returns true if a new measurement entry was produced.
  bool on_event(const ImaEvent& event);

  /// Convenience: root executes `path`.
  bool on_exec(const std::string& path, std::uint32_t uid = 0);

  /// Record a ToMToU violation for `path`.
  void report_violation(const std::string& path);

  const MeasurementList& list() const { return list_; }
  Digest aggregate() const { return list_.aggregate(); }

 private:
  const SimulatedFilesystem& fs_;
  ImaPolicy policy_;
  MeasurementList list_;
  std::map<std::string, Digest> cache_;  // last measured digest per path
  Tpm* tpm_ = nullptr;
};

}  // namespace vnfsgx::ima
