// Intel Attestation Service simulator.
//
// Reproduces the IAS contract the paper's Verification Manager depends on
// (steps 2 and 4 of Figure 1): platforms join an attestation group during
// provisioning (EPID join, modelled as registering the platform's
// attestation public key), verifiers submit quotes, and the service
// answers with a *signed* Attestation Verification Report whose status
// reflects signature validity and the signature revocation list.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/sim_clock.h"
#include "crypto/ed25519.h"
#include "crypto/random.h"
#include "json/json.h"
#include "sgx/structs.h"

namespace vnfsgx::ias {

enum class QuoteStatus {
  kOk,
  kSignatureInvalid,
  kGroupRevoked,
  kUnknownPlatform,
  kMalformed,
};

std::string to_string(QuoteStatus status);

/// Signed attestation verification report (the IAS response: a JSON body
/// plus a detached signature, like the X-IASReport-Signature header).
struct VerificationReport {
  std::string body_json;
  crypto::Ed25519Signature signature{};

  /// Parsed accessors over body_json.
  QuoteStatus status() const;
  std::string report_id() const;
  UnixTime timestamp() const;
  /// The quote body IAS verified, echoed base64-encoded in the report.
  sgx::ReportBody quoted_enclave() const;
  sgx::PlatformId platform_id() const;

  /// Verify the report signature against the IAS signing key.
  bool verify(const crypto::Ed25519PublicKey& ias_key) const;
};

class IasService {
 public:
  IasService(crypto::RandomSource& rng, const Clock& clock);

  /// EPID join: performed once per platform during provisioning.
  void register_platform(const sgx::PlatformId& id,
                         const crypto::Ed25519PublicKey& attestation_key);

  /// Add the platform to the signature revocation list.
  void revoke_platform(const sgx::PlatformId& id);
  bool is_revoked(const sgx::PlatformId& id) const;

  /// The attestation key registered for a platform, or nullopt when the
  /// platform is unknown or revoked. This is the trust-anchor lookup RA-TLS
  /// verifiers bind into their policy: quote appraisal happens at the
  /// relying party instead of a verify_quote round trip to the service.
  std::optional<crypto::Ed25519PublicKey> attestation_key(
      const sgx::PlatformId& id) const;

  /// Verify an encoded quote; always returns a signed report (errors are
  /// reported in the status field, as the real service does).
  VerificationReport verify_quote(ByteView quote_bytes);

  /// The report-signing public key (stand-in for the IAS report-signing
  /// certificate verifiers pin).
  const crypto::Ed25519PublicKey& report_signing_key() const {
    return signing_key_.public_key;
  }

  std::uint64_t reports_issued() const;

 private:
  VerificationReport sign_report(QuoteStatus status, ByteView quote_bytes,
                                 const sgx::Quote* quote);

  mutable std::mutex mutex_;
  crypto::RandomSource& rng_;
  const Clock& clock_;
  crypto::Ed25519KeyPair signing_key_;
  std::map<sgx::PlatformId, crypto::Ed25519PublicKey> platforms_;
  std::map<sgx::PlatformId, bool> revoked_;
  std::uint64_t next_report_id_ = 1;
};

}  // namespace vnfsgx::ias
