// REST front-end for the IAS simulator, mirroring the shape of the real
// service's /attestation/v4/report endpoint, plus a typed client.
//
// The Verification Manager talks to IAS through this API over the network
// substrate, so the attestation benchmarks include a realistic IAS
// round-trip.
#pragma once

#include "http/client.h"
#include "http/server.h"
#include "ias/service.h"

namespace vnfsgx::ias {

/// Routes:
///   POST /attestation/v4/report  {"isvEnclaveQuote": "<base64>"}
///     -> 200, AVR JSON body, X-IASReport-Signature header (base64)
///   GET  /attestation/v4/sigrl/<hex platform id> -> revocation flag
http::Router make_ias_router(IasService& service);

/// Client wrapper used by the Verification Manager.
class IasClient {
 public:
  /// `connect` opens a fresh stream to the IAS endpoint per request batch.
  using Connect = std::function<net::StreamPtr()>;

  IasClient(Connect connect, crypto::Ed25519PublicKey report_signing_key)
      : connect_(std::move(connect)),
        signing_key_(report_signing_key) {}

  /// Submit a quote; verifies the AVR signature before returning.
  /// Throws ProtocolError on transport/HTTP errors or a bad signature.
  VerificationReport verify_quote(ByteView quote_bytes);

 private:
  Connect connect_;
  crypto::Ed25519PublicKey signing_key_;
};

}  // namespace vnfsgx::ias
