// REST front-end for the IAS simulator, mirroring the shape of the real
// service's /attestation/v4/report endpoint, plus a typed client.
//
// The Verification Manager talks to IAS through this API over the network
// substrate, so the attestation benchmarks include a realistic IAS
// round-trip.
#pragma once

#include <memory>

#include "http/client.h"
#include "http/server.h"
#include "ias/service.h"

namespace vnfsgx::ias {

/// Routes:
///   POST /attestation/v4/report  {"isvEnclaveQuote": "<base64>"}
///     -> 200, AVR JSON body, X-IASReport-Signature header (base64)
///   GET  /attestation/v4/sigrl/<hex platform id> -> revocation flag
http::Router make_ias_router(IasService& service);

/// Client wrapper used by the Verification Manager.
///
/// Requests run over a keep-alive connection pool: a fleet attestation's
/// IAS round-trips reuse (and overlap on) up to `max_connections` pooled
/// connections instead of paying a fresh connect per quote. The client is
/// thread-safe; concurrent verifications are bounded by the pool window
/// and surfaced on the vnfsgx_ias_inflight gauge.
class IasClient {
 public:
  /// `connect` opens a stream to the IAS endpoint (invoked only when the
  /// pool has no idle keep-alive connection to reuse).
  using Connect = std::function<net::StreamPtr()>;

  IasClient(Connect connect, crypto::Ed25519PublicKey report_signing_key,
            std::size_t max_connections = 8);

  /// Submit a quote; verifies the AVR signature before returning.
  /// Throws ProtocolError on transport/HTTP errors or a bad signature.
  VerificationReport verify_quote(ByteView quote_bytes);

  /// Submit a quote and return the AVR *without* checking its signature:
  /// the fleet path defers that to one Ed25519 batch verification across
  /// all attestations. Callers must check avr.verify(report_signing_key())
  /// (or batch-equivalent) before trusting the report.
  VerificationReport fetch_report_unverified(ByteView quote_bytes);

  const crypto::Ed25519PublicKey& report_signing_key() const {
    return signing_key_;
  }

  /// Total IAS connections dialed (reconnect meter for tests/benches).
  std::uint64_t connections_dialed() const { return pool_->connects(); }

 private:
  std::shared_ptr<http::ClientPool> pool_;
  crypto::Ed25519PublicKey signing_key_;
};

}  // namespace vnfsgx::ias
