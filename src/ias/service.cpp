#include "ias/service.h"

#include "common/base64.h"
#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace vnfsgx::ias {

std::string to_string(QuoteStatus status) {
  switch (status) {
    case QuoteStatus::kOk:
      return "OK";
    case QuoteStatus::kSignatureInvalid:
      return "SIGNATURE_INVALID";
    case QuoteStatus::kGroupRevoked:
      return "GROUP_REVOKED";
    case QuoteStatus::kUnknownPlatform:
      return "UNKNOWN_PLATFORM";
    case QuoteStatus::kMalformed:
      return "MALFORMED_QUOTE";
  }
  return "?";
}

namespace {
QuoteStatus status_from_string(const std::string& s) {
  if (s == "OK") return QuoteStatus::kOk;
  if (s == "SIGNATURE_INVALID") return QuoteStatus::kSignatureInvalid;
  if (s == "GROUP_REVOKED") return QuoteStatus::kGroupRevoked;
  if (s == "UNKNOWN_PLATFORM") return QuoteStatus::kUnknownPlatform;
  return QuoteStatus::kMalformed;
}
}  // namespace

QuoteStatus VerificationReport::status() const {
  return status_from_string(
      json::parse(body_json).at("isvEnclaveQuoteStatus").as_string());
}

std::string VerificationReport::report_id() const {
  return json::parse(body_json).at("id").as_string();
}

UnixTime VerificationReport::timestamp() const {
  return json::parse(body_json).at("timestamp").as_int();
}

sgx::ReportBody VerificationReport::quoted_enclave() const {
  const Bytes quote_bytes =
      base64_decode(json::parse(body_json).at("isvEnclaveQuoteBody").as_string());
  return sgx::Quote::decode(quote_bytes).body;
}

sgx::PlatformId VerificationReport::platform_id() const {
  const Bytes quote_bytes =
      base64_decode(json::parse(body_json).at("isvEnclaveQuoteBody").as_string());
  return sgx::Quote::decode(quote_bytes).platform_id;
}

bool VerificationReport::verify(const crypto::Ed25519PublicKey& ias_key) const {
  return crypto::ed25519_verify(ias_key, to_bytes(body_json),
                                ByteView(signature.data(), signature.size()));
}

IasService::IasService(crypto::RandomSource& rng, const Clock& clock)
    : rng_(rng), clock_(clock), signing_key_(crypto::ed25519_generate(rng)) {}

void IasService::register_platform(
    const sgx::PlatformId& id, const crypto::Ed25519PublicKey& attestation_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  platforms_[id] = attestation_key;
  VNFSGX_LOG_INFO("ias", "platform registered (EPID join)");
}

void IasService::revoke_platform(const sgx::PlatformId& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  revoked_[id] = true;
  VNFSGX_LOG_WARN("ias", "platform added to signature revocation list");
}

bool IasService::is_revoked(const sgx::PlatformId& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = revoked_.find(id);
  return it != revoked_.end() && it->second;
}

std::optional<crypto::Ed25519PublicKey> IasService::attestation_key(
    const sgx::PlatformId& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto revoked = revoked_.find(id);
  if (revoked != revoked_.end() && revoked->second) return std::nullopt;
  const auto it = platforms_.find(id);
  if (it == platforms_.end()) return std::nullopt;
  return it->second;
}

VerificationReport IasService::verify_quote(ByteView quote_bytes) {
  sgx::Quote quote;
  try {
    quote = sgx::Quote::decode(quote_bytes);
  } catch (const ParseError&) {
    return sign_report(QuoteStatus::kMalformed, quote_bytes, nullptr);
  }

  crypto::Ed25519PublicKey attestation_key;
  bool known = false;
  bool revoked = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = platforms_.find(quote.platform_id);
    if (it != platforms_.end()) {
      known = true;
      attestation_key = it->second;
    }
    const auto rit = revoked_.find(quote.platform_id);
    revoked = rit != revoked_.end() && rit->second;
  }
  if (!known) {
    return sign_report(QuoteStatus::kUnknownPlatform, quote_bytes, &quote);
  }
  if (revoked) {
    return sign_report(QuoteStatus::kGroupRevoked, quote_bytes, &quote);
  }
  if (!crypto::ed25519_verify(attestation_key, quote.encode_tbs(),
                              ByteView(quote.signature.data(),
                                       quote.signature.size()))) {
    return sign_report(QuoteStatus::kSignatureInvalid, quote_bytes, &quote);
  }
  return sign_report(QuoteStatus::kOk, quote_bytes, &quote);
}

std::uint64_t IasService::reports_issued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_report_id_ - 1;
}

VerificationReport IasService::sign_report(QuoteStatus status,
                                           ByteView quote_bytes,
                                           const sgx::Quote* quote) {
  std::uint64_t id;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = next_report_id_++;
  }
  obs::registry()
      .counter("vnfsgx_ias_reports_total", {{"status", to_string(status)}},
               "Attestation verification reports signed by the IAS, "
               "by quote status")
      .add();
  json::Object body;
  body["id"] = "avr-" + std::to_string(id);
  body["version"] = 4;
  body["timestamp"] = static_cast<std::int64_t>(clock_.now());
  body["isvEnclaveQuoteStatus"] = to_string(status);
  // Echo the quote body (base64) so the verifier can bind the AVR to the
  // quote it submitted, like the real isvEnclaveQuoteBody field.
  const Bytes echoed = quote ? quote->encode()
                             : Bytes(quote_bytes.begin(), quote_bytes.end());
  body["isvEnclaveQuoteBody"] = base64_encode(echoed);

  VerificationReport report;
  report.body_json = json::serialize(json::Value(std::move(body)));
  report.signature =
      crypto::ed25519_sign(signing_key_.seed, to_bytes(report.body_json));
  return report;
}

}  // namespace vnfsgx::ias
