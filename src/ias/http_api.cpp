#include "ias/http_api.h"

#include "common/base64.h"
#include "common/hex.h"
#include "obs/metrics.h"

namespace vnfsgx::ias {

http::Router make_ias_router(IasService& service) {
  http::Router router;

  router.add("POST", "/attestation/v4/report",
             [&service](const http::Request& req, const http::RequestContext&) {
               json::Value body;
               try {
                 body = json::parse(vnfsgx::to_string(req.body));
               } catch (const ParseError&) {
                 return http::Response::error(400, "invalid JSON");
               }
               if (!body.contains("isvEnclaveQuote")) {
                 return http::Response::error(400, "missing isvEnclaveQuote");
               }
               Bytes quote_bytes;
               try {
                 quote_bytes =
                     base64_decode(body.at("isvEnclaveQuote").as_string());
               } catch (const std::exception&) {
                 return http::Response::error(400, "invalid base64");
               }
               const VerificationReport avr = service.verify_quote(quote_bytes);
               http::Response res = http::Response::json(200, avr.body_json);
               res.headers.set("X-IASReport-Signature",
                               base64_encode(ByteView(avr.signature.data(),
                                                      avr.signature.size())));
               return res;
             });

  router.add("GET", "/attestation/v4/sigrl/*",
             [&service](const http::Request& req, const http::RequestContext&) {
               const std::string path = req.path();
               const std::string hex_id =
                   path.substr(std::string("/attestation/v4/sigrl/").size());
               sgx::PlatformId id{};
               try {
                 const Bytes raw = from_hex(hex_id);
                 if (raw.size() != id.size()) throw ParseError("bad id");
                 std::copy(raw.begin(), raw.end(), id.begin());
               } catch (const std::exception&) {
                 return http::Response::error(400, "bad platform id");
               }
               json::Object body;
               body["revoked"] = service.is_revoked(id);
               return http::Response::json(
                   200, json::serialize(json::Value(std::move(body))));
             });

  return router;
}

IasClient::IasClient(Connect connect,
                     crypto::Ed25519PublicKey report_signing_key,
                     std::size_t max_connections)
    : pool_(std::make_shared<http::ClientPool>(
          std::move(connect),
          http::ClientPool::Options{max_connections, "ias"})),
      signing_key_(report_signing_key) {}

VerificationReport IasClient::fetch_report_unverified(ByteView quote_bytes) {
  json::Object request_body;
  request_body["isvEnclaveQuote"] = base64_encode(quote_bytes);

  http::Request req;
  req.method = "POST";
  req.target = "/attestation/v4/report";
  req.headers.set("Content-Type", "application/json");
  req.body = to_bytes(json::serialize(json::Value(std::move(request_body))));

  obs::Gauge& inflight = obs::registry().gauge(
      "vnfsgx_ias_inflight", {},
      "IAS verification round-trips currently in flight");
  inflight.add(1);
  http::Response res;
  try {
    res = pool_->request(req);
  } catch (...) {
    inflight.add(-1);
    throw;
  }
  inflight.add(-1);
  if (res.status != 200) {
    throw ProtocolError("ias: HTTP " + std::to_string(res.status));
  }
  const auto sig_header = res.headers.get("X-IASReport-Signature");
  if (!sig_header) throw ProtocolError("ias: missing report signature header");

  VerificationReport avr;
  avr.body_json = vnfsgx::to_string(res.body);
  const Bytes sig = base64_decode(*sig_header);
  if (sig.size() != avr.signature.size()) {
    throw ProtocolError("ias: bad signature length");
  }
  std::copy(sig.begin(), sig.end(), avr.signature.begin());
  return avr;
}

VerificationReport IasClient::verify_quote(ByteView quote_bytes) {
  VerificationReport avr = fetch_report_unverified(quote_bytes);
  if (!avr.verify(signing_key_)) {
    throw ProtocolError("ias: report signature verification failed");
  }
  return avr;
}

}  // namespace vnfsgx::ias
