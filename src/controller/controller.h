// Floodlight-like SDN controller.
//
// North-bound REST API (a faithful subset of Floodlight v1.2's resources)
// served in the three security modes the paper's §3 names:
//   * kHttp         — plain HTTP, no confidentiality or authentication,
//   * kHttps        — TLS with server authentication only,
//   * kTrustedHttps — TLS with client authentication ("trusted HTTPS").
// In trusted mode the controller validates client certificates against the
// Verification Manager's CA (and CRL) instead of keeping per-client keys in
// its keystore — the §3 key-management insight.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "dataplane/fabric.h"
#include "http/runtime.h"
#include "http/server.h"
#include "pki/truststore.h"
#include "tls/session.h"

namespace vnfsgx::controller {

enum class SecurityMode { kHttp, kHttps, kTrustedHttps };

std::string to_string(SecurityMode mode);

struct ControllerConfig {
  std::string name = "floodlight";
  SecurityMode mode = SecurityMode::kTrustedHttps;

  /// Server identity (required for the TLS modes).
  std::optional<pki::Certificate> certificate;
  tls::SignFunction signer;

  /// Issue TLS session tickets so returning clients resume without the
  /// certificate exchange (revoked credentials still cannot resume — the
  /// CRL is re-checked). Amortizes the trusted-HTTPS handshake cost.
  bool enable_session_tickets = false;
  std::int64_t ticket_lifetime_seconds = 600;

  /// Trusted-HTTPS only: require every client certificate to carry RA-TLS
  /// attestation evidence appraised in-handshake (set_attested_verifier
  /// must install a verifier). Plain CA certificates are rejected — the
  /// downgrade defense.
  bool require_attested_clients = false;

  const Clock* clock = nullptr;
  crypto::RandomSource* rng = nullptr;
};

struct AuditRecord {
  std::string identity;  // authenticated client CN, empty if anonymous
  std::string method;
  std::string path;
  int status = 0;
};

class Controller {
 public:
  Controller(ControllerConfig config, dataplane::Fabric& fabric);

  /// Trust the Verification Manager's CA for client authentication
  /// (replaces Floodlight's per-client keystore maintenance).
  void trust_ca(const pki::Certificate& ca_root);

  /// Install the RA-TLS appraisal hook: client certificates carrying
  /// attestation evidence are verified in-handshake against it instead of
  /// a CA chain. With a verifier installed, trusted-HTTPS mode works with
  /// NO pre-provisioned CA at all — first-contact enrollment. The verifier
  /// must outlive the controller; re-installing (policy change) invalidates
  /// cached validation verdicts.
  void set_attested_verifier(const pki::AttestedCertVerifier* verifier);

  /// Install/refresh the CA's revocation list. Cached validation verdicts
  /// from before this CRL are invalidated before the call returns.
  void update_crl(const pki::RevocationList& crl);

  /// Warm the certificate-validation cache for a burst of expected clients
  /// (e.g. the VNFs a fleet attestation just credentialed): all Ed25519
  /// signature checks fold into one batch verification, and the subsequent
  /// trusted-HTTPS handshakes hit the cache. Returns per-certificate
  /// verdicts identical to individual validation.
  std::vector<pki::VerifyResult> prevalidate_certificates(
      std::span<const pki::Certificate> certs);

  /// The controller's verifier-side trust policy (cache/flush telemetry).
  const pki::TrustStore& truststore() const { return truststore_; }

  /// Serve one connection end-to-end according to the security mode.
  /// TLS failures (bad client cert in trusted mode, etc.) terminate the
  /// connection without serving any request.
  void serve(net::StreamPtr stream);

  /// Mode-dependent session setup for the pooled server runtime: wraps a
  /// raw transport in TLS when the mode calls for it, recording the
  /// authenticated client in `ctx`. Failures are counted as rejected
  /// connections and rethrown so the runtime drops the connection.
  net::StreamPtr wrap_session(net::StreamPtr stream, http::RequestContext& ctx);

  /// Driver factory for net::ServerRuntime::listen_* — every accepted
  /// connection serves this controller's REST API under its security mode
  /// on a pooled worker instead of a dedicated thread.
  net::DriverFactory driver_factory();

  const http::Router& router() const { return router_; }
  SecurityMode mode() const { return config_.mode; }

  /// Observability for tests/benches.
  std::vector<AuditRecord> audit_log() const;
  std::uint64_t requests_served() const { return requests_.load(); }
  std::uint64_t rejected_connections() const { return rejected_.load(); }
  /// Identities enrolled through POST /wm/vnfsgx/enroll/json, in order.
  std::vector<std::string> enrolled_identities() const;

 private:
  void build_router();
  http::Response handle_summary(const http::Request&,
                                const http::RequestContext&);
  http::Response handle_switches(const http::Request&,
                                 const http::RequestContext&);
  http::Response handle_links(const http::Request&,
                              const http::RequestContext&);
  http::Response handle_push_flow(const http::Request&,
                                  const http::RequestContext&);
  http::Response handle_delete_flow(const http::Request&,
                                    const http::RequestContext&);
  http::Response handle_list_flows(const http::Request&,
                                   const http::RequestContext&);
  http::Response handle_enroll(const http::Request&,
                               const http::RequestContext&);
  void audit(const http::RequestContext& ctx, const http::Request& req,
             int status);
  bool authorize_write(const http::RequestContext& ctx) const;

  ControllerConfig config_;
  dataplane::Fabric& fabric_;
  /// Handlers run on per-connection threads; all fabric access serializes.
  mutable std::mutex fabric_mutex_;
  pki::TrustStore truststore_;
  tls::TicketKey ticket_key_;
  bool ca_trusted_ = false;
  bool attested_verifier_installed_ = false;
  http::Router router_;
  mutable std::mutex mutex_;
  std::vector<AuditRecord> audit_log_;
  std::vector<std::string> enrolled_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace vnfsgx::controller
