// Reactive forwarding (Floodlight's Forwarding/LearningSwitch module):
// consumes packet-ins from the switches, learns MAC locations, and installs
// destination-based forwarding flows so subsequent packets are handled in
// the data plane.
#pragma once

#include <cstdint>
#include <map>

#include "dataplane/fabric.h"

namespace vnfsgx::controller {

class LearningService {
 public:
  explicit LearningService(dataplane::Fabric& fabric) : fabric_(fabric) {}

  /// Drain every switch's packet-in queue once. Returns the number of
  /// flows installed this round.
  int process_packet_ins();

  /// Learned MAC table for one switch (mac -> port).
  const std::map<std::uint64_t, std::uint16_t>& mac_table(
      std::uint64_t dpid) const;

  std::uint64_t packet_ins_handled() const { return handled_; }

 private:
  dataplane::Fabric& fabric_;
  // Per-switch MAC learning tables.
  std::map<std::uint64_t, std::map<std::uint64_t, std::uint16_t>> tables_;
  std::uint64_t handled_ = 0;
  std::uint64_t flow_counter_ = 0;
};

}  // namespace vnfsgx::controller
