#include "controller/learning.h"

namespace vnfsgx::controller {

int LearningService::process_packet_ins() {
  int installed = 0;
  for (const auto& [dpid, sw] : fabric_.switches()) {
    while (auto packet_in = sw->pop_packet_in()) {
      ++handled_;
      auto& table = tables_[dpid];
      // Learn where the source lives.
      if (packet_in->packet.src_mac != 0) {
        table[packet_in->packet.src_mac] = packet_in->in_port;
      }
      // If the destination is known, install a forwarding flow so the
      // data plane handles the rest of this conversation.
      const auto dst = table.find(packet_in->packet.dst_mac);
      if (dst == table.end()) continue;  // flood (no-op in the simulator)
      dataplane::FlowEntry entry;
      entry.name = "learned-" + std::to_string(++flow_counter_);
      entry.priority = 10;  // below operator-pushed static flows
      entry.match.dst_mac = packet_in->packet.dst_mac;
      entry.action = dataplane::Action::forward(dst->second);
      sw->add_flow(entry);
      ++installed;
    }
  }
  return installed;
}

const std::map<std::uint64_t, std::uint16_t>& LearningService::mac_table(
    std::uint64_t dpid) const {
  static const std::map<std::uint64_t, std::uint16_t> kEmpty;
  const auto it = tables_.find(dpid);
  return it == tables_.end() ? kEmpty : it->second;
}

}  // namespace vnfsgx::controller
