#include "controller/controller.h"

#include "common/logging.h"
#include "json/json.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace vnfsgx::controller {

namespace {

/// Parse the staticflowpusher match/action fields shared by push & delete.
dataplane::FlowEntry flow_from_json(const json::Value& body) {
  dataplane::FlowEntry entry;
  entry.name = body.at("name").as_string();
  entry.priority = static_cast<int>(
      body.get_or("priority", json::Value(0)).as_number());
  if (body.contains("ipv4_src")) {
    entry.match.src_ip = dataplane::ipv4(body.at("ipv4_src").as_string());
  }
  if (body.contains("ipv4_dst")) {
    entry.match.dst_ip = dataplane::ipv4(body.at("ipv4_dst").as_string());
  }
  if (body.contains("tcp_dst")) {
    entry.match.dst_port =
        static_cast<std::uint16_t>(body.at("tcp_dst").as_number());
    entry.match.proto = dataplane::IpProto::kTcp;
  }
  if (body.contains("tcp_src")) {
    entry.match.src_port =
        static_cast<std::uint16_t>(body.at("tcp_src").as_number());
    entry.match.proto = dataplane::IpProto::kTcp;
  }
  if (body.contains("in_port")) {
    entry.match.in_port =
        static_cast<std::uint16_t>(body.at("in_port").as_number());
  }

  const std::string action =
      body.get_or("actions", json::Value("drop")).as_string();
  if (action.rfind("output=", 0) == 0) {
    entry.action = dataplane::Action::forward(
        static_cast<std::uint16_t>(std::stoul(action.substr(7))));
  } else if (action == "drop") {
    entry.action = dataplane::Action::drop();
  } else if (action == "controller") {
    entry.action = dataplane::Action::to_controller();
  } else {
    throw ParseError("staticflowpusher: unknown action '" + action + "'");
  }
  return entry;
}

std::uint64_t dpid_from_json(const json::Value& body) {
  return static_cast<std::uint64_t>(body.at("switch").as_number());
}

}  // namespace

std::string to_string(SecurityMode mode) {
  switch (mode) {
    case SecurityMode::kHttp:
      return "HTTP";
    case SecurityMode::kHttps:
      return "HTTPS";
    case SecurityMode::kTrustedHttps:
      return "TRUSTED_HTTPS";
  }
  return "?";
}

Controller::Controller(ControllerConfig config, dataplane::Fabric& fabric)
    : config_(std::move(config)), fabric_(fabric) {
  if (config_.mode != SecurityMode::kHttp) {
    if (!config_.certificate || !config_.signer || !config_.clock ||
        !config_.rng) {
      throw Error("controller: TLS modes require certificate/signer/clock/rng");
    }
    if (config_.enable_session_tickets) {
      ticket_key_ = tls::TicketKey::generate(*config_.rng);
    }
  }
  build_router();
}

void Controller::trust_ca(const pki::Certificate& ca_root) {
  truststore_.add_root(ca_root);
  ca_trusted_ = true;
  VNFSGX_LOG_INFO("controller", config_.name, ": trusting CA '",
                  ca_root.subject.common_name, "'");
}

void Controller::set_attested_verifier(
    const pki::AttestedCertVerifier* verifier) {
  truststore_.set_attested_verifier(verifier);
  attested_verifier_installed_ = verifier != nullptr;
  VNFSGX_LOG_INFO("controller", config_.name,
                  verifier ? ": RA-TLS attested verifier installed"
                           : ": RA-TLS attested verifier removed");
}

void Controller::update_crl(const pki::RevocationList& crl) {
  truststore_.set_crl(crl);
}

std::vector<pki::VerifyResult> Controller::prevalidate_certificates(
    std::span<const pki::Certificate> certs) {
  const UnixTime now = config_.clock ? config_.clock->now() : 0;
  return truststore_.verify_batch(certs, pki::KeyUsage::kClientAuth, now);
}

net::StreamPtr Controller::wrap_session(net::StreamPtr stream,
                                        http::RequestContext& ctx) {
  try {
    if (config_.mode == SecurityMode::kHttp) return stream;
    tls::Config tls_config;
    tls_config.certificate = config_.certificate;
    tls_config.signer = config_.signer;
    tls_config.clock = config_.clock;
    tls_config.rng = config_.rng;
    if (config_.enable_session_tickets) {
      tls_config.ticket_key = &ticket_key_;
      tls_config.ticket_lifetime_seconds = config_.ticket_lifetime_seconds;
    }
    if (config_.mode == SecurityMode::kTrustedHttps) {
      // An attested verifier replaces the CA as the client trust anchor:
      // with one installed the controller needs no pre-provisioned CA.
      if (!ca_trusted_ && !attested_verifier_installed_) {
        throw Error(
            "controller: trusted HTTPS mode requires trust_ca() or "
            "set_attested_verifier()");
      }
      tls_config.require_client_certificate = true;
      tls_config.truststore = &truststore_;
      tls_config.require_attested_peer = config_.require_attested_clients;
    }
    auto session = tls::Session::accept(std::move(stream), tls_config);
    ctx.client_identity = session->peer_identity();
    ctx.client_attested = session->peer_attested();
    // Identity + attestation verdict are recorded in the request context;
    // the parsed client certificate chain (~1 KB/connection) serves no
    // further purpose on a 100k-resident channel server.
    session->release_handshake_state();
    return session;
  } catch (const TimeoutError&) {
    throw;  // a stalled handshake is a burst timeout, not an auth failure
  } catch (const Error& e) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::registry()
        .counter("vnfsgx_controller_rejected_connections_total",
                 {{"mode", to_string(config_.mode)}},
                 "Connections dropped before serving any request "
                 "(TLS or authentication failure)")
        .add();
    VNFSGX_LOG_WARN("controller", config_.name,
                    ": connection rejected: ", e.what());
    throw;
  }
}

net::DriverFactory Controller::driver_factory() {
  return http::make_http_driver_factory(
      router_, [this](net::StreamPtr stream, http::RequestContext& ctx) {
        return wrap_session(std::move(stream), ctx);
      });
}

void Controller::serve(net::StreamPtr stream) {
  http::RequestContext ctx;
  try {
    auto session = wrap_session(std::move(stream), ctx);
    http::serve_connection(*session, router_, ctx);
  } catch (const Error&) {
    // wrap_session already metered and logged the rejection.
  }
}

bool Controller::authorize_write(const http::RequestContext& ctx) const {
  // In trusted-HTTPS mode write access requires an authenticated client;
  // the weaker modes accept anonymous writes — the exposure the paper's
  // threat model calls out.
  if (config_.mode != SecurityMode::kTrustedHttps) return true;
  return !ctx.client_identity.empty();
}

void Controller::audit(const http::RequestContext& ctx,
                       const http::Request& req, int status) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::registry()
      .counter("vnfsgx_controller_requests_total",
               {{"mode", to_string(config_.mode)}, {"method", req.method}},
               "REST requests served, by controller security mode")
      .add();
  if (status == 403) {
    obs::registry()
        .counter("vnfsgx_controller_auth_failures_total",
                 {{"mode", to_string(config_.mode)}},
                 "Write requests refused for missing client identity")
        .add();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  audit_log_.push_back(AuditRecord{ctx.client_identity, req.method,
                                   req.path(), status});
}

std::vector<AuditRecord> Controller::audit_log() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return audit_log_;
}

std::vector<std::string> Controller::enrolled_identities() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return enrolled_;
}

void Controller::build_router() {
  // Every route goes through `traced`: a step-6 rest_request span plus a
  // per-mode latency histogram around the handler.
  const auto traced = [this](http::Handler h) -> http::Handler {
    return [this, h = std::move(h)](const http::Request& r,
                                    const http::RequestContext& c) {
      obs::Histogram& duration = obs::registry().histogram(
          "vnfsgx_controller_request_duration_us",
          {{"mode", to_string(config_.mode)}}, {},
          "Controller REST handler latency, by security mode");
      obs::Span span =
          obs::tracer().start_span("rest_request", obs::kStepSecureChannel);
      span.annotate("method", r.method);
      span.annotate("path", r.path());
      const http::Response res = h(r, c);
      span.annotate("status", std::to_string(res.status));
      span.end();
      duration.observe(span.elapsed_us());
      return res;
    };
  };
  router_.add("GET", "/wm/core/controller/summary/json",
              traced([this](const http::Request& r,
                            const http::RequestContext& c) {
                return handle_summary(r, c);
              }));
  router_.add("GET", "/wm/core/controller/switches/json",
              traced([this](const http::Request& r,
                            const http::RequestContext& c) {
                return handle_switches(r, c);
              }));
  router_.add("GET", "/wm/topology/links/json",
              traced([this](const http::Request& r,
                            const http::RequestContext& c) {
                return handle_links(r, c);
              }));
  router_.add("POST", "/wm/staticflowpusher/json",
              traced([this](const http::Request& r,
                            const http::RequestContext& c) {
                return handle_push_flow(r, c);
              }));
  router_.add("DELETE", "/wm/staticflowpusher/json",
              traced([this](const http::Request& r,
                            const http::RequestContext& c) {
                return handle_delete_flow(r, c);
              }));
  router_.add("GET", "/wm/staticflowpusher/list/*",
              traced([this](const http::Request& r,
                            const http::RequestContext& c) {
                return handle_list_flows(r, c);
              }));
  router_.add("POST", "/wm/vnfsgx/enroll/json",
              traced([this](const http::Request& r,
                            const http::RequestContext& c) {
                return handle_enroll(r, c);
              }));
  // Observability endpoints (read-only; served in every security mode).
  router_.add("GET", "/metrics",
              [](const http::Request&, const http::RequestContext&) {
                return http::Response::text(200,
                                            obs::to_prometheus(obs::registry()));
              });
  router_.add("GET", "/metrics/json",
              [](const http::Request&, const http::RequestContext&) {
                return http::Response::json(
                    200, json::serialize(obs::snapshot_json(
                             obs::registry().collect(), obs::tracer().spans(),
                             "controller")));
              });
}

http::Response Controller::handle_summary(const http::Request& req,
                                          const http::RequestContext& ctx) {
  json::Object body;
  body["controller"] = config_.name;
  body["securityMode"] = to_string(config_.mode);
  {
    const std::lock_guard<std::mutex> lock(fabric_mutex_);
    body["numSwitches"] = fabric_.switches().size();
    body["numLinks"] = fabric_.links().size();
  }
  body["requestsServed"] = static_cast<std::uint64_t>(requests_.load());
  const http::Response res =
      http::Response::json(200, json::serialize(json::Value(std::move(body))));
  audit(ctx, req, res.status);
  return res;
}

http::Response Controller::handle_switches(const http::Request& req,
                                           const http::RequestContext& ctx) {
  json::Array switches;
  const std::lock_guard<std::mutex> lock(fabric_mutex_);
  for (const auto& [dpid, sw] : fabric_.switches()) {
    json::Object entry;
    entry["switchDPID"] = sw->dpid_string();
    entry["flowCount"] = sw->flows().size();
    switches.push_back(json::Value(std::move(entry)));
  }
  const http::Response res =
      http::Response::json(200, json::serialize(json::Value(std::move(switches))));
  audit(ctx, req, res.status);
  return res;
}

http::Response Controller::handle_links(const http::Request& req,
                                        const http::RequestContext& ctx) {
  json::Array links;
  const std::lock_guard<std::mutex> lock(fabric_mutex_);
  for (const auto& [a, b] : fabric_.links()) {
    json::Object entry;
    entry["src-switch"] = a.dpid;
    entry["src-port"] = a.port;
    entry["dst-switch"] = b.dpid;
    entry["dst-port"] = b.port;
    links.push_back(json::Value(std::move(entry)));
  }
  const http::Response res =
      http::Response::json(200, json::serialize(json::Value(std::move(links))));
  audit(ctx, req, res.status);
  return res;
}

http::Response Controller::handle_push_flow(const http::Request& req,
                                            const http::RequestContext& ctx) {
  if (!authorize_write(ctx)) {
    const auto res = http::Response::error(403, "client authentication required");
    audit(ctx, req, res.status);
    return res;
  }
  http::Response res;
  try {
    const json::Value body = json::parse(vnfsgx::to_string(req.body));
    const std::uint64_t dpid = dpid_from_json(body);
    const std::lock_guard<std::mutex> lock(fabric_mutex_);
    dataplane::Switch* sw = fabric_.find_switch(dpid);
    if (!sw) {
      res = http::Response::error(404, "unknown switch");
    } else {
      sw->add_flow(flow_from_json(body));
      res = http::Response::json(200, R"({"status":"Entry pushed"})");
    }
  } catch (const std::exception& e) {
    res = http::Response::error(400, "bad flow definition");
  }
  audit(ctx, req, res.status);
  return res;
}

http::Response Controller::handle_delete_flow(const http::Request& req,
                                              const http::RequestContext& ctx) {
  if (!authorize_write(ctx)) {
    const auto res = http::Response::error(403, "client authentication required");
    audit(ctx, req, res.status);
    return res;
  }
  http::Response res;
  try {
    const json::Value body = json::parse(vnfsgx::to_string(req.body));
    const std::lock_guard<std::mutex> lock(fabric_mutex_);
    dataplane::Switch* sw = fabric_.find_switch(dpid_from_json(body));
    if (!sw || !sw->remove_flow(body.at("name").as_string())) {
      res = http::Response::error(404, "no such flow");
    } else {
      res = http::Response::json(200, R"({"status":"Entry deleted"})");
    }
  } catch (const std::exception&) {
    res = http::Response::error(400, "bad request");
  }
  audit(ctx, req, res.status);
  return res;
}

http::Response Controller::handle_enroll(const http::Request& req,
                                         const http::RequestContext& ctx) {
  // First-contact enrollment: the RA-TLS handshake already attested AND
  // authenticated the caller, so the whole enrollment is this one request
  // on the same connection — no nonce/quote/certificate round trips.
  http::Response res;
  const bool accepted = ctx.client_attested && !ctx.client_identity.empty();
  if (accepted) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      enrolled_.push_back(ctx.client_identity);
    }
    json::Object body;
    body["status"] = "enrolled";
    body["identity"] = ctx.client_identity;
    res = http::Response::json(
        200, json::serialize(json::Value(std::move(body))));
  } else {
    res = http::Response::error(403, "attested client certificate required");
  }
  obs::registry()
      .counter("vnfsgx_ratls_enrollments_total",
               {{"result", accepted ? "ok" : "rejected"}},
               "First-contact RA-TLS enrollments at the controller")
      .add();
  audit(ctx, req, res.status);
  return res;
}

http::Response Controller::handle_list_flows(const http::Request& req,
                                             const http::RequestContext& ctx) {
  // Path: /wm/staticflowpusher/list/<dpid>/json
  const std::string path = req.path();
  const std::string prefix = "/wm/staticflowpusher/list/";
  http::Response res;
  try {
    std::string rest = path.substr(prefix.size());
    const auto slash = rest.find('/');
    const std::uint64_t dpid = std::stoull(rest.substr(0, slash));
    const std::lock_guard<std::mutex> lock(fabric_mutex_);
    dataplane::Switch* sw = fabric_.find_switch(dpid);
    if (!sw) {
      res = http::Response::error(404, "unknown switch");
    } else {
      json::Array flows;
      for (const auto& flow : sw->flows()) {
        json::Object entry;
        entry["name"] = flow.name;
        entry["priority"] = flow.priority;
        entry["packetCount"] = flow.packet_count;
        entry["byteCount"] = flow.byte_count;
        flows.push_back(json::Value(std::move(entry)));
      }
      res = http::Response::json(
          200, json::serialize(json::Value(std::move(flows))));
    }
  } catch (const std::exception&) {
    res = http::Response::error(400, "bad switch id");
  }
  audit(ctx, req, res.status);
  return res;
}

}  // namespace vnfsgx::controller
