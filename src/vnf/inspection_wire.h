// Fixed-layout wire structs for the zero-copy inspection hot path.
//
// The switchless ring hands frames to the enclave as a FrameDescriptor
// written directly into the ring slot's payload region: a fixed POD header
// (5-tuple, ingress port, flags, inline payload length) followed by the
// frame bytes. No TLV framing, no intermediate serialization buffer — the
// untrusted side serializes exactly once, into shared memory, and the
// verdict comes back the same way as a FrameVerdict header plus the
// matched rule name.
//
// Layout notes:
//   * Both structs are trivially copyable with no padding; offsets are
//     static_assert-pinned so the layout is part of the contract.
//   * Producer and consumer share one address space (the ring is process
//     shared memory), so fields are native-endian by design.
//   * The ring slot payload region is only byte-aligned: always memcpy
//     descriptors in and out, never reinterpret_cast (alignment UB).
//   * `frame_len` / `rule_len` deliberately do NOT reuse the ring slot's
//     field names: boundarycheck matches shared-struct fields by name, and
//     a collision would conflate the descriptor's wire rules with the
//     slot's stricter shared-memory rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "common/bytes.h"
#include "common/error.h"

namespace vnfsgx::vnf::wire {

/// Per-frame request header on the zero-copy inspection path.
///
/// boundary: wire — serialized across the enclave boundary through a ring
/// slot; length fields are untrusted inputs (boundarycheck B2) and the
/// struct must never carry secret material (B4). The consumer copies the
/// header into private memory before validating it.
struct FrameDescriptor {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t in_port = 0;
  std::uint8_t proto = 0;
  std::uint8_t frame_flags = 0;
  /// Bytes of inline frame payload following the header.
  std::uint32_t frame_len = 0;
};

inline constexpr std::size_t kFrameHeaderSize = 20;
static_assert(std::is_trivially_copyable_v<FrameDescriptor>);
static_assert(sizeof(FrameDescriptor) == kFrameHeaderSize,
              "FrameDescriptor must stay packed: the layout is the wire "
              "contract");
static_assert(offsetof(FrameDescriptor, proto) == 14);
static_assert(offsetof(FrameDescriptor, frame_len) == 16);

/// Per-frame verdict header returned in the slot's result region, followed
/// by `rule_len` bytes of matched-rule name (empty for clean frames).
///
/// boundary: wire — enclave-written, host-consumed; rule_len is validated
/// host-side before it slices the trailing name bytes (B2).
struct FrameVerdict {
  std::uint8_t verdict = 0;  // numeric InspectVerdict
  std::uint8_t cached = 0;   // 1 when served from the flow verdict cache
  std::uint16_t rule_len = 0;
};

inline constexpr std::size_t kVerdictHeaderSize = 4;
static_assert(std::is_trivially_copyable_v<FrameVerdict>);
static_assert(sizeof(FrameVerdict) == kVerdictHeaderSize);

/// Serializes header + inline payload into `out` (a ring slot's payload
/// region). Sets frame_len from `payload`; returns total bytes written.
/// Throws Error when the frame does not fit — the caller owns slot cleanup.
inline std::size_t encode_frame(const FrameDescriptor& header,
                                ByteView payload,
                                std::span<std::uint8_t> out) {
  if (out.size() < kFrameHeaderSize ||
      payload.size() > out.size() - kFrameHeaderSize) {
    throw Error("inspection wire: frame of " + std::to_string(payload.size()) +
                " bytes exceeds descriptor capacity of " +
                std::to_string(out.size() < kFrameHeaderSize
                                   ? 0
                                   : out.size() - kFrameHeaderSize));
  }
  FrameDescriptor d = header;
  d.frame_len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(out.data(), &d, kFrameHeaderSize);
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderSize, payload.data(), payload.size());
  }
  return kFrameHeaderSize + payload.size();
}

/// Copy-in-once decode: the header is memcpy'd out of `in` exactly once
/// and the inline length validated against what was actually received
/// before the payload view is formed. Returns the bounded payload view.
inline ByteView decode_frame(ByteView in, FrameDescriptor* header) {
  if (in.size() < kFrameHeaderSize) {
    throw Error("inspection wire: truncated frame descriptor");
  }
  std::memcpy(header, in.data(), kFrameHeaderSize);
  const std::size_t inline_len = header->frame_len;
  if (inline_len > in.size() - kFrameHeaderSize) {
    throw Error("inspection wire: frame_len exceeds received bytes");
  }
  return in.subspan(kFrameHeaderSize, inline_len);
}

/// Serializes a verdict + rule name into `out` (a worker scratch buffer or
/// ring result region). Returns total bytes written.
inline std::size_t encode_verdict(std::uint8_t verdict, bool cached,
                                  std::string_view rule,
                                  std::span<std::uint8_t> out) {
  if (out.size() < kVerdictHeaderSize ||
      rule.size() > out.size() - kVerdictHeaderSize ||
      rule.size() > 0xffff) {
    throw Error("inspection wire: verdict does not fit result buffer");
  }
  FrameVerdict v;
  v.verdict = verdict;
  v.cached = cached ? 1 : 0;
  v.rule_len = static_cast<std::uint16_t>(rule.size());
  std::memcpy(out.data(), &v, kVerdictHeaderSize);
  if (!rule.empty()) {
    std::memcpy(out.data() + kVerdictHeaderSize, rule.data(), rule.size());
  }
  return kVerdictHeaderSize + rule.size();
}

/// Copy-in-once decode of a verdict; returns the bounded rule-name view.
inline ByteView decode_verdict(ByteView in, FrameVerdict* header) {
  if (in.size() < kVerdictHeaderSize) {
    throw Error("inspection wire: truncated frame verdict");
  }
  std::memcpy(header, in.data(), kVerdictHeaderSize);
  const std::size_t name_len = header->rule_len;
  if (name_len > in.size() - kVerdictHeaderSize) {
    throw Error("inspection wire: rule_len exceeds received bytes");
  }
  return in.subspan(kVerdictHeaderSize, name_len);
}

}  // namespace vnfsgx::vnf::wire
