#include "vnf/inspection_rules.h"

#include <deque>
#include <map>

#include "common/error.h"
#include "pki/tlv.h"

namespace vnfsgx::vnf {

namespace {

enum : std::uint8_t {
  kTagRule = 0x01,
  kTagName = 0x02,
  kTagPattern = 0x03,
  kTagAction = 0x04,
  kTagDstPort = 0x05,
  kTagProto = 0x06,
};

}  // namespace

void RuleSet::add(InspectionRule rule) {
  if (rule.name.empty()) throw Error("inspection rules: empty rule name");
  if (rule.pattern.empty()) {
    throw Error("inspection rules: rule '" + rule.name + "' has no pattern");
  }
  if (rule.action != RuleAction::kDrop && rule.action != RuleAction::kAlert) {
    throw Error("inspection rules: rule '" + rule.name + "' has bad action");
  }
  for (auto& existing : rules_) {
    if (existing.name == rule.name) {
      existing = std::move(rule);
      return;
    }
  }
  rules_.push_back(std::move(rule));
}

Bytes RuleSet::encode() const {
  pki::TlvWriter out;
  for (const InspectionRule& rule : rules_) {
    pki::TlvWriter w;
    w.add_string(kTagName, rule.name);
    w.add_bytes(kTagPattern, rule.pattern);
    w.add_u8(kTagAction, static_cast<std::uint8_t>(rule.action));
    w.add_u32(kTagDstPort, rule.dst_port);
    w.add_u8(kTagProto, rule.proto);
    out.add_bytes(kTagRule, w.bytes());
  }
  return out.take();
}

RuleSet RuleSet::decode(ByteView blob) {
  RuleSet set;
  pki::TlvReader r(blob);
  while (!r.done()) {
    pki::TlvReader rule_reader(r.expect(kTagRule));
    InspectionRule rule;
    rule.name = rule_reader.expect_string(kTagName);
    rule.pattern = rule_reader.expect_bytes(kTagPattern);
    rule.action = static_cast<RuleAction>(rule_reader.expect_u8(kTagAction));
    const std::uint32_t port = rule_reader.expect_u32(kTagDstPort);
    if (port > 0xffff) throw ParseError("inspection rules: bad dst_port");
    rule.dst_port = static_cast<std::uint16_t>(port);
    rule.proto = rule_reader.expect_u8(kTagProto);
    set.add(std::move(rule));  // re-validates fields on the trusted side
  }
  return set;
}

// ---------------------------------------------------------------------------
// RuleMatcher (Aho-Corasick)
// ---------------------------------------------------------------------------

struct RuleMatcher::Node {
  std::map<std::uint8_t, int> next;
  int fail = 0;
  std::vector<std::size_t> outputs;  // rule indices ending at this node
};

RuleMatcher::RuleMatcher(const RuleSet& rules) : rules_(rules.rules()) {
  nodes_.emplace_back();  // root
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    int node = 0;
    for (const std::uint8_t byte : rules_[r].pattern) {
      const auto it = nodes_[node].next.find(byte);
      if (it != nodes_[node].next.end()) {
        node = it->second;
      } else {
        nodes_.emplace_back();
        const int child = static_cast<int>(nodes_.size() - 1);
        nodes_[node].next.emplace(byte, child);
        node = child;
      }
    }
    nodes_[node].outputs.push_back(r);
  }
  // BFS failure links; merge suffix outputs so one state reports every
  // pattern ending at it.
  std::deque<int> queue;
  for (const auto& [byte, child] : nodes_[0].next) queue.push_back(child);
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop_front();
    for (const auto& [byte, child] : nodes_[node].next) {
      int fail = nodes_[node].fail;
      while (fail != 0 && !nodes_[fail].next.count(byte)) {
        fail = nodes_[fail].fail;
      }
      const auto it = nodes_[fail].next.find(byte);
      if (it != nodes_[fail].next.end() && it->second != child) {
        nodes_[child].fail = it->second;
      }
      const auto& inherited = nodes_[nodes_[child].fail].outputs;
      nodes_[child].outputs.insert(nodes_[child].outputs.end(),
                                   inherited.begin(), inherited.end());
      queue.push_back(child);
    }
  }
}

RuleMatcher::~RuleMatcher() = default;

std::optional<std::size_t> RuleMatcher::match(ByteView payload,
                                              std::uint16_t dst_port,
                                              std::uint8_t proto) const {
  std::optional<std::size_t> best;
  const auto consider = [&](std::size_t rule_index) {
    const InspectionRule& rule = rules_[rule_index];
    if (rule.dst_port != 0 && rule.dst_port != dst_port) return;
    if (rule.proto != 0 && rule.proto != proto) return;
    if (!best) {
      best = rule_index;
      return;
    }
    const InspectionRule& current = rules_[*best];
    const bool rule_drops = rule.action == RuleAction::kDrop;
    const bool current_drops = current.action == RuleAction::kDrop;
    if (rule_drops != current_drops) {
      if (rule_drops) best = rule_index;
    } else if (rule_index < *best) {
      best = rule_index;
    }
  };

  int node = 0;
  for (const std::uint8_t byte : payload) {
    while (node != 0 && !nodes_[node].next.count(byte)) {
      node = nodes_[node].fail;
    }
    const auto it = nodes_[node].next.find(byte);
    node = it != nodes_[node].next.end() ? it->second : 0;
    for (const std::size_t rule_index : nodes_[node].outputs) {
      consider(rule_index);
    }
  }
  return best;
}

}  // namespace vnfsgx::vnf
