#include "vnf/inspection_enclave.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <shared_mutex>

#include "obs/metrics.h"
#include "pki/tlv.h"

namespace vnfsgx::vnf {

namespace {

enum : std::uint8_t {
  kTagSrcIp = 0x01,
  kTagDstIp = 0x02,
  kTagSrcPort = 0x03,
  kTagDstPort = 0x04,
  kTagProto = 0x05,
  kTagInPort = 0x06,
  kTagPayload = 0x07,
  kTagVerdict = 0x08,
  kTagRuleName = 0x09,
  kTagCached = 0x0a,
  kTagFlows = 0x0b,
  kTagInspected = 0x0c,
  kTagDropped = 0x0d,
  kTagAlerted = 0x0e,
  kTagCacheHits = 0x0f,
};

constexpr std::uint8_t kVerdictForward = 0;
constexpr std::uint8_t kVerdictDrop = 1;
constexpr std::uint8_t kVerdictAlert = 2;

Bytes inspection_enclave_code() {
  return to_bytes(
      "vnfsgx inspection enclave v1.1\n"
      "role: in-enclave signature-match IDS\n"
      "guarantee: rules, flow table, and verdict cache never leave\n");
}

obs::Histogram& inspection_latency(const char* mode) {
  auto& h = obs::registry().histogram(
      "vnfsgx_inspection_latency_us", {{"mode", mode}},
      obs::Histogram::latency_bounds_us(),
      "Per-frame enclave inspection latency in microseconds");
  return h;
}

// The trusted logic is shared by every worker a RingGroup runs, so all
// state is guarded: the rule table behind a reader/writer lock (installs
// are rare, matches constant), the flow table sharded by key hash so
// same-shard contention is the only serialization on the hot path, and
// the counters plain relaxed atomics.
class InspectionEnclaveLogic final : public sgx::TrustedLogic {
 public:
  Bytes handle_call(std::uint32_t opcode, ByteView input,
                    sgx::EnclaveServices& services) override {
    switch (static_cast<InspectionOp>(opcode)) {
      case kOpLoadRules:
        return load_rules(input);
      case kOpInspectPacket:
        return inspect(input);
      case kOpSealRules:
        return seal_rules(services);
      case kOpRestoreRules:
        return restore_rules(input, services);
      case kOpFlowStats:
        return flow_stats();
      case kOpResetFlows:
        clear_flows();
        return {};
      case kOpInspectFrame: {
        // Zero-copy opcode arriving over a copying path (sync/batched):
        // run the fixed-buffer handler into a local scratch.
        std::array<std::uint8_t, sgx::kMaxHostCallPayload> scratch;
        const std::size_t n = inspect_frame(input, scratch);
        return Bytes(scratch.begin(), scratch.begin() + n);
      }
    }
    throw Error("inspection enclave: unknown opcode " + std::to_string(opcode));
  }

  std::optional<std::size_t> handle_call_into(
      std::uint32_t opcode, ByteView input, std::span<std::uint8_t> out,
      sgx::EnclaveServices& services) override {
    (void)services;
    // Only the frame hot path gets the allocation-free treatment; control
    // opcodes are rare and fall back to handle_call.
    if (static_cast<InspectionOp>(opcode) != kOpInspectFrame) {
      return std::nullopt;
    }
    return inspect_frame(input, out);
  }

 private:
  // Packed 5-tuple: src_ip | dst_ip | src_port | dst_port | proto.
  using FlowKey = std::array<std::uint8_t, 13>;

  struct FlowState {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    // Verdict cache: a drop verdict is sticky for the flow's lifetime, so
    // later packets of a poisoned flow skip the matcher entirely. Clean
    // verdicts are NOT cached — a signature may start matching mid-flow.
    bool poisoned = false;
    std::string poison_rule;
  };

  static constexpr std::size_t kFlowShards = 8;
  struct FlowShard {
    std::mutex mutex;
    std::map<FlowKey, FlowState> flows;
  };

  static FlowKey make_flow_key(std::uint32_t src_ip, std::uint32_t dst_ip,
                               std::uint16_t src_port, std::uint16_t dst_port,
                               std::uint8_t proto) {
    FlowKey key{};
    key[0] = static_cast<std::uint8_t>(src_ip >> 24);
    key[1] = static_cast<std::uint8_t>(src_ip >> 16);
    key[2] = static_cast<std::uint8_t>(src_ip >> 8);
    key[3] = static_cast<std::uint8_t>(src_ip);
    key[4] = static_cast<std::uint8_t>(dst_ip >> 24);
    key[5] = static_cast<std::uint8_t>(dst_ip >> 16);
    key[6] = static_cast<std::uint8_t>(dst_ip >> 8);
    key[7] = static_cast<std::uint8_t>(dst_ip);
    key[8] = static_cast<std::uint8_t>(src_port >> 8);
    key[9] = static_cast<std::uint8_t>(src_port);
    key[10] = static_cast<std::uint8_t>(dst_port >> 8);
    key[11] = static_cast<std::uint8_t>(dst_port);
    key[12] = proto;
    return key;
  }

  FlowShard& shard_for(const FlowKey& key) {
    // FNV-1a over the packed tuple; cheap and spreads sequential flows.
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint8_t b : key) {
      h = (h ^ b) * 1099511628211ULL;
    }
    return shards_[h % kFlowShards];
  }

  Bytes load_rules(ByteView input) {
    install(RuleSet::decode(input));
    return {};
  }

  Bytes seal_rules(sgx::EnclaveServices& services) {
    std::shared_lock<std::shared_mutex> lk(rules_mutex_);
    return services.seal(sgx::SealPolicy::kMrEnclave, rules_.encode(),
                        to_bytes("inspection-rules"));
  }

  Bytes restore_rules(ByteView input, sgx::EnclaveServices& services) {
    const auto plain = services.unseal(input, to_bytes("inspection-rules"));
    if (!plain) {
      throw SecurityViolation("inspection enclave: sealed rules rejected");
    }
    install(RuleSet::decode(*plain));
    return {};
  }

  void install(RuleSet rules) {
    if (rules.empty()) {
      throw Error("inspection enclave: refusing to install empty rule set");
    }
    auto matcher = std::make_unique<RuleMatcher>(rules);
    {
      std::unique_lock<std::shared_mutex> lk(rules_mutex_);
      matcher_ = std::move(matcher);
      rules_ = std::move(rules);
    }
    clear_flows();  // verdicts cached under the old rules are stale
  }

  void clear_flows() {
    for (FlowShard& shard : shards_) {
      std::lock_guard<std::mutex> lk(shard.mutex);
      shard.flows.clear();
    }
  }

  /// The shared verdict core. Flow accounting and the sticky-drop cache
  /// run under the flow shard's lock; the matcher scan runs with only the
  /// rules reader lock held so concurrent workers scan in parallel. `emit`
  /// is invoked exactly once, while the rule-name view is still pinned by
  /// the locks, so implementations may serialize the view without copying.
  template <typename Emit>
  auto run_verdict(std::uint32_t src_ip, std::uint32_t dst_ip,
                   std::uint16_t src_port, std::uint16_t dst_port,
                   std::uint8_t proto, ByteView payload, Emit&& emit) {
    std::shared_lock<std::shared_mutex> rules_lk(rules_mutex_);
    if (!matcher_) {
      throw Error("inspection enclave: no rules loaded");
    }
    const FlowKey key =
        make_flow_key(src_ip, dst_ip, src_port, dst_port, proto);
    FlowShard& shard = shard_for(key);
    inspected_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(shard.mutex);
      FlowState& flow = shard.flows[key];
      ++flow.packets;
      flow.bytes += payload.size();
      if (flow.poisoned) {
        // Poisoned by an earlier packet: serve the sticky drop from cache.
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return emit(kVerdictDrop, true,
                    std::string_view(flow.poison_rule));
      }
    }
    if (const auto hit = matcher_->match(payload, dst_port, proto)) {
      const InspectionRule& rule = rules_.rules()[*hit];
      if (rule.action == RuleAction::kDrop) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lk(shard.mutex);
          // Re-find: a concurrent reset may have pruned the flow while the
          // matcher ran; poisoning a fresh entry would resurrect it.
          const auto it = shard.flows.find(key);
          if (it != shard.flows.end()) {
            it->second.poisoned = true;
            it->second.poison_rule = rule.name;
          }
        }
        return emit(kVerdictDrop, false, std::string_view(rule.name));
      }
      alerted_.fetch_add(1, std::memory_order_relaxed);
      return emit(kVerdictAlert, false, std::string_view(rule.name));
    }
    return emit(kVerdictForward, false, std::string_view());
  }

  Bytes inspect(ByteView input) {
    pki::TlvReader r(input);
    const std::uint32_t src_ip = r.expect_u32(kTagSrcIp);
    const std::uint32_t dst_ip = r.expect_u32(kTagDstIp);
    const std::uint32_t src_port = r.expect_u32(kTagSrcPort);
    const std::uint32_t dst_port = r.expect_u32(kTagDstPort);
    const std::uint8_t proto = r.expect_u8(kTagProto);
    (void)r.expect_u32(kTagInPort);
    const ByteView payload = r.expect(kTagPayload);
    return run_verdict(
        src_ip, dst_ip, static_cast<std::uint16_t>(src_port),
        static_cast<std::uint16_t>(dst_port), proto, payload,
        [](std::uint8_t verdict, bool cached, std::string_view rule) {
          pki::TlvWriter w;
          w.add_u8(kTagVerdict, verdict);
          w.add_string(kTagRuleName, std::string(rule));
          w.add_u8(kTagCached, cached ? 1 : 0);
          return w.take();
        });
  }

  /// The zero-copy hot path: FrameDescriptor in, FrameVerdict out, both
  /// through fixed buffers — no trusted-side allocation for clean frames.
  std::size_t inspect_frame(ByteView input, std::span<std::uint8_t> out) {
    wire::FrameDescriptor header;
    const ByteView payload = wire::decode_frame(input, &header);
    return run_verdict(
        header.src_ip, header.dst_ip, header.src_port, header.dst_port,
        header.proto, payload,
        [out](std::uint8_t verdict, bool cached, std::string_view rule) {
          return wire::encode_verdict(verdict, cached, rule, out);
        });
  }

  Bytes flow_stats() {
    std::uint64_t flow_count = 0;
    for (FlowShard& shard : shards_) {
      std::lock_guard<std::mutex> lk(shard.mutex);
      flow_count += shard.flows.size();
    }
    pki::TlvWriter w;
    w.add_u64(kTagFlows, flow_count);
    w.add_u64(kTagInspected, inspected_.load(std::memory_order_relaxed));
    w.add_u64(kTagDropped, dropped_.load(std::memory_order_relaxed));
    w.add_u64(kTagAlerted, alerted_.load(std::memory_order_relaxed));
    w.add_u64(kTagCacheHits, cache_hits_.load(std::memory_order_relaxed));
    return w.take();
  }

  // Guards rules_/matcher_ (shared: inspect/seal, exclusive: install).
  std::shared_mutex rules_mutex_;
  RuleSet rules_;
  std::unique_ptr<RuleMatcher> matcher_;
  std::array<FlowShard, kFlowShards> shards_;
  std::atomic<std::uint64_t> inspected_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> alerted_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
};

}  // namespace

sgx::EnclaveImage inspection_enclave_image() {
  sgx::EnclaveImage image;
  image.name = "inspection-enclave";
  image.code = inspection_enclave_code();
  image.attributes = 0;
  image.factory = [] { return std::make_unique<InspectionEnclaveLogic>(); };
  return image;
}

sgx::Measurement inspection_enclave_measurement() {
  return sgx::measure_image(inspection_enclave_code(), 0);
}

Bytes encode_inspect_request(const dataplane::Packet& packet,
                             std::uint16_t in_port) {
  pki::TlvWriter w;
  w.add_u32(kTagSrcIp, packet.src_ip);
  w.add_u32(kTagDstIp, packet.dst_ip);
  w.add_u32(kTagSrcPort, packet.src_port);
  w.add_u32(kTagDstPort, packet.dst_port);
  w.add_u8(kTagProto, static_cast<std::uint8_t>(packet.proto));
  w.add_u32(kTagInPort, in_port);
  w.add_bytes(kTagPayload, packet.payload);
  return w.take();
}

dataplane::InspectionOutcome decode_inspect_response(ByteView response) {
  pki::TlvReader r(response);
  const std::uint8_t verdict = r.expect_u8(kTagVerdict);
  dataplane::InspectionOutcome outcome;
  outcome.rule = r.expect_string(kTagRuleName);
  switch (verdict) {
    case kVerdictForward:
      outcome.verdict = dataplane::InspectVerdict::kForward;
      break;
    case kVerdictDrop:
      outcome.verdict = dataplane::InspectVerdict::kDrop;
      break;
    case kVerdictAlert:
      outcome.verdict = dataplane::InspectVerdict::kAlert;
      break;
    default:
      throw ParseError("inspection: bad verdict byte");
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// InspectionClient (untrusted side)
// ---------------------------------------------------------------------------

namespace {

dataplane::InspectionOutcome decode_frame_verdict(ByteView response) {
  wire::FrameVerdict header;
  const ByteView rule = wire::decode_verdict(response, &header);
  dataplane::InspectionOutcome outcome;
  switch (header.verdict) {
    case kVerdictForward:
      outcome.verdict = dataplane::InspectVerdict::kForward;
      break;
    case kVerdictDrop:
      outcome.verdict = dataplane::InspectVerdict::kDrop;
      break;
    case kVerdictAlert:
      outcome.verdict = dataplane::InspectVerdict::kAlert;
      break;
    default:
      throw ParseError("inspection: bad verdict byte");
  }
  if (!rule.empty()) {
    outcome.rule.assign(rule.begin(), rule.end());
  }
  return outcome;
}

wire::FrameDescriptor make_descriptor(const dataplane::Packet& packet,
                                      std::uint16_t in_port) {
  wire::FrameDescriptor d;
  d.src_ip = packet.src_ip;
  d.dst_ip = packet.dst_ip;
  d.src_port = packet.src_port;
  d.dst_port = packet.dst_port;
  d.in_port = in_port;
  d.proto = static_cast<std::uint8_t>(packet.proto);
  return d;
}

}  // namespace

InspectionClient::InspectionClient(std::shared_ptr<sgx::Enclave> enclave,
                                   Mode mode)
    : InspectionClient(std::move(enclave), Options{.mode = mode}) {}

InspectionClient::InspectionClient(std::shared_ptr<sgx::Enclave> enclave,
                                   Options options)
    : enclave_(std::move(enclave)), options_(options) {
  if (!enclave_) throw Error("inspection client: null enclave");
  if (options_.mode == Mode::kSwitchless) {
    sgx::RingGroupOptions group_options;
    group_options.rings = std::max<std::size_t>(options_.rings, 1);
    group_options.ring_capacity = options_.ring_capacity;
    group_options.name = "inspection";
    group_ = std::make_unique<sgx::RingGroup>(enclave_, group_options);
  }
}

InspectionClient::~InspectionClient() = default;

Bytes InspectionClient::dispatch(std::uint32_t opcode, ByteView input) {
  if (group_) return group_->call(opcode, input);
  return enclave_->call(opcode, input);
}

void InspectionClient::load_rules(const RuleSet& rules) {
  dispatch(kOpLoadRules, rules.encode());
}

Bytes InspectionClient::seal_rules() { return dispatch(kOpSealRules, {}); }

void InspectionClient::restore_rules(ByteView sealed) {
  dispatch(kOpRestoreRules, sealed);
}

dataplane::InspectionOutcome InspectionClient::inspect_frame_zero_copy(
    const dataplane::Packet& packet, std::uint16_t in_port) {
  // Serialize once, straight into the claimed ring slot: no TLV buffer, no
  // heap allocation anywhere on the submit path. The verdict comes back
  // through a stack buffer the same way.
  if (packet.payload.size() > kMaxInlineFramePayload) {
    throw Error("inspection: frame payload of " +
                std::to_string(packet.payload.size()) +
                " bytes exceeds inline descriptor capacity of " +
                std::to_string(kMaxInlineFramePayload));
  }
  sgx::RingGroup::SubmitHandle handle = group_->begin_submit(kOpInspectFrame);
  std::size_t frame_len = 0;
  try {
    frame_len = wire::encode_frame(make_descriptor(packet, in_port),
                                   packet.payload, handle.inner.payload);
  } catch (...) {
    group_->abandon(handle);
    throw;
  }
  group_->publish(handle, frame_len);
  std::array<std::uint8_t, sgx::kMaxHostCallPayload> result;
  const std::size_t n = group_->wait_into(
      sgx::RingGroup::Ticket{handle.ring, handle.inner.ticket}, result);
  return decode_frame_verdict(ByteView(result.data(), n));
}

dataplane::InspectionOutcome InspectionClient::inspect(
    const dataplane::Packet& packet, std::uint16_t in_port) {
  static const char* const kModeNames[] = {"sync", "batched", "switchless"};
  obs::Histogram& latency =
      inspection_latency(kModeNames[static_cast<int>(options_.mode)]);
  const auto start = std::chrono::steady_clock::now();
  dataplane::InspectionOutcome outcome;
  if (group_ && options_.codec == Codec::kZeroCopy) {
    outcome = inspect_frame_zero_copy(packet, in_port);
  } else {
    outcome = decode_inspect_response(
        dispatch(kOpInspectPacket, encode_inspect_request(packet, in_port)));
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  latency.observe(static_cast<double>(elapsed.count()) / 1000.0);
  return outcome;
}

std::vector<dataplane::InspectionOutcome>
InspectionClient::inspect_burst_switchless(
    std::span<const dataplane::Packet* const> packets,
    std::uint16_t in_port) {
  // Pipelined windows, one per ring: frames are striped round-robin so all
  // resident workers drain in parallel, with at most half a ring's
  // capacity outstanding per ring — never more than a ring can hold, which
  // would deadlock against our own uncollected results. Tickets are
  // collected FIFO, so `outcomes` stays positional.
  // Error path: every submitted ticket is waited on even after a failure —
  // an uncollected ticket would pin its slot forever and leak ring
  // capacity into permanent backpressure. Once anything fails (a rejected
  // job, or stop() racing the window) the burst stops decoding into
  // `outcomes`, drains the remaining in-flight tickets, and rethrows: a
  // stopped ring can therefore never surface a stale or misaligned verdict
  // for a later-submitted frame.
  std::vector<dataplane::InspectionOutcome> outcomes;
  outcomes.reserve(packets.size());
  const std::size_t ring_count = group_->rings();
  const std::size_t window =
      std::max<std::size_t>(group_->ring(0).capacity() / 2, 1);
  std::vector<sgx::RingGroup::Ticket> tickets;
  tickets.reserve(packets.size());
  std::vector<std::size_t> inflight(ring_count, 0);
  std::size_t collected = 0;
  std::exception_ptr first_error;
  std::array<std::uint8_t, sgx::kMaxHostCallPayload> result;
  auto collect_one = [&] {
    const sgx::RingGroup::Ticket t = tickets[collected++];
    --inflight[t.ring];
    try {
      if (options_.codec == Codec::kZeroCopy) {
        const std::size_t n = group_->wait_into(t, result);
        if (!first_error) {
          outcomes.push_back(
              decode_frame_verdict(ByteView(result.data(), n)));
        }
      } else {
        Bytes response = group_->wait(t);
        if (!first_error) {
          outcomes.push_back(decode_inspect_response(response));
        }
      }
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  };
  std::size_t index = 0;
  for (const dataplane::Packet* packet : packets) {
    const dataplane::Packet& p = *packet;
    const std::size_t target = index++ % ring_count;
    while (inflight[target] >= window && collected < tickets.size() &&
           !first_error) {
      collect_one();
    }
    if (first_error) break;
    try {
      if (options_.codec == Codec::kZeroCopy) {
        if (p.payload.size() > kMaxInlineFramePayload) {
          throw Error("inspection: frame payload of " +
                      std::to_string(p.payload.size()) +
                      " bytes exceeds inline descriptor capacity of " +
                      std::to_string(kMaxInlineFramePayload));
        }
        sgx::RingGroup::SubmitHandle handle =
            group_->begin_submit_on(target, kOpInspectFrame);
        std::size_t frame_len = 0;
        try {
          frame_len = wire::encode_frame(make_descriptor(p, in_port),
                                         p.payload, handle.inner.payload);
        } catch (...) {
          group_->abandon(handle);
          throw;
        }
        group_->publish(handle, frame_len);
        tickets.push_back(
            sgx::RingGroup::Ticket{handle.ring, handle.inner.ticket});
      } else {
        // Legacy TLV arm (the A/B baseline): per-frame heap encode, then
        // one more copy into the slot.
        const Bytes request = encode_inspect_request(p, in_port);
        if (request.size() > sgx::kMaxHostCallPayload) {
          throw Error("inspection: TLV request exceeds ring slot capacity");
        }
        sgx::RingGroup::SubmitHandle handle =
            group_->begin_submit_on(target, kOpInspectPacket);
        if (!request.empty()) {
          std::memcpy(handle.inner.payload.data(), request.data(),
                      request.size());
        }
        group_->publish(handle, request.size());
        tickets.push_back(
            sgx::RingGroup::Ticket{handle.ring, handle.inner.ticket});
      }
      ++inflight[target];
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      break;
    }
  }
  while (collected < tickets.size()) collect_one();
  if (first_error) std::rethrow_exception(first_error);
  return outcomes;
}

std::vector<dataplane::InspectionOutcome> InspectionClient::inspect_burst(
    std::span<const dataplane::Packet> packets, std::uint16_t in_port) {
  std::vector<const dataplane::Packet*> pointers;
  pointers.reserve(packets.size());
  for (const dataplane::Packet& p : packets) pointers.push_back(&p);
  return inspect_burst(std::span<const dataplane::Packet* const>(pointers),
                       in_port);
}

std::vector<dataplane::InspectionOutcome> InspectionClient::inspect_burst(
    std::span<const dataplane::Packet* const> packets,
    std::uint16_t in_port) {
  std::vector<dataplane::InspectionOutcome> outcomes;
  outcomes.reserve(packets.size());
  static const char* const kModeNames[] = {"sync", "batched", "switchless"};
  obs::Histogram& latency =
      inspection_latency(kModeNames[static_cast<int>(options_.mode)]);
  const auto start = std::chrono::steady_clock::now();
  switch (options_.mode) {
    case Mode::kSync:
      for (const dataplane::Packet* p : packets) {
        outcomes.push_back(inspect(*p, in_port));
      }
      // inspect() observed each frame individually; skip the amortized
      // observation below so sync frames are not double-counted.
      return outcomes;
    case Mode::kBatched: {
      std::vector<sgx::BatchCall> jobs;
      jobs.reserve(packets.size());
      for (const dataplane::Packet* p : packets) {
        jobs.push_back(sgx::BatchCall{kOpInspectPacket,
                                      encode_inspect_request(*p, in_port)});
      }
      for (const sgx::BatchResult& r : enclave_->call_batch(jobs)) {
        if (!r.ok) throw Error("inspection batch: " + r.error);
        outcomes.push_back(decode_inspect_response(r.output));
      }
      break;
    }
    case Mode::kSwitchless:
      outcomes = inspect_burst_switchless(packets, in_port);
      break;
  }
  // Batched/switchless frames share the boundary work, so record the
  // amortized per-frame latency: burst wall time divided by frame count.
  if (!packets.empty()) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    const double per_frame_us = static_cast<double>(elapsed.count()) / 1000.0 /
                                static_cast<double>(packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i) {
      latency.observe(per_frame_us);
    }
  }
  return outcomes;
}

InspectionStats InspectionClient::flow_stats() {
  const Bytes blob = dispatch(kOpFlowStats, {});
  pki::TlvReader r(blob);
  InspectionStats stats;
  stats.flows = r.expect_u64(kTagFlows);
  stats.inspected = r.expect_u64(kTagInspected);
  stats.dropped = r.expect_u64(kTagDropped);
  stats.alerted = r.expect_u64(kTagAlerted);
  stats.cache_hits = r.expect_u64(kTagCacheHits);
  return stats;
}

void InspectionClient::reset_flows() { dispatch(kOpResetFlows, {}); }

dataplane::InspectorFn InspectionClient::as_inspector() {
  return [this](const dataplane::Packet& packet, std::uint16_t in_port) {
    return inspect(packet, in_port);
  };
}

dataplane::BurstInspectorFn InspectionClient::as_burst_inspector() {
  return [this](std::span<const dataplane::Packet* const> packets,
                std::uint16_t in_port) {
    return inspect_burst(packets, in_port);
  };
}

}  // namespace vnfsgx::vnf
