#include "vnf/inspection_enclave.h"

#include <chrono>
#include <map>

#include "obs/metrics.h"
#include "pki/tlv.h"

namespace vnfsgx::vnf {

namespace {

enum : std::uint8_t {
  kTagSrcIp = 0x01,
  kTagDstIp = 0x02,
  kTagSrcPort = 0x03,
  kTagDstPort = 0x04,
  kTagProto = 0x05,
  kTagInPort = 0x06,
  kTagPayload = 0x07,
  kTagVerdict = 0x08,
  kTagRuleName = 0x09,
  kTagCached = 0x0a,
  kTagFlows = 0x0b,
  kTagInspected = 0x0c,
  kTagDropped = 0x0d,
  kTagAlerted = 0x0e,
  kTagCacheHits = 0x0f,
};

constexpr std::uint8_t kVerdictForward = 0;
constexpr std::uint8_t kVerdictDrop = 1;
constexpr std::uint8_t kVerdictAlert = 2;

Bytes inspection_enclave_code() {
  return to_bytes(
      "vnfsgx inspection enclave v1.0\n"
      "role: in-enclave signature-match IDS\n"
      "guarantee: rules, flow table, and verdict cache never leave\n");
}

obs::Histogram& inspection_latency(const char* mode) {
  auto& h = obs::registry().histogram(
      "vnfsgx_inspection_latency_us", {{"mode", mode}},
      obs::Histogram::latency_bounds_us(),
      "Per-frame enclave inspection latency in microseconds");
  return h;
}

class InspectionEnclaveLogic final : public sgx::TrustedLogic {
 public:
  Bytes handle_call(std::uint32_t opcode, ByteView input,
                    sgx::EnclaveServices& services) override {
    switch (static_cast<InspectionOp>(opcode)) {
      case kOpLoadRules:
        return load_rules(input);
      case kOpInspectPacket:
        return inspect(input);
      case kOpSealRules:
        return seal_rules(services);
      case kOpRestoreRules:
        return restore_rules(input, services);
      case kOpFlowStats:
        return flow_stats();
      case kOpResetFlows:
        flows_.clear();
        return {};
    }
    throw Error("inspection enclave: unknown opcode " + std::to_string(opcode));
  }

 private:
  // Packed 5-tuple: src_ip | dst_ip | src_port | dst_port | proto.
  using FlowKey = std::array<std::uint8_t, 13>;

  struct FlowState {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    // Verdict cache: a drop verdict is sticky for the flow's lifetime, so
    // later packets of a poisoned flow skip the matcher entirely. Clean
    // verdicts are NOT cached — a signature may start matching mid-flow.
    bool poisoned = false;
    std::string poison_rule;
  };

  Bytes load_rules(ByteView input) {
    install(RuleSet::decode(input));
    return {};
  }

  Bytes seal_rules(sgx::EnclaveServices& services) {
    return services.seal(sgx::SealPolicy::kMrEnclave, rules_.encode(),
                        to_bytes("inspection-rules"));
  }

  Bytes restore_rules(ByteView input, sgx::EnclaveServices& services) {
    const auto plain = services.unseal(input, to_bytes("inspection-rules"));
    if (!plain) {
      throw SecurityViolation("inspection enclave: sealed rules rejected");
    }
    install(RuleSet::decode(*plain));
    return {};
  }

  void install(RuleSet rules) {
    if (rules.empty()) {
      throw Error("inspection enclave: refusing to install empty rule set");
    }
    matcher_ = std::make_unique<RuleMatcher>(rules);
    rules_ = std::move(rules);
    flows_.clear();  // verdicts cached under the old rules are stale
  }

  Bytes inspect(ByteView input) {
    if (!matcher_) {
      throw Error("inspection enclave: no rules loaded");
    }
    pki::TlvReader r(input);
    const std::uint32_t src_ip = r.expect_u32(kTagSrcIp);
    const std::uint32_t dst_ip = r.expect_u32(kTagDstIp);
    const std::uint32_t src_port = r.expect_u32(kTagSrcPort);
    const std::uint32_t dst_port = r.expect_u32(kTagDstPort);
    const std::uint8_t proto = r.expect_u8(kTagProto);
    (void)r.expect_u32(kTagInPort);
    const ByteView payload = r.expect(kTagPayload);

    Bytes packed;
    append_u32(packed, src_ip);
    append_u32(packed, dst_ip);
    append_u16(packed, static_cast<std::uint16_t>(src_port));
    append_u16(packed, static_cast<std::uint16_t>(dst_port));
    append_u8(packed, proto);
    FlowKey key{};
    std::copy(packed.begin(), packed.end(), key.begin());
    FlowState& flow = flows_[key];
    ++flow.packets;
    flow.bytes += payload.size();
    ++inspected_;

    std::uint8_t verdict = kVerdictForward;
    std::string rule_name;
    bool cached = false;
    if (flow.poisoned) {
      // Poisoned by an earlier packet: serve the sticky drop from cache.
      cached = true;
      ++cache_hits_;
      ++dropped_;
      verdict = kVerdictDrop;
      rule_name = flow.poison_rule;
    } else if (const auto hit = matcher_->match(
                   payload, static_cast<std::uint16_t>(dst_port), proto)) {
      const InspectionRule& rule = rules_.rules()[*hit];
      rule_name = rule.name;
      if (rule.action == RuleAction::kDrop) {
        ++dropped_;
        verdict = kVerdictDrop;
        flow.poisoned = true;
        flow.poison_rule = rule.name;
      } else {
        ++alerted_;
        verdict = kVerdictAlert;
      }
    }

    pki::TlvWriter w;
    w.add_u8(kTagVerdict, verdict);
    w.add_string(kTagRuleName, rule_name);
    w.add_u8(kTagCached, cached ? 1 : 0);
    return w.take();
  }

  Bytes flow_stats() const {
    pki::TlvWriter w;
    w.add_u64(kTagFlows, flows_.size());
    w.add_u64(kTagInspected, inspected_);
    w.add_u64(kTagDropped, dropped_);
    w.add_u64(kTagAlerted, alerted_);
    w.add_u64(kTagCacheHits, cache_hits_);
    return w.take();
  }

  RuleSet rules_;
  std::unique_ptr<RuleMatcher> matcher_;
  std::map<FlowKey, FlowState> flows_;
  std::uint64_t inspected_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t alerted_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace

sgx::EnclaveImage inspection_enclave_image() {
  sgx::EnclaveImage image;
  image.name = "inspection-enclave";
  image.code = inspection_enclave_code();
  image.attributes = 0;
  image.factory = [] { return std::make_unique<InspectionEnclaveLogic>(); };
  return image;
}

sgx::Measurement inspection_enclave_measurement() {
  return sgx::measure_image(inspection_enclave_code(), 0);
}

Bytes encode_inspect_request(const dataplane::Packet& packet,
                             std::uint16_t in_port) {
  pki::TlvWriter w;
  w.add_u32(kTagSrcIp, packet.src_ip);
  w.add_u32(kTagDstIp, packet.dst_ip);
  w.add_u32(kTagSrcPort, packet.src_port);
  w.add_u32(kTagDstPort, packet.dst_port);
  w.add_u8(kTagProto, static_cast<std::uint8_t>(packet.proto));
  w.add_u32(kTagInPort, in_port);
  w.add_bytes(kTagPayload, packet.payload);
  return w.take();
}

dataplane::InspectionOutcome decode_inspect_response(ByteView response) {
  pki::TlvReader r(response);
  const std::uint8_t verdict = r.expect_u8(kTagVerdict);
  dataplane::InspectionOutcome outcome;
  outcome.rule = r.expect_string(kTagRuleName);
  switch (verdict) {
    case kVerdictForward:
      outcome.verdict = dataplane::InspectVerdict::kForward;
      break;
    case kVerdictDrop:
      outcome.verdict = dataplane::InspectVerdict::kDrop;
      break;
    case kVerdictAlert:
      outcome.verdict = dataplane::InspectVerdict::kAlert;
      break;
    default:
      throw ParseError("inspection: bad verdict byte");
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// InspectionClient (untrusted side)
// ---------------------------------------------------------------------------

InspectionClient::InspectionClient(std::shared_ptr<sgx::Enclave> enclave,
                                   Mode mode)
    : enclave_(std::move(enclave)), mode_(mode) {
  if (!enclave_) throw Error("inspection client: null enclave");
  if (mode_ == Mode::kSwitchless) {
    sgx::HostCallOptions options;
    options.name = "inspection";
    ring_ = std::make_unique<sgx::HostCallRing>(enclave_, options);
  }
}

InspectionClient::~InspectionClient() = default;

Bytes InspectionClient::dispatch(std::uint32_t opcode, ByteView input) {
  if (ring_) return ring_->call(opcode, input);
  return enclave_->call(opcode, input);
}

void InspectionClient::load_rules(const RuleSet& rules) {
  dispatch(kOpLoadRules, rules.encode());
}

Bytes InspectionClient::seal_rules() { return dispatch(kOpSealRules, {}); }

void InspectionClient::restore_rules(ByteView sealed) {
  dispatch(kOpRestoreRules, sealed);
}

dataplane::InspectionOutcome InspectionClient::inspect(
    const dataplane::Packet& packet, std::uint16_t in_port) {
  static const char* const kModeNames[] = {"sync", "batched", "switchless"};
  obs::Histogram& latency =
      inspection_latency(kModeNames[static_cast<int>(mode_)]);
  const auto start = std::chrono::steady_clock::now();
  const Bytes response =
      dispatch(kOpInspectPacket, encode_inspect_request(packet, in_port));
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  latency.observe(static_cast<double>(elapsed.count()) / 1000.0);
  return decode_inspect_response(response);
}

std::vector<dataplane::InspectionOutcome> InspectionClient::inspect_burst(
    std::span<const dataplane::Packet> packets, std::uint16_t in_port) {
  std::vector<dataplane::InspectionOutcome> outcomes;
  outcomes.reserve(packets.size());
  static const char* const kModeNames[] = {"sync", "batched", "switchless"};
  obs::Histogram& latency =
      inspection_latency(kModeNames[static_cast<int>(mode_)]);
  const auto start = std::chrono::steady_clock::now();
  switch (mode_) {
    case Mode::kSync:
      for (const dataplane::Packet& p : packets) {
        outcomes.push_back(inspect(p, in_port));
      }
      // inspect() observed each frame individually; skip the amortized
      // observation below so sync frames are not double-counted.
      return outcomes;
    case Mode::kBatched: {
      std::vector<sgx::BatchCall> jobs;
      jobs.reserve(packets.size());
      for (const dataplane::Packet& p : packets) {
        jobs.push_back(sgx::BatchCall{kOpInspectPacket,
                                      encode_inspect_request(p, in_port)});
      }
      for (const sgx::BatchResult& r : enclave_->call_batch(jobs)) {
        if (!r.ok) throw Error("inspection batch: " + r.error);
        outcomes.push_back(decode_inspect_response(r.output));
      }
      break;
    }
    case Mode::kSwitchless: {
      // Pipelined window: keep up to half the ring in flight so the worker
      // drains jobs while we are still enqueueing later frames. Tickets
      // are collected FIFO — never more outstanding than the ring can
      // hold, which would deadlock against our own uncollected results.
      // Error path: every submitted ticket is waited on even after a
      // failure — an uncollected ticket would pin its slot forever and
      // leak ring capacity into permanent backpressure. Once anything
      // fails (a rejected job, or stop() racing the window) the burst
      // stops decoding into `outcomes`, drains the remaining in-flight
      // tickets, and rethrows: a stopped ring can therefore never surface
      // a stale or misaligned verdict for a later-submitted frame.
      const std::size_t window = std::max<std::size_t>(ring_->capacity() / 2, 1);
      std::vector<sgx::HostCallRing::Ticket> tickets;
      tickets.reserve(packets.size());
      std::size_t collected = 0;
      std::exception_ptr first_error;
      auto collect_one = [&] {
        const sgx::HostCallRing::Ticket t = tickets[collected++];
        try {
          Bytes response = ring_->wait(t);
          if (!first_error) {
            outcomes.push_back(decode_inspect_response(response));
          }
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      };
      for (const dataplane::Packet& p : packets) {
        if (tickets.size() - collected >= window) collect_one();
        if (first_error) break;
        try {
          tickets.push_back(ring_->submit(kOpInspectPacket,
                                          encode_inspect_request(p, in_port)));
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
          break;
        }
      }
      while (collected < tickets.size()) collect_one();
      if (first_error) std::rethrow_exception(first_error);
      break;
    }
  }
  // Batched/switchless frames share the boundary work, so record the
  // amortized per-frame latency: burst wall time divided by frame count.
  if (!packets.empty()) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    const double per_frame_us = static_cast<double>(elapsed.count()) / 1000.0 /
                                static_cast<double>(packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i) {
      latency.observe(per_frame_us);
    }
  }
  return outcomes;
}

InspectionStats InspectionClient::flow_stats() {
  const Bytes blob = dispatch(kOpFlowStats, {});
  pki::TlvReader r(blob);
  InspectionStats stats;
  stats.flows = r.expect_u64(kTagFlows);
  stats.inspected = r.expect_u64(kTagInspected);
  stats.dropped = r.expect_u64(kTagDropped);
  stats.alerted = r.expect_u64(kTagAlerted);
  stats.cache_hits = r.expect_u64(kTagCacheHits);
  return stats;
}

void InspectionClient::reset_flows() { dispatch(kOpResetFlows, {}); }

dataplane::InspectorFn InspectionClient::as_inspector() {
  return [this](const dataplane::Packet& packet, std::uint16_t in_port) {
    return inspect(packet, in_port);
  };
}

}  // namespace vnfsgx::vnf
