#include "vnf/credential_client.h"

#include <cstring>

#include "obs/metrics.h"
#include "obs/span.h"
#include "pki/tlv.h"
#include "vnf/ocall.h"

namespace vnfsgx::vnf {

crypto::Ed25519PublicKey CredentialClient::generate_key() {
  const Bytes out = enclave_->call(kOpGenerateKey, {});
  if (out.size() != crypto::kEd25519PublicKeySize) {
    throw ProtocolError("credential client: bad public key size");
  }
  crypto::Ed25519PublicKey key;
  std::copy(out.begin(), out.end(), key.begin());
  return key;
}

crypto::Ed25519PublicKey CredentialClient::rotate_key() {
  const Bytes out = enclave_->call(kOpRotateKey, {});
  if (out.size() != crypto::kEd25519PublicKeySize) {
    throw ProtocolError("credential client: bad public key size");
  }
  crypto::Ed25519PublicKey key;
  std::copy(out.begin(), out.end(), key.begin());
  return key;
}

sgx::Report CredentialClient::create_report(
    const std::array<std::uint8_t, 32>& nonce, const sgx::TargetInfo& target) {
  const Bytes out =
      enclave_->call(kOpCreateReport, encode_report_request(nonce, target));
  return sgx::Report::decode(out);
}

pki::Certificate CredentialClient::issue_ratls_certificate(
    sgx::QuotingEnclave& qe, const crypto::Sha256Digest& iml_digest,
    const crypto::Ed25519PublicKey& vendor_key, std::uint64_t serial,
    const pki::DistinguishedName& subject, UnixTime not_before,
    UnixTime not_after) {
  static obs::Histogram& duration = obs::registry().histogram(
      "vnfsgx_ratls_issue_duration_us", {}, {},
      "RA-TLS certificate issuance: report ECALL + QE quote + issue ECALL");
  obs::Span span =
      obs::tracer().start_span("ratls_issue", obs::kStepQuoteVerification);
  span.annotate("subject", subject.common_name);
  const Bytes report_bytes = enclave_->call(
      kOpRatlsReport, encode_ratls_report_request(qe.target_info()));
  const sgx::Quote quote = qe.quote(sgx::Report::decode(report_bytes));
  const Bytes cert_bytes = enclave_->call(
      kOpRatlsIssue,
      encode_ratls_issue(quote.encode(), iml_digest, vendor_key, serial,
                         subject, not_before, not_after));
  span.end();
  duration.observe(span.elapsed_us());
  return pki::Certificate::decode(cert_bytes);
}

void CredentialClient::install_certificate(const pki::Certificate& cert) {
  enclave_->call(kOpInstallCertificate, cert.encode());
}

pki::Certificate CredentialClient::certificate() {
  return pki::Certificate::decode(enclave_->call(kOpGetCertificate, {}));
}

crypto::Ed25519Signature CredentialClient::sign(ByteView message) {
  const Bytes out = enclave_->call(kOpSign, message);
  if (out.size() != crypto::kEd25519SignatureSize) {
    throw ProtocolError("credential client: bad signature size");
  }
  crypto::Ed25519Signature sig;
  std::copy(out.begin(), out.end(), sig.begin());
  return sig;
}

Bytes CredentialClient::seal_state() { return enclave_->call(kOpSealState, {}); }

void CredentialClient::restore_state(ByteView blob) {
  enclave_->call(kOpRestoreState, blob);
}

void CredentialClient::tls_open(net::StreamPtr transport, UnixTime now,
                                const std::string& expected_server_name,
                                const pki::Certificate& ca_root) {
  // The enclave-terminated handshake is the §2 future-work overhead
  // question; measured separately from host-side tls_handshake spans.
  static obs::Histogram& duration = obs::registry().histogram(
      "vnfsgx_enclave_tls_open_duration_us", {}, {},
      "ECALL round-trip to open the enclave-terminated TLS session");
  obs::Span span =
      obs::tracer().start_span("enclave_tls_open", obs::kStepSecureChannel);
  span.annotate("server", expected_server_name);
  stream_token_ = OcallStreamRegistry::add(std::move(transport));
  try {
    enclave_->call(kOpTlsOpen, encode_tls_open(stream_token_, now,
                                               expected_server_name, ca_root));
  } catch (...) {
    OcallStreamRegistry::remove(stream_token_);
    stream_token_ = 0;
    span.annotate("result", "fail");
    obs::registry()
        .counter("vnfsgx_enclave_tls_sessions_total", {{"result", "fail"}},
                 "Enclave-terminated TLS sessions opened via ECALL")
        .add();
    throw;
  }
  span.annotate("result", "ok");
  span.end();
  duration.observe(span.elapsed_us());
  obs::registry()
      .counter("vnfsgx_enclave_tls_sessions_total", {{"result", "ok"}},
               "Enclave-terminated TLS sessions opened via ECALL")
      .add();
}

void CredentialClient::tls_send(ByteView data) {
  static obs::Counter& bytes_out = obs::registry().counter(
      "vnfsgx_enclave_tls_bytes_total", {{"direction", "out"}},
      "Application bytes crossing the enclave TLS ECALL boundary");
  enclave_->call(kOpTlsSend, data);
  bytes_out.add(data.size());
}

Bytes CredentialClient::tls_recv(std::size_t max) {
  static obs::Counter& bytes_in = obs::registry().counter(
      "vnfsgx_enclave_tls_bytes_total", {{"direction", "in"}},
      "Application bytes crossing the enclave TLS ECALL boundary");
  pki::TlvWriter w;
  w.add_u32(0x07, static_cast<std::uint32_t>(max));  // kTagMax
  Bytes chunk = enclave_->call(kOpTlsRecv, w.bytes());
  bytes_in.add(chunk.size());
  return chunk;
}

void CredentialClient::tls_close() {
  enclave_->call(kOpTlsClose, {});
  if (stream_token_ != 0) {
    OcallStreamRegistry::remove(stream_token_);
    stream_token_ = 0;
  }
}

std::size_t EnclaveTlsStream::read(std::span<std::uint8_t> out) {
  const Bytes chunk = client_.tls_recv(out.size());
  std::memcpy(out.data(), chunk.data(), chunk.size());
  return chunk.size();
}

}  // namespace vnfsgx::vnf
