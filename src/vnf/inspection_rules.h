// Signature rules for the in-enclave inspection NF: a named byte-pattern
// table (Snort-style content rules with optional header constraints) with a
// TLV wire form, plus a compiled Aho-Corasick multi-pattern matcher.
//
// This header deliberately stays free of enclave and dataplane types: the
// same code compiles into the trusted logic (where the rules live) and into
// provisioning tools (which only encode them).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace vnfsgx::vnf {

enum class RuleAction : std::uint8_t {
  kDrop = 1,   // discard the packet, poison the flow
  kAlert = 2,  // forward but notify the controller
};

// boundary: wire — rule blobs are provisioned across the enclave boundary
// (decoded + validated once on entry by RuleSet::decode), so only the
// secret-egress rule (boundarycheck B4) applies to these fields.
struct InspectionRule {
  std::string name;
  Bytes pattern;  // byte signature searched anywhere in the payload
  RuleAction action = RuleAction::kDrop;
  // Header constraints; zero means wildcard.
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;  // IpProto numeric value (6 tcp, 17 udp, ...)
};

/// Ordered rule table. Drop rules outrank alert rules when several patterns
/// hit the same packet; ties fall to insertion order.
class RuleSet {
 public:
  /// Add or replace (by name). Throws Error on empty name or pattern.
  void add(InspectionRule rule);
  const std::vector<InspectionRule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  Bytes encode() const;
  static RuleSet decode(ByteView blob);

 private:
  std::vector<InspectionRule> rules_;
};

/// Aho-Corasick automaton over a RuleSet: one pass over the payload finds
/// every pattern hit regardless of rule count.
class RuleMatcher {
 public:
  explicit RuleMatcher(const RuleSet& rules);
  ~RuleMatcher();
  RuleMatcher(const RuleMatcher&) = delete;
  RuleMatcher& operator=(const RuleMatcher&) = delete;

  /// Best matching rule index for this payload + headers, or nullopt if
  /// clean. Drop beats alert; earlier rules beat later ones.
  std::optional<std::size_t> match(ByteView payload, std::uint16_t dst_port,
                                   std::uint8_t proto) const;

 private:
  struct Node;
  const std::vector<InspectionRule> rules_;
  std::vector<Node> nodes_;
};

}  // namespace vnfsgx::vnf
