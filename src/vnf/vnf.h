// VNF framework: a VNF is a packet-processing function deployed in a
// container with an associated credential enclave.
#pragma once

#include <memory>
#include <string>

#include "dataplane/packet.h"
#include "host/container_host.h"
#include "vnf/credential_client.h"

namespace vnfsgx::vnf {

/// Verdict a VNF renders on a packet.
enum class Verdict { kAllow, kDrop };

/// A desired flow rule the VNF wants installed on a switch via the
/// controller's staticflowpusher (serialized to its JSON body).
struct FlowRequest {
  std::string name;
  std::uint64_t dpid = 0;
  int priority = 100;
  std::string json_body;  // full staticflowpusher body
};

/// Base class for network functions.
class NetworkFunction {
 public:
  virtual ~NetworkFunction() = default;
  virtual std::string kind() const = 0;
  virtual Verdict process(const dataplane::Packet& packet) = 0;
  /// Flow rules this function wants pushed to the forwarding plane.
  virtual std::vector<FlowRequest> desired_flows(std::uint64_t dpid) const {
    (void)dpid;
    return {};
  }
};

/// A deployed VNF: container + credential enclave + network function.
class Vnf {
 public:
  /// Deploys the VNF: pulls its image, starts the container, and loads the
  /// credential enclave on the host's SGX platform.
  Vnf(std::string name, host::ContainerHost& host,
      const crypto::Ed25519Seed& enclave_vendor_seed,
      std::unique_ptr<NetworkFunction> function);

  const std::string& name() const { return name_; }
  host::ContainerHost& host() { return host_; }
  NetworkFunction& function() { return *function_; }
  CredentialClient& credentials() { return credentials_; }
  std::shared_ptr<sgx::Enclave> enclave() { return enclave_; }
  std::shared_ptr<host::Container> container() { return container_; }

  /// Convenience: process a packet through the network function.
  Verdict process(const dataplane::Packet& packet) {
    return function_->process(packet);
  }

  /// Swap in a fresh credential enclave (container/enclave restart): the
  /// old enclave is destroyed; callers typically restore sealed state into
  /// the new one next.
  void replace_enclave(std::shared_ptr<sgx::Enclave> enclave) {
    if (enclave_) enclave_->destroy();
    enclave_ = std::move(enclave);
    credentials_ = CredentialClient(enclave_);
  }

 private:
  std::string name_;
  host::ContainerHost& host_;
  std::unique_ptr<NetworkFunction> function_;
  std::shared_ptr<host::Container> container_;
  std::shared_ptr<sgx::Enclave> enclave_;
  CredentialClient credentials_;
};

}  // namespace vnfsgx::vnf
