// Untrusted-side typed wrapper around the credential enclave's ECALLs,
// including a net::Stream adapter that tunnels application bytes through
// the in-enclave TLS session (so http::Client runs unchanged while the
// session keys stay inside the enclave).
#pragma once

#include <memory>

#include "common/sim_clock.h"
#include "net/stream.h"
#include "pki/certificate.h"
#include "sgx/platform.h"
#include "vnf/credential_enclave.h"

namespace vnfsgx::vnf {

class CredentialClient {
 public:
  explicit CredentialClient(std::shared_ptr<sgx::Enclave> enclave)
      : enclave_(std::move(enclave)) {}

  sgx::Enclave& enclave() { return *enclave_; }

  /// Generate (or fetch) the in-enclave key; returns the public half.
  crypto::Ed25519PublicKey generate_key();

  /// Discard the current key + certificate and generate a fresh keypair
  /// (key rotation); requires re-attestation + re-enrollment.
  crypto::Ed25519PublicKey rotate_key();

  /// Attestation report binding (nonce, public key).
  sgx::Report create_report(const std::array<std::uint8_t, 32>& nonce,
                            const sgx::TargetInfo& target);

  /// RA-TLS issuance: ECALL 13 for a report whose report_data binds the
  /// enclave key, quote it through the platform's QE, then ECALL 14 to
  /// self-sign + install the attestation-bound certificate in-enclave.
  /// No CA, no controller round trip — the certificate is ready to present
  /// on first contact.
  pki::Certificate issue_ratls_certificate(
      sgx::QuotingEnclave& qe, const crypto::Sha256Digest& iml_digest,
      const crypto::Ed25519PublicKey& vendor_key, std::uint64_t serial,
      const pki::DistinguishedName& subject, UnixTime not_before,
      UnixTime not_after);

  void install_certificate(const pki::Certificate& cert);
  pki::Certificate certificate();

  /// Sign with the in-enclave private key.
  crypto::Ed25519Signature sign(ByteView message);

  /// Persistence across enclave restarts.
  Bytes seal_state();
  void restore_state(ByteView blob);

  /// Open the in-enclave TLS session to the controller over `transport`
  /// (ownership transferred to the OCALL bridge; released at tls_close).
  /// Note TLS-1.3 semantics: in mutual-auth mode a server-side rejection
  /// of the client certificate can surface here *or* on the first
  /// tls_send/tls_recv, depending on timing.
  void tls_open(net::StreamPtr transport, UnixTime now,
                const std::string& expected_server_name,
                const pki::Certificate& ca_root);
  void tls_send(ByteView data);
  Bytes tls_recv(std::size_t max);
  void tls_close();

 private:
  std::shared_ptr<sgx::Enclave> enclave_;
  std::uint64_t stream_token_ = 0;
};

/// net::Stream adapter over the enclave TLS tunnel: write/read become
/// kOpTlsSend/kOpTlsRecv ECALLs carrying plaintext; the record protection
/// happens inside the enclave.
class EnclaveTlsStream final : public net::Stream {
 public:
  explicit EnclaveTlsStream(CredentialClient& client) : client_(client) {}

  void write(ByteView data) override { client_.tls_send(data); }
  std::size_t read(std::span<std::uint8_t> out) override;
  void close() override { client_.tls_close(); }

 private:
  CredentialClient& client_;
};

}  // namespace vnfsgx::vnf
