#include "vnf/vnf.h"

#include "common/logging.h"

namespace vnfsgx::vnf {

namespace {

host::ContainerImage image_for(const std::string& name,
                               const std::string& kind) {
  host::ContainerImage image;
  image.name = "vnf-" + kind + ":1.0";
  image.rootfs = to_bytes("vnf image " + kind + " v1.0");
  image.entrypoint = "/usr/bin/" + kind;
  (void)name;
  return image;
}

}  // namespace

Vnf::Vnf(std::string name, host::ContainerHost& host,
         const crypto::Ed25519Seed& enclave_vendor_seed,
         std::unique_ptr<NetworkFunction> function)
    : name_(std::move(name)),
      host_(host),
      function_(std::move(function)),
      container_(nullptr),
      enclave_(nullptr),
      credentials_(nullptr) {
  const host::ContainerImage image = image_for(name_, function_->kind());
  if (!host_.runtime().has_image(image.name)) {
    host_.runtime().pull(image);
  }
  container_ = host_.runtime().run(image.name, name_);

  const sgx::EnclaveImage enclave_image = credential_enclave_image();
  const sgx::SigStruct sig = sgx::sign_enclave(
      enclave_vendor_seed,
      sgx::measure_image(enclave_image.code, enclave_image.attributes),
      /*isv_prod_id=*/10, /*isv_svn=*/1);
  enclave_ = host_.sgx().load_enclave(enclave_image, sig);
  credentials_ = CredentialClient(enclave_);
  VNFSGX_LOG_INFO("vnf", name_, " deployed (", function_->kind(),
                  ") on host ", host_.name());
}

}  // namespace vnfsgx::vnf
