// The VNF credential enclave (TEE 1 / TEE 2 in Figure 1).
//
// Holds the VNF's authentication credentials: the private key is generated
// *inside* the enclave and never exposed — untrusted code only ever sees
// the public key, the certificate, and signatures. The enclave also
// terminates the TLS session to the controller (the paper's implementation
// choice: "the security context established for each TLS session,
// including the session key, does not leave the enclave"), doing network
// I/O through the OCALL stream bridge.
#pragma once

#include <array>
#include <memory>

#include "common/sim_clock.h"
#include "crypto/sha256.h"
#include "pki/certificate.h"
#include "sgx/enclave.h"

namespace vnfsgx::vnf {

/// ECALL opcodes of the credential enclave.
enum CredentialOp : std::uint32_t {
  /// () -> public key (32B). Generates the keypair if absent; idempotent.
  kOpGenerateKey = 1,
  /// TLV{nonce(32), target_info} -> serialized Report with
  /// report_data = SHA256(nonce || public_key) || zeros.
  kOpCreateReport = 2,
  /// certificate bytes -> (). Rejects a certificate whose subject key is
  /// not this enclave's key (SecurityViolation).
  kOpInstallCertificate = 3,
  /// () -> certificate bytes. Error if none installed.
  kOpGetCertificate = 4,
  /// message -> signature (64B). The only way to use the private key.
  kOpSign = 5,
  /// () -> sealed blob (MRENCLAVE policy) of {seed, certificate}.
  kOpSealState = 6,
  /// sealed blob -> (). Restores key + certificate after a restart.
  kOpRestoreState = 7,
  /// TLV{stream_token u64, now u64, expected_name, ca_root cert} -> ().
  /// Performs the mutually-authenticated TLS handshake over the OCALL
  /// stream; the session context stays inside the enclave.
  kOpTlsOpen = 8,
  /// plaintext -> (). Encrypts + sends on the in-enclave session.
  kOpTlsSend = 9,
  /// TLV{max u32} -> plaintext chunk (empty = EOF).
  kOpTlsRecv = 10,
  /// () -> (). Closes the in-enclave session.
  kOpTlsClose = 11,
  /// () -> new public key (32B). Credential hygiene: discards the current
  /// keypair and certificate, generating a fresh key. The VNF must be
  /// re-attested and re-enrolled afterwards.
  kOpRotateKey = 12,
  /// TLV{target_info} -> serialized Report with
  /// report_data = ratls::report_data_for_key(public_key): the quote-bound
  /// key statement the Quoting Enclave turns into RA-TLS evidence.
  kOpRatlsReport = 13,
  /// TLV{quote bytes, iml_digest, vendor_key, serial, subject, not_before,
  /// not_after} -> certificate bytes. Verifies the quote speaks for this
  /// enclave's key, then self-signs an RA-TLS certificate *inside* the
  /// enclave and installs it as the active credential.
  kOpRatlsIssue = 14,
};

/// Encoders for the structured ECALL inputs.
Bytes encode_report_request(const std::array<std::uint8_t, 32>& nonce,
                            const sgx::TargetInfo& target);
Bytes encode_tls_open(std::uint64_t stream_token, UnixTime now,
                      const std::string& expected_name,
                      const pki::Certificate& ca_root);
Bytes encode_ratls_report_request(const sgx::TargetInfo& target);
Bytes encode_ratls_issue(ByteView quote_bytes,
                         const crypto::Sha256Digest& iml_digest,
                         const crypto::Ed25519PublicKey& vendor_key,
                         std::uint64_t serial,
                         const pki::DistinguishedName& subject,
                         UnixTime not_before, UnixTime not_after);

/// report_data binding recomputed by the Verification Manager.
sgx::ReportData credential_report_data(
    const std::array<std::uint8_t, 32>& nonce,
    const crypto::Ed25519PublicKey& public_key);

/// The enclave image. All credential enclaves share this code identity, so
/// the Verification Manager can whitelist one MRENCLAVE.
sgx::EnclaveImage credential_enclave_image();
sgx::Measurement credential_enclave_measurement();

}  // namespace vnfsgx::vnf
