// In-enclave signature-match IDS NF (the first enclave-resident consumer of
// the switchless hostcall ring).
//
// Everything security-relevant lives inside the enclave: the rule table,
// the compiled matcher, the 5-tuple flow table with per-flow counters, and
// the verdict cache. Untrusted code only marshals packets in and verdicts
// out. Rule provisioning rides the sealed-credential path: kOpSealRules /
// kOpRestoreRules wrap the table with the platform seal keys, so rules are
// confidentiality-protected exactly like VNF credentials.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dataplane/switch.h"
#include "sgx/hostcall.h"
#include "vnf/inspection_rules.h"

namespace vnfsgx::vnf {

/// ECALL opcodes of the inspection enclave.
enum InspectionOp : std::uint32_t {
  /// RuleSet TLV -> (). Installs + compiles the rule table, resets flows.
  kOpLoadRules = 1,
  /// TLV{5-tuple, in_port, payload} -> TLV{verdict u8, rule, cached u8}.
  /// Throws if no rules are loaded (the dataplane then fails closed).
  kOpInspectPacket = 2,
  /// () -> sealed blob (MRENCLAVE policy) of the rule table.
  kOpSealRules = 3,
  /// sealed blob -> (). Restores a sealed rule table after a restart.
  kOpRestoreRules = 4,
  /// () -> TLV flow-table statistics snapshot.
  kOpFlowStats = 5,
  /// () -> (). Clears the flow table and verdict cache; rules stay.
  kOpResetFlows = 6,
};

/// In-enclave flow-table statistics (kOpFlowStats).
struct InspectionStats {
  std::uint64_t flows = 0;       // distinct 5-tuples seen
  std::uint64_t inspected = 0;   // packets run through the matcher or cache
  std::uint64_t dropped = 0;     // drop verdicts issued
  std::uint64_t alerted = 0;     // alert verdicts issued
  std::uint64_t cache_hits = 0;  // verdicts served from the flow cache
};

/// The enclave image (one shared MRENCLAVE for all inspection enclaves).
sgx::EnclaveImage inspection_enclave_image();
sgx::Measurement inspection_enclave_measurement();

/// Untrusted-side client: marshals packets to the enclave over one of the
/// three boundary disciplines and adapts the NF to the dataplane punt hook.
class InspectionClient {
 public:
  enum class Mode { kSync, kBatched, kSwitchless };

  /// For kSwitchless a dedicated hostcall ring (and its in-enclave worker
  /// thread) is spun up; the other modes call straight into the enclave.
  explicit InspectionClient(std::shared_ptr<sgx::Enclave> enclave,
                            Mode mode = Mode::kSync);
  ~InspectionClient();
  InspectionClient(const InspectionClient&) = delete;
  InspectionClient& operator=(const InspectionClient&) = delete;

  Mode mode() const { return mode_; }

  void load_rules(const RuleSet& rules);
  Bytes seal_rules();
  void restore_rules(ByteView sealed);

  /// Inspect one frame. Records the per-frame latency histogram.
  dataplane::InspectionOutcome inspect(const dataplane::Packet& packet,
                                       std::uint16_t in_port);

  /// Inspect a burst. kSync pays one crossing per frame, kBatched one per
  /// burst, kSwitchless keeps the whole burst in flight on the ring.
  std::vector<dataplane::InspectionOutcome> inspect_burst(
      std::span<const dataplane::Packet> packets, std::uint16_t in_port);

  InspectionStats flow_stats();
  void reset_flows();

  /// Bind this NF to Switch::set_inspector. The returned callable holds a
  /// plain reference: the client must outlive any switch it is bound to.
  dataplane::InspectorFn as_inspector();

 private:
  Bytes dispatch(std::uint32_t opcode, ByteView input);

  std::shared_ptr<sgx::Enclave> enclave_;
  Mode mode_;
  std::unique_ptr<sgx::HostCallRing> ring_;
};

/// Wire helpers, exposed for tests.
Bytes encode_inspect_request(const dataplane::Packet& packet,
                             std::uint16_t in_port);
dataplane::InspectionOutcome decode_inspect_response(ByteView response);

}  // namespace vnfsgx::vnf
