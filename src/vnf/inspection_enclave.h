// In-enclave signature-match IDS NF (the first enclave-resident consumer of
// the switchless hostcall ring).
//
// Everything security-relevant lives inside the enclave: the rule table,
// the compiled matcher, the 5-tuple flow table with per-flow counters, and
// the verdict cache. Untrusted code only marshals packets in and verdicts
// out. Rule provisioning rides the sealed-credential path: kOpSealRules /
// kOpRestoreRules wrap the table with the platform seal keys, so rules are
// confidentiality-protected exactly like VNF credentials.
//
// Two switchless wire formats coexist:
//   * kOpInspectPacket (TLV) — the PR-6 format, kept for the sync/batched
//     paths and as the A/B baseline in the boundary benchmarks.
//   * kOpInspectFrame (FrameDescriptor) — the zero-copy hot path: a fixed
//     POD header + inline frame bytes serialized once, directly into the
//     ring slot, with the verdict returned in place (inspection_wire.h).
// The trusted logic is thread-safe: a RingGroup runs one resident worker
// per ring, all dispatching into the same rule table and flow shards.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dataplane/switch.h"
#include "sgx/hostcall.h"
#include "vnf/inspection_rules.h"
#include "vnf/inspection_wire.h"

namespace vnfsgx::vnf {

/// ECALL opcodes of the inspection enclave.
enum InspectionOp : std::uint32_t {
  /// RuleSet TLV -> (). Installs + compiles the rule table, resets flows.
  kOpLoadRules = 1,
  /// TLV{5-tuple, in_port, payload} -> TLV{verdict u8, rule, cached u8}.
  /// Throws if no rules are loaded (the dataplane then fails closed).
  kOpInspectPacket = 2,
  /// () -> sealed blob (MRENCLAVE policy) of the rule table.
  kOpSealRules = 3,
  /// sealed blob -> (). Restores a sealed rule table after a restart.
  kOpRestoreRules = 4,
  /// () -> TLV flow-table statistics snapshot.
  kOpFlowStats = 5,
  /// () -> (). Clears the flow table and verdict cache; rules stay.
  kOpResetFlows = 6,
  /// FrameDescriptor + inline payload -> FrameVerdict + rule name. The
  /// zero-copy switchless path; same semantics as kOpInspectPacket.
  kOpInspectFrame = 7,
};

/// Largest frame payload the zero-copy path can inline in one ring slot.
/// Comfortably above a 1500-byte MTU frame; larger payloads are rejected
/// at the untrusted gate (the dataplane then fails closed).
inline constexpr std::size_t kMaxInlineFramePayload =
    sgx::kMaxHostCallPayload - wire::kFrameHeaderSize;

/// In-enclave flow-table statistics (kOpFlowStats).
struct InspectionStats {
  std::uint64_t flows = 0;       // distinct 5-tuples seen
  std::uint64_t inspected = 0;   // packets run through the matcher or cache
  std::uint64_t dropped = 0;     // drop verdicts issued
  std::uint64_t alerted = 0;     // alert verdicts issued
  std::uint64_t cache_hits = 0;  // verdicts served from the flow cache
};

/// The enclave image (one shared MRENCLAVE for all inspection enclaves).
sgx::EnclaveImage inspection_enclave_image();
sgx::Measurement inspection_enclave_measurement();

/// Untrusted-side client: marshals packets to the enclave over one of the
/// three boundary disciplines and adapts the NF to the dataplane punt hook.
class InspectionClient {
 public:
  enum class Mode { kSync, kBatched, kSwitchless };

  /// Wire format used on the switchless hot path. kTlv is the PR-6 format
  /// (per-frame TLV encode into a heap buffer, then copied into the slot);
  /// kZeroCopy serializes the FrameDescriptor straight into the slot.
  enum class Codec { kTlv, kZeroCopy };

  struct Options {
    Mode mode = Mode::kSync;
    /// Hostcall rings — one resident enclave worker each (switchless only).
    std::size_t rings = 1;
    /// Per-ring slot count.
    std::size_t ring_capacity = 128;
    Codec codec = Codec::kZeroCopy;
  };

  /// For kSwitchless a RingGroup (and its in-enclave worker threads) is
  /// spun up; the other modes call straight into the enclave.
  explicit InspectionClient(std::shared_ptr<sgx::Enclave> enclave,
                            Mode mode = Mode::kSync);
  InspectionClient(std::shared_ptr<sgx::Enclave> enclave, Options options);
  ~InspectionClient();
  InspectionClient(const InspectionClient&) = delete;
  InspectionClient& operator=(const InspectionClient&) = delete;

  Mode mode() const { return options_.mode; }
  Codec codec() const { return options_.codec; }
  std::size_t rings() const { return group_ ? group_->rings() : 0; }

  void load_rules(const RuleSet& rules);
  Bytes seal_rules();
  void restore_rules(ByteView sealed);

  /// Inspect one frame. Records the per-frame latency histogram.
  dataplane::InspectionOutcome inspect(const dataplane::Packet& packet,
                                       std::uint16_t in_port);

  /// Inspect a burst. kSync pays one crossing per frame, kBatched one per
  /// burst, kSwitchless stripes the burst round-robin across the rings
  /// with a bounded in-flight window per ring. Outcomes are positional.
  std::vector<dataplane::InspectionOutcome> inspect_burst(
      std::span<const dataplane::Packet> packets, std::uint16_t in_port);

  /// Pointer-burst variant (the Switch punt path hands the non-contiguous
  /// punted subset this way; frames are never copied to regroup them).
  std::vector<dataplane::InspectionOutcome> inspect_burst(
      std::span<const dataplane::Packet* const> packets,
      std::uint16_t in_port);

  InspectionStats flow_stats();
  void reset_flows();

  /// Bind this NF to Switch::set_inspector. The returned callable holds a
  /// plain reference: the client must outlive any switch it is bound to.
  dataplane::InspectorFn as_inspector();

  /// Bind to Switch::set_burst_inspector: the whole punted burst rides the
  /// ring group in one pipelined window. Same lifetime rule as above.
  dataplane::BurstInspectorFn as_burst_inspector();

 private:
  Bytes dispatch(std::uint32_t opcode, ByteView input);
  dataplane::InspectionOutcome inspect_frame_zero_copy(
      const dataplane::Packet& packet, std::uint16_t in_port);
  std::vector<dataplane::InspectionOutcome> inspect_burst_switchless(
      std::span<const dataplane::Packet* const> packets,
      std::uint16_t in_port);

  std::shared_ptr<sgx::Enclave> enclave_;
  Options options_;
  std::unique_ptr<sgx::RingGroup> group_;
};

/// Wire helpers, exposed for tests.
Bytes encode_inspect_request(const dataplane::Packet& packet,
                             std::uint16_t in_port);
dataplane::InspectionOutcome decode_inspect_response(ByteView response);

}  // namespace vnfsgx::vnf
