#include "vnf/credential_enclave.h"

#include "crypto/sha256.h"
#include "pki/tlv.h"
#include "pki/truststore.h"
#include "ratls/evidence.h"
#include "ratls/issue.h"
#include "tls/session.h"
#include "vnf/ocall.h"

namespace vnfsgx::vnf {

namespace {

enum : std::uint8_t {
  kTagNonce = 0x01,
  kTagTargetInfo = 0x02,
  kTagStreamToken = 0x03,
  kTagNow = 0x04,
  kTagExpectedName = 0x05,
  kTagCaRoot = 0x06,
  kTagMax = 0x07,
  kTagSeed = 0x08,
  kTagCert = 0x09,
  kTagQuote = 0x0a,
  kTagImlDigest = 0x0b,
  kTagVendorKey = 0x0c,
  kTagSerial = 0x0d,
  kTagSubjectCn = 0x0e,
  kTagSubjectOrg = 0x0f,
  kTagNotBefore = 0x10,
  kTagNotAfter = 0x11,
};

Bytes credential_enclave_code() {
  return to_bytes(
      "vnfsgx credential enclave v1.0\n"
      "role: in-enclave VNF credential store + TLS endpoint\n"
      "guarantee: private key and TLS session keys never leave\n");
}

/// Wraps an OCALL stream token as a net::Stream the in-enclave TLS client
/// can use. Throws if untrusted code unregistered the transport.
class OcallStream final : public net::Stream {
 public:
  explicit OcallStream(std::uint64_t token) : token_(token) {}

  void write(ByteView data) override { resolve().write(data); }
  std::size_t read(std::span<std::uint8_t> out) override {
    return resolve().read(out);
  }
  void close() override {
    net::Stream* s = OcallStreamRegistry::get(token_);
    if (s) s->close();
  }

 private:
  net::Stream& resolve() {
    net::Stream* s = OcallStreamRegistry::get(token_);
    if (!s) throw IoError("ocall stream: transport unregistered");
    return *s;
  }
  std::uint64_t token_;
};

/// RandomSource adapter over the in-enclave RNG service.
class ServicesRng final : public crypto::RandomSource {
 public:
  explicit ServicesRng(sgx::EnclaveServices& services) : services_(services) {}
  void fill(std::span<std::uint8_t> out) override { services_.read_rand(out); }

 private:
  sgx::EnclaveServices& services_;
};

/// Clock adapter for a timestamp passed through the ECALL (sgx_get_trusted
/// _time equivalent: the enclave trusts the value only for certificate
/// validity checks, same as the prototype).
class FixedClock final : public Clock {
 public:
  explicit FixedClock(UnixTime now) : now_(now) {}
  UnixTime now() const override { return now_; }

 private:
  UnixTime now_;
};

class CredentialEnclaveLogic final : public sgx::TrustedLogic {
 public:
  Bytes handle_call(std::uint32_t opcode, ByteView input,
                    sgx::EnclaveServices& services) override {
    switch (static_cast<CredentialOp>(opcode)) {
      case kOpGenerateKey:
        return generate_key(services);
      case kOpCreateReport:
        return create_report(input, services);
      case kOpInstallCertificate:
        return install_certificate(input, services);
      case kOpGetCertificate:
        return get_certificate(services);
      case kOpSign:
        return sign(input, services);
      case kOpSealState:
        return seal_state(services);
      case kOpRestoreState:
        return restore_state(input, services);
      case kOpTlsOpen:
        return tls_open(input, services);
      case kOpTlsSend:
        return tls_send(input);
      case kOpTlsRecv:
        return tls_recv(input);
      case kOpTlsClose:
        return tls_close();
      case kOpRotateKey:
        return rotate_key(services);
      case kOpRatlsReport:
        return ratls_report(input, services);
      case kOpRatlsIssue:
        return ratls_issue(input, services);
    }
    throw Error("credential enclave: unknown opcode " + std::to_string(opcode));
  }

 private:
  Zeroizing<crypto::Ed25519Seed> seed_from_vault(
      sgx::EnclaveServices& services) {
    const Bytes& seed_bytes = services.vault().load("seed");
    Zeroizing<crypto::Ed25519Seed> seed;
    std::copy(seed_bytes.begin(), seed_bytes.end(), seed.begin());
    return seed;
  }

  Bytes generate_key(sgx::EnclaveServices& services) {
    if (!services.vault().contains("seed")) {
      Zeroizing<crypto::Ed25519Seed> seed;
      services.read_rand(seed);
      services.vault().store("seed", Bytes(seed.begin(), seed.end()));
    }
    const auto pub = crypto::ed25519_public_key(seed_from_vault(services));
    return Bytes(pub.begin(), pub.end());
  }

  Bytes create_report(ByteView input, sgx::EnclaveServices& services) {
    pki::TlvReader r(input);
    const auto nonce = r.expect_array<32>(kTagNonce);
    const sgx::TargetInfo target =
        sgx::TargetInfo::decode(r.expect(kTagTargetInfo));
    if (!services.vault().contains("seed")) {
      throw Error("credential enclave: no key generated yet");
    }
    const auto pub = crypto::ed25519_public_key(seed_from_vault(services));
    const sgx::Report report =
        services.create_report(target, credential_report_data(nonce, pub));
    return report.encode();
  }

  Bytes install_certificate(ByteView input, sgx::EnclaveServices& services) {
    const pki::Certificate cert = pki::Certificate::decode(input);
    if (!services.vault().contains("seed")) {
      throw Error("credential enclave: no key generated yet");
    }
    const auto pub = crypto::ed25519_public_key(seed_from_vault(services));
    if (cert.public_key != pub) {
      throw SecurityViolation(
          "credential enclave: certificate key does not match enclave key");
    }
    services.vault().store("cert", cert.encode());
    return {};
  }

  Bytes get_certificate(sgx::EnclaveServices& services) {
    if (!services.vault().contains("cert")) {
      throw Error("credential enclave: no certificate installed");
    }
    return services.vault().load("cert");
  }

  Bytes sign(ByteView input, sgx::EnclaveServices& services) {
    if (!services.vault().contains("seed")) {
      throw Error("credential enclave: no key generated yet");
    }
    const auto sig = crypto::ed25519_sign(seed_from_vault(services), input);
    return Bytes(sig.begin(), sig.end());
  }

  Bytes seal_state(sgx::EnclaveServices& services) {
    pki::TlvWriter w;
    w.add_bytes(kTagSeed, services.vault().load("seed"));
    if (services.vault().contains("cert")) {
      w.add_bytes(kTagCert, services.vault().load("cert"));
    }
    return services.seal(sgx::SealPolicy::kMrEnclave, w.bytes(),
                         to_bytes("credential-state"));
  }

  Bytes restore_state(ByteView input, sgx::EnclaveServices& services) {
    const auto plain = services.unseal(input, to_bytes("credential-state"));
    if (!plain) {
      throw SecurityViolation("credential enclave: sealed state rejected");
    }
    pki::TlvReader r(*plain);
    services.vault().store("seed", r.expect_bytes(kTagSeed));
    if (!r.done()) {
      services.vault().store("cert", r.expect_bytes(kTagCert));
    }
    return {};
  }

  Bytes tls_open(ByteView input, sgx::EnclaveServices& services) {
    pki::TlvReader r(input);
    const std::uint64_t token = r.expect_u64(kTagStreamToken);
    const UnixTime now = static_cast<UnixTime>(r.expect_u64(kTagNow));
    const std::string expected_name = r.expect_string(kTagExpectedName);
    const pki::Certificate ca_root =
        pki::Certificate::decode(r.expect(kTagCaRoot));

    if (!services.vault().contains("cert")) {
      throw Error("credential enclave: no certificate installed");
    }
    truststore_ = std::make_unique<pki::TrustStore>();
    truststore_->add_root(ca_root);
    clock_ = std::make_unique<FixedClock>(now);
    rng_ = std::make_unique<ServicesRng>(services);
    Zeroizing<crypto::Ed25519Seed> seed = seed_from_vault(services);

    tls::Config config;
    config.certificate =
        pki::Certificate::decode(services.vault().load("cert"));
    // The signer closes over the seed *inside the enclave*; the private
    // key is never marshalled out, and the closure's copy wipes itself.
    config.signer = [seed = std::move(seed)](ByteView data) {
      return crypto::ed25519_sign(seed, data);
    };
    config.truststore = truststore_.get();
    config.expected_server_name = expected_name;
    config.clock = clock_.get();
    config.rng = rng_.get();

    session_ = tls::Session::connect(std::make_unique<OcallStream>(token),
                                     config);
    return {};
  }

  Bytes tls_send(ByteView input) {
    require_session();
    session_->write(input);
    return {};
  }

  Bytes tls_recv(ByteView input) {
    require_session();
    pki::TlvReader r(input);
    const std::uint32_t max = r.expect_u32(kTagMax);
    Bytes out(std::min<std::uint32_t>(max, 1 << 20));
    const std::size_t n = session_->read(out);
    out.resize(n);
    return out;
  }

  Bytes tls_close() {
    if (session_) {
      session_->close();
      session_.reset();
    }
    return {};
  }

  Bytes ratls_report(ByteView input, sgx::EnclaveServices& services) {
    pki::TlvReader r(input);
    const sgx::TargetInfo target =
        sgx::TargetInfo::decode(r.expect(kTagTargetInfo));
    if (!services.vault().contains("seed")) {
      throw Error("credential enclave: no key generated yet");
    }
    const auto pub = crypto::ed25519_public_key(seed_from_vault(services));
    const sgx::Report report =
        services.create_report(target, ratls::report_data_for_key(pub));
    return report.encode();
  }

  Bytes ratls_issue(ByteView input, sgx::EnclaveServices& services) {
    pki::TlvReader r(input);
    const Bytes quote_bytes = r.expect_bytes(kTagQuote);
    ratls::Evidence evidence;
    evidence.quote = sgx::Quote::decode(quote_bytes);
    evidence.iml_digest = r.expect_array<crypto::kSha256DigestSize>(
        kTagImlDigest);
    evidence.vendor_key =
        r.expect_array<crypto::kEd25519PublicKeySize>(kTagVendorKey);
    evidence.isv_prod_id = evidence.quote.body.isv_prod_id;
    evidence.isv_svn = evidence.quote.body.isv_svn;

    ratls::CertificateSpec spec;
    spec.serial = r.expect_u64(kTagSerial);
    spec.subject.common_name = r.expect_string(kTagSubjectCn);
    spec.subject.organization = r.expect_string(kTagSubjectOrg);
    spec.not_before = static_cast<UnixTime>(r.expect_u64(kTagNotBefore));
    spec.not_after = static_cast<UnixTime>(r.expect_u64(kTagNotAfter));

    if (!services.vault().contains("seed")) {
      throw Error("credential enclave: no key generated yet");
    }
    Zeroizing<crypto::Ed25519Seed> seed = seed_from_vault(services);
    const auto pub = crypto::ed25519_public_key(seed);
    // The quote must speak for THIS enclave's key: untrusted code supplied
    // it, and binding someone else's quote to our key (or ours to theirs)
    // must not produce a certificate.
    if (evidence.quote.body.report_data != ratls::report_data_for_key(pub)) {
      throw SecurityViolation(
          "credential enclave: quote does not bind this enclave's key");
    }
    const pki::Certificate cert = ratls::make_certificate(
        spec, pub, evidence,
        [&seed](ByteView data) { return crypto::ed25519_sign(seed, data); });
    services.vault().store("cert", cert.encode());
    return cert.encode();
  }

  Bytes rotate_key(sgx::EnclaveServices& services) {
    // Any live session was established under the old credential; drop it.
    tls_close();
    services.vault().erase("seed");
    services.vault().erase("cert");
    return generate_key(services);
  }

  void require_session() {
    if (!session_) throw Error("credential enclave: no TLS session open");
  }

  // In-enclave TLS state: session keys live and die here.
  std::unique_ptr<pki::TrustStore> truststore_;
  std::unique_ptr<FixedClock> clock_;
  std::unique_ptr<ServicesRng> rng_;
  std::unique_ptr<tls::Session> session_;
};

}  // namespace

Bytes encode_report_request(const std::array<std::uint8_t, 32>& nonce,
                            const sgx::TargetInfo& target) {
  pki::TlvWriter w;
  w.add_bytes(kTagNonce, nonce);
  w.add_bytes(kTagTargetInfo, target.encode());
  return w.take();
}

Bytes encode_tls_open(std::uint64_t stream_token, UnixTime now,
                      const std::string& expected_name,
                      const pki::Certificate& ca_root) {
  pki::TlvWriter w;
  w.add_u64(kTagStreamToken, stream_token);
  w.add_u64(kTagNow, static_cast<std::uint64_t>(now));
  w.add_string(kTagExpectedName, expected_name);
  w.add_bytes(kTagCaRoot, ca_root.encode());
  return w.take();
}

Bytes encode_ratls_report_request(const sgx::TargetInfo& target) {
  pki::TlvWriter w;
  w.add_bytes(kTagTargetInfo, target.encode());
  return w.take();
}

Bytes encode_ratls_issue(ByteView quote_bytes,
                         const crypto::Sha256Digest& iml_digest,
                         const crypto::Ed25519PublicKey& vendor_key,
                         std::uint64_t serial,
                         const pki::DistinguishedName& subject,
                         UnixTime not_before, UnixTime not_after) {
  pki::TlvWriter w;
  w.add_bytes(kTagQuote, quote_bytes);
  w.add_bytes(kTagImlDigest, iml_digest);
  w.add_bytes(kTagVendorKey, vendor_key);
  w.add_u64(kTagSerial, serial);
  w.add_string(kTagSubjectCn, subject.common_name);
  w.add_string(kTagSubjectOrg, subject.organization);
  w.add_u64(kTagNotBefore, static_cast<std::uint64_t>(not_before));
  w.add_u64(kTagNotAfter, static_cast<std::uint64_t>(not_after));
  return w.take();
}

sgx::ReportData credential_report_data(
    const std::array<std::uint8_t, 32>& nonce,
    const crypto::Ed25519PublicKey& public_key) {
  crypto::Sha256 h;
  h.update(nonce);
  h.update(public_key);
  const auto digest = h.finish();
  sgx::ReportData data{};
  std::copy(digest.begin(), digest.end(), data.begin());
  return data;
}

sgx::EnclaveImage credential_enclave_image() {
  sgx::EnclaveImage image;
  image.name = "credential-enclave";
  image.code = credential_enclave_code();
  image.attributes = 0;
  image.factory = [] { return std::make_unique<CredentialEnclaveLogic>(); };
  return image;
}

sgx::Measurement credential_enclave_measurement() {
  return sgx::measure_image(credential_enclave_code(), 0);
}

}  // namespace vnfsgx::vnf
