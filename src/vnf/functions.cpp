#include "vnf/functions.h"

#include "json/json.h"

namespace vnfsgx::vnf {

namespace {

std::string flow_body(const std::string& name, std::uint64_t dpid,
                      int priority, json::Object match_and_action) {
  json::Object body = std::move(match_and_action);
  body["name"] = name;
  body["switch"] = dpid;
  body["priority"] = priority;
  return json::serialize(json::Value(std::move(body)));
}

}  // namespace

// ---------------------------------------------------------------------------
// FirewallFunction
// ---------------------------------------------------------------------------

Verdict FirewallFunction::process(const dataplane::Packet& packet) {
  const bool blocked = blocked_ports_.count(packet.dst_port) > 0 ||
                       blocked_sources_.count(packet.src_ip) > 0;
  if (blocked) {
    ++dropped_;
    return Verdict::kDrop;
  }
  ++allowed_;
  return Verdict::kAllow;
}

std::vector<FlowRequest> FirewallFunction::desired_flows(
    std::uint64_t dpid) const {
  std::vector<FlowRequest> flows;
  int index = 0;
  for (const std::uint16_t port : blocked_ports_) {
    json::Object fields;
    fields["tcp_dst"] = port;
    fields["actions"] = "drop";
    FlowRequest request;
    request.name = "fw-block-port-" + std::to_string(port);
    request.dpid = dpid;
    request.priority = 200;
    request.json_body = flow_body(request.name, dpid, 200, std::move(fields));
    flows.push_back(std::move(request));
    ++index;
  }
  for (const std::uint32_t ip : blocked_sources_) {
    json::Object fields;
    fields["ipv4_src"] = dataplane::ipv4_to_string(ip);
    fields["actions"] = "drop";
    FlowRequest request;
    request.name = "fw-block-src-" + std::to_string(index++);
    request.dpid = dpid;
    request.priority = 200;
    request.json_body = flow_body(request.name, dpid, 200, std::move(fields));
    flows.push_back(std::move(request));
  }
  return flows;
}

// ---------------------------------------------------------------------------
// LoadBalancerFunction
// ---------------------------------------------------------------------------

const LoadBalancerFunction::Backend& LoadBalancerFunction::pick(
    const dataplane::Packet& packet) const {
  if (backends_.empty()) throw Error("loadbalancer: no backends configured");
  // Deterministic 5-tuple hash (FNV-1a over the flow key).
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(packet.src_ip);
  mix(packet.dst_ip);
  mix(packet.src_port);
  mix(packet.dst_port);
  mix(static_cast<std::uint64_t>(packet.proto));
  return backends_[h % backends_.size()];
}

Verdict LoadBalancerFunction::process(const dataplane::Packet& packet) {
  if (packet.dst_ip != vip_ || packet.dst_port != service_port_) {
    return Verdict::kAllow;  // not for the virtual service
  }
  const Backend& backend = pick(packet);
  ++counts_[backend.ip];
  return Verdict::kAllow;
}

std::vector<FlowRequest> LoadBalancerFunction::desired_flows(
    std::uint64_t dpid) const {
  std::vector<FlowRequest> flows;
  int index = 0;
  for (const Backend& backend : backends_) {
    json::Object fields;
    fields["ipv4_dst"] = dataplane::ipv4_to_string(vip_);
    fields["tcp_dst"] = service_port_;
    fields["actions"] = "output=" + std::to_string(backend.switch_port);
    FlowRequest request;
    request.name = "lb-backend-" + std::to_string(index++);
    request.dpid = dpid;
    request.priority = 150;
    request.json_body = flow_body(request.name, dpid, 150, std::move(fields));
    flows.push_back(std::move(request));
  }
  return flows;
}

// ---------------------------------------------------------------------------
// MonitorFunction
// ---------------------------------------------------------------------------

Verdict MonitorFunction::process(const dataplane::Packet& packet) {
  Stats& s = stats_[packet.src_ip];
  ++s.packets;
  s.bytes += packet.payload.size();
  return Verdict::kAllow;
}

std::uint32_t MonitorFunction::top_talker() const {
  std::uint32_t top = 0;
  std::uint64_t best = 0;
  for (const auto& [ip, s] : stats_) {
    if (s.bytes >= best) {
      best = s.bytes;
      top = ip;
    }
  }
  return top;
}

}  // namespace vnfsgx::vnf
