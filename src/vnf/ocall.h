// OCALL bridge for enclave network I/O.
//
// mbedtls-SGX (the TLS suite the paper's prototype uses inside enclaves)
// performs network I/O through untrusted OCALLs (net_send/net_recv); the
// enclave never owns a socket. This registry models that bridge: untrusted
// code registers a transport stream and passes the opaque token into the
// enclave, which reads/writes through it — plaintext application bytes and
// ciphertext cross the boundary, TLS session keys never do.
//
// The registry takes ownership of the transport: entries live until
// remove() (normally at tls_close), so an in-enclave session can never
// write through a dangling transport pointer even if the untrusted caller
// forgets to close cleanly.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "net/stream.h"

namespace vnfsgx::vnf {

class OcallStreamRegistry {
 public:
  /// Register a transport (ownership transferred); returns the token to
  /// pass through the ECALL.
  static std::uint64_t add(net::StreamPtr stream);
  static net::Stream* get(std::uint64_t token);  // nullptr if unknown
  /// Destroy the registered transport.
  static void remove(std::uint64_t token);

 private:
  static std::mutex mutex_;
  static std::map<std::uint64_t, net::StreamPtr> streams_;
  static std::uint64_t next_token_;
};

}  // namespace vnfsgx::vnf
