// Sample network functions: the workloads the paper's SDN deployment runs
// in containers (firewall, load balancer, traffic monitor).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "vnf/vnf.h"

namespace vnfsgx::vnf {

/// Stateless firewall: drops packets to blocked TCP ports or from blocked
/// source prefixes; wants matching drop rules offloaded to the switch.
class FirewallFunction final : public NetworkFunction {
 public:
  std::string kind() const override { return "firewall"; }

  void block_port(std::uint16_t port) { blocked_ports_.insert(port); }
  void block_source(std::uint32_t ip) { blocked_sources_.insert(ip); }

  Verdict process(const dataplane::Packet& packet) override;
  std::vector<FlowRequest> desired_flows(std::uint64_t dpid) const override;

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t allowed() const { return allowed_; }

 private:
  std::set<std::uint16_t> blocked_ports_;
  std::set<std::uint32_t> blocked_sources_;
  std::uint64_t dropped_ = 0;
  std::uint64_t allowed_ = 0;
};

/// L4 load balancer: hashes flows onto backends; wants per-backend
/// forwarding rules installed.
class LoadBalancerFunction final : public NetworkFunction {
 public:
  struct Backend {
    std::uint32_t ip = 0;
    std::uint16_t switch_port = 0;
  };

  LoadBalancerFunction(std::uint32_t vip, std::uint16_t service_port)
      : vip_(vip), service_port_(service_port) {}

  std::string kind() const override { return "loadbalancer"; }

  void add_backend(Backend backend) { backends_.push_back(backend); }

  /// Deterministic flow-hash backend selection.
  const Backend& pick(const dataplane::Packet& packet) const;

  Verdict process(const dataplane::Packet& packet) override;
  std::vector<FlowRequest> desired_flows(std::uint64_t dpid) const override;

  const std::map<std::uint32_t, std::uint64_t>& per_backend_counts() const {
    return counts_;
  }

 private:
  std::uint32_t vip_;
  std::uint16_t service_port_;
  std::vector<Backend> backends_;
  std::map<std::uint32_t, std::uint64_t> counts_;
};

/// Passive monitor: per-source packet/byte counters, top-talker queries.
class MonitorFunction final : public NetworkFunction {
 public:
  std::string kind() const override { return "monitor"; }

  Verdict process(const dataplane::Packet& packet) override;

  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  const std::map<std::uint32_t, Stats>& per_source() const { return stats_; }
  std::uint32_t top_talker() const;

 private:
  std::map<std::uint32_t, Stats> stats_;
};

}  // namespace vnfsgx::vnf
