#include "vnf/ocall.h"

namespace vnfsgx::vnf {

std::mutex OcallStreamRegistry::mutex_;
std::map<std::uint64_t, net::StreamPtr> OcallStreamRegistry::streams_;
std::uint64_t OcallStreamRegistry::next_token_ = 1;

std::uint64_t OcallStreamRegistry::add(net::StreamPtr stream) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t token = next_token_++;
  streams_[token] = std::move(stream);
  return token;
}

net::Stream* OcallStreamRegistry::get(std::uint64_t token) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(token);
  return it == streams_.end() ? nullptr : it->second.get();
}

void OcallStreamRegistry::remove(std::uint64_t token) {
  net::StreamPtr doomed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = streams_.find(token);
    if (it == streams_.end()) return;
    doomed = std::move(it->second);
    streams_.erase(it);
  }
  // Destroyed outside the lock (close may block briefly).
}

}  // namespace vnfsgx::vnf
