// Minimal leveled logger.
//
// Components log lifecycle events (attestation started/succeeded, TLS
// handshake complete, ...) so examples narrate the Figure-1 workflow.
// Quiet by default in tests/benches; examples raise the level.
//
// Emission is serialized behind a mutex (concurrent writers no longer
// interleave), the destination is a pluggable sink (stderr by default, a
// capturing sink for tests), and per-level emission counts are kept so
// the obs subsystem can export `vnfsgx_log_messages_total{level}` without
// common/ depending on obs/.
#pragma once

#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace vnfsgx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Destination for emitted log lines. Implementations must tolerate
/// concurrent write() calls (the default stderr sink serializes behind
/// the logger's mutex; CapturingLogSink has its own).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(LogLevel level, std::string_view component,
                     std::string_view message) = 0;
};

/// Replace the log destination; nullptr restores the stderr sink. The
/// caller keeps ownership and must keep the sink alive until it is
/// swapped out again.
void set_log_sink(LogSink* sink);

/// In-memory sink for tests: records every emitted line.
class CapturingLogSink : public LogSink {
 public:
  struct Line {
    LogLevel level;
    std::string component;
    std::string message;
  };

  void write(LogLevel level, std::string_view component,
             std::string_view message) override;
  std::vector<Line> lines() const;
  std::size_t count() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<Line> lines_;
};

/// Lines emitted at `level` since process start (monotonic; counts only
/// lines that passed the level filter). kOff always reads 0.
std::uint64_t log_message_count(LogLevel level);

/// Emit one line: "[level] component: message" to the active sink.
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, std::string_view component, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_line(level, component, os.str());
}

#define VNFSGX_LOG_DEBUG(component, ...) \
  ::vnfsgx::log(::vnfsgx::LogLevel::kDebug, component, __VA_ARGS__)
#define VNFSGX_LOG_INFO(component, ...) \
  ::vnfsgx::log(::vnfsgx::LogLevel::kInfo, component, __VA_ARGS__)
#define VNFSGX_LOG_WARN(component, ...) \
  ::vnfsgx::log(::vnfsgx::LogLevel::kWarn, component, __VA_ARGS__)
#define VNFSGX_LOG_ERROR(component, ...) \
  ::vnfsgx::log(::vnfsgx::LogLevel::kError, component, __VA_ARGS__)

}  // namespace vnfsgx
