// Minimal leveled logger.
//
// Components log lifecycle events (attestation started/succeeded, TLS
// handshake complete, ...) so examples narrate the Figure-1 workflow.
// Quiet by default in tests/benches; examples raise the level.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace vnfsgx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr: "[level] component: message".
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, std::string_view component, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_line(level, component, os.str());
}

#define VNFSGX_LOG_DEBUG(component, ...) \
  ::vnfsgx::log(::vnfsgx::LogLevel::kDebug, component, __VA_ARGS__)
#define VNFSGX_LOG_INFO(component, ...) \
  ::vnfsgx::log(::vnfsgx::LogLevel::kInfo, component, __VA_ARGS__)
#define VNFSGX_LOG_WARN(component, ...) \
  ::vnfsgx::log(::vnfsgx::LogLevel::kWarn, component, __VA_ARGS__)
#define VNFSGX_LOG_ERROR(component, ...) \
  ::vnfsgx::log(::vnfsgx::LogLevel::kError, component, __VA_ARGS__)

}  // namespace vnfsgx
