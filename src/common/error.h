// Error hierarchy. Exceptions are used for contract violations and protocol
// failures (per the Core Guidelines: errors that cannot be handled locally).
// Expected verification outcomes (attestation fails, certificate invalid)
// are returned as values — see the per-module *Result types.
#pragma once

#include <stdexcept>
#include <string>

namespace vnfsgx {

/// Root of all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed wire data (truncated/overlong/invalid encodings).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse: " + what) {}
};

/// A protocol peer violated the state machine or sent an illegal message.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error("protocol: " + what) {}
};

/// Cryptographic operation failed (bad key size, authentication failure
/// surfaced where the caller cannot continue).
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error("crypto: " + what) {}
};

/// Violation of the simulated hardware security boundary (EPC access from
/// untrusted code, mutating an initialized enclave, ...).
class SecurityViolation : public Error {
 public:
  explicit SecurityViolation(const std::string& what)
      : Error("security violation: " + what) {}
};

/// I/O failure on a transport (peer closed, socket error).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io: " + what) {}
};

/// A read deadline expired on a transport with a configured timeout. The
/// server runtime uses this to reap connections that stall mid-request
/// without letting them pin a worker thread forever.
class TimeoutError : public IoError {
 public:
  explicit TimeoutError(const std::string& what)
      : IoError("timeout: " + what) {}
};

}  // namespace vnfsgx
