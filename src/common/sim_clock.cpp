#include "common/sim_clock.h"

namespace vnfsgx {

UnixTime SystemClock::now() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

const SystemClock& SystemClock::instance() {
  static const SystemClock clock;
  return clock;
}

}  // namespace vnfsgx
