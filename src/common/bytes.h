// Byte-buffer utilities shared by every module.
//
// The whole codebase passes binary data as `Bytes` (owning) or
// `ByteView` (non-owning, std::span). Helpers here cover the operations
// protocol code needs constantly: concatenation, big-endian integer
// packing, and comparison.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vnfsgx {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Build a Bytes from a string's raw characters (no encoding applied).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interpret a byte buffer as text (no validation applied).
inline std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

// GCC 12 false-positives on the vector range-insert's reallocation path
// once these are inlined into callers ("writing ... into a region of size
// 0", PR105329 family); clang and GCC 13 are clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Wstringop-overread"
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
/// Append `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

inline void append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

inline void append_u8(Bytes& dst, std::uint8_t v) { dst.push_back(v); }

/// Append a big-endian 16-bit integer.
inline void append_u16(Bytes& dst, std::uint16_t v) {
  dst.push_back(static_cast<std::uint8_t>(v >> 8));
  dst.push_back(static_cast<std::uint8_t>(v));
}

/// Append a big-endian 24-bit integer (TLS length fields).
inline void append_u24(Bytes& dst, std::uint32_t v) {
  dst.push_back(static_cast<std::uint8_t>(v >> 16));
  dst.push_back(static_cast<std::uint8_t>(v >> 8));
  dst.push_back(static_cast<std::uint8_t>(v));
}

/// Append a big-endian 32-bit integer.
inline void append_u32(Bytes& dst, std::uint32_t v) {
  dst.push_back(static_cast<std::uint8_t>(v >> 24));
  dst.push_back(static_cast<std::uint8_t>(v >> 16));
  dst.push_back(static_cast<std::uint8_t>(v >> 8));
  dst.push_back(static_cast<std::uint8_t>(v));
}

/// Append a big-endian 64-bit integer.
inline void append_u64(Bytes& dst, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

inline std::uint16_t read_u16(ByteView b, std::size_t off) {
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

inline std::uint32_t read_u24(ByteView b, std::size_t off) {
  return (static_cast<std::uint32_t>(b[off]) << 16) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) | b[off + 2];
}

inline std::uint32_t read_u32(ByteView b, std::size_t off) {
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) | b[off + 3];
}

inline std::uint64_t read_u64(ByteView b, std::size_t off) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | b[off + i];
  return v;
}

/// Concatenate any number of byte views.
inline Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (auto p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (auto p : parts) append(out, p);
  return out;
}

/// Value equality (NOT constant time; use crypto::ct_equal for secrets).
inline bool equal(ByteView a, ByteView b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

/// Overwrite a buffer with zeros. Best-effort scrubbing of key material;
/// uses volatile writes so the store is not elided.
inline void secure_wipe(Bytes& b) {
  volatile std::uint8_t* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
  b.clear();
}

}  // namespace vnfsgx
