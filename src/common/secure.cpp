#include "common/secure.h"

namespace vnfsgx {

// Forced optimization so the test exercises dead-store elimination even in
// a -O0 debug build: without the barrier in secure_memzero, an optimizing
// compiler is entitled to drop the wipe of a buffer it can prove is never
// read again through the original name.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("O2")))
#endif
void secure_memzero_probe(std::uint8_t fill, std::uint8_t out[64]) {
  std::uint8_t buf[64];
  for (std::size_t i = 0; i < sizeof(buf); ++i) buf[i] = fill;
  secure_memzero(buf, sizeof(buf));
  // Copy whatever survived; with a working secure_memzero this is all
  // zeros. (The copy itself is why a plain memset could legally survive
  // here — the real assurance is the barrier, the test documents it.)
  std::memcpy(out, buf, sizeof(buf));
}

}  // namespace vnfsgx
