// Secret-hygiene primitives: guaranteed wiping of key material.
//
// The paper's core invariant is that credentials never leave the enclave;
// this header makes the *lifetime* half of that invariant mechanical. Any
// buffer holding long-lived key material (seeds, traffic secrets, round
// keys, GHASH tables) is declared as Zeroizing<T>, which overwrites the
// storage with zeros before it is released — including on moves, so no
// stale copy survives in the moved-from object. tools/secretlint rule R2
// enforces the convention at lint time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>

#include "common/bytes.h"

namespace vnfsgx {

/// Overwrite `n` bytes at `p` with zeros in a way the optimizer may not
/// elide, even when the buffer is provably dead afterwards (the exact
/// scenario dead-store elimination targets). The asm barrier tells the
/// compiler the zeroed memory is observed.
inline void secure_memzero(void* p, std::size_t n) {
  if (p == nullptr || n == 0) return;
  std::memset(p, 0, n);
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : : "r"(p) : "memory");
#else
  // Fallback: volatile writes cannot be elided.
  volatile std::uint8_t* vp = static_cast<volatile std::uint8_t*>(p);
  for (std::size_t i = 0; i < n; ++i) vp[i] = 0;
#endif
}

namespace detail {

template <typename T>
concept ContiguousContainer = requires(T t) {
  { t.data() };
  { t.size() };
};

template <typename T>
concept ClearableContainer = ContiguousContainer<T> && requires(T t) {
  t.clear();
};

template <typename T>
concept ByteSized = ContiguousContainer<T> &&
                    sizeof(*std::declval<T&>().data()) == 1;

/// Wipe the secret content of `v`. Containers have their element storage
/// zeroed (and are cleared when possible); trivially copyable values are
/// zeroed in place.
template <typename T>
void wipe_value(T& v) {
  if constexpr (ContiguousContainer<T>) {
    using Elem = std::remove_reference_t<decltype(*v.data())>;
    secure_memzero(const_cast<std::remove_const_t<Elem>*>(v.data()),
                   v.size() * sizeof(Elem));
    if constexpr (ClearableContainer<T>) v.clear();
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Zeroizing<T> requires a contiguous container or a "
                  "trivially copyable type");
    secure_memzero(&v, sizeof(T));
  }
}

}  // namespace detail

/// Wrapper that wipes the contained value when it is destroyed or moved
/// from. Copyable on purpose: each copy wipes itself, and copies into
/// non-wiping containers are what secretlint rule R2 exists to catch.
///
/// Implicit conversions to T&, const T& and (for byte containers)
/// ByteView keep call sites unchanged: a Zeroizing<Ed25519Seed> passes
/// anywhere a seed or a byte view is expected.
///
/// Caveat (inherited from std::vector): growing a wrapped vector
/// reallocates and the *old* buffer is not wiped. Size secret vectors up
/// front (all in-tree uses are fixed-size derivations).
template <typename T>
class Zeroizing {
 public:
  using value_type = T;

  Zeroizing() = default;
  Zeroizing(const T& v) : value_(v) {}
  Zeroizing(T&& v) : value_(std::move(v)) {}

  /// Forward multi-argument constructors, e.g.
  /// Zeroizing<Bytes>(n, fill). Single-argument forwarding is excluded so
  /// the T / copy / move constructors above keep their exact semantics.
  template <typename A0, typename A1, typename... Rest>
  Zeroizing(A0&& a0, A1&& a1, Rest&&... rest)
      : value_(std::forward<A0>(a0), std::forward<A1>(a1),
               std::forward<Rest>(rest)...) {}

  Zeroizing(const Zeroizing& other) : value_(other.value_) {}
  Zeroizing(Zeroizing&& other) noexcept : value_(std::move(other.value_)) {
    other.wipe();
  }

  Zeroizing& operator=(const Zeroizing& other) {
    if (this != &other) {
      wipe();
      value_ = other.value_;
    }
    return *this;
  }
  Zeroizing& operator=(Zeroizing&& other) noexcept {
    if (this != &other) {
      wipe();
      value_ = std::move(other.value_);
      other.wipe();
    }
    return *this;
  }
  Zeroizing& operator=(const T& v) {
    wipe();
    value_ = v;
    return *this;
  }
  Zeroizing& operator=(T&& v) {
    wipe();
    value_ = std::move(v);
    return *this;
  }

  ~Zeroizing() { wipe(); }

  /// Wipe now (also leaves the value empty/zeroed for reuse).
  void wipe() { detail::wipe_value(value_); }

  T& get() { return value_; }
  const T& get() const { return value_; }
  T& operator*() { return value_; }
  const T& operator*() const { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

  operator T&() { return value_; }
  operator const T&() const { return value_; }

  /// Byte containers additionally convert to views so one user-defined
  /// conversion reaches ByteView / span parameters.
  operator ByteView() const
    requires detail::ByteSized<T>
  {
    return ByteView(reinterpret_cast<const std::uint8_t*>(value_.data()),
                    value_.size());
  }
  operator std::span<std::uint8_t>()
    requires detail::ByteSized<T>
  {
    return std::span<std::uint8_t>(
        reinterpret_cast<std::uint8_t*>(value_.data()), value_.size());
  }

  // Container forwarding, so members like round_keys_[i] / .data() keep
  // reading naturally at use sites.
  auto data()
    requires detail::ContiguousContainer<T>
  {
    return value_.data();
  }
  auto data() const
    requires detail::ContiguousContainer<T>
  {
    return value_.data();
  }
  auto size() const
    requires detail::ContiguousContainer<T>
  {
    return value_.size();
  }
  bool empty() const
    requires detail::ContiguousContainer<T>
  {
    return value_.size() == 0;
  }
  auto begin()
    requires detail::ContiguousContainer<T>
  {
    return value_.begin();
  }
  auto begin() const
    requires detail::ContiguousContainer<T>
  {
    return value_.begin();
  }
  auto end()
    requires detail::ContiguousContainer<T>
  {
    return value_.end();
  }
  auto end() const
    requires detail::ContiguousContainer<T>
  {
    return value_.end();
  }
  decltype(auto) operator[](std::size_t i)
    requires detail::ContiguousContainer<T>
  {
    return value_[i];
  }
  decltype(auto) operator[](std::size_t i) const
    requires detail::ContiguousContainer<T>
  {
    return value_[i];
  }

  friend bool operator==(const Zeroizing& a, const Zeroizing& b) {
    return a.value_ == b.value_;
  }
  friend bool operator==(const Zeroizing& a, const T& b) {
    return a.value_ == b;
  }

 private:
  T value_{};
};

/// The workhorse alias: an owning, self-wiping byte buffer.
using SecureBytes = Zeroizing<Bytes>;

/// Test hook for tests/test_secure.cpp: compiled in secure.cpp at forced
/// -O2 regardless of the build type. Fills a stack buffer with `fill`,
/// wipes it with secure_memzero, then reports the post-wipe contents via
/// `out` so the test can verify the stores were not elided.
void secure_memzero_probe(std::uint8_t fill, std::uint8_t out[64]);

}  // namespace vnfsgx
