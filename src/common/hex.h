// Hexadecimal encoding/decoding for digests, identifiers and test vectors.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace vnfsgx {

/// Lowercase hex encoding of a byte buffer.
std::string to_hex(ByteView data);

/// Decode a hex string (case-insensitive). Throws std::invalid_argument on
/// odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

}  // namespace vnfsgx
