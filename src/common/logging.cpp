#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace vnfsgx {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace vnfsgx
