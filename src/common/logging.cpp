#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace vnfsgx {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogSink*> g_sink{nullptr};
std::mutex g_stderr_mutex;
std::atomic<std::uint64_t> g_counts[4];  // kDebug..kError

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

std::uint64_t log_message_count(LogLevel level) {
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx >= 4) return 0;
  return g_counts[idx].load(std::memory_order_relaxed);
}

void CapturingLogSink::write(LogLevel level, std::string_view component,
                             std::string_view message) {
  const std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(Line{level, std::string(component), std::string(message)});
}

std::vector<CapturingLogSink::Line> CapturingLogSink::lines() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

std::size_t CapturingLogSink::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

void CapturingLogSink::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lines_.clear();
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level() || level >= LogLevel::kOff) return;
  g_counts[static_cast<int>(level)].fetch_add(1, std::memory_order_relaxed);
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink->write(level, component, message);
    return;
  }
  const std::lock_guard<std::mutex> lock(g_stderr_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace vnfsgx
