#include "common/base64.h"

#include <array>
#include <stdexcept>

namespace vnfsgx {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> make_reverse_table() {
  std::array<int, 256> t{};
  t.fill(-1);
  for (int i = 0; i < 64; ++i) t[static_cast<unsigned char>(kAlphabet[i])] = i;
  return t;
}
}  // namespace

std::string base64_encode(ByteView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view text) {
  static const std::array<int, 256> kReverse = make_reverse_table();
  if (text.size() % 4 != 0) {
    throw std::invalid_argument("base64_decode: length not a multiple of 4");
  }
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) {
          throw std::invalid_argument("base64_decode: misplaced padding");
        }
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) {
          throw std::invalid_argument("base64_decode: data after padding");
        }
        const int v = kReverse[static_cast<unsigned char>(c)];
        if (v < 0) {
          throw std::invalid_argument("base64_decode: invalid character");
        }
        vals[j] = v;
      }
    }
    const std::uint32_t n = (static_cast<std::uint32_t>(vals[0]) << 18) |
                            (static_cast<std::uint32_t>(vals[1]) << 12) |
                            (static_cast<std::uint32_t>(vals[2]) << 6) |
                            static_cast<std::uint32_t>(vals[3]);
    out.push_back(static_cast<std::uint8_t>(n >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(n >> 8));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n));
  }
  return out;
}

}  // namespace vnfsgx
