// Simulation clock.
//
// Certificates, attestation reports and revocation lists all carry
// timestamps. Tests must be able to fast-forward time (e.g. to expire a
// certificate) without sleeping, so every component takes its time from a
// Clock interface. `SystemClock` delegates to the wall clock; `SimClock`
// is a manually-advanced clock for tests and deterministic benchmarks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace vnfsgx {

/// Seconds since the Unix epoch. Plain integer so it serializes trivially.
using UnixTime = std::int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual UnixTime now() const = 0;
};

/// Wall-clock time.
class SystemClock final : public Clock {
 public:
  UnixTime now() const override;
  /// Process-wide instance for components that were not handed a clock.
  static const SystemClock& instance();
};

/// Manually advanced clock; thread-safe.
class SimClock final : public Clock {
 public:
  explicit SimClock(UnixTime start = 1'700'000'000) : now_(start) {}

  UnixTime now() const override { return now_.load(std::memory_order_relaxed); }

  void advance(std::int64_t seconds) {
    now_.fetch_add(seconds, std::memory_order_relaxed);
  }
  void set(UnixTime t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<UnixTime> now_;
};

}  // namespace vnfsgx
