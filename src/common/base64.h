// Base64 (RFC 4648) encoding, used for quotes and IAS report bodies,
// mirroring how the real IAS API transports binary blobs in JSON.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace vnfsgx {

/// Standard base64 with padding.
std::string base64_encode(ByteView data);

/// Decode standard base64. Throws std::invalid_argument on malformed input.
Bytes base64_decode(std::string_view text);

}  // namespace vnfsgx
