// Untrusted agent running on the container host: answers the Verification
// Manager's attestation protocol by driving the local enclaves and the
// Quoting Enclave, and installs provisioned credentials into VNF enclaves.
#pragma once

#include <map>
#include <mutex>

#include "core/protocol.h"
#include "host/container_host.h"
#include "net/stream.h"
#include "vnf/vnf.h"

namespace vnfsgx::core {

class HostAgent {
 public:
  explicit HostAgent(host::ContainerHost& host) : host_(host) {}

  /// Make a VNF's credential enclave reachable for attestation and
  /// provisioning under its name.
  void register_vnf(vnf::Vnf& vnf);

  /// Serve request/response frames on one connection until EOF.
  void serve(net::StreamPtr stream);

 private:
  Bytes handle(ByteView request);
  Bytes handle_attest_host(const AttestHostRequest& request);
  Bytes handle_attest_vnf(const AttestVnfRequest& request);
  Bytes handle_provision(const ProvisionRequest& request);

  host::ContainerHost& host_;
  std::mutex mutex_;
  std::map<std::string, vnf::Vnf*> vnfs_;
};

}  // namespace vnfsgx::core
