// Untrusted agent running on the container host: answers the Verification
// Manager's attestation protocol by driving the local enclaves and the
// Quoting Enclave, and installs provisioned credentials into VNF enclaves.
#pragma once

#include <map>
#include <mutex>

#include "core/protocol.h"
#include "host/container_host.h"
#include "net/stream.h"
#include "vnf/vnf.h"

namespace vnfsgx::core {

class HostAgent {
 public:
  explicit HostAgent(host::ContainerHost& host) : host_(host) {}

  /// Make a VNF's credential enclave reachable for attestation and
  /// provisioning under its name.
  void register_vnf(vnf::Vnf& vnf);

  /// Serve request/response frames on one connection until EOF. The
  /// borrowing overload suits pooled runtimes where the transport is owned
  /// by the connection driver.
  void serve(net::Stream& stream);
  void serve(net::StreamPtr stream) { serve(*stream); }

  /// Answer one protocol frame; errors come back as an encoded
  /// ErrorMessage frame, never as an exception. This is the per-burst
  /// entry used with net::frame_driver, where the runtime owns the framing
  /// I/O and the connection parks between frames.
  Bytes serve_frame(ByteView request);

 private:
  Bytes handle(ByteView request);
  Bytes handle_attest_host(const AttestHostRequest& request);
  Bytes handle_attest_vnf(const AttestVnfRequest& request);
  Bytes handle_provision(const ProvisionRequest& request);

  host::ContainerHost& host_;
  std::mutex mutex_;
  std::map<std::string, vnf::Vnf*> vnfs_;
};

}  // namespace vnfsgx::core
