#include "core/protocol.h"

#include "common/error.h"
#include "pki/tlv.h"

namespace vnfsgx::core {

namespace {

enum : std::uint8_t {
  kTagNonce = 0x01,
  kTagQuote = 0x02,
  kTagIml = 0x03,
  kTagVnfName = 0x04,
  kTagPublicKey = 0x05,
  kTagCertificate = 0x06,
  kTagOk = 0x07,
  kTagDetail = 0x08,
  kTagWhat = 0x09,
  kTagTpmQuote = 0x0a,
};

Bytes with_type(MessageType type, Bytes body) {
  Bytes out;
  out.reserve(body.size() + 1);
  append_u8(out, static_cast<std::uint8_t>(type));
  append(out, body);
  return out;
}

pki::TlvReader body_reader(ByteView message, MessageType expected) {
  if (message.empty()) throw ParseError("protocol: empty message");
  if (static_cast<MessageType>(message[0]) != expected) {
    throw ProtocolError("protocol: unexpected message type " +
                        std::to_string(message[0]));
  }
  return pki::TlvReader(message.subspan(1));
}

}  // namespace

MessageType peek_type(ByteView message) {
  if (message.empty()) throw ParseError("protocol: empty message");
  return static_cast<MessageType>(message[0]);
}

Bytes encode(const AttestHostRequest& m) {
  pki::TlvWriter w;
  w.add_bytes(kTagNonce, m.nonce);
  return with_type(MessageType::kAttestHostRequest, w.take());
}

Bytes encode(const AttestHostResponse& m) {
  pki::TlvWriter w;
  w.add_bytes(kTagQuote, m.quote);
  w.add_bytes(kTagIml, m.iml);
  if (!m.tpm_quote.empty()) w.add_bytes(kTagTpmQuote, m.tpm_quote);
  return with_type(MessageType::kAttestHostResponse, w.take());
}

Bytes encode(const AttestVnfRequest& m) {
  pki::TlvWriter w;
  w.add_string(kTagVnfName, m.vnf_name);
  w.add_bytes(kTagNonce, m.nonce);
  return with_type(MessageType::kAttestVnfRequest, w.take());
}

Bytes encode(const AttestVnfResponse& m) {
  pki::TlvWriter w;
  w.add_bytes(kTagQuote, m.quote);
  w.add_bytes(kTagPublicKey, m.public_key);
  return with_type(MessageType::kAttestVnfResponse, w.take());
}

Bytes encode(const ProvisionRequest& m) {
  pki::TlvWriter w;
  w.add_string(kTagVnfName, m.vnf_name);
  w.add_bytes(kTagCertificate, m.certificate);
  return with_type(MessageType::kProvisionRequest, w.take());
}

Bytes encode(const ProvisionResponse& m) {
  pki::TlvWriter w;
  w.add_u8(kTagOk, m.ok ? 1 : 0);
  w.add_string(kTagDetail, m.detail);
  return with_type(MessageType::kProvisionResponse, w.take());
}

Bytes encode(const ErrorMessage& m) {
  pki::TlvWriter w;
  w.add_string(kTagWhat, m.what);
  return with_type(MessageType::kError, w.take());
}

AttestHostRequest decode_attest_host_request(ByteView message) {
  auto r = body_reader(message, MessageType::kAttestHostRequest);
  AttestHostRequest m;
  m.nonce = r.expect_array<32>(kTagNonce);
  return m;
}

AttestHostResponse decode_attest_host_response(ByteView message) {
  auto r = body_reader(message, MessageType::kAttestHostResponse);
  AttestHostResponse m;
  m.quote = r.expect_bytes(kTagQuote);
  m.iml = r.expect_bytes(kTagIml);
  if (!r.done()) m.tpm_quote = r.expect_bytes(kTagTpmQuote);
  return m;
}

AttestVnfRequest decode_attest_vnf_request(ByteView message) {
  auto r = body_reader(message, MessageType::kAttestVnfRequest);
  AttestVnfRequest m;
  m.vnf_name = r.expect_string(kTagVnfName);
  m.nonce = r.expect_array<32>(kTagNonce);
  return m;
}

AttestVnfResponse decode_attest_vnf_response(ByteView message) {
  auto r = body_reader(message, MessageType::kAttestVnfResponse);
  AttestVnfResponse m;
  m.quote = r.expect_bytes(kTagQuote);
  m.public_key = r.expect_array<32>(kTagPublicKey);
  return m;
}

ProvisionRequest decode_provision_request(ByteView message) {
  auto r = body_reader(message, MessageType::kProvisionRequest);
  ProvisionRequest m;
  m.vnf_name = r.expect_string(kTagVnfName);
  m.certificate = r.expect_bytes(kTagCertificate);
  return m;
}

ProvisionResponse decode_provision_response(ByteView message) {
  auto r = body_reader(message, MessageType::kProvisionResponse);
  ProvisionResponse m;
  m.ok = r.expect_u8(kTagOk) != 0;
  m.detail = r.expect_string(kTagDetail);
  return m;
}

ErrorMessage decode_error(ByteView message) {
  auto r = body_reader(message, MessageType::kError);
  ErrorMessage m;
  m.what = r.expect_string(kTagWhat);
  return m;
}

}  // namespace vnfsgx::core
