// The Verification Manager — the paper's central component.
//
// Responsibilities (§2):
//  * initiate remote attestation of container hosts (Fig. 1 step 1) and
//    verify quotes with the IAS (step 2), appraising the IMA measurement
//    list against the expected-measurement database;
//  * remotely attest VNF credential enclaves (step 3) and verify their
//    quotes with the IAS (step 4), continuing only on trustworthy hosts;
//  * act as certificate authority: generate client certificates for
//    attested enclaves and provision them (step 5) — the private key is
//    generated inside the enclave, so only the certificate travels;
//  * revoke credentials when a platform stops being trustworthy.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/appraisal.h"
#include "core/protocol.h"
#include "host/attestation_enclave.h"
#include "ias/http_api.h"
#include "net/stream.h"
#include "obs/span.h"
#include "pki/ca.h"
#include "vnf/credential_enclave.h"

namespace vnfsgx::core {

struct VmOptions {
  pki::DistinguishedName ca_name{"verification-manager", "vnfsgx"};
  std::int64_t credential_validity_seconds = 24 * 3600;
  /// Shard the CA's serial space so concurrent enrollments on different
  /// runtime shards allocate serials without contending (stripe s hands
  /// out serials in its own residue class). 1 = sequential serials.
  std::size_t ca_serial_stripes = 1;
};

struct HostAttestation {
  bool trustworthy = false;
  std::string reason;
  sgx::PlatformId platform_id{};
  ias::QuoteStatus quote_status = ias::QuoteStatus::kMalformed;
  AppraisalResult appraisal;
  std::size_t iml_entries = 0;
  /// §4 extension: true when the IML was cross-checked against an
  /// authenticated TPM PCR-10 quote (only when an AIK is enrolled).
  bool tpm_verified = false;
};

struct VnfAttestation {
  bool trustworthy = false;
  std::string reason;
  crypto::Ed25519PublicKey public_key{};
  sgx::PlatformId platform_id{};
  ias::QuoteStatus quote_status = ias::QuoteStatus::kMalformed;
};

/// One member of a fleet attestation: an open agent channel plus the VNF to
/// attest over it.
struct FleetTarget {
  net::Stream* channel = nullptr;
  std::string vnf_name;
};

class VerificationManager {
 public:
  VerificationManager(crypto::RandomSource& rng, const Clock& clock,
                      ias::IasClient ias, VmOptions options = {});

  pki::CertificateAuthority& ca() { return ca_; }
  const pki::Certificate& ca_certificate() const {
    return ca_.root_certificate();
  }
  AppraisalDatabase& appraisal() { return appraisal_; }

  /// Steps 1-2: host remote attestation over a connected channel to the
  /// host agent. On success the platform is marked trusted.
  HostAttestation attest_host(net::Stream& channel);

  /// §4 extension: enroll the platform's TPM attestation identity key.
  /// Once enrolled, attest_host additionally requires an authenticated
  /// PCR-10 quote whose value matches the delivered IML's aggregate —
  /// closing the "root rewrites the IML before the enclave binds it" gap
  /// the paper's base design leaves open.
  void enroll_platform_aik(const sgx::PlatformId& platform_id,
                           const crypto::Ed25519PublicKey& aik);

  /// Steps 3-4: attest the named VNF's credential enclave. Requires the
  /// hosting platform to have passed attest_host.
  VnfAttestation attest_vnf(net::Stream& channel, const std::string& vnf_name);

  /// Fleet-scale steps 3-4: attest N independent VNF enclaves at once.
  ///
  /// The serial path pays (RPC + IAS round-trip + Ed25519 verify) × N back to
  /// back. Here the RPC and IAS legs of independent attestations overlap on a
  /// bounded worker set (IAS traffic additionally rides the keep-alive pool),
  /// and all N AVR signatures are checked in a single Ed25519 batch
  /// verification; a failing batch falls back to per-report verification, so
  /// one forged report is individually rejected while the rest of the fleet
  /// still passes. Verdicts are identical to calling attest_vnf N times.
  ///
  /// Nonces are drawn serially before workers start (the RandomSource is not
  /// required to be thread-safe). Results are index-aligned with `targets`.
  std::vector<VnfAttestation> attest_fleet(std::span<const FleetTarget> targets,
                                           std::size_t max_workers = 8);

  /// Step 5: generate + sign + provision the client certificate for a
  /// previously attested VNF. Returns nullopt (with reason logged) if the
  /// VNF was not attested or provisioning fails.
  std::optional<pki::Certificate> enroll_vnf(net::Stream& channel,
                                             const std::string& vnf_name,
                                             const std::string& common_name);

  /// Revoke one credential; returns the updated CRL to distribute.
  pki::RevocationList revoke_certificate(std::uint64_t serial);

  /// Host compromise response: distrust the platform and revoke every
  /// credential issued to VNFs on it.
  pki::RevocationList revoke_platform(const sgx::PlatformId& platform_id);

  bool platform_trusted(const sgx::PlatformId& platform_id) const;
  std::vector<sgx::PlatformId> trusted_platforms() const;
  std::vector<std::string> attested_vnf_names() const;

  // Telemetry for tests/benches/examples.
  const ias::IasClient& ias_client() const { return ias_; }
  std::uint64_t hosts_attested() const { return hosts_attested_; }
  std::uint64_t vnfs_attested() const { return vnfs_attested_; }
  std::uint64_t credentials_issued() const { return credentials_issued_; }

 private:
  Bytes rpc(net::Stream& channel, const Bytes& request);
  Nonce fresh_nonce();

  // Protocol bodies; the public wrappers add the Figure-1 span + metrics.
  HostAttestation attest_host_impl(net::Stream& channel, obs::Span& span);
  VnfAttestation attest_vnf_impl(net::Stream& channel,
                                 const std::string& vnf_name, obs::Span& span);
  // Shared tail of steps 3-4 once the AVR signature is trusted (checked
  // individually on the serial path, batch-checked on the fleet path):
  // quote status, platform trust, enclave measurement, report-data binding,
  // then state update. Keeping one implementation keeps fleet verdicts
  // bit-identical to attest_vnf.
  VnfAttestation finish_vnf_attestation(const std::string& vnf_name,
                                        const Nonce& nonce,
                                        const AttestVnfResponse& response,
                                        const ias::VerificationReport& avr);
  std::optional<pki::Certificate> enroll_vnf_impl(net::Stream& channel,
                                                  const std::string& vnf_name,
                                                  const std::string& common_name);

  crypto::RandomSource& rng_;
  const Clock& clock_;
  ias::IasClient ias_;
  VmOptions options_;
  pki::CertificateAuthority ca_;
  AppraisalDatabase appraisal_;

  // Reader/writer split: enrollment-plane hot paths (per-connection AIK /
  // attested-VNF / platform-trust lookups) take shared locks and run
  // concurrently across runtime shards; attestation/revocation state
  // changes take the exclusive side.
  mutable std::shared_mutex mutex_;
  std::set<sgx::PlatformId> trusted_platforms_;
  std::map<sgx::PlatformId, crypto::Ed25519PublicKey> platform_aiks_;
  struct AttestedVnf {
    crypto::Ed25519PublicKey public_key{};
    sgx::PlatformId platform_id{};
  };
  std::map<std::string, AttestedVnf> attested_vnfs_;
  std::map<std::uint64_t, sgx::PlatformId> issued_;  // serial -> platform

  std::uint64_t hosts_attested_ = 0;
  std::uint64_t vnfs_attested_ = 0;
  std::uint64_t credentials_issued_ = 0;
};

}  // namespace vnfsgx::core
