// Wire protocol between the Verification Manager and the container-host
// agent (the numbered arrows of Figure 1, minus the IAS leg which is HTTP).
//
// Frames (net::write_frame) carrying TLV messages. The host agent answers
// attestation requests for the host itself (integrity attestation enclave +
// IML) and for each registered VNF credential enclave, and accepts
// credential provisioning for attested VNFs.
#pragma once

#include <array>
#include <string>

#include "common/bytes.h"
#include "pki/certificate.h"
#include "sgx/structs.h"

namespace vnfsgx::core {

using Nonce = std::array<std::uint8_t, 32>;

enum class MessageType : std::uint8_t {
  kAttestHostRequest = 1,
  kAttestHostResponse = 2,
  kAttestVnfRequest = 3,
  kAttestVnfResponse = 4,
  kProvisionRequest = 5,
  kProvisionResponse = 6,
  kError = 7,
};

struct AttestHostRequest {
  Nonce nonce{};
};

struct AttestHostResponse {
  Bytes quote;      // encoded sgx::Quote
  Bytes iml;        // encoded ima::MeasurementList
  /// Optional ima::TpmQuote over PCR 10 bound to the same nonce (the §4
  /// hardware-root-of-trust extension); empty when the host has no TPM.
  Bytes tpm_quote;
};

struct AttestVnfRequest {
  std::string vnf_name;
  Nonce nonce{};
};

struct AttestVnfResponse {
  Bytes quote;                           // encoded sgx::Quote
  crypto::Ed25519PublicKey public_key{}; // enclave-held credential key
};

struct ProvisionRequest {
  std::string vnf_name;
  Bytes certificate;  // encoded pki::Certificate
};

struct ProvisionResponse {
  bool ok = false;
  std::string detail;
};

struct ErrorMessage {
  std::string what;
};

/// Encoded message = u8 type || TLV body.
Bytes encode(const AttestHostRequest&);
Bytes encode(const AttestHostResponse&);
Bytes encode(const AttestVnfRequest&);
Bytes encode(const AttestVnfResponse&);
Bytes encode(const ProvisionRequest&);
Bytes encode(const ProvisionResponse&);
Bytes encode(const ErrorMessage&);

MessageType peek_type(ByteView message);

AttestHostRequest decode_attest_host_request(ByteView message);
AttestHostResponse decode_attest_host_response(ByteView message);
AttestVnfRequest decode_attest_vnf_request(ByteView message);
AttestVnfResponse decode_attest_vnf_response(ByteView message);
ProvisionRequest decode_provision_request(ByteView message);
ProvisionResponse decode_provision_response(ByteView message);
ErrorMessage decode_error(ByteView message);

}  // namespace vnfsgx::core
