#include "core/verification_manager.h"

#include <atomic>
#include <thread>

#include "common/logging.h"
#include "crypto/ct.h"
#include "ima/tpm.h"
#include "net/framing.h"
#include "obs/metrics.h"

namespace vnfsgx::core {

namespace {

obs::Counter& attestation_counter(const char* kind, bool ok) {
  // One instrument per (kind, result); references are stable so the four
  // lookups happen once per process.
  return obs::registry().counter(
      "vnfsgx_attestations_total",
      {{"kind", kind}, {"result", ok ? "ok" : "fail"}},
      "Attestation outcomes by kind (host = Figure-1 steps 1-2, "
      "vnf = steps 3-4)");
}

}  // namespace

VerificationManager::VerificationManager(crypto::RandomSource& rng,
                                         const Clock& clock,
                                         ias::IasClient ias, VmOptions options)
    : rng_(rng),
      clock_(clock),
      ias_(std::move(ias)),
      options_(std::move(options)),
      ca_(options_.ca_name, rng, clock) {
  if (options_.ca_serial_stripes > 1) {
    ca_.configure_serial_stripes(options_.ca_serial_stripes);
  }
  // The two enclave identities the system ships are trusted out of the box;
  // operators may allow additional measurements via appraisal().
  appraisal_.allow_enclave(host::attestation_enclave_measurement());
  appraisal_.allow_enclave(vnf::credential_enclave_measurement());
}

Bytes VerificationManager::rpc(net::Stream& channel, const Bytes& request) {
  net::write_frame(channel, request);
  return net::read_frame(channel);
}

Nonce VerificationManager::fresh_nonce() {
  Nonce nonce;
  rng_.fill(nonce);
  return nonce;
}

HostAttestation VerificationManager::attest_host(net::Stream& channel) {
  static obs::Histogram& duration = obs::registry().histogram(
      "vnfsgx_host_attestation_duration_us", {}, {},
      "Wall time of Figure-1 steps 1-2 (challenge, quote, IAS, appraisal)");
  obs::Span span =
      obs::tracer().start_span("host_attestation", obs::kStepHostAttestation);
  HostAttestation result = attest_host_impl(channel, span);
  span.annotate("result", result.trustworthy ? "ok" : "fail");
  if (!result.trustworthy) span.annotate("reason", result.reason);
  span.end();
  duration.observe(span.elapsed_us());
  attestation_counter("host", result.trustworthy).add();
  return result;
}

HostAttestation VerificationManager::attest_host_impl(net::Stream& channel,
                                                      obs::Span& span) {
  HostAttestation result;

  // Step 1: challenge the host's integrity attestation enclave.
  AttestHostRequest request;
  request.nonce = fresh_nonce();
  const Bytes raw = rpc(channel, encode(request));
  if (peek_type(raw) == MessageType::kError) {
    result.reason = "host error: " + decode_error(raw).what;
    return result;
  }
  const AttestHostResponse response = decode_attest_host_response(raw);

  // Step 2: verify the quote with the IAS.
  ias::VerificationReport avr = [&] {
    obs::Span verify =
        span.child("quote_verification", obs::kStepQuoteVerification);
    return ias_.verify_quote(response.quote);
  }();
  result.quote_status = avr.status();
  if (result.quote_status != ias::QuoteStatus::kOk) {
    result.reason = "IAS rejected quote: " + ias::to_string(result.quote_status);
    return result;
  }
  const sgx::ReportBody quoted = avr.quoted_enclave();
  result.platform_id = avr.platform_id();

  // The quote must come from the known integrity attestation enclave...
  if (!appraisal_.enclave_allowed(quoted.mr_enclave) ||
      quoted.mr_enclave != host::attestation_enclave_measurement()) {
    result.reason = "quote from unrecognized enclave";
    return result;
  }
  // ...and bind this nonce and exactly this IML.
  const sgx::ReportData expected =
      host::iml_report_data(request.nonce, response.iml);
  if (!crypto::ct_equal(ByteView(expected.data(), expected.size()),
                        ByteView(quoted.report_data.data(),
                                 quoted.report_data.size()))) {
    result.reason = "report data does not bind nonce+IML (replay?)";
    return result;
  }

  // Appraise the measurement list.
  const ima::MeasurementList iml = ima::MeasurementList::decode(response.iml);
  result.iml_entries = iml.size();

  // §4 extension: when this platform has an enrolled AIK, require an
  // authenticated TPM quote and cross-check the IML aggregate against
  // PCR 10. A root attacker who sanitized the IML before the enclave bound
  // it produces an aggregate that no longer matches the hardware PCR.
  std::optional<crypto::Ed25519PublicKey> aik;
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = platform_aiks_.find(result.platform_id);
    if (it != platform_aiks_.end()) aik = it->second;
  }
  if (aik) {
    if (response.tpm_quote.empty()) {
      result.reason = "TPM quote required but absent";
      return result;
    }
    ima::TpmQuote tpm_quote;
    try {
      tpm_quote = ima::TpmQuote::decode(response.tpm_quote);
    } catch (const ParseError&) {
      result.reason = "TPM quote undecodable";
      return result;
    }
    if (!tpm_quote.verify(*aik)) {
      result.reason = "TPM quote signature invalid";
      return result;
    }
    if (tpm_quote.nonce != request.nonce) {
      result.reason = "TPM quote nonce mismatch (replay?)";
      return result;
    }
    if (tpm_quote.pcr_index != ima::kImaPcrIndex ||
        tpm_quote.pcr_value != iml.aggregate()) {
      result.reason = "IML does not match TPM PCR-10 (IML tampered on host)";
      return result;
    }
    result.tpm_verified = true;
  }

  // Nonce and report-data binding were checked above against exactly these
  // IML bytes; the (pure) policy appraisal itself is memoized by IML digest
  // + policy generation, so a fleet booted from one golden image appraises
  // the shared list once.
  result.appraisal = appraisal_.appraise_cached(response.iml, iml);
  if (!result.appraisal.trustworthy) {
    result.reason = "IML appraisal failed: " + result.appraisal.reason;
    return result;
  }

  result.trustworthy = true;
  result.reason = "host attested";
  {
    const std::lock_guard<std::shared_mutex> lock(mutex_);
    trusted_platforms_.insert(result.platform_id);
    ++hosts_attested_;
  }
  VNFSGX_LOG_INFO("vm", "host attested, IML entries: ", result.iml_entries);
  return result;
}

VnfAttestation VerificationManager::attest_vnf(net::Stream& channel,
                                               const std::string& vnf_name) {
  static obs::Histogram& duration = obs::registry().histogram(
      "vnfsgx_vnf_attestation_duration_us", {}, {},
      "Wall time of Figure-1 steps 3-4 (enclave challenge, quote, IAS)");
  obs::Span span = obs::tracer().start_span("enclave_attestation",
                                            obs::kStepEnclaveAttestation);
  span.annotate("vnf", vnf_name);
  VnfAttestation result = attest_vnf_impl(channel, vnf_name, span);
  span.annotate("result", result.trustworthy ? "ok" : "fail");
  if (!result.trustworthy) span.annotate("reason", result.reason);
  span.end();
  duration.observe(span.elapsed_us());
  attestation_counter("vnf", result.trustworthy).add();
  return result;
}

VnfAttestation VerificationManager::attest_vnf_impl(net::Stream& channel,
                                                    const std::string& vnf_name,
                                                    obs::Span& span) {
  VnfAttestation result;

  AttestVnfRequest request;
  request.vnf_name = vnf_name;
  request.nonce = fresh_nonce();
  const Bytes raw = rpc(channel, encode(request));
  if (peek_type(raw) == MessageType::kError) {
    result.reason = "host error: " + decode_error(raw).what;
    return result;
  }
  const AttestVnfResponse response = decode_attest_vnf_response(raw);

  ias::VerificationReport avr = [&] {
    obs::Span verify = span.child("enclave_quote_verification",
                                  obs::kStepEnclaveQuoteVerification);
    return ias_.verify_quote(response.quote);
  }();
  return finish_vnf_attestation(vnf_name, request.nonce, response, avr);
}

VnfAttestation VerificationManager::finish_vnf_attestation(
    const std::string& vnf_name, const Nonce& nonce,
    const AttestVnfResponse& response, const ias::VerificationReport& avr) {
  VnfAttestation result;
  result.quote_status = avr.status();
  if (result.quote_status != ias::QuoteStatus::kOk) {
    result.reason = "IAS rejected quote: " + ias::to_string(result.quote_status);
    return result;
  }
  const sgx::ReportBody quoted = avr.quoted_enclave();
  result.platform_id = avr.platform_id();
  result.public_key = response.public_key;

  // The protocol continues only on hosts that passed attestation (§2).
  if (!platform_trusted(result.platform_id)) {
    result.reason = "hosting platform not attested";
    return result;
  }
  if (quoted.mr_enclave != vnf::credential_enclave_measurement() ||
      !appraisal_.enclave_allowed(quoted.mr_enclave)) {
    result.reason = "quote from unrecognized enclave";
    return result;
  }
  const sgx::ReportData expected =
      vnf::credential_report_data(nonce, response.public_key);
  if (!crypto::ct_equal(ByteView(expected.data(), expected.size()),
                        ByteView(quoted.report_data.data(),
                                 quoted.report_data.size()))) {
    result.reason = "report data does not bind nonce+key (replay?)";
    return result;
  }

  result.trustworthy = true;
  result.reason = "VNF enclave attested";
  {
    const std::lock_guard<std::shared_mutex> lock(mutex_);
    attested_vnfs_[vnf_name] =
        AttestedVnf{response.public_key, result.platform_id};
    ++vnfs_attested_;
  }
  VNFSGX_LOG_INFO("vm", "VNF '", vnf_name, "' enclave attested");
  return result;
}

std::vector<VnfAttestation> VerificationManager::attest_fleet(
    std::span<const FleetTarget> targets, std::size_t max_workers) {
  static obs::Histogram& duration = obs::registry().histogram(
      "vnfsgx_fleet_attestation_duration_us", {}, {},
      "Wall time of one attest_fleet call (all targets, all phases)");
  static obs::Histogram& batch_size = obs::registry().histogram(
      "vnfsgx_ed25519_batch_size", {},
      {1, 2, 4, 8, 16, 32, 64, 128, 256},
      "AVR signatures checked per Ed25519 batch verification");

  std::vector<VnfAttestation> results(targets.size());
  if (targets.empty()) return results;

  obs::Span span = obs::tracer().start_span("fleet_attestation",
                                            obs::kStepEnclaveAttestation);
  span.annotate("fleet_size", std::to_string(targets.size()));

  struct Slot {
    AttestVnfRequest request;
    AttestVnfResponse response;
    ias::VerificationReport avr;
    std::string error;  // transport/decode/IAS failure captured by the worker
    bool have_avr = false;
  };
  std::vector<Slot> slots(targets.size());

  // Phase 0 (serial): draw every nonce up front — the RandomSource is not
  // required to be thread-safe, so it must not be shared across workers.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    slots[i].request.vnf_name = targets[i].vnf_name;
    slots[i].request.nonce = fresh_nonce();
  }

  // Phase 1 (parallel): overlap the RPC and IAS legs of independent
  // attestations on a bounded worker set. The AVR signature check is
  // deferred to one batch verification in phase 2. Each worker owns the
  // slots it claims; channels are per-target, and the IAS client is
  // thread-safe (pooled).
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= targets.size()) return;
      Slot& slot = slots[i];
      try {
        const Bytes raw = rpc(*targets[i].channel, encode(slot.request));
        if (peek_type(raw) == MessageType::kError) {
          slot.error = "host error: " + decode_error(raw).what;
          continue;
        }
        slot.response = decode_attest_vnf_response(raw);
        slot.avr = ias_.fetch_report_unverified(slot.response.quote);
        slot.have_avr = true;
      } catch (const std::exception& e) {
        slot.error = e.what();
      }
    }
  };
  if (max_workers == 0) max_workers = 8;
  const std::size_t worker_count = std::min(max_workers, targets.size());
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) workers.emplace_back(worker);
  for (std::thread& t : workers) t.join();

  // Phase 2 (serial): one Ed25519 batch verification over every collected
  // AVR. The views alias slot storage, which no longer moves.
  std::vector<std::size_t> pending;
  std::vector<crypto::Ed25519BatchItem> items;
  pending.reserve(slots.size());
  items.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].have_avr) continue;
    pending.push_back(i);
    crypto::Ed25519BatchItem item;
    item.public_key = ias_.report_signing_key();
    item.message = ByteView(
        reinterpret_cast<const std::uint8_t*>(slots[i].avr.body_json.data()),
        slots[i].avr.body_json.size());
    item.signature =
        ByteView(slots[i].avr.signature.data(), slots[i].avr.signature.size());
    items.push_back(item);
  }
  batch_size.observe(static_cast<double>(items.size()));
  const std::vector<bool> sig_ok = crypto::ed25519_verify_batch(
      std::span<const crypto::Ed25519BatchItem>(items), &rng_);

  // Phase 3 (serial): per-target checks and state updates, identical to the
  // attest_vnf tail.
  std::vector<bool> avr_trusted(slots.size(), false);
  for (std::size_t j = 0; j < pending.size(); ++j) {
    avr_trusted[pending[j]] = sig_ok[j];
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    VnfAttestation& result = results[i];
    if (!slots[i].error.empty()) {
      result.reason = slots[i].error;
    } else if (!avr_trusted[i]) {
      result.reason = "ias: report signature verification failed";
    } else {
      result = finish_vnf_attestation(targets[i].vnf_name,
                                      slots[i].request.nonce,
                                      slots[i].response, slots[i].avr);
    }
    attestation_counter("vnf", result.trustworthy).add();
  }

  std::size_t ok_count = 0;
  for (const VnfAttestation& r : results) ok_count += r.trustworthy ? 1 : 0;
  span.annotate("trustworthy", std::to_string(ok_count));
  span.end();
  duration.observe(span.elapsed_us());
  VNFSGX_LOG_INFO("vm", "fleet attestation: ", ok_count, "/", targets.size(),
                  " trustworthy");
  return results;
}

std::optional<pki::Certificate> VerificationManager::enroll_vnf(
    net::Stream& channel, const std::string& vnf_name,
    const std::string& common_name) {
  static obs::Histogram& duration = obs::registry().histogram(
      "vnfsgx_provisioning_duration_us", {}, {},
      "Wall time of Figure-1 step 5 (issue + provision credential)");
  static obs::Counter& ok = obs::registry().counter(
      "vnfsgx_credentials_provisioned_total", {{"result", "ok"}},
      "Credential provisioning outcomes (Figure-1 step 5)");
  static obs::Counter& fail = obs::registry().counter(
      "vnfsgx_credentials_provisioned_total", {{"result", "fail"}},
      "Credential provisioning outcomes (Figure-1 step 5)");
  obs::Span span =
      obs::tracer().start_span("provisioning", obs::kStepProvisioning);
  span.annotate("vnf", vnf_name);
  std::optional<pki::Certificate> cert =
      enroll_vnf_impl(channel, vnf_name, common_name);
  span.annotate("result", cert ? "ok" : "fail");
  span.end();
  duration.observe(span.elapsed_us());
  (cert ? ok : fail).add();
  return cert;
}

std::optional<pki::Certificate> VerificationManager::enroll_vnf_impl(
    net::Stream& channel, const std::string& vnf_name,
    const std::string& common_name) {
  AttestedVnf attested;
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = attested_vnfs_.find(vnf_name);
    if (it == attested_vnfs_.end()) {
      VNFSGX_LOG_WARN("vm", "enroll refused: '", vnf_name, "' not attested");
      return std::nullopt;
    }
    attested = it->second;
  }

  // Generate + sign the client certificate for the enclave-held key.
  const pki::Certificate cert = ca_.issue(
      {common_name, options_.ca_name.organization}, attested.public_key,
      static_cast<std::uint8_t>(pki::KeyUsage::kClientAuth),
      options_.credential_validity_seconds);

  ProvisionRequest request;
  request.vnf_name = vnf_name;
  request.certificate = cert.encode();
  const Bytes raw = rpc(channel, encode(request));
  if (peek_type(raw) == MessageType::kError) {
    VNFSGX_LOG_WARN("vm", "provisioning error: ", decode_error(raw).what);
    return std::nullopt;
  }
  const ProvisionResponse response = decode_provision_response(raw);
  if (!response.ok) {
    VNFSGX_LOG_WARN("vm", "provisioning refused: ", response.detail);
    return std::nullopt;
  }
  {
    const std::lock_guard<std::shared_mutex> lock(mutex_);
    issued_[cert.serial] = attested.platform_id;
    ++credentials_issued_;
  }
  VNFSGX_LOG_INFO("vm", "credential provisioned to '", vnf_name,
                  "' serial=", cert.serial);
  return cert;
}

void VerificationManager::enroll_platform_aik(
    const sgx::PlatformId& platform_id, const crypto::Ed25519PublicKey& aik) {
  const std::lock_guard<std::shared_mutex> lock(mutex_);
  platform_aiks_[platform_id] = aik;
}

pki::RevocationList VerificationManager::revoke_certificate(
    std::uint64_t serial) {
  return ca_.revoke(serial);
}

pki::RevocationList VerificationManager::revoke_platform(
    const sgx::PlatformId& platform_id) {
  std::vector<std::uint64_t> serials;
  {
    const std::lock_guard<std::shared_mutex> lock(mutex_);
    trusted_platforms_.erase(platform_id);
    for (const auto& [serial, platform] : issued_) {
      if (platform == platform_id) serials.push_back(serial);
    }
    // Drop attestation state for VNFs on this platform.
    for (auto it = attested_vnfs_.begin(); it != attested_vnfs_.end();) {
      if (it->second.platform_id == platform_id) {
        it = attested_vnfs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  pki::RevocationList crl = ca_.current_crl();
  for (const std::uint64_t serial : serials) {
    crl = ca_.revoke(serial);
  }
  VNFSGX_LOG_WARN("vm", "platform distrusted; revoked ", serials.size(),
                  " credential(s)");
  return crl;
}

bool VerificationManager::platform_trusted(
    const sgx::PlatformId& platform_id) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return trusted_platforms_.count(platform_id) > 0;
}

std::vector<sgx::PlatformId> VerificationManager::trusted_platforms() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return std::vector<sgx::PlatformId>(trusted_platforms_.begin(),
                                      trusted_platforms_.end());
}

std::vector<std::string> VerificationManager::attested_vnf_names() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(attested_vnfs_.size());
  for (const auto& [name, info] : attested_vnfs_) names.push_back(name);
  return names;
}

}  // namespace vnfsgx::core
