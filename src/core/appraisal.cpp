#include "core/appraisal.h"

namespace vnfsgx::core {

void AppraisalDatabase::expect_file(const std::string& path,
                                    const ima::Digest& digest) {
  expected_files_[path] = digest;
}

void AppraisalDatabase::learn(const ima::MeasurementList& golden) {
  for (const ima::ImaEntry& entry : golden.entries()) {
    if (!entry.is_violation()) {
      expected_files_[entry.file_path] = entry.file_digest;
    }
  }
}

void AppraisalDatabase::allow_enclave(const sgx::Measurement& mr_enclave) {
  allowed_enclaves_.insert(mr_enclave);
}

bool AppraisalDatabase::enclave_allowed(
    const sgx::Measurement& mr_enclave) const {
  return allowed_enclaves_.count(mr_enclave) > 0;
}

AppraisalResult AppraisalDatabase::appraise(
    const ima::MeasurementList& iml) const {
  AppraisalResult result;
  for (const ima::ImaEntry& entry : iml.entries()) {
    if (entry.is_violation()) {
      result.reason = "measurement violation recorded";
      result.offending_paths.push_back(entry.file_path);
      continue;
    }
    const auto it = expected_files_.find(entry.file_path);
    if (it == expected_files_.end()) {
      result.reason = "unexpected file measured";
      result.offending_paths.push_back(entry.file_path);
      continue;
    }
    if (it->second != entry.file_digest) {
      result.reason = "file digest mismatch";
      result.offending_paths.push_back(entry.file_path);
    }
  }
  result.trustworthy = result.offending_paths.empty();
  if (result.trustworthy) result.reason = "all measurements match";
  return result;
}

}  // namespace vnfsgx::core
