#include "core/appraisal.h"

#include "obs/metrics.h"

namespace vnfsgx::core {

namespace {

constexpr std::size_t kMaxCachedAppraisals = 1024;

obs::Counter& cache_counter(const char* result) {
  return obs::registry().counter(
      "vnfsgx_cache_requests_total",
      {{"cache", "appraisal"}, {"result", result}},
      "IML appraisal cache lookups by outcome");
}

obs::Counter& eviction_counter() {
  return obs::registry().counter(
      "vnfsgx_cache_evictions_total", {{"cache", "appraisal"}},
      "Cached appraisals dropped (policy generation bump or capacity)");
}

}  // namespace

void AppraisalDatabase::bump_generation() {
  generation_.fetch_add(1, std::memory_order_release);
}

std::uint64_t AppraisalDatabase::generation() const {
  return generation_.load(std::memory_order_acquire);
}

AppraisalDatabase::CacheStripe& AppraisalDatabase::stripe_for(
    const crypto::Sha256Digest& key) const {
  // SHA-256 output is uniform; the first byte picks a stripe fairly.
  return cache_stripes_[key[0] % kCacheStripes];
}

std::uint64_t AppraisalDatabase::cache_hits() const {
  std::uint64_t total = 0;
  for (const CacheStripe& stripe : cache_stripes_) {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.hits;
  }
  return total;
}

std::uint64_t AppraisalDatabase::cache_misses() const {
  std::uint64_t total = 0;
  for (const CacheStripe& stripe : cache_stripes_) {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.misses;
  }
  return total;
}

void AppraisalDatabase::expect_file(const std::string& path,
                                    const ima::Digest& digest) {
  expected_files_[path] = digest;
  bump_generation();
}

void AppraisalDatabase::learn(const ima::MeasurementList& golden) {
  for (const ima::ImaEntry& entry : golden.entries()) {
    if (!entry.is_violation()) {
      expected_files_[entry.file_path] = entry.file_digest;
    }
  }
  bump_generation();
}

void AppraisalDatabase::allow_enclave(const sgx::Measurement& mr_enclave) {
  allowed_enclaves_.insert(mr_enclave);
  bump_generation();
}

bool AppraisalDatabase::enclave_allowed(
    const sgx::Measurement& mr_enclave) const {
  return allowed_enclaves_.count(mr_enclave) > 0;
}

AppraisalResult AppraisalDatabase::appraise(
    const ima::MeasurementList& iml) const {
  AppraisalResult result;
  for (const ima::ImaEntry& entry : iml.entries()) {
    if (entry.is_violation()) {
      result.reason = "measurement violation recorded";
      result.offending_paths.push_back(entry.file_path);
      continue;
    }
    const auto it = expected_files_.find(entry.file_path);
    if (it == expected_files_.end()) {
      result.reason = "unexpected file measured";
      result.offending_paths.push_back(entry.file_path);
      continue;
    }
    if (it->second != entry.file_digest) {
      result.reason = "file digest mismatch";
      result.offending_paths.push_back(entry.file_path);
    }
  }
  result.trustworthy = result.offending_paths.empty();
  if (result.trustworthy) result.reason = "all measurements match";
  return result;
}

AppraisalResult AppraisalDatabase::appraise_cached(
    ByteView encoded_iml, const ima::MeasurementList& iml) const {
  const crypto::Sha256Digest key = crypto::Sha256::hash(encoded_iml);
  CacheStripe& stripe = stripe_for(key);
  const std::uint64_t current = generation_.load(std::memory_order_acquire);
  {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    if (stripe.generation != current) {
      if (!stripe.map.empty()) eviction_counter().add(stripe.map.size());
      stripe.map.clear();
      stripe.generation = current;
    }
    const auto it = stripe.map.find(key);
    if (it != stripe.map.end()) {
      ++stripe.hits;
      cache_counter("hit").add();
      return it->second;
    }
    ++stripe.misses;
    cache_counter("miss").add();
  }

  const AppraisalResult result = appraise(iml);

  const std::lock_guard<std::mutex> lock(stripe.mutex);
  // The appraisal ran against the generation captured above; if policy
  // changed meanwhile, drop the verdict rather than publish a stale one.
  if (generation_.load(std::memory_order_acquire) != current ||
      stripe.generation != current) {
    return result;
  }
  if (stripe.map.size() >= kMaxCachedAppraisals / kCacheStripes) {
    stripe.map.erase(stripe.map.begin());
    eviction_counter().add();
  }
  stripe.map[key] = result;
  return result;
}

}  // namespace vnfsgx::core
