#include "core/appraisal.h"

#include "obs/metrics.h"

namespace vnfsgx::core {

namespace {

constexpr std::size_t kMaxCachedAppraisals = 1024;

obs::Counter& cache_counter(const char* result) {
  return obs::registry().counter(
      "vnfsgx_cache_requests_total",
      {{"cache", "appraisal"}, {"result", result}},
      "IML appraisal cache lookups by outcome");
}

obs::Counter& eviction_counter() {
  return obs::registry().counter(
      "vnfsgx_cache_evictions_total", {{"cache", "appraisal"}},
      "Cached appraisals dropped (policy generation bump or capacity)");
}

}  // namespace

void AppraisalDatabase::bump_generation() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  ++generation_;
}

std::uint64_t AppraisalDatabase::generation() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return generation_;
}

std::uint64_t AppraisalDatabase::cache_hits() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_hits_;
}

std::uint64_t AppraisalDatabase::cache_misses() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_misses_;
}

void AppraisalDatabase::expect_file(const std::string& path,
                                    const ima::Digest& digest) {
  expected_files_[path] = digest;
  bump_generation();
}

void AppraisalDatabase::learn(const ima::MeasurementList& golden) {
  for (const ima::ImaEntry& entry : golden.entries()) {
    if (!entry.is_violation()) {
      expected_files_[entry.file_path] = entry.file_digest;
    }
  }
  bump_generation();
}

void AppraisalDatabase::allow_enclave(const sgx::Measurement& mr_enclave) {
  allowed_enclaves_.insert(mr_enclave);
  bump_generation();
}

bool AppraisalDatabase::enclave_allowed(
    const sgx::Measurement& mr_enclave) const {
  return allowed_enclaves_.count(mr_enclave) > 0;
}

AppraisalResult AppraisalDatabase::appraise(
    const ima::MeasurementList& iml) const {
  AppraisalResult result;
  for (const ima::ImaEntry& entry : iml.entries()) {
    if (entry.is_violation()) {
      result.reason = "measurement violation recorded";
      result.offending_paths.push_back(entry.file_path);
      continue;
    }
    const auto it = expected_files_.find(entry.file_path);
    if (it == expected_files_.end()) {
      result.reason = "unexpected file measured";
      result.offending_paths.push_back(entry.file_path);
      continue;
    }
    if (it->second != entry.file_digest) {
      result.reason = "file digest mismatch";
      result.offending_paths.push_back(entry.file_path);
    }
  }
  result.trustworthy = result.offending_paths.empty();
  if (result.trustworthy) result.reason = "all measurements match";
  return result;
}

AppraisalResult AppraisalDatabase::appraise_cached(
    ByteView encoded_iml, const ima::MeasurementList& iml) const {
  const crypto::Sha256Digest key = crypto::Sha256::hash(encoded_iml);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_generation_ != generation_) {
      if (!cache_.empty()) eviction_counter().add(cache_.size());
      cache_.clear();
      cache_generation_ = generation_;
    }
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cache_hits_;
      cache_counter("hit").add();
      return it->second;
    }
    ++cache_misses_;
    cache_counter("miss").add();
  }

  const AppraisalResult result = appraise(iml);

  const std::lock_guard<std::mutex> lock(cache_mutex_);
  // The appraisal ran against the generation captured above; if policy
  // changed meanwhile, drop the verdict rather than publish a stale one.
  if (cache_generation_ != generation_) return result;
  if (cache_.size() >= kMaxCachedAppraisals) {
    cache_.erase(cache_.begin());
    eviction_counter().add();
  }
  cache_[key] = result;
  return result;
}

}  // namespace vnfsgx::core
