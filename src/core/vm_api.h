// Operator-facing REST API of the Verification Manager.
//
// The paper's Verification Manager is the operational nerve centre; this
// module gives operators the visibility/knobs a deployment needs: trusted
// platforms, attested VNFs, issued credentials, the CA certificate and CRL
// distribution, and manual revocation. Served like any router (plain or
// behind TLS).
#pragma once

#include "core/verification_manager.h"
#include "http/server.h"

namespace vnfsgx::core {

/// Routes:
///   GET  /vm/status                 -> counters + CA subject
///   GET  /vm/ca/certificate         -> base64 root certificate
///   GET  /vm/ca/crl                 -> base64 current CRL
///   GET  /vm/platforms              -> trusted platform ids (hex)
///   POST /vm/revoke {"serial": N}   -> revoke one credential, returns CRL
///   POST /vm/revoke-platform {"platformId": "<hex>"} -> distrust + revoke
http::Router make_vm_router(VerificationManager& vm);

}  // namespace vnfsgx::core
