#include "core/vm_api.h"

#include "common/base64.h"
#include "common/hex.h"
#include "json/json.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace vnfsgx::core {

namespace {

http::Response json_ok(json::Object body) {
  return http::Response::json(200,
                              json::serialize(json::Value(std::move(body))));
}

}  // namespace

http::Router make_vm_router(VerificationManager& vm) {
  http::Router router;

  router.add("GET", "/vm/status",
             [&vm](const http::Request&, const http::RequestContext&) {
               json::Object body;
               body["ca"] = vm.ca_certificate().subject.to_string();
               body["hostsAttested"] = vm.hosts_attested();
               body["vnfsAttested"] = vm.vnfs_attested();
               body["credentialsIssued"] = vm.credentials_issued();
               body["trustedPlatforms"] = vm.trusted_platforms().size();
               json::Array vnfs;
               for (const auto& name : vm.attested_vnf_names()) {
                 vnfs.push_back(json::Value(name));
               }
               body["attestedVnfs"] = std::move(vnfs);
               return json_ok(std::move(body));
             });

  router.add("GET", "/vm/ca/certificate",
             [&vm](const http::Request&, const http::RequestContext&) {
               json::Object body;
               body["certificate"] =
                   base64_encode(vm.ca_certificate().encode());
               body["fingerprint"] = vm.ca_certificate().fingerprint();
               return json_ok(std::move(body));
             });

  router.add("GET", "/vm/ca/crl",
             [&vm](const http::Request&, const http::RequestContext&) {
               const pki::RevocationList crl = vm.ca().current_crl();
               json::Object body;
               body["crl"] = base64_encode(crl.encode());
               body["revokedSerials"] = crl.revoked_serials.size();
               return json_ok(std::move(body));
             });

  router.add("GET", "/vm/platforms",
             [&vm](const http::Request&, const http::RequestContext&) {
               json::Array platforms;
               for (const auto& id : vm.trusted_platforms()) {
                 platforms.push_back(
                     json::Value(to_hex(ByteView(id.data(), id.size()))));
               }
               json::Object body;
               body["trusted"] = std::move(platforms);
               return json_ok(std::move(body));
             });

  // Prometheus scrape + JSON snapshot of the process-wide registry. The VM
  // process hosts the Figure-1 verifier, so one full workflow run shows up
  // here as attestation/provisioning/handshake counters and step spans.
  router.add("GET", "/vm/metrics",
             [](const http::Request&, const http::RequestContext&) {
               return http::Response::text(
                   200, obs::to_prometheus(obs::registry()));
             });

  router.add("GET", "/vm/metrics/json",
             [](const http::Request&, const http::RequestContext&) {
               return http::Response::json(
                   200, json::serialize(obs::snapshot_json(
                            obs::registry().collect(), obs::tracer().spans(),
                            "verification-manager")));
             });

  router.add("POST", "/vm/revoke",
             [&vm](const http::Request& req, const http::RequestContext&) {
               try {
                 const json::Value body =
                     json::parse(vnfsgx::to_string(req.body));
                 const auto serial =
                     static_cast<std::uint64_t>(body.at("serial").as_number());
                 const pki::RevocationList crl = vm.revoke_certificate(serial);
                 json::Object out;
                 out["crl"] = base64_encode(crl.encode());
                 out["revokedSerials"] = crl.revoked_serials.size();
                 return json_ok(std::move(out));
               } catch (const ParseError&) {
                 return http::Response::error(400, "bad request");
               }
             });

  router.add("POST", "/vm/revoke-platform",
             [&vm](const http::Request& req, const http::RequestContext&) {
               try {
                 const json::Value body =
                     json::parse(vnfsgx::to_string(req.body));
                 const Bytes raw =
                     from_hex(body.at("platformId").as_string());
                 sgx::PlatformId id{};
                 if (raw.size() != id.size()) {
                   return http::Response::error(400, "bad platform id");
                 }
                 std::copy(raw.begin(), raw.end(), id.begin());
                 const pki::RevocationList crl = vm.revoke_platform(id);
                 json::Object out;
                 out["crl"] = base64_encode(crl.encode());
                 out["revokedSerials"] = crl.revoked_serials.size();
                 return json_ok(std::move(out));
               } catch (const std::exception&) {
                 return http::Response::error(400, "bad request");
               }
             });

  return router;
}

}  // namespace vnfsgx::core
