// Appraisal policy: the Verification Manager's database of expected
// measurements — golden IMA file digests and whitelisted enclave
// measurements — and the appraisal verdict logic.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ima/measurement_list.h"
#include "sgx/measurement.h"

namespace vnfsgx::core {

struct AppraisalResult {
  bool trustworthy = false;
  std::string reason;
  std::vector<std::string> offending_paths;
};

class AppraisalDatabase {
 public:
  /// Register the expected digest for a measured file.
  void expect_file(const std::string& path, const ima::Digest& digest);

  /// Convenience: learn all entries of a known-good IML as expectations
  /// (golden-host enrollment).
  void learn(const ima::MeasurementList& golden);

  /// Whitelist an enclave measurement (attestation / credential enclaves).
  void allow_enclave(const sgx::Measurement& mr_enclave);
  bool enclave_allowed(const sgx::Measurement& mr_enclave) const;

  /// Appraise a host's measurement list:
  ///  * violation entries (zero digest) => untrustworthy,
  ///  * entries for unknown paths       => untrustworthy,
  ///  * digest mismatches               => untrustworthy,
  /// otherwise trustworthy.
  AppraisalResult appraise(const ima::MeasurementList& iml) const;

  std::size_t expected_file_count() const { return expected_files_.size(); }

 private:
  std::map<std::string, ima::Digest> expected_files_;
  std::set<sgx::Measurement> allowed_enclaves_;
};

}  // namespace vnfsgx::core
