// Appraisal policy: the Verification Manager's database of expected
// measurements — golden IMA file digests and whitelisted enclave
// measurements — and the appraisal verdict logic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "ima/measurement_list.h"
#include "sgx/measurement.h"

namespace vnfsgx::core {

struct AppraisalResult {
  bool trustworthy = false;
  std::string reason;
  std::vector<std::string> offending_paths;
};

class AppraisalDatabase {
 public:
  /// Register the expected digest for a measured file.
  void expect_file(const std::string& path, const ima::Digest& digest);

  /// Convenience: learn all entries of a known-good IML as expectations
  /// (golden-host enrollment).
  void learn(const ima::MeasurementList& golden);

  /// Whitelist an enclave measurement (attestation / credential enclaves).
  void allow_enclave(const sgx::Measurement& mr_enclave);
  bool enclave_allowed(const sgx::Measurement& mr_enclave) const;

  /// Appraise a host's measurement list:
  ///  * violation entries (zero digest) => untrustworthy,
  ///  * entries for unknown paths       => untrustworthy,
  ///  * digest mismatches               => untrustworthy,
  /// otherwise trustworthy.
  AppraisalResult appraise(const ima::MeasurementList& iml) const;

  /// appraise() with memoization: the verdict for an IML is cached under
  /// SHA-256(encoded IML) + the current policy generation, so a fleet of
  /// hosts booted from one golden image appraises the shared list once.
  /// Any policy change (expect_file/learn/allow_enclave) bumps the
  /// generation and the very next appraisal re-evaluates — no stale-grant
  /// window. Callers must still bind `encoded_iml` to the attestation
  /// evidence (nonce/report-data checks) before trusting the verdict;
  /// only the policy appraisal is memoized. Thread-safe.
  AppraisalResult appraise_cached(ByteView encoded_iml,
                                  const ima::MeasurementList& iml) const;

  /// Policy generation; bumped by every mutation (cache-key component).
  std::uint64_t generation() const;

  // Cache telemetry for tests/benches (also exported as
  // vnfsgx_cache_requests_total{cache="appraisal"}).
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;

  std::size_t expected_file_count() const { return expected_files_.size(); }

 private:
  void bump_generation();

  std::map<std::string, ima::Digest> expected_files_;
  std::set<sgx::Measurement> allowed_enclaves_;

  /// Memoization cache, striped by IML digest so concurrent enrollments on
  /// different runtime shards don't serialize on one cache mutex. Each
  /// stripe lazily re-syncs to the policy generation.
  struct CacheStripe {
    mutable std::mutex mutex;
    mutable std::map<crypto::Sha256Digest, AppraisalResult> map;
    mutable std::uint64_t generation = 0;
    mutable std::uint64_t hits = 0;
    mutable std::uint64_t misses = 0;
  };
  static constexpr std::size_t kCacheStripes = 8;
  CacheStripe& stripe_for(const crypto::Sha256Digest& key) const;

  std::atomic<std::uint64_t> generation_{0};
  mutable CacheStripe cache_stripes_[kCacheStripes];
};

}  // namespace vnfsgx::core
