#include "core/host_agent.h"

#include "common/logging.h"
#include "net/framing.h"
#include "obs/metrics.h"

namespace vnfsgx::core {

namespace {

const char* request_label(MessageType type) {
  switch (type) {
    case MessageType::kAttestHostRequest:
      return "attest_host";
    case MessageType::kAttestVnfRequest:
      return "attest_vnf";
    case MessageType::kProvisionRequest:
      return "provision";
    default:
      return "unknown";
  }
}

}  // namespace

void HostAgent::register_vnf(vnf::Vnf& vnf) {
  const std::lock_guard<std::mutex> lock(mutex_);
  vnfs_[vnf.name()] = &vnf;
}

void HostAgent::serve(net::Stream& stream) {
  try {
    while (true) {
      Bytes request;
      try {
        request = net::read_frame(stream);
      } catch (const IoError&) {
        return;  // peer closed
      }
      net::write_frame(stream, serve_frame(request));
    }
  } catch (const Error& e) {
    VNFSGX_LOG_WARN("host-agent", host_.name(), ": connection error: ",
                    e.what());
  }
}

Bytes HostAgent::serve_frame(ByteView request) {
  try {
    return handle(request);
  } catch (const std::exception& e) {
    obs::registry()
        .counter("vnfsgx_host_agent_errors_total", {},
                 "Host-agent requests answered with an error message")
        .add();
    return encode(ErrorMessage{e.what()});
  }
}

Bytes HostAgent::handle(ByteView request) {
  obs::registry()
      .counter("vnfsgx_host_agent_requests_total",
               {{"type", request_label(peek_type(request))}},
               "Attestation-protocol requests served by the host agent")
      .add();
  switch (peek_type(request)) {
    case MessageType::kAttestHostRequest:
      return handle_attest_host(decode_attest_host_request(request));
    case MessageType::kAttestVnfRequest:
      return handle_attest_vnf(decode_attest_vnf_request(request));
    case MessageType::kProvisionRequest:
      return handle_provision(decode_provision_request(request));
    default:
      throw ProtocolError("host agent: unexpected message type");
  }
}

Bytes HostAgent::handle_attest_host(const AttestHostRequest& request) {
  auto enclave = host_.attestation_enclave();
  if (!enclave) {
    throw Error("host agent: attestation enclave not loaded");
  }
  // Snapshot the IML, have the enclave bind it to the nonce, and convert
  // the report into a quote via the Quoting Enclave.
  const Bytes iml = host_.ima().list().encode();
  const sgx::TargetInfo qe_target =
      host_.sgx().quoting_enclave().target_info();
  const Bytes report_bytes = enclave->call(
      host::kOpCreateImlReport,
      host::encode_iml_report_request(request.nonce, iml, qe_target));
  const sgx::Report report = sgx::Report::decode(report_bytes);
  const sgx::Quote quote = host_.sgx().quoting_enclave().quote(report);

  AttestHostResponse response;
  response.quote = quote.encode();
  response.iml = iml;
  // §4 extension: ship an authenticated PCR-10 quote bound to the same
  // nonce, so the verifier can cross-check the IML against the TPM.
  response.tpm_quote =
      host_.tpm().quote(ima::kImaPcrIndex, request.nonce).encode();
  return encode(response);
}

Bytes HostAgent::handle_attest_vnf(const AttestVnfRequest& request) {
  vnf::Vnf* vnf = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = vnfs_.find(request.vnf_name);
    if (it != vnfs_.end()) vnf = it->second;
  }
  if (!vnf) throw Error("host agent: unknown VNF '" + request.vnf_name + "'");

  const crypto::Ed25519PublicKey public_key = vnf->credentials().generate_key();
  const sgx::TargetInfo qe_target =
      host_.sgx().quoting_enclave().target_info();
  const sgx::Report report =
      vnf->credentials().create_report(request.nonce, qe_target);
  const sgx::Quote quote = host_.sgx().quoting_enclave().quote(report);

  AttestVnfResponse response;
  response.quote = quote.encode();
  response.public_key = public_key;
  return encode(response);
}

Bytes HostAgent::handle_provision(const ProvisionRequest& request) {
  vnf::Vnf* vnf = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = vnfs_.find(request.vnf_name);
    if (it != vnfs_.end()) vnf = it->second;
  }
  ProvisionResponse response;
  if (!vnf) {
    response.ok = false;
    response.detail = "unknown VNF";
    return encode(response);
  }
  try {
    vnf->credentials().install_certificate(
        pki::Certificate::decode(request.certificate));
    response.ok = true;
    response.detail = "credential installed in enclave";
  } catch (const std::exception& e) {
    response.ok = false;
    response.detail = e.what();
  }
  return encode(response);
}

}  // namespace vnfsgx::core
