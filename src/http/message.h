// HTTP/1.1 message model: requests, responses, case-insensitive headers.
//
// Implements the subset Floodlight's REST API needs (GET/POST/PUT/DELETE,
// Content-Length bodies, keep-alive) — enough to serve the controller's
// north-bound interface over plain streams or TLS sessions.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace vnfsgx::http {

/// Ordered header list with case-insensitive name lookup (RFC 9110 §5.1).
class Headers {
 public:
  void set(std::string name, std::string value);
  void add(std::string name, std::string value);
  /// First value for `name`, if present.
  std::optional<std::string> get(std::string_view name) const;
  bool contains(std::string_view name) const { return get(name).has_value(); }

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct Request {
  std::string method = "GET";
  std::string target = "/";  // path + optional query
  Headers headers;
  Bytes body;

  /// Path portion of the target (before '?').
  std::string path() const;
  /// Decoded query parameter, if present.
  std::optional<std::string> query_param(std::string_view key) const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  Bytes body;

  static Response json(int status, const std::string& body_text);
  static Response text(int status, const std::string& body_text);
  static Response error(int status, const std::string& message);
};

/// Standard reason phrase for a status code ("Not Found", ...).
std::string reason_phrase(int status);

}  // namespace vnfsgx::http
