// Glue between the HTTP server loop and the net::ServerRuntime pool: a
// ConnectionDriver that keeps per-connection protocol state (optional TLS
// session, the buffered HTTP connection) alive across parked intervals and
// serves exactly one request/response exchange per readiness burst.
#pragma once

#include <functional>

#include "http/server.h"
#include "net/server.h"

namespace vnfsgx::http {

/// Upgrades a freshly accepted transport into the application stream on
/// the connection's first burst — e.g. runs a TLS accept and records the
/// authenticated peer in the context. Throwing rejects the connection.
/// The default (empty) wrap serves plain HTTP on the transport.
using SessionWrap =
    std::function<net::StreamPtr(net::StreamPtr, RequestContext&)>;

/// Driver factory for ServerRuntime::listen_*: each accepted connection
/// gets a driver that (lazily, on first readable) wraps the transport and
/// then serves one HTTP exchange per burst. The router is borrowed and
/// must outlive the runtime.
net::DriverFactory make_http_driver_factory(const Router& router,
                                            SessionWrap wrap = {});

}  // namespace vnfsgx::http
