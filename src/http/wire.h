// HTTP/1.1 wire encoding/decoding over a Stream.
//
// Blocking reader with an internal buffer; handles pipelined keep-alive
// exchanges. Bodies are delimited by Content-Length (chunked encoding is
// rejected — no peer in this system produces it).
//
// The read buffer, the CRLFCRLF scan cursor, and the encode scratch all
// persist across keep-alive requests, so a long-lived connection settles
// into a zero-allocation steady state on the wire layer (mirroring the TLS
// record path's reused scratch buffers).
#pragma once

#include "http/message.h"
#include "net/stream.h"

namespace vnfsgx::http {

inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;

/// Serialize a request to the wire (adds Content-Length).
Bytes encode_request(const Request& request);

/// Serialize a response to the wire (adds Content-Length).
Bytes encode_response(const Response& response);

/// Append-serialize into a caller-owned scratch buffer (cleared first);
/// lets keep-alive loops reuse one allocation across messages.
void encode_request_into(Bytes& out, const Request& request);
void encode_response_into(Bytes& out, const Response& response);

/// Buffered connection wrapper used by both client and server sides.
class Connection {
 public:
  /// Borrows the stream; the caller keeps ownership and must outlive this.
  explicit Connection(net::Stream& stream) : stream_(stream) {}

  /// Read one request. Returns nullopt on clean EOF before the first byte.
  /// Throws ParseError on malformed input, IoError on mid-message EOF.
  std::optional<Request> read_request();

  /// Read one response. Same EOF/exception contract as read_request.
  std::optional<Response> read_response();

  void write(const Request& request) {
    encode_request_into(write_scratch_, request);
    stream_.write(write_scratch_);
  }
  void write(const Response& response) {
    encode_response_into(write_scratch_, response);
    stream_.write(write_scratch_);
  }

  /// True when a later message's bytes are already sitting in the read
  /// buffer (pipelined requests). The server runtime re-dispatches such
  /// connections instead of parking them — the readiness source only sees
  /// the transport, not this buffer.
  bool has_buffered_data() const { return pos_ < buffer_.size(); }

  /// Connection diet: release the read buffer and encode scratch into
  /// `pool` (nullptr = just free) while the connection idles between
  /// keep-alive requests; the next read/write allocates (or draws pooled
  /// capacity) lazily. Refuses to touch a buffer still holding pipelined
  /// bytes. Returns an estimate of bytes released.
  std::size_t release_idle_buffers(net::BufferPool* pool);

 private:
  /// Find the end of the next header block (index one past CRLFCRLF),
  /// filling from the stream as needed; npos-like nullopt on clean EOF.
  std::optional<std::size_t> find_header_end();
  Bytes read_body(const Headers& headers);
  bool fill();  // pull more bytes from the stream; false on EOF
  void compact();

  net::Stream& stream_;
  Bytes buffer_;
  std::size_t pos_ = 0;
  std::size_t scan_ = 0;  // resume point for the CRLFCRLF search
  Bytes write_scratch_;
};

}  // namespace vnfsgx::http
