// HTTP/1.1 wire encoding/decoding over a Stream.
//
// Blocking reader with an internal buffer; handles pipelined keep-alive
// exchanges. Bodies are delimited by Content-Length (chunked encoding is
// rejected — no peer in this system produces it).
#pragma once

#include "http/message.h"
#include "net/stream.h"

namespace vnfsgx::http {

inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;

/// Serialize a request to the wire (adds Content-Length).
Bytes encode_request(const Request& request);

/// Serialize a response to the wire (adds Content-Length).
Bytes encode_response(const Response& response);

/// Buffered connection wrapper used by both client and server sides.
class Connection {
 public:
  /// Borrows the stream; the caller keeps ownership and must outlive this.
  explicit Connection(net::Stream& stream) : stream_(stream) {}

  /// Read one request. Returns nullopt on clean EOF before the first byte.
  /// Throws ParseError on malformed input, IoError on mid-message EOF.
  std::optional<Request> read_request();

  /// Read one response. Same EOF/exception contract as read_request.
  std::optional<Response> read_response();

  void write(const Request& request) { stream_.write(encode_request(request)); }
  void write(const Response& response) {
    stream_.write(encode_response(response));
  }

 private:
  /// Read until CRLFCRLF; returns header block including final CRLF pair,
  /// or nullopt on immediate EOF.
  std::optional<std::string> read_header_block();
  Bytes read_body(const Headers& headers);
  bool fill();  // pull more bytes from the stream; false on EOF

  net::Stream& stream_;
  Bytes buffer_;
  std::size_t pos_ = 0;
};

}  // namespace vnfsgx::http
