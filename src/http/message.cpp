#include "http/message.h"

#include <algorithm>
#include <cctype>

namespace vnfsgx::http {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

}  // namespace

void Headers::set(std::string name, std::string value) {
  for (auto& [n, v] : entries_) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(value));
}

void Headers::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (iequals(n, name)) return v;
  }
  return std::nullopt;
}

std::string Request::path() const {
  const auto q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::optional<std::string> Request::query_param(std::string_view key) const {
  const auto q = target.find('?');
  if (q == std::string::npos) return std::nullopt;
  std::string_view query(target);
  query.remove_prefix(q + 1);
  while (!query.empty()) {
    const auto amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    const auto eq = pair.find('=');
    const std::string_view k = eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (k == key) {
      return std::string(eq == std::string_view::npos ? "" : pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return std::nullopt;
}

std::string reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

Response Response::json(int status, const std::string& body_text) {
  Response r;
  r.status = status;
  r.reason = reason_phrase(status);
  r.headers.set("Content-Type", "application/json");
  r.body = to_bytes(body_text);
  return r;
}

Response Response::text(int status, const std::string& body_text) {
  Response r;
  r.status = status;
  r.reason = reason_phrase(status);
  r.headers.set("Content-Type", "text/plain");
  r.body = to_bytes(body_text);
  return r;
}

Response Response::error(int status, const std::string& message) {
  return json(status, "{\"error\":\"" + message + "\"}");
}

}  // namespace vnfsgx::http
