#include "http/runtime.h"

#include <optional>

#include "common/logging.h"
#include "obs/metrics.h"

namespace vnfsgx::http {

namespace {

class HttpDriver final : public net::ConnectionDriver {
 public:
  HttpDriver(net::StreamPtr transport, const Router& router, SessionWrap wrap)
      : transport_(std::move(transport)),
        router_(router),
        wrap_(std::move(wrap)) {}

  net::BurstResult on_readable() override {
    if (!session_) {
      // First burst: the peer's initial bytes are on the wire, so the
      // (possibly multi-round-trip) TLS accept can run to completion here.
      // A parked connection that never sent a byte never reaches this.
      try {
        RequestContext ctx;
        session_ = wrap_ ? wrap_(std::move(transport_), ctx)
                         : std::move(transport_);
        ctx_ = std::move(ctx);
      } catch (const TimeoutError&) {
        throw;  // metered by the runtime
      } catch (const Error& e) {
        static obs::Counter& rejected = obs::registry().counter(
            "vnfsgx_http_session_rejects_total", {},
            "Connections dropped during session setup (TLS handshake or "
            "authentication failure)");
        rejected.add();
        VNFSGX_LOG_DEBUG("http", "session setup failed: ", e.what());
        return net::BurstResult::kClose;
      }
      conn_.emplace(*session_);
    }
    if (serve_one(*conn_, router_, ctx_) == ServeResult::kClose) {
      return net::BurstResult::kClose;
    }
    // Bytes already decoded into userspace (pipelined request in the HTTP
    // buffer, or plaintext in the TLS session) are invisible to epoll/pipe
    // readiness — ask for an immediate re-dispatch instead of parking.
    const bool pending = conn_->has_buffered_data() || session_->buffered();
    return pending ? net::BurstResult::kMoreData
                   : net::BurstResult::kKeepAlive;
  }

  // A failed session wrap destroys the transport during unwinding (the TLS
  // accept consumes the stream); the runtime must not touch its borrowed
  // pointer or fd afterwards.
  bool transport_alive() const override {
    return transport_ != nullptr || session_ != nullptr;
  }

  // Connection diet: hand the HTTP wire buffers and the session's record
  // scratch/cipher state to the shard pool while the connection idles.
  // Only ever called after a kKeepAlive burst, so both layers exist and
  // have no buffered bytes (kMoreData would have been returned otherwise).
  std::size_t on_park(net::BufferPool* pool) override {
    if (!conn_ || !session_) return 0;
    std::size_t released = conn_->release_idle_buffers(pool);
    released += session_->park_buffers(pool);
    return released;
  }

 private:
  net::StreamPtr transport_;  // consumed by the wrap on the first burst
  const Router& router_;
  SessionWrap wrap_;
  net::StreamPtr session_;
  std::optional<Connection> conn_;
  RequestContext ctx_;
};

}  // namespace

net::DriverFactory make_http_driver_factory(const Router& router,
                                            SessionWrap wrap) {
  return [&router, wrap = std::move(wrap)](net::StreamPtr transport)
             -> std::unique_ptr<net::ConnectionDriver> {
    return std::make_unique<HttpDriver>(std::move(transport), router, wrap);
  };
}

}  // namespace vnfsgx::http
