#include "http/server.h"

#include "common/logging.h"

namespace vnfsgx::http {

void Router::add(const std::string& method, const std::string& path,
                 Handler handler) {
  Route route;
  route.method = method;
  if (path.size() >= 2 && path.compare(path.size() - 2, 2, "/*") == 0) {
    route.prefix = path.substr(0, path.size() - 2);
    route.wildcard = true;
  } else {
    route.prefix = path;
  }
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

Response Router::dispatch(const Request& request,
                          const RequestContext& ctx) const {
  const std::string path = request.path();
  const Route* best = nullptr;
  bool path_matched = false;
  for (const Route& route : routes_) {
    const bool matches =
        route.wildcard
            ? path.compare(0, route.prefix.size(), route.prefix) == 0
            : path == route.prefix;
    if (!matches) continue;
    path_matched = true;
    if (route.method != request.method) continue;
    if (!best || route.prefix.size() > best->prefix.size() ||
        (route.prefix.size() == best->prefix.size() && best->wildcard &&
         !route.wildcard)) {
      best = &route;
    }
  }
  if (best) return best->handler(request, ctx);
  if (path_matched) return Response::error(405, "method not allowed");
  return Response::error(404, "not found");
}

void serve_connection(net::Stream& stream, const Router& router,
                      const RequestContext& ctx) {
  Connection conn(stream);
  while (true) {
    std::optional<Request> request;
    try {
      request = conn.read_request();
    } catch (const ParseError& e) {
      conn.write(Response::error(400, "bad request"));
      return;
    } catch (const IoError&) {
      return;  // peer went away mid-message
    }
    if (!request) return;  // clean close

    Response response;
    try {
      response = router.dispatch(*request, ctx);
    } catch (const std::exception& e) {
      VNFSGX_LOG_WARN("http", "handler threw: ", e.what());
      response = Response::error(500, "internal error");
    }

    const bool close_requested =
        request->headers.get("Connection").value_or("") == "close";
    if (close_requested) response.headers.set("Connection", "close");
    try {
      conn.write(response);
    } catch (const IoError&) {
      return;
    }
    if (close_requested) return;
  }
}

}  // namespace vnfsgx::http
