#include "http/server.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"

namespace vnfsgx::http {

void Router::add(const std::string& method, const std::string& path,
                 Handler handler) {
  Route route;
  route.method = method;
  const bool wildcard =
      path.size() >= 2 && path.compare(path.size() - 2, 2, "/*") == 0;
  route.prefix = wildcard ? path.substr(0, path.size() - 2) : path;
  route.handler = std::move(handler);
  if (wildcard) {
    wildcard_.push_back(std::move(route));
    // Longest prefix first; stable so same-length prefixes keep
    // registration order (first registered wins, as before).
    std::stable_sort(wildcard_.begin(), wildcard_.end(),
                     [](const Route& a, const Route& b) {
                       return a.prefix.size() > b.prefix.size();
                     });
  } else {
    exact_.push_back(std::move(route));
    std::sort(exact_.begin(), exact_.end(),
              [](const Route& a, const Route& b) {
                return std::tie(a.prefix, a.method) <
                       std::tie(b.prefix, b.method);
              });
  }
}

Response Router::dispatch(const Request& request,
                          const RequestContext& ctx) const {
  const std::string path = request.path();
  bool path_matched = false;

  // Exact table: binary search the (path, method) range. An exact match is
  // always at least as long as any wildcard prefix of the same path, and
  // exact beats wildcard on ties, so it can short-circuit.
  const auto lo = std::lower_bound(
      exact_.begin(), exact_.end(), path,
      [](const Route& r, const std::string& p) { return r.prefix < p; });
  for (auto it = lo; it != exact_.end() && it->prefix == path; ++it) {
    if (it->method == request.method) return it->handler(request, ctx);
    path_matched = true;
  }

  // Wildcards, longest prefix first: the first method match wins.
  for (const Route& route : wildcard_) {
    if (path.compare(0, route.prefix.size(), route.prefix) != 0) continue;
    if (route.method == request.method) return route.handler(request, ctx);
    path_matched = true;
  }

  if (path_matched) return Response::error(405, "method not allowed");
  return Response::error(404, "not found");
}

ServeResult serve_one(Connection& conn, const Router& router,
                      const RequestContext& ctx) {
  std::optional<Request> request;
  try {
    request = conn.read_request();
  } catch (const ParseError&) {
    try {
      conn.write(Response::error(400, "bad request"));
    } catch (const IoError&) {
    }
    return ServeResult::kClose;
  } catch (const TimeoutError&) {
    throw;  // the server runtime meters stalled peers
  } catch (const IoError&) {
    return ServeResult::kClose;  // peer went away mid-message
  }
  if (!request) return ServeResult::kClose;  // clean close

  Response response;
  try {
    response = router.dispatch(*request, ctx);
  } catch (const std::exception& e) {
    VNFSGX_LOG_WARN("http", "handler threw: ", e.what());
    response = Response::error(500, "internal error");
  }

  const bool close_requested =
      request->headers.get("Connection").value_or("") == "close";
  if (close_requested) response.headers.set("Connection", "close");
  try {
    conn.write(response);
  } catch (const IoError&) {
    return ServeResult::kClose;
  }
  return close_requested ? ServeResult::kClose : ServeResult::kKeepAlive;
}

void serve_connection(net::Stream& stream, const Router& router,
                      const RequestContext& ctx) {
  Connection conn(stream);
  try {
    while (serve_one(conn, router, ctx) == ServeResult::kKeepAlive) {
    }
  } catch (const TimeoutError&) {
    // Standalone (non-runtime) serving treats a stalled peer like a close.
  }
}

}  // namespace vnfsgx::http
