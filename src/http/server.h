// HTTP server: router + per-connection serve loop.
//
// Transport-agnostic: `serve_connection` drives any Stream (plain pipe,
// TCP socket, or a TLS session), which is how the controller offers the
// same REST API in all three Floodlight security modes. `serve_one` is the
// single-burst variant the ServerRuntime worker pool runs per readiness
// event.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "http/wire.h"
#include "net/stream.h"

namespace vnfsgx::http {

/// Context a handler receives beyond the request itself.
struct RequestContext {
  /// Authenticated TLS client identity (certificate subject), empty for
  /// plain HTTP or server-auth-only TLS. Set by the controller's TLS layer.
  std::string client_identity;
  /// True when the client authenticated with an RA-TLS certificate whose
  /// attestation evidence the handshake appraised (Session::peer_attested).
  bool client_attested = false;
};

using Handler = std::function<Response(const Request&, const RequestContext&)>;

/// Method+path router. Paths match exactly, or by prefix when registered
/// with a trailing "/*" wildcard (longest prefix wins; an exact route beats
/// a wildcard of the same length).
///
/// Dispatch is O(log n) over a method+path-sorted table for exact routes
/// plus a short longest-first scan of the (few) wildcard routes — no longer
/// a linear pass over every registration per request.
class Router {
 public:
  void add(const std::string& method, const std::string& path, Handler handler);

  /// Dispatch; 404 for unknown path, 405 for known path with wrong method.
  Response dispatch(const Request& request, const RequestContext& ctx) const;

 private:
  struct Route {
    std::string method;
    std::string prefix;  // without the "/*"
    Handler handler;
  };
  std::vector<Route> exact_;     // sorted by (prefix, method)
  std::vector<Route> wildcard_;  // sorted by prefix length, longest first
};

/// Outcome of one request/response exchange.
enum class ServeResult { kKeepAlive, kClose };

/// Serve exactly one request/response exchange on an established buffered
/// connection. Maps handler exceptions to 500, parse errors to 400+close,
/// and peer disappearance to kClose. TimeoutError (a stalled mid-request
/// peer on a deadline-bearing transport) propagates so the server runtime
/// can meter it.
ServeResult serve_one(Connection& conn, const Router& router,
                      const RequestContext& ctx = {});

/// Serve HTTP/1.1 on one connection until the peer closes or sends
/// "Connection: close". Exceptions from handlers map to 500 responses;
/// parse errors produce 400 and close the connection.
void serve_connection(net::Stream& stream, const Router& router,
                      const RequestContext& ctx = {});

}  // namespace vnfsgx::http
