#include "http/client.h"

#include "obs/metrics.h"

namespace vnfsgx::http {

Response Client::request(const Request& req) {
  conn_.write(req);
  auto response = conn_.read_response();
  if (!response) throw IoError("http: connection closed before response");
  return std::move(*response);
}

Response Client::get(const std::string& target) {
  Request req;
  req.method = "GET";
  req.target = target;
  return request(req);
}

Response Client::post(const std::string& target, const std::string& json_body) {
  Request req;
  req.method = "POST";
  req.target = target;
  req.headers.set("Content-Type", "application/json");
  req.body = to_bytes(json_body);
  return request(req);
}

Response Client::del(const std::string& target) {
  Request req;
  req.method = "DELETE";
  req.target = target;
  return request(req);
}

// ---------------------------------------------------------------------------
// ClientPool
// ---------------------------------------------------------------------------

ClientPool::ClientPool(Connect connect)
    : ClientPool(std::move(connect), Options()) {}

ClientPool::ClientPool(Connect connect, Options options)
    : connect_(std::move(connect)), options_(std::move(options)) {
  if (options_.max_connections == 0) options_.max_connections = 8;
}

ClientPool::~ClientPool() = default;

std::size_t ClientPool::in_flight() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

ClientPool::Lease::~Lease() {
  if (pool_) pool_->release(std::move(client_), reusable_);
}

std::unique_ptr<Client> ClientPool::take_or_dial_locked(
    std::unique_lock<std::mutex>& lock, bool& fresh) {
  if (!idle_.empty()) {
    auto client = std::move(idle_.back());
    idle_.pop_back();
    fresh = false;
    obs::registry()
        .counter("vnfsgx_http_client_reuses_total", {{"pool", options_.name}},
                 "Requests served on a reused keep-alive pooled connection")
        .add();
    return client;
  }
  fresh = true;
  ++connects_total_;
  obs::Counter& connects = obs::registry().counter(
      "vnfsgx_http_client_connects_total", {{"pool", options_.name}},
      "Connections dialed by the pooled HTTP client (reconnect meter)");
  // Dial outside the lock: connect() may block on the network, and holding
  // the pool mutex would serialize the very round-trips the pool exists to
  // overlap. The in-flight slot is already reserved by the caller.
  lock.unlock();
  connects.add();
  std::unique_ptr<Client> client;
  try {
    client = std::make_unique<Client>(connect_());
  } catch (...) {
    lock.lock();
    throw;
  }
  lock.lock();
  return client;
}

ClientPool::Lease ClientPool::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_.wait(lock, [&] { return in_flight_ < options_.max_connections; });
  ++in_flight_;
  obs::registry()
      .gauge("vnfsgx_http_client_inflight", {{"pool", options_.name}},
             "Pooled HTTP connections currently leased")
      .add(1);
  bool fresh = false;
  std::unique_ptr<Client> client;
  try {
    client = take_or_dial_locked(lock, fresh);
  } catch (...) {
    --in_flight_;
    obs::registry()
        .gauge("vnfsgx_http_client_inflight", {{"pool", options_.name}}, "")
        .add(-1);
    available_.notify_one();
    throw;
  }
  return Lease(this, std::move(client), fresh);
}

void ClientPool::release(std::unique_ptr<Client> client, bool reusable) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    if (reusable && client && idle_.size() < options_.max_connections) {
      idle_.push_back(std::move(client));
    }
  }
  obs::registry()
      .gauge("vnfsgx_http_client_inflight", {{"pool", options_.name}}, "")
      .add(-1);
  available_.notify_one();
}

Response ClientPool::request(const Request& req) {
  for (int attempt = 0;; ++attempt) {
    Lease lease = acquire();
    try {
      return lease->request(req);
    } catch (const IoError&) {
      lease.discard();
      // A reused keep-alive connection may have been closed by the peer
      // between requests; retry exactly once on a fresh dial. Failures on
      // a fresh connection are real and propagate.
      if (lease.fresh() || attempt > 0) throw;
    }
  }
}

}  // namespace vnfsgx::http
