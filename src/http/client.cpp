#include "http/client.h"

namespace vnfsgx::http {

Response Client::request(const Request& req) {
  conn_.write(req);
  auto response = conn_.read_response();
  if (!response) throw IoError("http: connection closed before response");
  return std::move(*response);
}

Response Client::get(const std::string& target) {
  Request req;
  req.method = "GET";
  req.target = target;
  return request(req);
}

Response Client::post(const std::string& target, const std::string& json_body) {
  Request req;
  req.method = "POST";
  req.target = target;
  req.headers.set("Content-Type", "application/json");
  req.body = to_bytes(json_body);
  return request(req);
}

Response Client::del(const std::string& target) {
  Request req;
  req.method = "DELETE";
  req.target = target;
  return request(req);
}

}  // namespace vnfsgx::http
