#include "http/wire.h"

#include <algorithm>
#include <cctype>

#include "net/buffer_pool.h"

namespace vnfsgx::http {

namespace {

/// Keep-alive buffers are compacted once the consumed prefix passes this,
/// instead of after every message — amortizes the memmove.
constexpr std::size_t kCompactThreshold = 64 * 1024;

void append_headers(Bytes& out, const Headers& headers, std::size_t body_size) {
  bool has_content_length = false;
  for (const auto& [name, value] : headers.entries()) {
    append(out, name);
    append(out, std::string_view(": "));
    append(out, value);
    append(out, std::string_view("\r\n"));
    if (name.size() == 14) {
      std::string lower = name;
      std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      });
      if (lower == "content-length") has_content_length = true;
    }
  }
  if (!has_content_length) {
    append(out, std::string_view("Content-Length: "));
    append(out, std::to_string(body_size));
    append(out, std::string_view("\r\n"));
  }
  append(out, std::string_view("\r\n"));
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

Headers parse_headers(std::string_view block) {
  Headers headers;
  std::size_t line_start = 0;
  while (line_start < block.size()) {
    const auto eol = block.find("\r\n", line_start);
    if (eol == std::string_view::npos) throw ParseError("http: bad header line");
    const std::string_view line = block.substr(line_start, eol - line_start);
    line_start = eol + 2;
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw ParseError("http: malformed header");
    }
    headers.add(std::string(trim(line.substr(0, colon))),
                std::string(trim(line.substr(colon + 1))));
  }
  return headers;
}

}  // namespace

void encode_request_into(Bytes& out, const Request& request) {
  out.clear();
  append(out, request.method);
  append(out, std::string_view(" "));
  append(out, request.target);
  append(out, std::string_view(" HTTP/1.1\r\n"));
  append_headers(out, request.headers, request.body.size());
  append(out, request.body);
}

void encode_response_into(Bytes& out, const Response& response) {
  out.clear();
  append(out, std::string_view("HTTP/1.1 "));
  append(out, std::to_string(response.status));
  append(out, std::string_view(" "));
  append(out, response.reason.empty() ? reason_phrase(response.status)
                                      : response.reason);
  append(out, std::string_view("\r\n"));
  append_headers(out, response.headers, response.body.size());
  append(out, response.body);
}

Bytes encode_request(const Request& request) {
  Bytes out;
  encode_request_into(out, request);
  return out;
}

Bytes encode_response(const Response& response) {
  Bytes out;
  encode_response_into(out, response);
  return out;
}

bool Connection::fill() {
  // Read straight into the buffer's tail — no bounce through a stack chunk.
  constexpr std::size_t kChunk = 4096;
  const std::size_t old_size = buffer_.size();
  buffer_.resize(old_size + kChunk);
  std::size_t n = 0;
  try {
    n = stream_.read(std::span<std::uint8_t>(buffer_.data() + old_size, kChunk));
  } catch (...) {
    buffer_.resize(old_size);
    throw;
  }
  buffer_.resize(old_size + n);
  return n != 0;
}

std::size_t Connection::release_idle_buffers(net::BufferPool* pool) {
  std::size_t released = 0;
  if (!has_buffered_data() && buffer_.capacity() > 0) {
    released += buffer_.capacity();
    if (pool) {
      pool->release(std::move(buffer_));
    } else {
      Bytes().swap(buffer_);
    }
    buffer_.clear();
    pos_ = 0;
    scan_ = 0;
  }
  if (write_scratch_.capacity() > 0) {
    released += write_scratch_.capacity();
    if (pool) {
      pool->release(std::move(write_scratch_));
    } else {
      Bytes().swap(write_scratch_);
    }
    write_scratch_.clear();
  }
  return released;
}

void Connection::compact() {
  if (pos_ == buffer_.size()) {
    buffer_.clear();  // keeps capacity for the next request
    pos_ = 0;
  } else if (pos_ > kCompactThreshold) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  scan_ = pos_;
}

std::optional<std::size_t> Connection::find_header_end() {
  scan_ = std::max(scan_, pos_);
  while (true) {
    // Resume the CRLFCRLF search where the last fill left off instead of
    // rescanning the block from the start each time.
    while (scan_ + 4 <= buffer_.size()) {
      if (buffer_[scan_] == '\r' && buffer_[scan_ + 1] == '\n' &&
          buffer_[scan_ + 2] == '\r' && buffer_[scan_ + 3] == '\n') {
        return scan_ + 4;
      }
      ++scan_;
    }
    if (buffer_.size() - pos_ > kMaxHeaderBytes) {
      throw ParseError("http: header block too large");
    }
    if (!fill()) {
      if (buffer_.size() == pos_) return std::nullopt;  // clean EOF
      throw IoError("http: EOF inside header block");
    }
  }
}

Bytes Connection::read_body(const Headers& headers) {
  if (const auto te = headers.get("Transfer-Encoding"); te.has_value()) {
    throw ParseError("http: chunked transfer encoding not supported");
  }
  std::size_t length = 0;
  if (const auto cl = headers.get("Content-Length"); cl.has_value()) {
    try {
      length = static_cast<std::size_t>(std::stoull(*cl));
    } catch (const std::exception&) {
      throw ParseError("http: invalid Content-Length");
    }
  }
  if (length > kMaxBodyBytes) throw ParseError("http: body too large");
  while (buffer_.size() - pos_ < length) {
    if (!fill()) throw IoError("http: EOF inside body");
  }
  Bytes body(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
             buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + length));
  pos_ += length;
  compact();
  return body;
}

std::optional<Request> Connection::read_request() {
  const auto end = find_header_end();
  if (!end) return std::nullopt;
  // Parse the request line + headers in place; everything outlives the
  // parse because read_body (which may grow/reallocate the buffer) runs
  // only after the header fields are copied into owning strings.
  const std::string_view block(
      reinterpret_cast<const char*>(buffer_.data()) + pos_, *end - pos_);
  pos_ = *end;

  const auto eol = block.find("\r\n");
  const std::string_view line = block.substr(0, eol);
  const auto sp1 = line.find(' ');
  const auto sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    throw ParseError("http: malformed request line");
  }
  Request req;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    throw ParseError("http: unsupported version");
  }
  req.headers = parse_headers(block.substr(eol + 2));
  req.body = read_body(req.headers);
  return req;
}

std::optional<Response> Connection::read_response() {
  const auto end = find_header_end();
  if (!end) return std::nullopt;
  const std::string_view block(
      reinterpret_cast<const char*>(buffer_.data()) + pos_, *end - pos_);
  pos_ = *end;

  const auto eol = block.find("\r\n");
  const std::string_view line = block.substr(0, eol);
  if (line.substr(0, 5) != "HTTP/") throw ParseError("http: bad status line");
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 + 4 > line.size()) {
    throw ParseError("http: bad status line");
  }
  Response res;
  try {
    res.status = std::stoi(std::string(line.substr(sp1 + 1, 3)));
  } catch (const std::exception&) {
    throw ParseError("http: bad status code");
  }
  if (sp1 + 5 <= line.size()) {
    res.reason = std::string(line.substr(sp1 + 5));
  }
  res.headers = parse_headers(block.substr(eol + 2));
  res.body = read_body(res.headers);
  return res;
}

}  // namespace vnfsgx::http
