// HTTP client over an owned Stream, with keep-alive reuse, plus a pooled
// keep-alive client for callers that issue many requests to one origin
// (the Verification Manager's IAS leg, bench fleets).
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "http/wire.h"
#include "net/stream.h"

namespace vnfsgx::http {

class Client {
 public:
  /// Takes ownership of a connected stream (pipe, TCP, or TLS session).
  explicit Client(net::StreamPtr stream)
      : stream_(std::move(stream)), conn_(*stream_) {}

  /// Send a request and block for the response. Throws IoError if the
  /// peer closes before responding.
  Response request(const Request& req);

  /// Convenience wrappers.
  Response get(const std::string& target);
  Response post(const std::string& target, const std::string& json_body);
  Response del(const std::string& target);

  void close() { stream_->close(); }
  net::Stream& stream() { return *stream_; }

 private:
  net::StreamPtr stream_;
  Connection conn_;
};

/// Keep-alive connection pool for one origin.
///
/// Connections are dialed through `connect` on demand, parked idle after a
/// lease is returned, and reused for later requests — so a burst of N
/// requests pays one connect, not N. The pool is a bounded in-flight
/// window: at most `max_connections` leases exist at once and further
/// acquire() calls block until one is returned, which caps the concurrency
/// a client fleet can impose on the origin.
///
/// Every dial is metered (vnfsgx_http_client_connects_total{pool=...}), so
/// a pool that keeps reconnecting per request shows up in /metrics.
class ClientPool {
 public:
  using Connect = std::function<net::StreamPtr()>;

  struct Options {
    /// Bounded in-flight window (also the idle-pool cap). 0 = 8.
    std::size_t max_connections = 8;
    /// Metrics label value for this pool's vnfsgx_http_client_* series.
    std::string name = "client";
  };

  explicit ClientPool(Connect connect);
  ClientPool(Connect connect, Options options);
  ~ClientPool();

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// Exclusive lease of one pooled connection. Returned to the idle pool
  /// on destruction unless discarded.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), client_(std::move(other.client_)),
          fresh_(other.fresh_), reusable_(other.reusable_) {
      other.pool_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease();

    Client& client() { return *client_; }
    Client* operator->() { return client_.get(); }
    /// True when this lease dialed a fresh connection (nothing reused).
    bool fresh() const { return fresh_; }
    /// Drop the connection instead of returning it (peer closed, protocol
    /// desync, ...).
    void discard() { reusable_ = false; }

   private:
    friend class ClientPool;
    Lease(ClientPool* pool, std::unique_ptr<Client> client, bool fresh)
        : pool_(pool), client_(std::move(client)), fresh_(fresh) {}

    ClientPool* pool_;
    std::unique_ptr<Client> client_;
    bool fresh_ = false;
    bool reusable_ = true;
  };

  /// Lease a connection: reuse an idle keep-alive one, dial when below the
  /// window, otherwise block until a lease returns.
  Lease acquire();

  /// One request/response exchange on a pooled connection. A reused
  /// connection whose peer closed between requests is transparently
  /// replaced and the request retried once on a fresh dial.
  Response request(const Request& req);

  /// Total connections dialed (the reconnect meter; a keep-alive-respecting
  /// workload holds this near the in-flight window size).
  std::uint64_t connects() const { return connects_total_; }
  /// Currently leased connections.
  std::size_t in_flight() const;

 private:
  std::unique_ptr<Client> take_or_dial_locked(std::unique_lock<std::mutex>& lock,
                                              bool& fresh);
  void release(std::unique_ptr<Client> client, bool reusable);

  Connect connect_;
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::vector<std::unique_ptr<Client>> idle_;
  std::size_t in_flight_ = 0;
  std::uint64_t connects_total_ = 0;
};

}  // namespace vnfsgx::http
