// HTTP client over an owned Stream, with keep-alive reuse.
#pragma once

#include <memory>
#include <string>

#include "http/wire.h"
#include "net/stream.h"

namespace vnfsgx::http {

class Client {
 public:
  /// Takes ownership of a connected stream (pipe, TCP, or TLS session).
  explicit Client(net::StreamPtr stream)
      : stream_(std::move(stream)), conn_(*stream_) {}

  /// Send a request and block for the response. Throws IoError if the
  /// peer closes before responding.
  Response request(const Request& req);

  /// Convenience wrappers.
  Response get(const std::string& target);
  Response post(const std::string& target, const std::string& json_body);
  Response del(const std::string& target);

  void close() { stream_->close(); }
  net::Stream& stream() { return *stream_; }

 private:
  net::StreamPtr stream_;
  Connection conn_;
};

}  // namespace vnfsgx::http
