#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace vnfsgx::obs {

namespace {

/// Prometheus-style number: exact integers render without a fractional
/// part, everything else as shortest round-trip-ish %.17g.
std::string format_number(double v) {
  const auto as_int = static_cast<long long>(v);
  if (static_cast<double>(as_int) == v && v < 9.007199254740992e15 &&
      v > -9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", as_int);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Escape a Prometheus label value: backslash, double-quote, newline.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += escape_label(v);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

/// labels + one extra pair (for histogram `le`).
std::string label_block_with(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return label_block(extended);
}

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

json::Value labels_json(const Labels& labels) {
  json::Object obj;
  for (const auto& [k, v] : labels) obj[k] = v;
  return obj;
}

std::string span_step_name(int step) {
  switch (step) {
    case kStepHostAttestation:
      return "host_attestation";
    case kStepQuoteVerification:
      return "quote_verification";
    case kStepEnclaveAttestation:
      return "enclave_attestation";
    case kStepEnclaveQuoteVerification:
      return "enclave_quote_verification";
    case kStepProvisioning:
      return "provisioning";
    case kStepSecureChannel:
      return "secure_channel";
    default:
      return "";
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------------

std::string to_prometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  std::string last_header;  // suppress repeated HELP/TYPE for label variants
  for (const MetricSample& s : samples) {
    if (s.name != last_header) {
      last_header = s.name;
      if (!s.help.empty()) {
        out += "# HELP " + s.name + " " + s.help + "\n";
      }
      out += "# TYPE " + s.name + " " + std::string(type_name(s.type)) + "\n";
    }
    switch (s.type) {
      case MetricType::kCounter:
      case MetricType::kGauge:
        out += s.name + label_block(s.labels) + " " + format_number(s.value) +
               "\n";
        break;
      case MetricType::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          cumulative += s.buckets[i];
          const std::string le = (i < s.bounds.size())
                                     ? format_number(s.bounds[i])
                                     : std::string("+Inf");
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
          out += s.name + "_bucket" + label_block_with(s.labels, "le", le) +
                 " " + buf + "\n";
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, s.count);
        out += s.name + "_sum" + label_block(s.labels) + " " +
               format_number(s.sum) + "\n";
        out += s.name + "_count" + label_block(s.labels) + " " + buf + "\n";
        break;
      }
    }
  }
  return out;
}

void refresh_process_gauges() {
  // VmRSS from /proc/self/status: resident set of the whole process. Kept
  // as a pull-time gauge (refreshed by the exporters) so connection-diet
  // experiments can read memory-per-connection straight off the scrape.
  static Gauge& rss = registry().gauge(
      "vnfsgx_rss_bytes", {},
      "Process resident set size (VmRSS), refreshed at export time");
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return;  // non-Linux: gauge stays 0
  char line[256];
  while (std::fgets(line, sizeof line, status) != nullptr) {
    long long kib = 0;
    if (std::sscanf(line, "VmRSS: %lld kB", &kib) == 1) {
      rss.set(kib * 1024);
      break;
    }
  }
  std::fclose(status);
}

std::string to_prometheus(const MetricsRegistry& reg) {
  refresh_process_gauges();
  return to_prometheus(reg.collect());
}

// ---------------------------------------------------------------------------
// JSON snapshot
// ---------------------------------------------------------------------------

json::Value snapshot_json(const std::vector<MetricSample>& samples,
                          const std::vector<SpanRecord>& spans,
                          const std::string& run_name) {
  json::Object root;
  root["context"] = json::Object{
      {"run", run_name},
      {"schema", "vnfsgx-obs/1"},
      {"library", "vnfsgx"},
  };

  json::Array metrics;
  json::Array benchmarks;
  for (const MetricSample& s : samples) {
    json::Object m;
    m["name"] = s.name;
    m["labels"] = labels_json(s.labels);
    m["type"] = type_name(s.type);
    if (!s.help.empty()) m["help"] = s.help;
    switch (s.type) {
      case MetricType::kCounter:
      case MetricType::kGauge:
        m["value"] = s.value;
        break;
      case MetricType::kHistogram: {
        json::Array bounds;
        for (const double b : s.bounds) bounds.push_back(b);
        json::Array buckets;
        for (const std::uint64_t c : s.buckets) buckets.push_back(c);
        m["bounds"] = std::move(bounds);
        m["buckets"] = std::move(buckets);
        m["sum"] = s.sum;
        m["count"] = s.count;
        m["p50"] = s.p50;
        m["p95"] = s.p95;
        m["p99"] = s.p99;
        // BENCH_*.json-style entry so trajectory tooling can ingest
        // live-run histograms next to google-benchmark output.
        if (s.count > 0) {
          std::string bench_name = s.name;
          for (const auto& [k, v] : s.labels) bench_name += "/" + k + ":" + v;
          benchmarks.push_back(json::Object{
              {"name", bench_name},
              {"run_type", "aggregate"},
              {"iterations", s.count},
              {"real_time", s.count ? s.sum / static_cast<double>(s.count) : 0},
              {"p50", s.p50},
              {"p95", s.p95},
              {"p99", s.p99},
              {"time_unit", "us"},
          });
        }
        break;
      }
    }
    metrics.push_back(std::move(m));
  }
  root["metrics"] = std::move(metrics);
  root["benchmarks"] = std::move(benchmarks);

  json::Array span_array;
  for (const SpanRecord& sp : spans) {
    json::Object o;
    o["id"] = sp.id;
    o["parent_id"] = sp.parent_id;
    o["name"] = sp.name;
    if (sp.step != kStepNone) {
      o["figure1_step"] = sp.step;
      o["figure1_name"] = span_step_name(sp.step);
    }
    o["start_us"] = static_cast<double>(sp.start_ns) / 1000.0;
    o["duration_us"] = static_cast<double>(sp.duration_ns) / 1000.0;
    if (!sp.annotations.empty()) {
      json::Object ann;
      for (const auto& [k, v] : sp.annotations) ann[k] = v;
      o["annotations"] = std::move(ann);
    }
    span_array.push_back(std::move(o));
  }
  root["spans"] = std::move(span_array);
  return root;
}

std::string snapshot_text(const MetricsRegistry& reg, const Tracer& tracer,
                          const std::string& run_name) {
  refresh_process_gauges();
  return json::serialize_pretty(
      snapshot_json(reg.collect(), tracer.spans(), run_name));
}

bool write_snapshot_file(const std::string& path,
                         const std::string& run_name) {
  const std::string text = snapshot_text(registry(), tracer(), run_name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    VNFSGX_LOG_WARN("obs", "cannot open metrics snapshot path ", path);
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok) VNFSGX_LOG_WARN("obs", "short write on metrics snapshot ", path);
  return ok;
}

namespace {

/// atexit() takes a plain function pointer, so the run name lives in a
/// file-scope string the handler reads back.
std::string& exit_snapshot_name() {
  static std::string* name = new std::string();  // leaked: read at exit
  return *name;
}

extern "C" void vnfsgx_obs_exit_snapshot() {
  const std::string& run_name = exit_snapshot_name();
  if (run_name.empty()) return;
  const char* out = std::getenv("VNFSGX_METRICS_OUT");
  std::string path;
  if (out != nullptr && out[0] != '\0') {
    path = out;
  } else {
    const char* dir = std::getenv("VNFSGX_METRICS_DIR");
    if (dir == nullptr || dir[0] == '\0') return;
    path = std::string(dir) + "/" + run_name + ".metrics.json";
  }
  write_snapshot_file(path, run_name);
}

}  // namespace

void install_exit_snapshot(const std::string& run_name) {
  // Construct the singletons first: atexit handlers run LIFO, so touching
  // registry()/tracer() here guarantees the snapshot handler runs while
  // they are still alive (and both are leaked anyway).
  registry();
  tracer();
  const bool first = exit_snapshot_name().empty();
  exit_snapshot_name() = run_name;
  if (first) std::atexit(vnfsgx_obs_exit_snapshot);
}

// ---------------------------------------------------------------------------
// Summary table
// ---------------------------------------------------------------------------

std::string summary_table(const std::vector<MetricSample>& samples) {
  std::string out;
  out += "  metric                                                  value\n";
  out += "  ------------------------------------------------------  ----------\n";
  char line[160];
  for (const MetricSample& s : samples) {
    std::string display = s.name + label_block(s.labels);
    if (display.size() > 54) display = display.substr(0, 51) + "...";
    switch (s.type) {
      case MetricType::kCounter:
      case MetricType::kGauge:
        if (s.value == 0) continue;  // keep the table narratable
        std::snprintf(line, sizeof(line), "  %-54s  %s\n", display.c_str(),
                      format_number(s.value).c_str());
        out += line;
        break;
      case MetricType::kHistogram: {
        if (s.count == 0) continue;
        std::snprintf(line, sizeof(line), "  %-54s  n=%llu p50=%.1f p95=%.1f\n",
                      display.c_str(),
                      static_cast<unsigned long long>(s.count), s.p50, s.p95);
        out += line;
        break;
      }
    }
  }
  return out;
}

std::string summary_table(const MetricsRegistry& reg) {
  return summary_table(reg.collect());
}

}  // namespace vnfsgx::obs
