// Exporters for the metrics registry and tracer.
//
// Two wire formats:
//  - Prometheus text exposition (served on `GET /vm/metrics` and the
//    controller's `GET /metrics`),
//  - a JSON snapshot in the BENCH_*.json style ("context" + "benchmarks"
//    arrays, plus "metrics" and "spans" sections) written by benches and
//    examples at exit so every run leaves a machine-readable trace.
#pragma once

#include <string>
#include <vector>

#include "json/json.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace vnfsgx::obs {

/// Refresh pull-time process gauges (vnfsgx_rss_bytes from /proc/self/
/// status VmRSS). Called automatically by the registry-level exporters;
/// benches call it directly to sample RSS at specific points in a run.
void refresh_process_gauges();

/// Prometheus text exposition format (text/plain; version=0.0.4).
/// Histograms expand to cumulative `_bucket{le=...}` series plus `_sum`
/// and `_count`; quantile estimates are NOT exported here (Prometheus
/// derives them server-side) — they live in the JSON snapshot.
std::string to_prometheus(const std::vector<MetricSample>& samples);
std::string to_prometheus(const MetricsRegistry& reg);

/// JSON snapshot: {"context": {...}, "metrics": [...], "spans": [...],
/// "benchmarks": [...]}. `benchmarks` summarizes every histogram as a
/// BENCH_*.json-style entry (name, iterations, real_time p50/p95/p99,
/// time_unit) so the bench trajectory tooling can ingest live-run data.
json::Value snapshot_json(const std::vector<MetricSample>& samples,
                          const std::vector<SpanRecord>& spans,
                          const std::string& run_name);
std::string snapshot_text(const MetricsRegistry& reg, const Tracer& tracer,
                          const std::string& run_name);

/// Serialize the global registry + tracer to `path`. Returns false (and
/// logs) on I/O failure rather than throwing — exporters run at exit.
bool write_snapshot_file(const std::string& path, const std::string& run_name);

/// Register an atexit hook that writes the snapshot of the global
/// registry/tracer. Destination: $VNFSGX_METRICS_OUT if set, else
/// $VNFSGX_METRICS_DIR/<run_name>.metrics.json, else no-op. Call early in
/// main(): the hook must outlive instrumented statics, so this touches
/// registry()/tracer() before registering.
void install_exit_snapshot(const std::string& run_name);

/// Fixed-width human-readable table of the most narratable numbers
/// (counters + histogram p50/p95) for examples to print at exit.
std::string summary_table(const std::vector<MetricSample>& samples);
std::string summary_table(const MetricsRegistry& reg);

}  // namespace vnfsgx::obs
