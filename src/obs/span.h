// Trace spans keyed to the paper's Figure-1 workflow steps.
//
// A Span is an RAII timer: started from a Tracer (or as a child of another
// span), annotated with string key/values, and recorded into the tracer's
// bounded buffer when it ends. The exporters serialize completed spans so
// one Figure-1 run — host attestation (1), quote verification (2), enclave
// attestation (3), enclave quote verification (4), provisioning (5), TLS
// handshake / REST request (6) — reads as a parent/child timing tree.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vnfsgx::obs {

/// Figure-1 step numbers for the spans the system emits. Step 6 covers
/// both the TLS handshake and the REST exchange it protects.
enum Figure1Step : int {
  kStepNone = 0,
  kStepHostAttestation = 1,
  kStepQuoteVerification = 2,
  kStepEnclaveAttestation = 3,
  kStepEnclaveQuoteVerification = 4,
  kStepProvisioning = 5,
  kStepSecureChannel = 6,
};

/// One completed span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  int step = kStepNone;
  std::vector<std::pair<std::string, std::string>> annotations;
  std::uint64_t start_ns = 0;  // steady-clock offset from the tracer epoch
  std::uint64_t duration_ns = 0;
};

class Tracer;

/// Move-only RAII span; records itself on end() (or destruction).
class Span {
 public:
  Span() = default;  // inert span: annotate/end are no-ops
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Start a child span sharing this span's tracer.
  Span child(std::string name, int step = kStepNone);

  void annotate(std::string key, std::string value);

  /// Elapsed time so far (or final duration once ended).
  double elapsed_us() const;

  /// Record the span; idempotent.
  void end();

  std::uint64_t id() const { return record_.id; }
  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::uint64_t id, std::uint64_t parent_id,
       std::string name, int step);

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
  std::chrono::steady_clock::time_point started_{};
  bool ended_ = false;
};

/// Bounded buffer of completed spans. start_span() is cheap (an atomic id
/// and a clock read); recording takes a short mutex on span end — span
/// granularity is per attestation/handshake/request, not per byte.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  Span start_span(std::string name, int step = kStepNone,
                  std::uint64_t parent_id = 0);

  /// Completed spans, oldest first (up to `capacity` retained).
  std::vector<SpanRecord> spans() const;
  /// Total spans ever recorded (including any dropped by the ring).
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  void clear();

 private:
  friend class Span;
  void record(SpanRecord record);
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mutex_;
  std::deque<SpanRecord> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Process-wide default tracer used by the instrumented subsystems.
Tracer& tracer();

}  // namespace vnfsgx::obs
