#include "obs/metrics.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"

namespace vnfsgx::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = latency_bounds_us();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw Error("obs: histogram bounds must be ascending");
  }
  const std::size_t n = bounds_.size() + 1;  // +Inf tail bucket
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // bounds_.size() = +Inf
  Shard& s = shards_[detail::shard_index()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(s.sum, value);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  const std::size_t n = bounds_.size() + 1;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < n; ++i) {
      total += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (counts[i] == 0) continue;
    if (i == counts.size() - 1) {
      // +Inf bucket: clamp to the largest finite bound.
      return bounds_.empty() ? 0 : bounds_.back();
    }
    const double lower = (i == 0) ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double before =
        static_cast<double>(cumulative) - static_cast<double>(counts[i]);
    const double within = (rank - before) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * within;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

void Histogram::reset() noexcept {
  const std::size_t n = bounds_.size() + 1;
  for (Shard& s : shards_) {
    for (std::size_t i = 0; i < n; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::latency_bounds_us() {
  static const std::vector<double> bounds = exponential_bounds(1.0, 2.0, 24);
  return bounds;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string instrument_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key.push_back('\x01');
    key += k;
    key.push_back('\x02');
    key += v;
  }
  return key;
}

const char* level_label(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      break;
  }
  return "off";
}

/// Pull the logging module's per-level counters into a collect() pass.
/// (Pull, not push: common/ must not depend on obs/.)
void collect_log_counters(std::vector<MetricSample>& out) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError}) {
    MetricSample s;
    s.name = "vnfsgx_log_messages_total";
    s.labels = {{"level", level_label(level)}};
    s.help = "Log lines emitted, by level";
    s.type = MetricType::kCounter;
    s.value = static_cast<double>(log_message_count(level));
    out.push_back(std::move(s));
  }
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, const std::string& help,
    MetricType type, std::vector<double> bounds) {
  const Labels ordered = sorted(labels);
  const std::string key = instrument_key(name, ordered);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.type != type) {
      throw Error("obs: instrument '" + name +
                  "' re-registered with a different type");
    }
    return it->second;
  }
  Entry entry;
  entry.name = name;
  entry.labels = ordered;
  entry.help = help;
  entry.type = type;
  switch (type) {
    case MetricType::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry.histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  return entries_.emplace(key, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels,
                                  const std::string& help) {
  return *find_or_create(name, labels, help, MetricType::kCounter, {}).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  return *find_or_create(name, labels, help, MetricType::kGauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  return *find_or_create(name, labels, help, MetricType::kHistogram,
                         std::move(bounds))
              .histogram;
}

void MetricsRegistry::add_collector(Collector collector) {
  const std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(collector));
}

std::vector<MetricSample> MetricsRegistry::collect() const {
  std::vector<MetricSample> out;
  std::vector<Collector> collectors;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      MetricSample s;
      s.name = entry.name;
      s.labels = entry.labels;
      s.help = entry.help;
      s.type = entry.type;
      switch (entry.type) {
        case MetricType::kCounter:
          s.value = static_cast<double>(entry.counter->value());
          break;
        case MetricType::kGauge:
          s.value = static_cast<double>(entry.gauge->value());
          break;
        case MetricType::kHistogram:
          s.bounds = entry.histogram->bounds();
          s.buckets = entry.histogram->bucket_counts();
          s.sum = entry.histogram->sum();
          s.count = entry.histogram->count();
          s.p50 = entry.histogram->p50();
          s.p95 = entry.histogram->p95();
          s.p99 = entry.histogram->p99();
          break;
      }
      out.push_back(std::move(s));
    }
    collectors = collectors_;
  }
  for (const Collector& c : collectors) c(out);
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : entries_) {
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->reset();
        break;
      case MetricType::kGauge:
        entry.gauge->reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

MetricsRegistry& registry() {
  static MetricsRegistry* instance = [] {
    auto* r = new MetricsRegistry();
    r->add_collector(collect_log_counters);
    return r;
  }();
  return *instance;
}

}  // namespace vnfsgx::obs
