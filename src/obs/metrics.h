// Lock-cheap metrics: counters, gauges, fixed-bucket histograms.
//
// Hot paths (the TLS record layer, per-request controller handlers) pay a
// single relaxed atomic add on a cache-line-private shard; aggregation
// happens only when an exporter walks the registry. Instruments are
// registered once (name + label set) and live for the registry's lifetime,
// so call sites cache references instead of re-looking-up per event.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vnfsgx::obs {

/// Sorted key/value label set attached to an instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Shard count for write-heavy instruments. Power of two; each shard sits
/// on its own cache line so concurrent writers do not bounce a line.
inline constexpr std::size_t kMetricShards = 8;

namespace detail {
/// Stable per-thread shard index (threads are striped round-robin).
std::size_t shard_index() noexcept;

/// Relaxed CAS add for pre-C++20-arithmetic atomic<double>.
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic event counter. add() is wait-free: one relaxed fetch_add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    shards_[detail::shard_index()].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-value instrument (active connections, queue depths).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with sharded bucket counts.
///
/// `bounds` are ascending inclusive upper bounds; an implicit +Inf bucket
/// catches the tail. observe() is a binary search plus one relaxed add
/// (and a CAS add into the running sum) — no locks.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank — the histogram_quantile() rule.
  /// Values in the +Inf bucket clamp to the last finite bound. Returns 0
  /// for an empty histogram.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  void reset() noexcept;

  /// `count` ascending bounds starting at `start`, multiplied by `factor`.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int count);
  /// Default latency bounds in microseconds: 1us .. ~8.4s, factor 2.
  static const std::vector<double>& latency_bounds_us();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Point-in-time reading of one instrument, produced by collect().
struct MetricSample {
  std::string name;
  Labels labels;
  std::string help;
  MetricType type = MetricType::kCounter;
  double value = 0;  // counter/gauge reading
  // Histogram-only fields.
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  double sum = 0;
  std::uint64_t count = 0;
  double p50 = 0, p95 = 0, p99 = 0;
};

/// Callback that appends externally owned readings (e.g. the logging
/// module's per-level counters) to a collect() pass.
using Collector = std::function<void(std::vector<MetricSample>&)>;

/// Named instrument registry. Registration takes a mutex; returned
/// references stay valid (and lock-free to update) for the registry's
/// lifetime, so hot paths register once and cache the reference.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  /// `bounds` applies on first registration; later lookups reuse the
  /// existing instrument.
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = {},
                       const std::string& help = "");

  void add_collector(Collector collector);

  /// Snapshot every instrument (plus collector output), sorted by name
  /// then labels — deterministic for golden tests and exporters.
  std::vector<MetricSample> collect() const;

  /// Zero every instrument in place (registered references stay valid).
  /// For tests and examples that want per-run numbers.
  void reset();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(const std::string& name, const Labels& labels,
                        const std::string& help, MetricType type,
                        std::vector<double> bounds);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // key: name + sorted labels
  std::vector<Collector> collectors_;
};

/// Process-wide default registry used by the instrumented subsystems.
MetricsRegistry& registry();

}  // namespace vnfsgx::obs
