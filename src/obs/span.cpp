#include "obs/span.h"

namespace vnfsgx::obs {

namespace {

std::uint64_t ns_between(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span::Span(Tracer* tracer, std::uint64_t id, std::uint64_t parent_id,
           std::string name, int step)
    : tracer_(tracer), started_(std::chrono::steady_clock::now()) {
  record_.id = id;
  record_.parent_id = parent_id;
  record_.name = std::move(name);
  record_.step = step;
  record_.start_ns = ns_between(tracer->epoch(), started_);
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    started_ = other.started_;
    ended_ = other.ended_;
    other.tracer_ = nullptr;
    other.ended_ = true;
  }
  return *this;
}

Span Span::child(std::string name, int step) {
  if (tracer_ == nullptr) return Span();
  return tracer_->start_span(std::move(name), step, record_.id);
}

void Span::annotate(std::string key, std::string value) {
  if (tracer_ == nullptr || ended_) return;
  record_.annotations.emplace_back(std::move(key), std::move(value));
}

double Span::elapsed_us() const {
  if (tracer_ == nullptr) return 0;
  if (ended_) return static_cast<double>(record_.duration_ns) / 1000.0;
  return static_cast<double>(
             ns_between(started_, std::chrono::steady_clock::now())) /
         1000.0;
}

void Span::end() {
  if (tracer_ == nullptr || ended_) return;
  ended_ = true;
  record_.duration_ns =
      ns_between(started_, std::chrono::steady_clock::now());
  tracer_->record(std::move(record_));
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

Span Tracer::start_span(std::string name, int step, std::uint64_t parent_id) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return Span(this, id, parent_id, std::move(name), step);
}

void Tracer::record(SpanRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SpanRecord>(ring_.begin(), ring_.end());
}

std::uint64_t Tracer::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

Tracer& tracer() {
  static Tracer* instance = new Tracer();  // leaked: outlives static dtors
  return *instance;
}

}  // namespace vnfsgx::obs
