// Constant-time helpers for secret-dependent comparisons.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace vnfsgx::crypto {

/// Constant-time equality: scans both inputs fully regardless of content.
/// Returns false on length mismatch (length is not secret).
inline bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace vnfsgx::crypto
