// Ed25519 signatures (RFC 8032).
//
// Every signature in the system is Ed25519: certificate signatures (the
// Verification Manager's CA), TLS CertificateVerify, SGX quote signatures
// (the simulator's EPID stand-in), and IAS report signatures.
//
// Fixed-base scalar multiplications (keygen, sign) run against a
// precomputed 32x8 window table of base-point multiples; verification uses
// an interleaved Straus double-scalar multiplication. Both are
// variable-time — see docs/PROTOCOL.md, "Constant-time notes".
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/secure.h"
#include "crypto/random.h"

namespace vnfsgx::crypto {

inline constexpr std::size_t kEd25519SeedSize = 32;
inline constexpr std::size_t kEd25519PublicKeySize = 32;
inline constexpr std::size_t kEd25519SignatureSize = 64;

using Ed25519Seed = std::array<std::uint8_t, kEd25519SeedSize>;
using Ed25519PublicKey = std::array<std::uint8_t, kEd25519PublicKeySize>;
using Ed25519Signature = std::array<std::uint8_t, kEd25519SignatureSize>;

struct Ed25519KeyPair {
  // The RFC 8032 private key (32-byte seed); wiped when the pair dies.
  Zeroizing<Ed25519Seed> seed;
  Ed25519PublicKey public_key{};
};

/// Derive the public key from a seed.
Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed);

/// Generate a fresh keypair.
Ed25519KeyPair ed25519_generate(RandomSource& rng);

/// Deterministic signature over `message`.
Ed25519Signature ed25519_sign(const Ed25519Seed& seed, ByteView message);

/// Verify. Rejects non-canonical s (s >= L) and undecodable points.
bool ed25519_verify(const Ed25519PublicKey& public_key, ByteView message,
                    ByteView signature);

/// One (key, message, signature) triple of a verification batch.
struct Ed25519BatchItem {
  Ed25519PublicKey public_key{};
  ByteView message;
  ByteView signature;
};

/// Random-linear-combination batch verification: checks
///   Σ z_i·R_i + Σ (z_i·k_i mod L)·A_i − (Σ z_i·s_i mod L)·B == identity
/// for 128-bit random coefficients z_i, evaluated as one multi-scalar
/// Straus pass whose doubling chain is shared across the whole batch
/// (~3-4x fewer point operations per signature than verifying serially).
///
/// The per-item verdicts are always identical to calling ed25519_verify on
/// each item: items failing the single-verify input checks (bad length,
/// non-canonical s, undecodable A or R) are rejected up front and excluded
/// from the combined equation, and if the combined equation does not hold
/// the remaining items fall back to individual verification, identifying
/// exactly which signatures are bad while the rest still pass.
///
/// `rng` supplies the blinding coefficients; when null they are derived by
/// hashing the entire batch (domain-separated SHA-512), which commits the
/// coefficients to all inputs before any is chosen.
std::vector<bool> ed25519_verify_batch(std::span<const Ed25519BatchItem> items,
                                       RandomSource* rng = nullptr);

/// Fixed-base scalar multiplication exported for X25519 key generation:
/// computes scalar·B on edwards25519 via the precomputed window table and
/// returns the Montgomery u-coordinate of the birationally equivalent
/// curve25519 point, u = (1+y)/(1-y). For an RFC 7748 clamped scalar this
/// equals x25519(scalar, 9) at a fraction of the Montgomery-ladder cost —
/// the table amortizes the ~255-step doubling chain away. Scalar domain:
/// clamped scalars and values reduced mod L.
std::array<std::uint8_t, 32> ed25519_base_montgomery_u(
    const std::array<std::uint8_t, 32>& scalar_le);

namespace detail {

/// Test hooks: encoded scalar·B computed by the reference double-and-add
/// ladder and by the precomputed window table, for cross-checking the two
/// paths on arbitrary scalars. Scalars must be < 2^253 (clamped secret
/// scalars and values reduced mod L both qualify).
std::array<std::uint8_t, 32> base_mul_ladder(
    const std::array<std::uint8_t, 32>& scalar_le);
std::array<std::uint8_t, 32> base_mul_windowed(
    const std::array<std::uint8_t, 32>& scalar_le);

}  // namespace detail

}  // namespace vnfsgx::crypto
