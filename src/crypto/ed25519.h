// Ed25519 signatures (RFC 8032).
//
// Every signature in the system is Ed25519: certificate signatures (the
// Verification Manager's CA), TLS CertificateVerify, SGX quote signatures
// (the simulator's EPID stand-in), and IAS report signatures.
//
// Fixed-base scalar multiplications (keygen, sign) run against a
// precomputed 32x8 window table of base-point multiples; verification uses
// an interleaved Straus double-scalar multiplication. Both are
// variable-time — see docs/PROTOCOL.md, "Constant-time notes".
#pragma once

#include <array>
#include <optional>

#include "common/bytes.h"
#include "common/secure.h"
#include "crypto/random.h"

namespace vnfsgx::crypto {

inline constexpr std::size_t kEd25519SeedSize = 32;
inline constexpr std::size_t kEd25519PublicKeySize = 32;
inline constexpr std::size_t kEd25519SignatureSize = 64;

using Ed25519Seed = std::array<std::uint8_t, kEd25519SeedSize>;
using Ed25519PublicKey = std::array<std::uint8_t, kEd25519PublicKeySize>;
using Ed25519Signature = std::array<std::uint8_t, kEd25519SignatureSize>;

struct Ed25519KeyPair {
  // The RFC 8032 private key (32-byte seed); wiped when the pair dies.
  Zeroizing<Ed25519Seed> seed;
  Ed25519PublicKey public_key{};
};

/// Derive the public key from a seed.
Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed);

/// Generate a fresh keypair.
Ed25519KeyPair ed25519_generate(RandomSource& rng);

/// Deterministic signature over `message`.
Ed25519Signature ed25519_sign(const Ed25519Seed& seed, ByteView message);

/// Verify. Rejects non-canonical s (s >= L) and undecodable points.
bool ed25519_verify(const Ed25519PublicKey& public_key, ByteView message,
                    ByteView signature);

namespace detail {

/// Test hooks: encoded scalar·B computed by the reference double-and-add
/// ladder and by the precomputed window table, for cross-checking the two
/// paths on arbitrary scalars. Scalars must be < 2^253 (clamped secret
/// scalars and values reduced mod L both qualify).
std::array<std::uint8_t, 32> base_mul_ladder(
    const std::array<std::uint8_t, 32>& scalar_le);
std::array<std::uint8_t, 32> base_mul_windowed(
    const std::array<std::uint8_t, 32>& scalar_le);

}  // namespace detail

}  // namespace vnfsgx::crypto
