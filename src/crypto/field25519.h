// Field arithmetic over GF(2^255 - 19), shared by X25519 and Ed25519.
//
// Representation: five 51-bit limbs in 64-bit words (the "donna-64"
// radix-2^51 layout). Inputs/outputs of the arithmetic functions are kept
// loosely reduced (limbs < 2^52); to_bytes performs the full reduction.
//
// Curve constants that are usually transcribed from reference code
// (Edwards d, sqrt(-1), the Ed25519 base point) are *computed* at first use
// from their defining equations, eliminating transcription errors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace vnfsgx::crypto {

struct Fe {
  std::uint64_t v[5];
};

inline Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
inline Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }
Fe fe_from_u64(std::uint64_t x);

Fe fe_add(const Fe& a, const Fe& b);
Fe fe_sub(const Fe& a, const Fe& b);
Fe fe_neg(const Fe& a);
Fe fe_mul(const Fe& a, const Fe& b);
Fe fe_sq(const Fe& a);
/// Multiply by a small scalar (< 2^13), used for a24 = 121665 etc.
Fe fe_mul_small(const Fe& a, std::uint64_t s);

/// Raise to an arbitrary 255-bit exponent given as 32 big-endian bytes.
/// Variable-time; acceptable because every exponent used is a public
/// curve constant.
Fe fe_pow(const Fe& base, const std::array<std::uint8_t, 32>& exp_be);

/// Multiplicative inverse (x^(p-2)); fe_invert(0) == 0. Uses the standard
/// curve25519 addition chain (254 squarings + 11 multiplies) instead of a
/// generic square-and-multiply walk.
Fe fe_invert(const Fe& a);

/// x^((p-5)/8) = x^(2^252 - 3), the exponent used by Ed25519 point
/// decompression (RFC 8032 §5.1.3). Shares the inversion addition chain.
Fe fe_pow22523(const Fe& a);

/// Load 32 little-endian bytes, ignoring the top bit (RFC 7748 masking).
Fe fe_from_bytes(ByteView in32);
/// Store fully reduced, 32 little-endian bytes.
std::array<std::uint8_t, 32> fe_to_bytes(const Fe& a);

bool fe_is_zero(const Fe& a);
/// Low bit of the fully reduced value (the Edwards "sign" bit).
int fe_is_negative(const Fe& a);

/// Constant-time conditional swap (swap iff bit == 1).
void fe_cswap(Fe& a, Fe& b, std::uint64_t bit);

/// sqrt(-1) mod p, computed as 2^((p-1)/4).
const Fe& fe_sqrt_m1();

}  // namespace vnfsgx::crypto
