// HKDF (RFC 5869) with SHA-256.
//
// Key-derivation backbone: the TLS 1.3-style key schedule, SGX sealing-key
// derivation, and report-key derivation all go through HKDF.
#pragma once

#include "common/bytes.h"

namespace vnfsgx::crypto {

/// HKDF-Extract: PRK = HMAC-SHA256(salt, ikm).
Bytes hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derive `length` bytes from `prk` with context `info`.
/// Throws CryptoError if length > 255 * 32.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

/// TLS 1.3-style HKDF-Expand-Label (RFC 8446 §7.1) used by the tls module
/// and by the SGX simulator's key-derivation (label-separated contexts).
Bytes hkdf_expand_label(ByteView secret, std::string_view label,
                        ByteView context, std::size_t length);

}  // namespace vnfsgx::crypto
