// SHA-256 (FIPS 180-4).
//
// Used for: enclave measurements (MRENCLAVE extend chain), IMA file digests,
// certificate signatures (via Ed25519ph-style prehash), HKDF/HMAC, and the
// TLS transcript hash.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace vnfsgx::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256. Copyable: copying forks the hash state, which the
/// TLS transcript hash uses to snapshot at each handshake message.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  /// Finalizes into `out`. The object must be reset() before reuse.
  Sha256Digest finish();

  static Sha256Digest hash(ByteView data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kSha256BlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Convenience: digest as a Bytes vector.
Bytes sha256(ByteView data);

}  // namespace vnfsgx::crypto
