#include "crypto/ed25519.h"

#include <cstring>
#include <vector>

#include "common/error.h"
#include "crypto/field25519.h"
#include "crypto/sha512.h"

namespace vnfsgx::crypto {

namespace {

// ---------------------------------------------------------------------------
// Scalar arithmetic modulo the group order
//   L = 2^252 + 27742317777372353535851937790883648493.
// Little-endian 32-bit limbs; sized for 512-bit intermediates so that the
// SHA-512 outputs RFC 8032 reduces can be handled directly. Performance is
// irrelevant next to the point multiplications, so the reduction is a plain
// binary long division.
// ---------------------------------------------------------------------------

struct Scalar {
  // 9 limbs so intermediates during reduction (2*r + bit) fit.
  std::array<std::uint32_t, 9> limb{};
};

const std::array<std::uint32_t, 9>& order_limbs() {
  // L little-endian: 0xED, 0xD3, 0xF5, 0x5C, 0x1A, 0x63, 0x12, 0x58,
  // 0xD6, 0x9C, 0xF7, 0xA2, 0xDE, 0xF9, 0xDE, 0x14, 0,...,0, 0x10
  static const std::array<std::uint32_t, 9> kL = {
      0x5cf5d3edu, 0x5812631au, 0xa2f79cd6u, 0x14def9deu,
      0x00000000u, 0x00000000u, 0x00000000u, 0x10000000u, 0u};
  return kL;
}

// Compare a (9 limbs) with L.
int cmp_order(const Scalar& a) {
  const auto& l = order_limbs();
  for (int i = 8; i >= 0; --i) {
    // ct-ok: early-exit compare leaks only which limb first differs from
    // the fixed public constant L; accepted for the software simulator
    // (docs/SECURITY.md, "Constant-time policy").
    if (a.limb[static_cast<std::size_t>(i)] != l[static_cast<std::size_t>(i)]) {
      return a.limb[static_cast<std::size_t>(i)] < l[static_cast<std::size_t>(i)]
                 ? -1
                 : 1;
    }
  }
  return 0;
}

void sub_order(Scalar& a) {
  const auto& l = order_limbs();
  std::uint64_t borrow = 0;
  for (int i = 0; i < 9; ++i) {
    const std::uint64_t d = static_cast<std::uint64_t>(a.limb[i]) -
                            l[static_cast<std::size_t>(i)] - borrow;
    a.limb[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(d);
    borrow = (d >> 32) & 1;
  }
}

// Reduce an arbitrary little-endian byte string modulo L.
Scalar scalar_from_bytes_wide(ByteView bytes_le) {
  Scalar r;  // running remainder < L
  for (std::size_t byte_idx = bytes_le.size(); byte_idx-- > 0;) {
    const std::uint8_t byte = bytes_le[byte_idx];
    for (int bit = 7; bit >= 0; --bit) {
      // r = 2r + bit
      std::uint32_t carry = (byte >> bit) & 1;
      for (int i = 0; i < 9; ++i) {
        const std::uint32_t next_carry = r.limb[static_cast<std::size_t>(i)] >> 31;
        r.limb[static_cast<std::size_t>(i)] =
            (r.limb[static_cast<std::size_t>(i)] << 1) | carry;
        carry = next_carry;
      }
      // ct-ok: per-bit conditional subtract during reduction; accepted for
      // the software simulator (docs/SECURITY.md, "Constant-time policy").
      if (cmp_order(r) >= 0) sub_order(r);
    }
  }
  return r;
}

std::array<std::uint8_t, 32> scalar_to_bytes(const Scalar& s) {
  std::array<std::uint8_t, 32> out{};
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t v = s.limb[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(v);
    out[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(v >> 8);
    out[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(v >> 16);
    out[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

// (a * b + c) mod L via 64-bit accumulation then wide reduction.
Scalar scalar_mul_add(const Scalar& a, const Scalar& b, const Scalar& c) {
  std::array<std::uint64_t, 17> acc{};
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const std::uint64_t p =
          static_cast<std::uint64_t>(a.limb[static_cast<std::size_t>(i)]) *
          b.limb[static_cast<std::size_t>(j)];
      acc[static_cast<std::size_t>(i + j)] += p & 0xffffffffu;
      // Normalize eagerly (and branchlessly: the carry add is unconditional
      // so timing does not depend on the secret limbs) so accumulators
      // never overflow.
      acc[static_cast<std::size_t>(i + j + 1)] +=
          (p >> 32) + (acc[static_cast<std::size_t>(i + j)] >> 32);
      acc[static_cast<std::size_t>(i + j)] &= 0xffffffffu;
    }
  }
  for (int i = 0; i < 8; ++i) acc[static_cast<std::size_t>(i)] += c.limb[static_cast<std::size_t>(i)];
  // Final carry propagation into a byte string.
  std::uint64_t carry = 0;
  Bytes wide(17 * 4);
  for (int i = 0; i < 17; ++i) {
    const std::uint64_t v = acc[static_cast<std::size_t>(i)] + carry;
    const std::uint32_t limb = static_cast<std::uint32_t>(v);
    carry = v >> 32;
    wide[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(limb);
    wide[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(limb >> 8);
    wide[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(limb >> 16);
    wide[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(limb >> 24);
  }
  return scalar_from_bytes_wide(wide);
}

// ---------------------------------------------------------------------------
// Edwards curve group: -x^2 + y^2 = 1 + d x^2 y^2 over GF(2^255-19),
// extended homogeneous coordinates (X : Y : Z : T), T = XY/Z.
// ---------------------------------------------------------------------------

struct Point {
  Fe x, y, z, t;
};

const Fe& edwards_d() {
  // d = -121665/121666, computed rather than transcribed.
  static const Fe value =
      fe_neg(fe_mul(fe_from_u64(121665), fe_invert(fe_from_u64(121666))));
  return value;
}

const Fe& edwards_2d() {
  static const Fe value = fe_add(edwards_d(), edwards_d());
  return value;
}

Point point_identity() {
  return Point{fe_zero(), fe_one(), fe_one(), fe_zero()};
}

// Unified addition (add-2008-hwcd-3 for a = -1).
Point point_add(const Point& p, const Point& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const Fe c = fe_mul(fe_mul(p.t, q.t), edwards_2d());
  const Fe d = fe_mul_small(fe_mul(p.z, q.z), 2);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// Doubling (dbl-2008-hwcd).
Point point_double(const Point& p) {
  const Fe a = fe_sq(p.x);
  const Fe b = fe_sq(p.y);
  const Fe c = fe_mul_small(fe_sq(p.z), 2);
  const Fe h = fe_add(a, b);
  const Fe e = fe_sub(h, fe_sq(fe_add(p.x, p.y)));
  const Fe g = fe_sub(a, b);
  const Fe f = fe_add(c, g);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Point point_neg(const Point& p) {
  return Point{fe_neg(p.x), p.y, p.z, fe_neg(p.t)};
}

// Scalar multiplication, MSB-first double-and-add over the 256-bit scalar
// encoding. Variable-time; signatures here protect simulated systems, and
// the test suite exercises correctness, not side channels. Kept as the
// reference ladder the windowed paths are cross-checked against.
Point point_scalar_mul(const Point& p, const std::array<std::uint8_t, 32>& scalar_le) {
  Point r = point_identity();
  for (int byte_idx = 31; byte_idx >= 0; --byte_idx) {
    for (int bit = 7; bit >= 0; --bit) {
      r = point_double(r);
      // ct-ok: double-and-add reference ladder, used only to cross-check
      // the windowed implementation (see function comment above).
      if ((scalar_le[static_cast<std::size_t>(byte_idx)] >> bit) & 1) {
        r = point_add(r, p);
      }
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Windowed fixed-base multiplication and Straus double-scalar multiplication.
//
// Precomputed points are stored in affine Niels form (y+x, y-x, 2dxy with
// Z = 1), which makes a mixed addition cost 7 field multiplies instead of
// the 9 of the general formula. The base table holds (j+1)·16^(2i)·B for
// i < 32, j < 8, so a·B is 64 mixed additions + 4 doublings and no
// per-scalar doubling chain at all. All of this is variable-time (secret-
// dependent table offsets and skips) — see docs/PROTOCOL.md.
// ---------------------------------------------------------------------------

const Point& base_point();

struct Niels {
  Fe yplusx, yminusx, xy2d;
};

// Mixed addition P + Q (add-2008-hwcd-3 with Z2 = 1).
Point point_madd(const Point& p, const Niels& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), q.yminusx);
  const Fe b = fe_mul(fe_add(p.y, p.x), q.yplusx);
  const Fe c = fe_mul(p.t, q.xy2d);
  const Fe d = fe_mul_small(p.z, 2);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// Mixed subtraction P - Q: add the negated Niels point (swap y±x, -2dxy).
Point point_msub(const Point& p, const Niels& q) {
  return point_madd(p, Niels{q.yminusx, q.yplusx, fe_neg(q.xy2d)});
}

// Convert extended points to affine Niels with one shared inversion
// (Montgomery batch-inversion trick) — 3 multiplies per point instead of a
// ~250-multiply inversion each.
std::vector<Niels> to_niels_batch(const std::vector<Point>& pts) {
  const std::size_t n = pts.size();
  std::vector<Fe> prefix(n);
  prefix[0] = pts[0].z;
  for (std::size_t i = 1; i < n; ++i) prefix[i] = fe_mul(prefix[i - 1], pts[i].z);
  Fe inv = fe_invert(prefix[n - 1]);
  std::vector<Fe> zinv(n);
  for (std::size_t i = n - 1; i > 0; --i) {
    zinv[i] = fe_mul(inv, prefix[i - 1]);
    inv = fe_mul(inv, pts[i].z);
  }
  zinv[0] = inv;
  std::vector<Niels> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Fe x = fe_mul(pts[i].x, zinv[i]);
    const Fe y = fe_mul(pts[i].y, zinv[i]);
    out[i] = Niels{fe_add(y, x), fe_sub(y, x),
                   fe_mul(fe_mul(x, y), edwards_2d())};
  }
  return out;
}

// base_table()[i][j] = (j+1)·16^(2i)·B, built once at first use.
const std::array<std::array<Niels, 8>, 32>& base_table();

// Odd multiples B, 3B, ..., 15B for the Straus/wNAF verification path.
const std::array<Niels, 8>& base_odd_table();

const std::array<std::array<Niels, 8>, 32>& base_table() {
  static const std::array<std::array<Niels, 8>, 32> value = [] {
    std::vector<Point> pts;
    pts.reserve(32 * 8);
    Point window_base = base_point();  // 16^(2i)·B for the current window
    for (int i = 0; i < 32; ++i) {
      Point q = window_base;
      for (int j = 0; j < 8; ++j) {
        pts.push_back(q);
        if (j < 7) q = point_add(q, window_base);
      }
      if (i < 31) {
        for (int k = 0; k < 8; ++k) window_base = point_double(window_base);
      }
    }
    const std::vector<Niels> niels = to_niels_batch(pts);
    std::array<std::array<Niels, 8>, 32> table;
    for (int i = 0; i < 32; ++i) {
      for (int j = 0; j < 8; ++j) {
        table[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            niels[static_cast<std::size_t>(i * 8 + j)];
      }
    }
    return table;
  }();
  return value;
}

const std::array<Niels, 8>& base_odd_table() {
  static const std::array<Niels, 8> value = [] {
    std::vector<Point> pts;
    pts.reserve(8);
    const Point b2 = point_double(base_point());
    Point q = base_point();
    for (int j = 0; j < 8; ++j) {
      pts.push_back(q);
      if (j < 7) q = point_add(q, b2);
    }
    const std::vector<Niels> niels = to_niels_batch(pts);
    std::array<Niels, 8> table;
    for (int j = 0; j < 8; ++j) table[static_cast<std::size_t>(j)] = niels[static_cast<std::size_t>(j)];
    return table;
  }();
  return value;
}

// Signed radix-16 recoding: 64 digits in [-8, 8], Σ e[i]·16^i = scalar.
// Requires scalar < 2^255 - 8·16^63 (true for clamped scalars and values
// reduced mod L), so the top digit absorbs its carry without overflow.
std::array<std::int8_t, 64> to_radix16(const std::array<std::uint8_t, 32>& a) {
  std::array<std::int8_t, 64> e;
  for (int i = 0; i < 32; ++i) {
    e[static_cast<std::size_t>(2 * i)] =
        static_cast<std::int8_t>(a[static_cast<std::size_t>(i)] & 15);
    e[static_cast<std::size_t>(2 * i + 1)] =
        static_cast<std::int8_t>((a[static_cast<std::size_t>(i)] >> 4) & 15);
  }
  std::int8_t carry = 0;
  for (int i = 0; i < 63; ++i) {
    e[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(
        e[static_cast<std::size_t>(i)] + carry);
    carry = static_cast<std::int8_t>((e[static_cast<std::size_t>(i)] + 8) >> 4);
    e[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(
        e[static_cast<std::size_t>(i)] - (carry << 4));
  }
  e[63] = static_cast<std::int8_t>(e[63] + carry);
  return e;
}

Point madd_digit(const Point& h, const std::array<Niels, 8>& window,
                 std::int8_t digit) {
  if (digit > 0) return point_madd(h, window[static_cast<std::size_t>(digit - 1)]);
  if (digit < 0) return point_msub(h, window[static_cast<std::size_t>(-digit - 1)]);
  return h;
}

// a·B via the precomputed window table: odd digit positions first (their
// windows are one factor of 16 short), one ×16, then the even positions.
Point base_scalar_mul(const std::array<std::uint8_t, 32>& scalar_le) {
  const auto& table = base_table();
  const auto e = to_radix16(scalar_le);
  Point h = point_identity();
  for (int i = 1; i < 64; i += 2) {
    h = madd_digit(h, table[static_cast<std::size_t>(i / 2)],
                   e[static_cast<std::size_t>(i)]);
  }
  for (int k = 0; k < 4; ++k) h = point_double(h);
  for (int i = 0; i < 64; i += 2) {
    h = madd_digit(h, table[static_cast<std::size_t>(i / 2)],
                   e[static_cast<std::size_t>(i)]);
  }
  return h;
}

// Sliding-window NAF recoding, width 5: digits are 0 or odd in [-15, 15],
// with the usual sparsity (~1 nonzero digit per 6 positions).
void slide(std::int8_t r[256], const std::array<std::uint8_t, 32>& a) {
  for (int i = 0; i < 256; ++i) {
    r[i] = static_cast<std::int8_t>(1 & (a[static_cast<std::size_t>(i >> 3)] >> (i & 7)));
  }
  for (int i = 0; i < 256; ++i) {
    if (!r[i]) continue;
    for (int b = 1; b <= 6 && i + b < 256; ++b) {
      if (!r[i + b]) continue;
      if (r[i] + (r[i + b] << b) <= 15) {
        r[i] = static_cast<std::int8_t>(r[i] + (r[i + b] << b));
        r[i + b] = 0;
      } else if (r[i] - (r[i + b] << b) >= -15) {
        r[i] = static_cast<std::int8_t>(r[i] - (r[i + b] << b));
        for (int k = i + b; k < 256; ++k) {
          if (!r[k]) {
            r[k] = 1;
            break;
          }
          r[k] = 0;
        }
      } else {
        break;
      }
    }
  }
}

// Straus/Shamir: a·A + b·B in one interleaved pass with shared doublings.
// A's odd multiples are built per call (extended coords); B's come from the
// static Niels table.
Point double_scalarmult_vartime(const std::array<std::uint8_t, 32>& a_scalar,
                                const Point& a_point,
                                const std::array<std::uint8_t, 32>& b_scalar) {
  std::int8_t aslide[256];
  std::int8_t bslide[256];
  slide(aslide, a_scalar);
  slide(bslide, b_scalar);

  std::array<Point, 8> ai;  // A, 3A, 5A, ..., 15A
  ai[0] = a_point;
  const Point a2 = point_double(a_point);
  for (int j = 1; j < 8; ++j) {
    ai[static_cast<std::size_t>(j)] = point_add(ai[static_cast<std::size_t>(j - 1)], a2);
  }
  const auto& bi = base_odd_table();

  Point h = point_identity();
  int i = 255;
  while (i >= 0 && !aslide[i] && !bslide[i]) --i;
  for (; i >= 0; --i) {
    h = point_double(h);
    if (aslide[i] > 0) {
      h = point_add(h, ai[static_cast<std::size_t>(aslide[i] / 2)]);
    } else if (aslide[i] < 0) {
      h = point_add(h, point_neg(ai[static_cast<std::size_t>(-aslide[i] / 2)]));
    }
    if (bslide[i] > 0) {
      h = point_madd(h, bi[static_cast<std::size_t>(bslide[i] / 2)]);
    } else if (bslide[i] < 0) {
      h = point_msub(h, bi[static_cast<std::size_t>(-bslide[i] / 2)]);
    }
  }
  return h;
}

const Point& base_point() {
  // y = 4/5, x recovered from the curve equation with even x (sign bit 0).
  static const Point value = [] {
    const Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
    // x^2 = (y^2 - 1) / (d y^2 + 1)
    const Fe y2 = fe_sq(y);
    const Fe u = fe_sub(y2, fe_one());
    const Fe v = fe_add(fe_mul(edwards_d(), y2), fe_one());
    // Candidate root: (u/v)^((p+3)/8) = u v^3 (u v^7)^((p-5)/8)
    const Fe v3 = fe_mul(fe_sq(v), v);
    const Fe v7 = fe_mul(fe_sq(v3), v);
    Fe x = fe_mul(fe_mul(u, v3), fe_pow22523(fe_mul(u, v7)));
    const Fe vx2 = fe_mul(v, fe_sq(x));
    if (!fe_is_zero(fe_sub(vx2, u))) x = fe_mul(x, fe_sqrt_m1());
    if (fe_is_negative(x)) x = fe_neg(x);
    return Point{x, y, fe_one(), fe_mul(x, y)};
  }();
  return value;
}

std::array<std::uint8_t, 32> point_encode(const Point& p) {
  const Fe zinv = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zinv);
  const Fe y = fe_mul(p.y, zinv);
  std::array<std::uint8_t, 32> out = fe_to_bytes(y);
  out[31] = static_cast<std::uint8_t>(
      out[31] | (static_cast<std::uint8_t>(fe_is_negative(x)) << 7));
  return out;
}

std::optional<Point> point_decode(ByteView in) {
  if (in.size() != 32) return std::nullopt;
  const int sign = in[31] >> 7;
  const Fe y = fe_from_bytes(in);
  // Reject non-canonical y encodings (y >= p).
  {
    const auto canonical = fe_to_bytes(y);
    std::uint8_t masked_last = static_cast<std::uint8_t>(in[31] & 0x7f);
    bool same = true;
    for (int i = 0; i < 31; ++i) {
      if (canonical[static_cast<std::size_t>(i)] != in[static_cast<std::size_t>(i)]) {
        same = false;
        break;
      }
    }
    if (canonical[31] != masked_last) same = false;
    if (!same) return std::nullopt;
  }
  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());
  const Fe v = fe_add(fe_mul(edwards_d(), y2), fe_one());
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow22523(fe_mul(u, v7)));
  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (fe_is_zero(fe_sub(vx2, u))) {
    // x is a root.
  } else if (fe_is_zero(fe_add(vx2, u))) {
    x = fe_mul(x, fe_sqrt_m1());
  } else {
    return std::nullopt;
  }
  if (fe_is_zero(x) && sign == 1) return std::nullopt;
  if (fe_is_negative(x) != sign) x = fe_neg(x);
  return Point{x, y, fe_one(), fe_mul(x, y)};
}

std::array<std::uint8_t, 32> clamp_scalar(const std::uint8_t h[32]) {
  std::array<std::uint8_t, 32> a;
  std::memcpy(a.data(), h, 32);
  a[0] &= 248;
  a[31] &= 63;
  a[31] |= 64;
  return a;
}

// The shared input validation of single and batch verification: signature
// length, canonical s (< L), decodable A and R, and the challenge scalar
// k = SHA512(R || A || M) mod L. nullopt mirrors exactly the cases where
// ed25519_verify answers false without evaluating the curve equation.
struct DecodedVerify {
  Point a;                                // public-key point
  Point r;                                // signature R point
  std::array<std::uint8_t, 32> s_bytes{};  // canonical scalar s
  Scalar s;
  Scalar k;
};

std::optional<DecodedVerify> decode_for_verify(
    const Ed25519PublicKey& public_key, ByteView message, ByteView signature) {
  if (signature.size() != kEd25519SignatureSize) return std::nullopt;
  const ByteView r_enc = signature.subspan(0, 32);
  const ByteView s_enc = signature.subspan(32, 32);

  DecodedVerify out;
  for (int i = 0; i < 8; ++i) {
    std::uint32_t v = 0;
    for (int j = 3; j >= 0; --j) {
      v = (v << 8) | s_enc[static_cast<std::size_t>(i * 4 + j)];
    }
    out.s.limb[static_cast<std::size_t>(i)] = v;
  }
  // ct-ok: s is the signature scalar, a public input to verification.
  if (cmp_order(out.s) >= 0) return std::nullopt;

  const auto a_point = point_decode(public_key);
  // ct-ok: the public key is a public input to verification.
  if (!a_point) return std::nullopt;
  const auto r_point = point_decode(r_enc);
  if (!r_point) return std::nullopt;
  out.a = *a_point;
  out.r = *r_point;

  Sha512 hk;
  hk.update(r_enc);
  hk.update(public_key);
  hk.update(message);
  const Sha512Digest k_wide = hk.finish();
  out.k = scalar_from_bytes_wide(k_wide);
  std::memcpy(out.s_bytes.data(), s_enc.data(), 32);
  return out;
}

bool point_is_identity(const Point& p) {
  // (X : Y : Z) is the identity iff x == 0 and y == z (affine (0, 1)).
  return fe_is_zero(p.x) && fe_is_zero(fe_sub(p.y, p.z));
}

}  // namespace

Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed) {
  const Sha512Digest h = Sha512::hash(seed);
  const auto a = clamp_scalar(h.data());
  return point_encode(base_scalar_mul(a));
}

Ed25519KeyPair ed25519_generate(RandomSource& rng) {
  Ed25519KeyPair kp;
  rng.fill(kp.seed);
  kp.public_key = ed25519_public_key(kp.seed);
  return kp;
}

Ed25519Signature ed25519_sign(const Ed25519Seed& seed, ByteView message) {
  const Sha512Digest h = Sha512::hash(seed);
  const auto a = clamp_scalar(h.data());
  const Ed25519PublicKey pub = point_encode(base_scalar_mul(a));

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.update(ByteView(h.data() + 32, 32));
  hr.update(message);
  const Sha512Digest r_wide = hr.finish();
  const Scalar r = scalar_from_bytes_wide(r_wide);
  const auto r_bytes = scalar_to_bytes(r);
  const auto r_enc = point_encode(base_scalar_mul(r_bytes));

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(r_enc);
  hk.update(pub);
  hk.update(message);
  const Sha512Digest k_wide = hk.finish();
  const Scalar k = scalar_from_bytes_wide(k_wide);

  // s = (r + k * a) mod L
  const Scalar a_scalar = scalar_from_bytes_wide(a);
  const Scalar s = scalar_mul_add(k, a_scalar, r);
  const auto s_bytes = scalar_to_bytes(s);

  Ed25519Signature sig;
  std::memcpy(sig.data(), r_enc.data(), 32);
  std::memcpy(sig.data() + 32, s_bytes.data(), 32);
  return sig;
}

bool ed25519_verify(const Ed25519PublicKey& public_key, ByteView message,
                    ByteView signature) {
  const auto decoded = decode_for_verify(public_key, message, signature);
  // ct-ok: verification inputs (public key, signature) are public values.
  if (!decoded) return false;
  const auto k_bytes = scalar_to_bytes(decoded->k);

  // Check s*B == R + k*A  <=>  k*(-A) + s*B == R, computed in one
  // interleaved Straus pass with shared doublings.
  const Point check = double_scalarmult_vartime(
      k_bytes, point_neg(decoded->a), decoded->s_bytes);
  const auto check_enc = point_encode(check);
  return std::memcmp(check_enc.data(), signature.data(), 32) == 0;
}

std::vector<bool> ed25519_verify_batch(std::span<const Ed25519BatchItem> items,
                                       RandomSource* rng) {
  const std::size_t n = items.size();
  std::vector<bool> ok(n, false);
  if (n == 0) return ok;

  // Input validation identical to single verify; invalid items are settled
  // here and never enter the combined equation.
  struct Candidate {
    std::size_t index;
    DecodedVerify decoded;
    Scalar z;  // 128-bit blinding coefficient
  };
  std::vector<Candidate> candidates;
  candidates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto decoded = decode_for_verify(items[i].public_key, items[i].message,
                                     items[i].signature);
    if (decoded) candidates.push_back({i, std::move(*decoded), Scalar{}});
  }
  if (candidates.empty()) return ok;

  // A single survivor gains nothing from the batch equation.
  if (candidates.size() == 1) {
    const auto& item = items[candidates[0].index];
    ok[candidates[0].index] =
        ed25519_verify(item.public_key, item.message, item.signature);
    return ok;
  }

  // Blinding coefficients: 128 bits each, either from the caller's RNG or
  // derived by hashing the whole batch (the derivation commits every z_i to
  // all signatures, so an adversary cannot pick signatures afterwards).
  Sha512Digest batch_digest{};
  if (!rng) {
    Sha512 h;
    h.update(to_bytes("vnfsgx-ed25519-batch-v1"));
    for (const Candidate& c : candidates) {
      const auto& item = items[c.index];
      h.update(item.public_key);
      h.update(item.signature);
      h.update(Sha512::hash(item.message));
    }
    batch_digest = h.finish();
  }
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    std::array<std::uint8_t, 32> z_bytes{};
    if (rng) {
      std::array<std::uint8_t, 16> raw{};
      rng->fill(raw);
      std::copy(raw.begin(), raw.end(), z_bytes.begin());
    } else {
      Sha512 h;
      h.update(batch_digest);
      std::array<std::uint8_t, 8> idx{};
      for (int b = 0; b < 8; ++b) {
        idx[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(j >> (8 * b));
      }
      h.update(idx);
      const Sha512Digest zd = h.finish();
      std::copy(zd.begin(), zd.begin() + 16, z_bytes.begin());
    }
    z_bytes[0] |= 1;  // never zero: a zero coefficient drops its item
    candidates[j].z = scalar_from_bytes_wide(z_bytes);
  }

  // Batch equation scalars:
  //   per item:  z_i (for R_i) and z_i*k_i mod L (for A_i),
  //   combined:  Σ z_i*s_i mod L (for the subtracted base term).
  // One Straus pass over all 2·m+1 terms shares the 256-double chain that
  // single verification pays per signature.
  struct Term {
    std::array<Point, 8> odd;  // P, 3P, ..., 15P
    std::array<std::int8_t, 256> digits;
  };
  std::vector<Term> terms(2 * candidates.size());
  Scalar s_total;
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    const Candidate& c = candidates[j];
    const Scalar zk = scalar_mul_add(c.z, c.decoded.k, Scalar{});
    s_total = scalar_mul_add(c.z, c.decoded.s, s_total);

    Term& tr = terms[2 * j];      // z_i · R_i
    Term& ta = terms[2 * j + 1];  // (z_i·k_i) · A_i
    slide(tr.digits.data(), scalar_to_bytes(c.z));
    slide(ta.digits.data(), scalar_to_bytes(zk));
    for (Term* t : {&tr, &ta}) {
      const Point& p = (t == &tr) ? c.decoded.r : c.decoded.a;
      t->odd[0] = p;
      const Point p2 = point_double(p);
      for (int m = 1; m < 8; ++m) {
        t->odd[static_cast<std::size_t>(m)] =
            point_add(t->odd[static_cast<std::size_t>(m - 1)], p2);
      }
    }
  }
  std::array<std::int8_t, 256> base_digits;
  slide(base_digits.data(), scalar_to_bytes(s_total));
  const auto& base_odd = base_odd_table();

  int top = 255;
  const auto any_digit_at = [&](int i) {
    if (base_digits[static_cast<std::size_t>(i)]) return true;
    for (const Term& t : terms) {
      if (t.digits[static_cast<std::size_t>(i)]) return true;
    }
    return false;
  };
  while (top >= 0 && !any_digit_at(top)) --top;

  Point h = point_identity();
  for (int i = top; i >= 0; --i) {
    h = point_double(h);
    for (const Term& t : terms) {
      const std::int8_t d = t.digits[static_cast<std::size_t>(i)];
      if (d > 0) {
        h = point_add(h, t.odd[static_cast<std::size_t>(d / 2)]);
      } else if (d < 0) {
        h = point_add(h, point_neg(t.odd[static_cast<std::size_t>(-d / 2)]));
      }
    }
    // The base term is subtracted, so its additions flip sign.
    const std::int8_t d = base_digits[static_cast<std::size_t>(i)];
    if (d > 0) {
      h = point_msub(h, base_odd[static_cast<std::size_t>(d / 2)]);
    } else if (d < 0) {
      h = point_madd(h, base_odd[static_cast<std::size_t>(-d / 2)]);
    }
  }

  if (point_is_identity(h)) {
    for (const Candidate& c : candidates) ok[c.index] = true;
    return ok;
  }
  // The combination failed: at least one signature is bad. Re-verify each
  // survivor individually so the verdicts stay bit-exact with single verify
  // and the culprit is identified precisely.
  for (const Candidate& c : candidates) {
    const auto& item = items[c.index];
    ok[c.index] = ed25519_verify(item.public_key, item.message, item.signature);
  }
  return ok;
}

std::array<std::uint8_t, 32> ed25519_base_montgomery_u(
    const std::array<std::uint8_t, 32>& scalar_le) {
  const Point p = base_scalar_mul(scalar_le);
  // u = (1+y)/(1-y) with affine y = Y/Z, so u = (Z+Y)/(Z-Y). A clamped
  // scalar is never 0 mod L (no multiple of odd L in [2^254, 2^255) is
  // divisible by 8), so k·B is never the identity and Z-Y is invertible.
  return fe_to_bytes(fe_mul(fe_add(p.z, p.y), fe_invert(fe_sub(p.z, p.y))));
}

namespace detail {

std::array<std::uint8_t, 32> base_mul_ladder(
    const std::array<std::uint8_t, 32>& scalar_le) {
  return point_encode(point_scalar_mul(base_point(), scalar_le));
}

std::array<std::uint8_t, 32> base_mul_windowed(
    const std::array<std::uint8_t, 32>& scalar_le) {
  return point_encode(base_scalar_mul(scalar_le));
}

}  // namespace detail

}  // namespace vnfsgx::crypto
