#include "crypto/ed25519.h"

#include <cstring>

#include "common/error.h"
#include "crypto/field25519.h"
#include "crypto/sha512.h"

namespace vnfsgx::crypto {

namespace {

// ---------------------------------------------------------------------------
// Scalar arithmetic modulo the group order
//   L = 2^252 + 27742317777372353535851937790883648493.
// Little-endian 32-bit limbs; sized for 512-bit intermediates so that the
// SHA-512 outputs RFC 8032 reduces can be handled directly. Performance is
// irrelevant next to the point multiplications, so the reduction is a plain
// binary long division.
// ---------------------------------------------------------------------------

struct Scalar {
  // 9 limbs so intermediates during reduction (2*r + bit) fit.
  std::array<std::uint32_t, 9> limb{};
};

const std::array<std::uint32_t, 9>& order_limbs() {
  // L little-endian: 0xED, 0xD3, 0xF5, 0x5C, 0x1A, 0x63, 0x12, 0x58,
  // 0xD6, 0x9C, 0xF7, 0xA2, 0xDE, 0xF9, 0xDE, 0x14, 0,...,0, 0x10
  static const std::array<std::uint32_t, 9> kL = {
      0x5cf5d3edu, 0x5812631au, 0xa2f79cd6u, 0x14def9deu,
      0x00000000u, 0x00000000u, 0x00000000u, 0x10000000u, 0u};
  return kL;
}

// Compare a (9 limbs) with L.
int cmp_order(const Scalar& a) {
  const auto& l = order_limbs();
  for (int i = 8; i >= 0; --i) {
    if (a.limb[static_cast<std::size_t>(i)] != l[static_cast<std::size_t>(i)]) {
      return a.limb[static_cast<std::size_t>(i)] < l[static_cast<std::size_t>(i)]
                 ? -1
                 : 1;
    }
  }
  return 0;
}

void sub_order(Scalar& a) {
  const auto& l = order_limbs();
  std::uint64_t borrow = 0;
  for (int i = 0; i < 9; ++i) {
    const std::uint64_t d = static_cast<std::uint64_t>(a.limb[i]) -
                            l[static_cast<std::size_t>(i)] - borrow;
    a.limb[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(d);
    borrow = (d >> 32) & 1;
  }
}

// Reduce an arbitrary little-endian byte string modulo L.
Scalar scalar_from_bytes_wide(ByteView bytes_le) {
  Scalar r;  // running remainder < L
  for (std::size_t byte_idx = bytes_le.size(); byte_idx-- > 0;) {
    const std::uint8_t byte = bytes_le[byte_idx];
    for (int bit = 7; bit >= 0; --bit) {
      // r = 2r + bit
      std::uint32_t carry = (byte >> bit) & 1;
      for (int i = 0; i < 9; ++i) {
        const std::uint32_t next_carry = r.limb[static_cast<std::size_t>(i)] >> 31;
        r.limb[static_cast<std::size_t>(i)] =
            (r.limb[static_cast<std::size_t>(i)] << 1) | carry;
        carry = next_carry;
      }
      if (cmp_order(r) >= 0) sub_order(r);
    }
  }
  return r;
}

std::array<std::uint8_t, 32> scalar_to_bytes(const Scalar& s) {
  std::array<std::uint8_t, 32> out{};
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t v = s.limb[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(v);
    out[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(v >> 8);
    out[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(v >> 16);
    out[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

// (a * b + c) mod L via 64-bit accumulation then wide reduction.
Scalar scalar_mul_add(const Scalar& a, const Scalar& b, const Scalar& c) {
  std::array<std::uint64_t, 17> acc{};
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const std::uint64_t p =
          static_cast<std::uint64_t>(a.limb[static_cast<std::size_t>(i)]) *
          b.limb[static_cast<std::size_t>(j)];
      acc[static_cast<std::size_t>(i + j)] += p & 0xffffffffu;
      acc[static_cast<std::size_t>(i + j + 1)] += p >> 32;
      // Normalize eagerly so accumulators never overflow.
      if (acc[static_cast<std::size_t>(i + j)] >> 32) {
        acc[static_cast<std::size_t>(i + j + 1)] +=
            acc[static_cast<std::size_t>(i + j)] >> 32;
        acc[static_cast<std::size_t>(i + j)] &= 0xffffffffu;
      }
    }
  }
  for (int i = 0; i < 8; ++i) acc[static_cast<std::size_t>(i)] += c.limb[static_cast<std::size_t>(i)];
  // Final carry propagation into a byte string.
  std::uint64_t carry = 0;
  Bytes wide(17 * 4);
  for (int i = 0; i < 17; ++i) {
    const std::uint64_t v = acc[static_cast<std::size_t>(i)] + carry;
    const std::uint32_t limb = static_cast<std::uint32_t>(v);
    carry = v >> 32;
    wide[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(limb);
    wide[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(limb >> 8);
    wide[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(limb >> 16);
    wide[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(limb >> 24);
  }
  return scalar_from_bytes_wide(wide);
}

// ---------------------------------------------------------------------------
// Edwards curve group: -x^2 + y^2 = 1 + d x^2 y^2 over GF(2^255-19),
// extended homogeneous coordinates (X : Y : Z : T), T = XY/Z.
// ---------------------------------------------------------------------------

struct Point {
  Fe x, y, z, t;
};

const Fe& edwards_d() {
  // d = -121665/121666, computed rather than transcribed.
  static const Fe value =
      fe_neg(fe_mul(fe_from_u64(121665), fe_invert(fe_from_u64(121666))));
  return value;
}

const Fe& edwards_2d() {
  static const Fe value = fe_add(edwards_d(), edwards_d());
  return value;
}

Point point_identity() {
  return Point{fe_zero(), fe_one(), fe_one(), fe_zero()};
}

// Unified addition (add-2008-hwcd-3 for a = -1).
Point point_add(const Point& p, const Point& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const Fe c = fe_mul(fe_mul(p.t, q.t), edwards_2d());
  const Fe d = fe_mul_small(fe_mul(p.z, q.z), 2);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// Doubling (dbl-2008-hwcd).
Point point_double(const Point& p) {
  const Fe a = fe_sq(p.x);
  const Fe b = fe_sq(p.y);
  const Fe c = fe_mul_small(fe_sq(p.z), 2);
  const Fe h = fe_add(a, b);
  const Fe e = fe_sub(h, fe_sq(fe_add(p.x, p.y)));
  const Fe g = fe_sub(a, b);
  const Fe f = fe_add(c, g);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Point point_neg(const Point& p) {
  return Point{fe_neg(p.x), p.y, p.z, fe_neg(p.t)};
}

// Scalar multiplication, MSB-first double-and-add over the 256-bit scalar
// encoding. Variable-time; signatures here protect simulated systems, and
// the test suite exercises correctness, not side channels.
Point point_scalar_mul(const Point& p, const std::array<std::uint8_t, 32>& scalar_le) {
  Point r = point_identity();
  for (int byte_idx = 31; byte_idx >= 0; --byte_idx) {
    for (int bit = 7; bit >= 0; --bit) {
      r = point_double(r);
      if ((scalar_le[static_cast<std::size_t>(byte_idx)] >> bit) & 1) {
        r = point_add(r, p);
      }
    }
  }
  return r;
}

const Point& base_point() {
  // y = 4/5, x recovered from the curve equation with even x (sign bit 0).
  static const Point value = [] {
    const Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
    // x^2 = (y^2 - 1) / (d y^2 + 1)
    const Fe y2 = fe_sq(y);
    const Fe u = fe_sub(y2, fe_one());
    const Fe v = fe_add(fe_mul(edwards_d(), y2), fe_one());
    // Candidate root: (u/v)^((p+3)/8) = u v^3 (u v^7)^((p-5)/8)
    const Fe v3 = fe_mul(fe_sq(v), v);
    const Fe v7 = fe_mul(fe_sq(v3), v);
    std::array<std::uint8_t, 32> exp{};  // (p-5)/8 = 2^252 - 3, big-endian
    exp[0] = 0x0f;
    for (int i = 1; i < 31; ++i) exp[static_cast<std::size_t>(i)] = 0xff;
    exp[31] = 0xfd;
    Fe x = fe_mul(fe_mul(u, v3), fe_pow(fe_mul(u, v7), exp));
    const Fe vx2 = fe_mul(v, fe_sq(x));
    if (!fe_is_zero(fe_sub(vx2, u))) x = fe_mul(x, fe_sqrt_m1());
    if (fe_is_negative(x)) x = fe_neg(x);
    return Point{x, y, fe_one(), fe_mul(x, y)};
  }();
  return value;
}

std::array<std::uint8_t, 32> point_encode(const Point& p) {
  const Fe zinv = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zinv);
  const Fe y = fe_mul(p.y, zinv);
  std::array<std::uint8_t, 32> out = fe_to_bytes(y);
  out[31] = static_cast<std::uint8_t>(
      out[31] | (static_cast<std::uint8_t>(fe_is_negative(x)) << 7));
  return out;
}

std::optional<Point> point_decode(ByteView in) {
  if (in.size() != 32) return std::nullopt;
  const int sign = in[31] >> 7;
  const Fe y = fe_from_bytes(in);
  // Reject non-canonical y encodings (y >= p).
  {
    const auto canonical = fe_to_bytes(y);
    std::uint8_t masked_last = static_cast<std::uint8_t>(in[31] & 0x7f);
    bool same = true;
    for (int i = 0; i < 31; ++i) {
      if (canonical[static_cast<std::size_t>(i)] != in[static_cast<std::size_t>(i)]) {
        same = false;
        break;
      }
    }
    if (canonical[31] != masked_last) same = false;
    if (!same) return std::nullopt;
  }
  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());
  const Fe v = fe_add(fe_mul(edwards_d(), y2), fe_one());
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  std::array<std::uint8_t, 32> exp{};
  exp[0] = 0x0f;
  for (int i = 1; i < 31; ++i) exp[static_cast<std::size_t>(i)] = 0xff;
  exp[31] = 0xfd;
  Fe x = fe_mul(fe_mul(u, v3), fe_pow(fe_mul(u, v7), exp));
  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (fe_is_zero(fe_sub(vx2, u))) {
    // x is a root.
  } else if (fe_is_zero(fe_add(vx2, u))) {
    x = fe_mul(x, fe_sqrt_m1());
  } else {
    return std::nullopt;
  }
  if (fe_is_zero(x) && sign == 1) return std::nullopt;
  if (fe_is_negative(x) != sign) x = fe_neg(x);
  return Point{x, y, fe_one(), fe_mul(x, y)};
}

std::array<std::uint8_t, 32> clamp_scalar(const std::uint8_t h[32]) {
  std::array<std::uint8_t, 32> a;
  std::memcpy(a.data(), h, 32);
  a[0] &= 248;
  a[31] &= 63;
  a[31] |= 64;
  return a;
}

}  // namespace

Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed) {
  const Sha512Digest h = Sha512::hash(seed);
  const auto a = clamp_scalar(h.data());
  return point_encode(point_scalar_mul(base_point(), a));
}

Ed25519KeyPair ed25519_generate(RandomSource& rng) {
  Ed25519KeyPair kp;
  rng.fill(kp.seed);
  kp.public_key = ed25519_public_key(kp.seed);
  return kp;
}

Ed25519Signature ed25519_sign(const Ed25519Seed& seed, ByteView message) {
  const Sha512Digest h = Sha512::hash(seed);
  const auto a = clamp_scalar(h.data());
  const Ed25519PublicKey pub =
      point_encode(point_scalar_mul(base_point(), a));

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.update(ByteView(h.data() + 32, 32));
  hr.update(message);
  const Sha512Digest r_wide = hr.finish();
  const Scalar r = scalar_from_bytes_wide(r_wide);
  const auto r_bytes = scalar_to_bytes(r);
  const auto r_enc = point_encode(point_scalar_mul(base_point(), r_bytes));

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(r_enc);
  hk.update(pub);
  hk.update(message);
  const Sha512Digest k_wide = hk.finish();
  const Scalar k = scalar_from_bytes_wide(k_wide);

  // s = (r + k * a) mod L
  const Scalar a_scalar = scalar_from_bytes_wide(a);
  const Scalar s = scalar_mul_add(k, a_scalar, r);
  const auto s_bytes = scalar_to_bytes(s);

  Ed25519Signature sig;
  std::memcpy(sig.data(), r_enc.data(), 32);
  std::memcpy(sig.data() + 32, s_bytes.data(), 32);
  return sig;
}

bool ed25519_verify(const Ed25519PublicKey& public_key, ByteView message,
                    ByteView signature) {
  if (signature.size() != kEd25519SignatureSize) return false;
  const ByteView r_enc = signature.subspan(0, 32);
  const ByteView s_enc = signature.subspan(32, 32);

  // Canonical s: s < L.
  {
    Scalar s;
    for (int i = 0; i < 8; ++i) {
      std::uint32_t v = 0;
      for (int j = 3; j >= 0; --j) {
        v = (v << 8) | s_enc[static_cast<std::size_t>(i * 4 + j)];
      }
      s.limb[static_cast<std::size_t>(i)] = v;
    }
    if (cmp_order(s) >= 0) return false;
  }

  const auto a_point = point_decode(public_key);
  if (!a_point) return false;
  const auto r_point = point_decode(r_enc);
  if (!r_point) return false;

  Sha512 hk;
  hk.update(r_enc);
  hk.update(public_key);
  hk.update(message);
  const Sha512Digest k_wide = hk.finish();
  const Scalar k = scalar_from_bytes_wide(k_wide);
  const auto k_bytes = scalar_to_bytes(k);

  std::array<std::uint8_t, 32> s_bytes;
  std::memcpy(s_bytes.data(), s_enc.data(), 32);

  // Check s*B == R + k*A  <=>  s*B + k*(-A) == R.
  const Point sb = point_scalar_mul(base_point(), s_bytes);
  const Point ka = point_scalar_mul(point_neg(*a_point), k_bytes);
  const Point check = point_add(sb, ka);
  const auto check_enc = point_encode(check);
  return std::memcmp(check_enc.data(), r_enc.data(), 32) == 0;
}

}  // namespace vnfsgx::crypto
