#include "crypto/field25519.h"

namespace vnfsgx::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (1ULL << 51) - 1;

// Carry-propagate so every limb is < 2^52 (loose reduction).
Fe carry(Fe a) {
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      const u64 c = a.v[i] >> 51;
      a.v[i] &= kMask51;
      a.v[i + 1] += c;
    }
    const u64 c = a.v[4] >> 51;
    a.v[4] &= kMask51;
    a.v[0] += c * 19;
  }
  return a;
}

}  // namespace

Fe fe_from_u64(std::uint64_t x) {
  Fe r = fe_zero();
  r.v[0] = x & kMask51;
  r.v[1] = x >> 51;
  return r;
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return carry(r);
}

Fe fe_sub(const Fe& a, const Fe& b) {
  // a - b + 2p, with 2p = (2^52-38, 2^52-2, 2^52-2, 2^52-2, 2^52-2) in
  // radix 2^51, keeps limbs non-negative for loosely reduced inputs.
  Fe r;
  r.v[0] = a.v[0] + ((1ULL << 52) - 38) - b.v[0];
  for (int i = 1; i < 5; ++i) {
    r.v[i] = a.v[i] + ((1ULL << 52) - 2) - b.v[i];
  }
  return carry(r);
}

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

Fe fe_mul(const Fe& a, const Fe& b) {
  const u64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const u64 b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = static_cast<u128>(a0) * b0 + static_cast<u128>(a1) * b4_19 +
            static_cast<u128>(a2) * b3_19 + static_cast<u128>(a3) * b2_19 +
            static_cast<u128>(a4) * b1_19;
  u128 t1 = static_cast<u128>(a0) * b1 + static_cast<u128>(a1) * b0 +
            static_cast<u128>(a2) * b4_19 + static_cast<u128>(a3) * b3_19 +
            static_cast<u128>(a4) * b2_19;
  u128 t2 = static_cast<u128>(a0) * b2 + static_cast<u128>(a1) * b1 +
            static_cast<u128>(a2) * b0 + static_cast<u128>(a3) * b4_19 +
            static_cast<u128>(a4) * b3_19;
  u128 t3 = static_cast<u128>(a0) * b3 + static_cast<u128>(a1) * b2 +
            static_cast<u128>(a2) * b1 + static_cast<u128>(a3) * b0 +
            static_cast<u128>(a4) * b4_19;
  u128 t4 = static_cast<u128>(a0) * b4 + static_cast<u128>(a1) * b3 +
            static_cast<u128>(a2) * b2 + static_cast<u128>(a3) * b1 +
            static_cast<u128>(a4) * b0;

  Fe r;
  u64 c;
  r.v[0] = static_cast<u64>(t0) & kMask51;
  c = static_cast<u64>(t0 >> 51);
  t1 += c;
  r.v[1] = static_cast<u64>(t1) & kMask51;
  c = static_cast<u64>(t1 >> 51);
  t2 += c;
  r.v[2] = static_cast<u64>(t2) & kMask51;
  c = static_cast<u64>(t2 >> 51);
  t3 += c;
  r.v[3] = static_cast<u64>(t3) & kMask51;
  c = static_cast<u64>(t3 >> 51);
  t4 += c;
  r.v[4] = static_cast<u64>(t4) & kMask51;
  c = static_cast<u64>(t4 >> 51);
  r.v[0] += c * 19;
  c = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, std::uint64_t s) {
  Fe r;
  u128 carry_acc = 0;
  for (int i = 0; i < 5; ++i) {
    const u128 t = static_cast<u128>(a.v[i]) * s + carry_acc;
    r.v[i] = static_cast<u64>(t) & kMask51;
    carry_acc = t >> 51;
  }
  r.v[0] += static_cast<u64>(carry_acc) * 19;
  return carry(r);
}

Fe fe_pow(const Fe& base, const std::array<std::uint8_t, 32>& exp_be) {
  Fe result = fe_one();
  bool started = false;
  for (const std::uint8_t byte : exp_be) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) result = fe_sq(result);
      if ((byte >> bit) & 1) {
        result = fe_mul(result, base);
        started = true;
      }
    }
  }
  return result;
}

namespace {

Fe fe_sqn(Fe x, int n) {
  for (int i = 0; i < n; ++i) x = fe_sq(x);
  return x;
}

// Shared prefix of the p-2 and (p-5)/8 addition chains: z^(2^250 - 1),
// plus the z^11 byproduct the inversion tail needs.
struct PowChain {
  Fe t250;  // z^(2^250 - 1)
  Fe z11;
};

PowChain fe_pow_chain(const Fe& z) {
  const Fe z2 = fe_sq(z);                                   // z^2
  const Fe z9 = fe_mul(z, fe_sqn(z2, 2));                   // z^9
  const Fe z11 = fe_mul(z2, z9);                            // z^11
  const Fe z_5_0 = fe_mul(z9, fe_sq(z11));                  // z^(2^5 - 1)
  const Fe z_10_0 = fe_mul(fe_sqn(z_5_0, 5), z_5_0);        // z^(2^10 - 1)
  const Fe z_20_0 = fe_mul(fe_sqn(z_10_0, 10), z_10_0);     // z^(2^20 - 1)
  const Fe z_40_0 = fe_mul(fe_sqn(z_20_0, 20), z_20_0);     // z^(2^40 - 1)
  const Fe z_50_0 = fe_mul(fe_sqn(z_40_0, 10), z_10_0);     // z^(2^50 - 1)
  const Fe z_100_0 = fe_mul(fe_sqn(z_50_0, 50), z_50_0);    // z^(2^100 - 1)
  const Fe z_200_0 = fe_mul(fe_sqn(z_100_0, 100), z_100_0); // z^(2^200 - 1)
  const Fe z_250_0 = fe_mul(fe_sqn(z_200_0, 50), z_50_0);   // z^(2^250 - 1)
  return {z_250_0, z11};
}

}  // namespace

Fe fe_invert(const Fe& a) {
  // a^(p-2) = a^(2^255 - 21) = (a^(2^250 - 1))^(2^5) * a^11.
  const PowChain c = fe_pow_chain(a);
  return fe_mul(fe_sqn(c.t250, 5), c.z11);
}

Fe fe_pow22523(const Fe& a) {
  // a^((p-5)/8) = a^(2^252 - 3) = (a^(2^250 - 1))^(2^2) * a.
  const PowChain c = fe_pow_chain(a);
  return fe_mul(fe_sqn(c.t250, 2), a);
}

Fe fe_from_bytes(ByteView in32) {
  std::uint8_t b[32];
  for (int i = 0; i < 32; ++i) b[i] = in32[static_cast<std::size_t>(i)];
  b[31] &= 0x7f;
  auto load64 = [&](int off, int bytes) {
    u64 v = 0;
    for (int i = bytes - 1; i >= 0; --i) v = (v << 8) | b[off + i];
    return v;
  };
  Fe r;
  // 51 bits each: bit offsets 0, 51, 102, 153, 204.
  r.v[0] = load64(0, 8) & kMask51;
  r.v[1] = (load64(6, 8) >> 3) & kMask51;
  r.v[2] = (load64(12, 8) >> 6) & kMask51;
  r.v[3] = (load64(19, 8) >> 1) & kMask51;
  r.v[4] = (load64(24, 8) >> 12) & kMask51;
  return r;
}

std::array<std::uint8_t, 32> fe_to_bytes(const Fe& a) {
  Fe t = carry(a);
  // Full reduction: add 19 and see if it overflows 2^255 (i.e. t >= p).
  // Standard trick: compute t + 19, propagate, then use the carry out of
  // bit 255 to decide subtraction of p.
  u64 l0 = t.v[0], l1 = t.v[1], l2 = t.v[2], l3 = t.v[3], l4 = t.v[4];
  // Propagate once more to guarantee limbs < 2^51 + small.
  u64 c;
  c = l0 >> 51;
  l0 &= kMask51;
  l1 += c;
  c = l1 >> 51;
  l1 &= kMask51;
  l2 += c;
  c = l2 >> 51;
  l2 &= kMask51;
  l3 += c;
  c = l3 >> 51;
  l3 &= kMask51;
  l4 += c;
  c = l4 >> 51;
  l4 &= kMask51;
  l0 += c * 19;
  c = l0 >> 51;
  l0 &= kMask51;
  l1 += c;

  // Now limbs < 2^51 except possibly l1 has a tiny carry; t < 2p.
  // Conditionally subtract p: compute t - p; if no borrow, keep it.
  u64 s0 = l0 + 19;
  u64 carry0 = s0 >> 51;
  s0 &= kMask51;
  u64 s1 = l1 + carry0;
  u64 carry1 = s1 >> 51;
  s1 &= kMask51;
  u64 s2 = l2 + carry1;
  u64 carry2 = s2 >> 51;
  s2 &= kMask51;
  u64 s3 = l3 + carry2;
  u64 carry3 = s3 >> 51;
  s3 &= kMask51;
  u64 s4 = l4 + carry3;
  const u64 ge_p = s4 >> 51;  // 1 iff t + 19 >= 2^255, i.e. t >= p
  s4 &= kMask51;

  const u64 mask = 0 - ge_p;  // all-ones if t >= p
  l0 = (l0 & ~mask) | (s0 & mask);
  l1 = (l1 & ~mask) | (s1 & mask);
  l2 = (l2 & ~mask) | (s2 & mask);
  l3 = (l3 & ~mask) | (s3 & mask);
  l4 = (l4 & ~mask) | (s4 & mask);

  std::array<std::uint8_t, 32> out{};
  const u64 limbs[5] = {l0, l1, l2, l3, l4};
  // Pack 5x51 bits little-endian.
  int bitpos = 0;
  for (int i = 0; i < 5; ++i) {
    for (int bit = 0; bit < 51; ++bit, ++bitpos) {
      if ((limbs[i] >> bit) & 1) {
        out[static_cast<std::size_t>(bitpos >> 3)] |=
            static_cast<std::uint8_t>(1u << (bitpos & 7));
      }
    }
  }
  return out;
}

bool fe_is_zero(const Fe& a) {
  const auto b = fe_to_bytes(a);
  std::uint8_t acc = 0;
  for (auto x : b) acc |= x;
  return acc == 0;
}

int fe_is_negative(const Fe& a) { return fe_to_bytes(a)[0] & 1; }

void fe_cswap(Fe& a, Fe& b, std::uint64_t bit) {
  const u64 mask = 0 - bit;
  for (int i = 0; i < 5; ++i) {
    const u64 x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

const Fe& fe_sqrt_m1() {
  // 2^((p-1)/4) with (p-1)/4 = 2^253 - 5.
  static const Fe value = [] {
    std::array<std::uint8_t, 32> exp{};
    // 2^253 - 5 big-endian: 0x1f, then 30 x 0xff, then 0xfb.
    exp[0] = 0x1f;
    for (int i = 1; i < 31; ++i) exp[static_cast<std::size_t>(i)] = 0xff;
    exp[31] = 0xfb;
    return fe_pow(fe_from_u64(2), exp);
  }();
  return value;
}

}  // namespace vnfsgx::crypto
