#include "crypto/x25519.h"

#include "common/error.h"
#include "crypto/ed25519.h"
#include "crypto/field25519.h"

namespace vnfsgx::crypto {

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  // Clamp per RFC 7748 §5 (the working copy wipes itself).
  Zeroizing<X25519Key> k = scalar;
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;

  const Fe x1 = fe_from_bytes(point);
  Fe x2 = fe_one();
  Fe z2 = fe_zero();
  Fe x3 = x1;
  Fe z3 = fe_one();
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (k[static_cast<std::size_t>(t >> 3)] >> (t & 7)) & 1;
    swap ^= k_t;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = k_t;

    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe e = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e, fe_add(aa, fe_mul_small(e, 121665)));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  const Fe out = fe_mul(x2, fe_invert(z2));
  return fe_to_bytes(out);
}

X25519Key x25519_base(const X25519Key& scalar) {
  // Clamp, then ride the Ed25519 precomputed base table: scalar·B on the
  // birationally equivalent Edwards curve, mapped back to the Montgomery
  // u-coordinate. Bit-identical to x25519(scalar, 9) (the generic ladder
  // pays the ~255-step doubling chain the window table precomputed), and
  // roughly 3x cheaper — this is both sides' ephemeral keygen in every
  // TLS handshake.
  Zeroizing<X25519Key> k = scalar;
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;
  return ed25519_base_montgomery_u(k);
}

X25519KeyPair x25519_generate(RandomSource& rng) {
  X25519KeyPair kp;
  rng.fill(kp.private_key);
  kp.public_key = x25519_base(kp.private_key);
  return kp;
}

SecureBytes x25519_shared(const X25519Key& private_key,
                          const X25519Key& peer_public) {
  const Zeroizing<X25519Key> shared = x25519(private_key, peer_public);
  std::uint8_t acc = 0;
  for (auto b : shared) acc |= b;
  // ct-ok: reveals only the all-zero rejection mandated by RFC 7748 §6.1,
  // not any bit of a usable shared secret.
  if (acc == 0) throw CryptoError("x25519: low-order peer public key");
  return Bytes(shared.begin(), shared.end());
}

}  // namespace vnfsgx::crypto
