#include "crypto/hmac.h"

#include "crypto/ct.h"

namespace vnfsgx::crypto {

HmacSha256::HmacSha256(ByteView key) {
  Zeroizing<std::array<std::uint8_t, kSha256BlockSize>> k;
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest d = Sha256::hash(key);
    std::copy(d.begin(), d.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  Zeroizing<std::array<std::uint8_t, kSha256BlockSize>> ipad_key;
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad_key[i] = k[i] ^ 0x36;
    opad_key_[i] = k[i] ^ 0x5c;
  }
  inner_.update(ipad_key);
}

void HmacSha256::update(ByteView data) { inner_.update(data); }

Sha256Digest HmacSha256::finish() {
  const Sha256Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

Bytes hmac_sha256(ByteView key, ByteView data) {
  const Sha256Digest d = HmacSha256::mac(key, data);
  return Bytes(d.begin(), d.end());
}

Bytes hmac_sha512(ByteView key, ByteView data) {
  Zeroizing<std::array<std::uint8_t, kSha512BlockSize>> k;
  if (key.size() > kSha512BlockSize) {
    const Sha512Digest d = Sha512::hash(key);
    std::copy(d.begin(), d.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  Zeroizing<std::array<std::uint8_t, kSha512BlockSize>> pad;
  for (std::size_t i = 0; i < kSha512BlockSize; ++i) pad[i] = k[i] ^ 0x36;
  Sha512 inner;
  inner.update(pad);
  inner.update(data);
  const Sha512Digest inner_digest = inner.finish();
  for (std::size_t i = 0; i < kSha512BlockSize; ++i) pad[i] = k[i] ^ 0x5c;
  Sha512 outer;
  outer.update(pad);
  outer.update(inner_digest);
  const Sha512Digest d = outer.finish();
  return Bytes(d.begin(), d.end());
}

bool hmac_sha256_verify(ByteView key, ByteView data, ByteView tag) {
  const Sha256Digest expected = HmacSha256::mac(key, data);
  return ct_equal(ByteView(expected.data(), expected.size()), tag);
}

}  // namespace vnfsgx::crypto
