#include "crypto/random.h"

#include <random>

#include "crypto/hmac.h"

namespace vnfsgx::crypto {

HmacDrbg::HmacDrbg(ByteView seed)
    : key_(kSha256DigestSize, 0x00), v_(kSha256DigestSize, 0x01) {
  update(seed);
}

void HmacDrbg::update(ByteView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  SecureBytes data = v_;
  append_u8(data, 0x00);
  append(data, provided);
  key_ = hmac_sha256(key_, data);
  v_ = hmac_sha256(key_, v_);
  if (!provided.empty()) {
    data = v_;
    append_u8(data, 0x01);
    append(data, provided);
    key_ = hmac_sha256(key_, data);
    v_ = hmac_sha256(key_, v_);
  }
}

void HmacDrbg::fill(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    v_ = hmac_sha256(key_, v_);
    const std::size_t take = std::min(v_.size(), out.size() - off);
    std::copy(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(take),
              out.begin() + static_cast<std::ptrdiff_t>(off));
    off += take;
  }
  update({});
}

void HmacDrbg::reseed(ByteView entropy) { update(entropy); }

DeterministicRandom::DeterministicRandom(std::uint64_t seed)
    : drbg_([&] {
        Bytes s;
        append(s, std::string_view("vnfsgx-deterministic-rng"));
        append_u64(s, seed);
        return s;
      }()) {}

SystemRandom::SystemRandom() {
  std::random_device rd;
  SecureBytes seed;
  seed->reserve(48);
  for (int i = 0; i < 12; ++i) append_u32(seed, rd());
  drbg_ = std::make_unique<HmacDrbg>(seed);
}

void SystemRandom::fill(std::span<std::uint8_t> out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  drbg_->fill(out);
}

SystemRandom& SystemRandom::instance() {
  static SystemRandom instance;
  return instance;
}

}  // namespace vnfsgx::crypto
