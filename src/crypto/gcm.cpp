#include "crypto/gcm.h"

#include "common/error.h"
#include "crypto/ct.h"

namespace vnfsgx::crypto {

namespace {

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

// Bit-reflected carry-less multiplication in GF(2^128) with the GCM
// polynomial x^128 + x^7 + x^2 + x + 1. Right-shift algorithm from
// SP 800-38D: Z starts at 0, V starts at Y; for each bit of X (MSB first)
// conditionally XOR V into Z, then "multiply V by x" (right shift with
// reduction constant 0xE1 << 120).
U128 gf_mul(U128 x, U128 y) {
  U128 z{0, 0};
  U128 v = y;
  for (int i = 0; i < 128; ++i) {
    const std::uint64_t bit =
        (i < 64) ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    if (bit) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    const bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xe100000000000000ULL;
  }
  return z;
}

U128 load_block(const std::uint8_t* p) {
  U128 b;
  for (int i = 0; i < 8; ++i) b.hi = (b.hi << 8) | p[i];
  for (int i = 8; i < 16; ++i) b.lo = (b.lo << 8) | p[i];
  return b;
}

void store_block(U128 b, std::uint8_t* p) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(b.hi >> (56 - i * 8));
  for (int i = 0; i < 8; ++i) p[8 + i] = static_cast<std::uint8_t>(b.lo >> (56 - i * 8));
}

void ghash_update(U128& y, U128 h, ByteView data) {
  std::size_t off = 0;
  while (off < data.size()) {
    std::uint8_t block[16] = {0};
    const std::size_t take = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < take; ++i) block[i] = data[off + i];
    const U128 x = load_block(block);
    y.hi ^= x.hi;
    y.lo ^= x.lo;
    y = gf_mul(y, h);
    off += take;
  }
}

}  // namespace

AesGcm::AesGcm(ByteView key) : aes_(key) {
  AesBlock zero{};
  const AesBlock h = aes_.encrypt_block(zero);
  const U128 hb = load_block(h.data());
  h_hi_ = hb.hi;
  h_lo_ = hb.lo;
}

AesBlock AesGcm::ghash(ByteView aad, ByteView ciphertext) const {
  const U128 h{h_hi_, h_lo_};
  U128 y{0, 0};
  ghash_update(y, h, aad);
  ghash_update(y, h, ciphertext);
  // Length block: bit lengths of AAD and ciphertext.
  std::uint8_t len_block[16];
  const std::uint64_t aad_bits = static_cast<std::uint64_t>(aad.size()) * 8;
  const std::uint64_t ct_bits = static_cast<std::uint64_t>(ciphertext.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    len_block[i] = static_cast<std::uint8_t>(aad_bits >> (56 - i * 8));
    len_block[8 + i] = static_cast<std::uint8_t>(ct_bits >> (56 - i * 8));
  }
  const U128 x = load_block(len_block);
  y.hi ^= x.hi;
  y.lo ^= x.lo;
  y = gf_mul(y, h);
  AesBlock out;
  store_block(y, out.data());
  return out;
}

Bytes AesGcm::seal(ByteView nonce, ByteView plaintext, ByteView aad) const {
  if (nonce.size() != kGcmNonceSize) {
    throw CryptoError("AES-GCM nonce must be 12 bytes");
  }
  // J0 = nonce || 0x00000001
  AesBlock j0{};
  std::copy(nonce.begin(), nonce.end(), j0.begin());
  j0[15] = 1;
  // First counter for data is inc32(J0).
  AesBlock ctr = j0;
  ctr[15] = 2;

  Bytes out(plaintext.size() + kGcmTagSize);
  aes_ctr_xor(aes_, ctr, plaintext, out.data());

  const AesBlock s = ghash(aad, ByteView(out.data(), plaintext.size()));
  AesBlock tag_mask = aes_.encrypt_block(j0);
  for (std::size_t i = 0; i < kGcmTagSize; ++i) {
    out[plaintext.size() + i] = static_cast<std::uint8_t>(s[i] ^ tag_mask[i]);
  }
  return out;
}

std::optional<Bytes> AesGcm::open(ByteView nonce, ByteView ciphertext_and_tag,
                                  ByteView aad) const {
  if (nonce.size() != kGcmNonceSize) {
    throw CryptoError("AES-GCM nonce must be 12 bytes");
  }
  if (ciphertext_and_tag.size() < kGcmTagSize) return std::nullopt;
  const std::size_t ct_len = ciphertext_and_tag.size() - kGcmTagSize;
  const ByteView ciphertext = ciphertext_and_tag.subspan(0, ct_len);
  const ByteView tag = ciphertext_and_tag.subspan(ct_len);

  AesBlock j0{};
  std::copy(nonce.begin(), nonce.end(), j0.begin());
  j0[15] = 1;

  const AesBlock s = ghash(aad, ciphertext);
  const AesBlock tag_mask = aes_.encrypt_block(j0);
  std::uint8_t expected[kGcmTagSize];
  for (std::size_t i = 0; i < kGcmTagSize; ++i) {
    expected[i] = static_cast<std::uint8_t>(s[i] ^ tag_mask[i]);
  }
  if (!ct_equal(ByteView(expected, kGcmTagSize), tag)) return std::nullopt;

  AesBlock ctr = j0;
  ctr[15] = 2;
  Bytes plaintext(ct_len);
  aes_ctr_xor(aes_, ctr, ciphertext, plaintext.data());
  return plaintext;
}

}  // namespace vnfsgx::crypto
