#include "crypto/gcm.h"

#include <atomic>

#include "common/error.h"
#include "crypto/ct.h"

#if defined(__x86_64__) || defined(__i386__)
#define VNFSGX_CLMUL_COMPILED 1
#include <immintrin.h>
#endif

namespace vnfsgx::crypto {

namespace {

std::atomic<bool> g_constant_time{false};

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

// Multiply by x: right shift with the reduction constant 0xE1 << 120
// folded back in when the x^127 coefficient (the lsb) drops out.
inline U128 mul_x(U128 v) {
  const std::uint64_t lsb_mask = 0 - (v.lo & 1);
  v.lo = (v.lo >> 1) | (v.hi << 63);
  v.hi = (v.hi >> 1) ^ (lsb_mask & 0xe100000000000000ULL);
  return v;
}

// Bit-reflected carry-less multiplication in GF(2^128) with the GCM
// polynomial x^128 + x^7 + x^2 + x + 1. Right-shift algorithm from
// SP 800-38D, kept branchless: Z starts at 0, V starts at Y; for each bit
// of X (MSB first) mask-XOR V into Z, then multiply V by x. This is the
// constant-time fallback and the reference the table path is checked
// against (tests cross-check the two on random inputs).
U128 gf_mul(U128 x, U128 y) {
  U128 z{0, 0};
  U128 v = y;
  for (int i = 0; i < 128; ++i) {
    const std::uint64_t bit =
        (i < 64) ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    const std::uint64_t mask = 0 - bit;
    z.hi ^= v.hi & mask;
    z.lo ^= v.lo & mask;
    v = mul_x(v);
  }
  return z;
}

// Key-independent reduction table for 8-bit shifts: rem8()[r] is the value
// folded into the high word when a byte r is shifted out the low end.
// Computed once from eight single-bit reduce-shifts per entry rather than
// transcribed (Shoup's method; the table has only the top 16 bits set).
const std::array<std::uint64_t, 256>& rem8() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    for (int r = 0; r < 256; ++r) {
      U128 v{0, static_cast<std::uint64_t>(r)};
      for (int i = 0; i < 8; ++i) v = mul_x(v);
      t[static_cast<std::size_t>(r)] = v.hi;
    }
    return t;
  }();
  return table;
}

U128 load_block(const std::uint8_t* p) {
  U128 b;
  for (int i = 0; i < 8; ++i) b.hi = (b.hi << 8) | p[i];
  for (int i = 8; i < 16; ++i) b.lo = (b.lo << 8) | p[i];
  return b;
}

void store_block(U128 b, std::uint8_t* p) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(b.hi >> (56 - i * 8));
  for (int i = 0; i < 8; ++i) p[8 + i] = static_cast<std::uint8_t>(b.lo >> (56 - i * 8));
}

// Shoup 4-bit tables for multiplication by a fixed H. hi_t[n] = n·H with
// the nibble in the high-nibble slot of byte 0 (so hi_t[8] = H itself),
// lo_t[n] = hi_t[n]·x^4 (the low-nibble slot).
struct GhashTables {
  U128 hi_t[16];
  U128 lo_t[16];

  GhashTables() = default;

  explicit GhashTables(U128 h) {
    hi_t[0] = U128{0, 0};
    hi_t[8] = h;                  // degree-0 nibble bit
    hi_t[4] = mul_x(hi_t[8]);
    hi_t[2] = mul_x(hi_t[4]);
    hi_t[1] = mul_x(hi_t[2]);
    for (int n = 3; n < 16; ++n) {
      if (n == 4 || n == 8) continue;
      const int low = n & (-n);   // lowest set bit
      hi_t[n] = U128{hi_t[n - low].hi ^ hi_t[low].hi,
                     hi_t[n - low].lo ^ hi_t[low].lo};
    }
    for (int n = 0; n < 16; ++n) {
      U128 v = hi_t[n];
      for (int i = 0; i < 4; ++i) v = mul_x(v);
      lo_t[n] = v;
    }
  }

  // y·H: Horner over the 16 bytes of the key-mixed accumulator y, two table
  // lookups per byte and one 8-bit reduce-shift between bytes (15 shifts
  // per block).
  U128 mul(U128 y_keyed) const {
    const std::uint64_t* rem = rem8().data();
    U128 z{0, 0};
    bool first = true;
    // ct-ok-begin: 4-bit table GHASH indexes on the H-mixed accumulator;
    // this is the variable-time fast path — gcm_set_constant_time(true)
    // selects the branchless gf_mul instead (docs/SECURITY.md).
    // Bytes 15..8 live in y_keyed.lo (lsb first), bytes 7..0 in y_keyed.hi.
    for (const std::uint64_t half : {y_keyed.lo, y_keyed.hi}) {
      for (int k = 0; k < 8; ++k) {
        if (!first) {
          const std::uint64_t r = z.lo & 0xff;
          z.lo = (z.lo >> 8) | (z.hi << 56);
          z.hi = (z.hi >> 8) ^ rem[r];
        }
        first = false;
        const std::uint8_t b = static_cast<std::uint8_t>(half >> (8 * k));
        z.hi ^= hi_t[b >> 4].hi ^ lo_t[b & 0xf].hi;
        z.lo ^= hi_t[b >> 4].lo ^ lo_t[b & 0xf].lo;
      }
    }
    // ct-ok-end
    return z;
  }
};

#if defined(VNFSGX_CLMUL_COMPILED)

bool cpu_has_clmul() {
  static const bool available = __builtin_cpu_supports("pclmul") &&
                                __builtin_cpu_supports("ssse3") &&
                                __builtin_cpu_supports("sse2");
  return available;
}

// Carry-less GF(2^128) multiply of byte-swapped GCM blocks (Gueron &
// Kounavis, Intel CLMUL white paper): four PCLMULQDQ partial products, a
// 1-bit left shift to absorb GCM's bit reflection, then reduction mod
// x^128 + x^7 + x^2 + x + 1 by shifts. No lookups, no branches —
// constant-time by construction, so it serves both GHASH modes.
__attribute__((target("pclmul,sse2"))) __m128i gfmul_clmul(__m128i a,
                                                           __m128i b) {
  __m128i tmp3 = _mm_clmulepi64_si128(a, b, 0x00);
  __m128i tmp4 = _mm_clmulepi64_si128(a, b, 0x10);
  __m128i tmp5 = _mm_clmulepi64_si128(a, b, 0x01);
  __m128i tmp6 = _mm_clmulepi64_si128(a, b, 0x11);
  tmp4 = _mm_xor_si128(tmp4, tmp5);
  tmp5 = _mm_slli_si128(tmp4, 8);
  tmp4 = _mm_srli_si128(tmp4, 8);
  tmp3 = _mm_xor_si128(tmp3, tmp5);
  tmp6 = _mm_xor_si128(tmp6, tmp4);
  __m128i tmp7 = _mm_srli_epi32(tmp3, 31);
  __m128i tmp8 = _mm_srli_epi32(tmp6, 31);
  tmp3 = _mm_slli_epi32(tmp3, 1);
  tmp6 = _mm_slli_epi32(tmp6, 1);
  __m128i tmp9 = _mm_srli_si128(tmp7, 12);
  tmp8 = _mm_slli_si128(tmp8, 4);
  tmp7 = _mm_slli_si128(tmp7, 4);
  tmp3 = _mm_or_si128(tmp3, tmp7);
  tmp6 = _mm_or_si128(tmp6, tmp8);
  tmp6 = _mm_or_si128(tmp6, tmp9);
  tmp7 = _mm_slli_epi32(tmp3, 31);
  tmp8 = _mm_slli_epi32(tmp3, 30);
  tmp9 = _mm_slli_epi32(tmp3, 25);
  tmp7 = _mm_xor_si128(tmp7, tmp8);
  tmp7 = _mm_xor_si128(tmp7, tmp9);
  tmp8 = _mm_srli_si128(tmp7, 4);
  tmp7 = _mm_slli_si128(tmp7, 12);
  tmp3 = _mm_xor_si128(tmp3, tmp7);
  __m128i tmp2 = _mm_srli_epi32(tmp3, 1);
  tmp4 = _mm_srli_epi32(tmp3, 2);
  tmp5 = _mm_srli_epi32(tmp3, 7);
  tmp2 = _mm_xor_si128(tmp2, tmp4);
  tmp2 = _mm_xor_si128(tmp2, tmp5);
  tmp2 = _mm_xor_si128(tmp2, tmp8);
  tmp3 = _mm_xor_si128(tmp3, tmp2);
  tmp6 = _mm_xor_si128(tmp6, tmp3);
  return tmp6;
}

// Fold full blocks plus a zero-padded tail of `data` into the accumulator.
// The BSWAP shuffle turns memory order into the byte-swapped form gfmul
// expects (same layout as U128 {hi, lo} packed into one register).
__attribute__((target("pclmul,ssse3,sse2"))) void ghash_update_clmul(
    __m128i* y, __m128i h, const std::uint8_t* data, std::size_t len) {
  const __m128i bswap =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  std::size_t off = 0;
  for (; off + 16 <= len; off += 16) {
    const __m128i x = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + off)), bswap);
    *y = gfmul_clmul(_mm_xor_si128(*y, x), h);
  }
  if (off < len) {
    std::uint8_t block[16] = {0};
    for (std::size_t i = 0; off + i < len; ++i) block[i] = data[off + i];
    const __m128i x = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block)), bswap);
    *y = gfmul_clmul(_mm_xor_si128(*y, x), h);
  }
}

// Whole GHASH (AAD, ciphertext, length block) on the PCLMUL path; the
// accumulator stays in a register across blocks.
__attribute__((target("pclmul,ssse3,sse2"))) U128 ghash_clmul(
    U128 hk, ByteView aad, ByteView ciphertext) {
  const __m128i h = _mm_set_epi64x(static_cast<long long>(hk.hi),
                                   static_cast<long long>(hk.lo));
  __m128i y = _mm_setzero_si128();
  ghash_update_clmul(&y, h, aad.data(), aad.size());
  ghash_update_clmul(&y, h, ciphertext.data(), ciphertext.size());
  const __m128i lengths = _mm_set_epi64x(
      static_cast<long long>(static_cast<std::uint64_t>(aad.size()) * 8),
      static_cast<long long>(static_cast<std::uint64_t>(ciphertext.size()) *
                             8));
  y = gfmul_clmul(_mm_xor_si128(y, lengths), h);
  std::uint64_t out[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), y);
  return U128{out[1], out[0]};
}

__attribute__((target("pclmul,sse2"))) U128 ghash_mul_clmul_impl(U128 x,
                                                                 U128 y) {
  const __m128i a = _mm_set_epi64x(static_cast<long long>(x.hi),
                                   static_cast<long long>(x.lo));
  const __m128i b = _mm_set_epi64x(static_cast<long long>(y.hi),
                                   static_cast<long long>(y.lo));
  std::uint64_t out[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), gfmul_clmul(a, b));
  return U128{out[1], out[0]};
}

#endif  // VNFSGX_CLMUL_COMPILED

}  // namespace

bool ghash_hw_available() {
#if defined(VNFSGX_CLMUL_COMPILED)
  return cpu_has_clmul();
#else
  return false;
#endif
}

void gcm_set_constant_time(bool enabled) { g_constant_time = enabled; }
bool gcm_constant_time() { return g_constant_time; }

AesGcm::AesGcm(ByteView key) : aes_(key) {
  AesBlock zero{};
  AesBlock h = aes_.encrypt_block(zero);
  const U128 hb = load_block(h.data());
  ghash_key_->h_hi = hb.hi;
  ghash_key_->h_lo = hb.lo;
  constant_time_ = g_constant_time;
  GhashTables tables(hb);
  for (int n = 0; n < 16; ++n) {
    ghash_key_->table_hi[n][0] = tables.hi_t[n].hi;
    ghash_key_->table_hi[n][1] = tables.hi_t[n].lo;
    ghash_key_->table_lo[n][0] = tables.lo_t[n].hi;
    ghash_key_->table_lo[n][1] = tables.lo_t[n].lo;
  }
  // Stack copies of H and the tables are key material too.
  secure_memzero(h.data(), h.size());
  secure_memzero(&tables, sizeof(tables));
}

AesBlock AesGcm::ghash(ByteView aad, ByteView ciphertext) const {
  const U128 h{ghash_key_->h_hi, ghash_key_->h_lo};
#if defined(VNFSGX_CLMUL_COMPILED)
  // PCLMUL has no secret-indexed lookups, so it supersedes both software
  // modes whenever the CPU offers it (the constant-time switch only picks
  // between the software paths).
  if (cpu_has_clmul()) {
    const U128 y = ghash_clmul(h, aad, ciphertext);
    AesBlock out;
    store_block(y, out.data());
    return out;
  }
#endif
  GhashTables tables;
  for (int n = 0; n < 16; ++n) {
    tables.hi_t[n] = U128{ghash_key_->table_hi[n][0], ghash_key_->table_hi[n][1]};
    tables.lo_t[n] = U128{ghash_key_->table_lo[n][0], ghash_key_->table_lo[n][1]};
  }
  const bool ct = constant_time_;
  auto mul_h = [&](U128 y) { return ct ? gf_mul(y, h) : tables.mul(y); };

  U128 y{0, 0};
  auto update = [&](ByteView data) {
    std::size_t off = 0;
    const std::size_t full_end = data.size() & ~static_cast<std::size_t>(15);
    while (off < full_end) {
      const U128 x = load_block(data.data() + off);
      y.hi ^= x.hi;
      y.lo ^= x.lo;
      y = mul_h(y);
      off += 16;
    }
    if (off < data.size()) {
      std::uint8_t block[16] = {0};
      for (std::size_t i = 0; off + i < data.size(); ++i) block[i] = data[off + i];
      const U128 x = load_block(block);
      y.hi ^= x.hi;
      y.lo ^= x.lo;
      y = mul_h(y);
    }
  };
  update(aad);
  update(ciphertext);
  // Length block: bit lengths of AAD and ciphertext.
  y.hi ^= static_cast<std::uint64_t>(aad.size()) * 8;
  y.lo ^= static_cast<std::uint64_t>(ciphertext.size()) * 8;
  y = mul_h(y);
  AesBlock out;
  store_block(y, out.data());
  return out;
}

void AesGcm::seal_in_place(ByteView nonce, std::uint8_t* data, std::size_t len,
                           ByteView aad, std::uint8_t* tag_out) const {
  if (nonce.size() != kGcmNonceSize) {
    throw CryptoError("AES-GCM nonce must be 12 bytes");
  }
  // J0 = nonce || 0x00000001; first counter for data is inc32(J0).
  AesBlock j0{};
  std::copy(nonce.begin(), nonce.end(), j0.begin());
  j0[15] = 1;
  AesBlock ctr = j0;
  ctr[15] = 2;

  aes_ctr_xor(aes_, ctr, ByteView(data, len), data);

  const AesBlock s = ghash(aad, ByteView(data, len));
  const AesBlock tag_mask = aes_.encrypt_block(j0);
  for (std::size_t i = 0; i < kGcmTagSize; ++i) {
    tag_out[i] = static_cast<std::uint8_t>(s[i] ^ tag_mask[i]);
  }
}

bool AesGcm::open_in_place(ByteView nonce, std::uint8_t* data, std::size_t len,
                           ByteView aad, ByteView tag) const {
  if (nonce.size() != kGcmNonceSize) {
    throw CryptoError("AES-GCM nonce must be 12 bytes");
  }
  if (tag.size() != kGcmTagSize) return false;
  AesBlock j0{};
  std::copy(nonce.begin(), nonce.end(), j0.begin());
  j0[15] = 1;

  const AesBlock s = ghash(aad, ByteView(data, len));
  const AesBlock tag_mask = aes_.encrypt_block(j0);
  std::uint8_t expected[kGcmTagSize];
  for (std::size_t i = 0; i < kGcmTagSize; ++i) {
    expected[i] = static_cast<std::uint8_t>(s[i] ^ tag_mask[i]);
  }
  if (!ct_equal(ByteView(expected, kGcmTagSize), tag)) return false;

  AesBlock ctr = j0;
  ctr[15] = 2;
  aes_ctr_xor(aes_, ctr, ByteView(data, len), data);
  return true;
}

Bytes AesGcm::seal(ByteView nonce, ByteView plaintext, ByteView aad) const {
  Bytes out(plaintext.size() + kGcmTagSize);
  std::copy(plaintext.begin(), plaintext.end(), out.begin());
  seal_in_place(nonce, out.data(), plaintext.size(), aad,
                out.data() + plaintext.size());
  return out;
}

std::optional<Bytes> AesGcm::open(ByteView nonce, ByteView ciphertext_and_tag,
                                  ByteView aad) const {
  if (ciphertext_and_tag.size() < kGcmTagSize) return std::nullopt;
  const std::size_t ct_len = ciphertext_and_tag.size() - kGcmTagSize;
  Bytes plaintext(ciphertext_and_tag.begin(),
                  ciphertext_and_tag.begin() + static_cast<std::ptrdiff_t>(ct_len));
  if (!open_in_place(nonce, plaintext.data(), ct_len, aad,
                     ciphertext_and_tag.subspan(ct_len))) {
    return std::nullopt;
  }
  return plaintext;
}

namespace detail {

AesBlock ghash_mul_reference(const AesBlock& x, const AesBlock& y) {
  const U128 z = gf_mul(load_block(x.data()), load_block(y.data()));
  AesBlock out;
  store_block(z, out.data());
  return out;
}

AesBlock ghash_mul_table(const AesBlock& x, const AesBlock& y) {
  const GhashTables tables(load_block(y.data()));
  const U128 z = tables.mul(load_block(x.data()));
  AesBlock out;
  store_block(z, out.data());
  return out;
}

AesBlock ghash_mul_clmul(const AesBlock& x, const AesBlock& y) {
#if defined(VNFSGX_CLMUL_COMPILED)
  if (cpu_has_clmul()) {
    const U128 z = ghash_mul_clmul_impl(load_block(x.data()), load_block(y.data()));
    AesBlock out;
    store_block(z, out.data());
    return out;
  }
#endif
  return ghash_mul_reference(x, y);
}

}  // namespace detail

}  // namespace vnfsgx::crypto
