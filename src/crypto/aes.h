// AES-128/192/256 block cipher (FIPS 197), encryption direction only —
// CTR and GCM modes never need block decryption.
//
// Two code paths behind one key schedule: AES-NI (runtime-detected, used
// whenever the CPU has it — constant-time by construction and ~10x the
// table path) and the classic T-table software fallback.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/secure.h"

namespace vnfsgx::crypto {

inline constexpr std::size_t kAesBlockSize = 16;

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// True when this build and CPU run AES rounds in hardware (AES-NI).
bool aes_hw_available();

/// Key-expanded AES context. Supports 16/24/32-byte keys; throws
/// CryptoError otherwise.
class Aes {
 public:
  explicit Aes(ByteView key);

  /// Encrypt a single 16-byte block.
  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  AesBlock encrypt_block(const AesBlock& in) const {
    AesBlock out;
    encrypt_block(in.data(), out.data());
    return out;
  }

  /// Encrypt four independent 16-byte blocks in one interleaved pass
  /// (keystream batching for CTR/GCM).
  void encrypt4(const std::uint8_t in[64], std::uint8_t out[64]) const;

 private:
  // Expanded key schedule is key-equivalent material: wiped on destruct.
  // The byte-serialized copy feeds AES-NI round-key loads (same schedule,
  // each word big-endian — the block byte order AESENC consumes).
  Zeroizing<std::array<std::uint32_t, 60>> round_keys_;
  Zeroizing<std::array<std::uint8_t, 240>> round_key_bytes_;
  int rounds_ = 0;
  bool hw_ = false;
};

/// AES-CTR keystream XOR: encrypt == decrypt. The 16-byte counter block is
/// incremented big-endian in its last 4 bytes (GCM convention).
void aes_ctr_xor(const Aes& aes, const AesBlock& initial_counter, ByteView in,
                 std::uint8_t* out);

}  // namespace vnfsgx::crypto
