// Randomness sources.
//
// All key generation takes a RandomSource&, so tests and benchmarks can run
// deterministically (DeterministicRandom) while examples use SystemRandom.
// SystemRandom is an HMAC-DRBG (SP 800-90A) seeded from std::random_device.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "common/bytes.h"
#include "common/secure.h"

namespace vnfsgx::crypto {

class RandomSource {
 public:
  virtual ~RandomSource() = default;
  virtual void fill(std::span<std::uint8_t> out) = 0;

  Bytes bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }

  std::uint64_t u64() {
    std::uint8_t b[8];
    fill(std::span<std::uint8_t>(b, 8));
    std::uint64_t v = 0;
    for (auto x : b) v = (v << 8) | x;
    return v;
  }
};

/// HMAC-DRBG (SHA-256), deterministic from a seed. The workhorse behind both
/// random sources below; also reseedable.
class HmacDrbg final : public RandomSource {
 public:
  explicit HmacDrbg(ByteView seed);

  void fill(std::span<std::uint8_t> out) override;
  void reseed(ByteView entropy);

 private:
  void update(ByteView provided);

  // DRBG working state: K predicts all future output, so both halves are
  // wiped on destruction.
  SecureBytes key_;  // K
  SecureBytes v_;    // V
};

/// Deterministic source for tests/benches: HMAC-DRBG with a fixed seed.
class DeterministicRandom final : public RandomSource {
 public:
  explicit DeterministicRandom(std::uint64_t seed);
  void fill(std::span<std::uint8_t> out) override { drbg_.fill(out); }

 private:
  HmacDrbg drbg_;
};

/// Serializing adapter: makes any RandomSource safe to share across
/// threads (e.g. one DeterministicRandom feeding a multi-threaded testbed
/// or a fleet attestation's host simulators).
class LockedRandom final : public RandomSource {
 public:
  explicit LockedRandom(RandomSource& inner) : inner_(inner) {}
  void fill(std::span<std::uint8_t> out) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.fill(out);
  }

 private:
  std::mutex mutex_;
  RandomSource& inner_;
};

/// Thread-safe process-wide source seeded from the OS.
class SystemRandom final : public RandomSource {
 public:
  SystemRandom();
  void fill(std::span<std::uint8_t> out) override;

  static SystemRandom& instance();

 private:
  std::mutex mutex_;
  std::unique_ptr<HmacDrbg> drbg_;
};

}  // namespace vnfsgx::crypto
