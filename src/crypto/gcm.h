// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// The AEAD used everywhere: TLS records, SGX sealed blobs, and the
// provisioning protocol's encrypted credential payloads.
//
// GHASH picks the fastest safe path at runtime: PCLMULQDQ carry-less
// multiplication when the CPU has it (no lookups or branches — it serves
// both timing modes), else Shoup's 4-bit tables (a 16-entry table of H·i,
// per-key, built in the constructor, plus a key-independent 256-entry
// reduction table). Table indices depend on secret data, so without
// PCLMUL `gcm_set_constant_time(true)` selects the branchless
// bit-at-a-time fallback (see docs/PROTOCOL.md, "Constant-time notes").
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/secure.h"
#include "crypto/aes.h"

namespace vnfsgx::crypto {

inline constexpr std::size_t kGcmTagSize = 16;
inline constexpr std::size_t kGcmNonceSize = 12;

/// Process-wide GHASH mode switch. When enabled, AesGcm instances
/// constructed afterwards use the constant-time bit-at-a-time GF(2^128)
/// multiply instead of the secret-indexed tables. Moot on CPUs with
/// PCLMUL: the hardware path is constant-time and always preferred.
void gcm_set_constant_time(bool enabled);
bool gcm_constant_time();

/// True when this build and CPU run GHASH on PCLMULQDQ.
bool ghash_hw_available();

/// AES-GCM context bound to one key. Nonces must be 12 bytes (the TLS and
/// sealing layers both construct 12-byte nonces).
class AesGcm {
 public:
  explicit AesGcm(ByteView key);

  /// Encrypt + authenticate. Returns ciphertext || 16-byte tag.
  Bytes seal(ByteView nonce, ByteView plaintext, ByteView aad) const;

  /// Verify + decrypt ciphertext||tag. Returns nullopt on authentication
  /// failure (the caller decides whether that is fatal).
  std::optional<Bytes> open(ByteView nonce, ByteView ciphertext_and_tag,
                            ByteView aad) const;

  /// Zero-copy seal: encrypts data[0..len) in place and writes the 16-byte
  /// tag to tag_out (which may alias data+len in a larger buffer).
  void seal_in_place(ByteView nonce, std::uint8_t* data, std::size_t len,
                     ByteView aad, std::uint8_t* tag_out) const;

  /// Zero-copy open: authenticates data[0..len) against tag, then decrypts
  /// in place. Returns false (leaving data as ciphertext) on tag mismatch.
  bool open_in_place(ByteView nonce, std::uint8_t* data, std::size_t len,
                     ByteView aad, ByteView tag) const;

 private:
  AesBlock ghash(ByteView aad, ByteView ciphertext) const;

  // GHASH key H = E_K(0^128) (split into 64-bit halves) plus the Shoup
  // 4-bit tables derived from it: table_hi[n] = (nibble n in the
  // high-nibble slot of byte 0)·H, table_lo[n] = the same shifted by x^4
  // (low-nibble slot). All of it is key-equivalent, hence one Zeroizing
  // block wiped on destruct.
  struct GhashKey {
    std::uint64_t h_hi = 0;
    std::uint64_t h_lo = 0;
    std::uint64_t table_hi[16][2];
    std::uint64_t table_lo[16][2];
  };

  Aes aes_;
  Zeroizing<GhashKey> ghash_key_;
  bool constant_time_ = false;
};

namespace detail {

/// Test hooks: X·Y in GF(2^128) (GCM bit order) computed by the branchless
/// bit-at-a-time reference path and by the table-driven path. The AEAD
/// KATs pin the composite; these pin the multiplier itself on arbitrary
/// inputs so the two code paths can be cross-checked exhaustively.
AesBlock ghash_mul_reference(const AesBlock& x, const AesBlock& y);
AesBlock ghash_mul_table(const AesBlock& x, const AesBlock& y);
/// PCLMUL path when available (falls back to the reference otherwise, so
/// cross-checks are trivially true on CPUs without it).
AesBlock ghash_mul_clmul(const AesBlock& x, const AesBlock& y);

}  // namespace detail

}  // namespace vnfsgx::crypto
