// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// The AEAD used everywhere: TLS records, SGX sealed blobs, and the
// provisioning protocol's encrypted credential payloads.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/aes.h"

namespace vnfsgx::crypto {

inline constexpr std::size_t kGcmTagSize = 16;
inline constexpr std::size_t kGcmNonceSize = 12;

/// AES-GCM context bound to one key. Nonces must be 12 bytes (the TLS and
/// sealing layers both construct 12-byte nonces).
class AesGcm {
 public:
  explicit AesGcm(ByteView key);

  /// Encrypt + authenticate. Returns ciphertext || 16-byte tag.
  Bytes seal(ByteView nonce, ByteView plaintext, ByteView aad) const;

  /// Verify + decrypt ciphertext||tag. Returns nullopt on authentication
  /// failure (the caller decides whether that is fatal).
  std::optional<Bytes> open(ByteView nonce, ByteView ciphertext_and_tag,
                            ByteView aad) const;

 private:
  AesBlock ghash(ByteView aad, ByteView ciphertext) const;

  Aes aes_;
  // GHASH key H = E_K(0^128), pre-split into 64-bit halves.
  std::uint64_t h_hi_ = 0;
  std::uint64_t h_lo_ = 0;
};

}  // namespace vnfsgx::crypto
