// X25519 Diffie-Hellman (RFC 7748). Provides the ECDHE key exchange for
// the TLS-style secure channel and for provisioning-protocol key wrap.
#pragma once

#include <array>

#include "common/bytes.h"
#include "common/secure.h"
#include "crypto/random.h"

namespace vnfsgx::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// scalar * point on Curve25519 (Montgomery ladder, constant-time swaps).
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// scalar * base point (u = 9).
X25519Key x25519_base(const X25519Key& scalar);

struct X25519KeyPair {
  Zeroizing<X25519Key> private_key;  // wiped when the pair dies
  X25519Key public_key{};
};

/// Generate a fresh keypair (clamping applied by the ladder itself).
X25519KeyPair x25519_generate(RandomSource& rng);

/// Shared secret = private * peer_public. Throws CryptoError if the result
/// is all-zero (low-order peer point), per RFC 7748 §6.1 guidance. The
/// result feeds key derivation, so it comes back self-wiping.
SecureBytes x25519_shared(const X25519Key& private_key,
                          const X25519Key& peer_public);

}  // namespace vnfsgx::crypto
