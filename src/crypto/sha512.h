// SHA-512 (FIPS 180-4). Required by Ed25519 (RFC 8032).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace vnfsgx::crypto {

inline constexpr std::size_t kSha512DigestSize = 64;
inline constexpr std::size_t kSha512BlockSize = 128;

using Sha512Digest = std::array<std::uint8_t, kSha512DigestSize>;

/// Incremental SHA-512.
class Sha512 {
 public:
  Sha512() { reset(); }

  void reset();
  void update(ByteView data);
  Sha512Digest finish();

  static Sha512Digest hash(ByteView data) {
    Sha512 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, kSha512BlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;  // bytes; messages < 2^64 bytes suffice here
};

Bytes sha512(ByteView data);

}  // namespace vnfsgx::crypto
