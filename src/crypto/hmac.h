// HMAC (RFC 2104) over SHA-256 and SHA-512.
//
// Used for: SGX REPORT MACs (the simulator's stand-in for CMAC), HKDF,
// HMAC-DRBG, and the Verification Manager's nonce binding.
#pragma once

#include "common/bytes.h"
#include "common/secure.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace vnfsgx::crypto {

/// Incremental HMAC-SHA256.
class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);

  void update(ByteView data);
  Sha256Digest finish();

  static Sha256Digest mac(ByteView key, ByteView data) {
    HmacSha256 h(key);
    h.update(data);
    return h.finish();
  }

 private:
  Sha256 inner_;
  // Key-derived pad, kept for finish(); wiped with the context.
  Zeroizing<std::array<std::uint8_t, kSha256BlockSize>> opad_key_;
};

/// One-shot HMAC-SHA256 returning a Bytes vector.
Bytes hmac_sha256(ByteView key, ByteView data);

/// One-shot HMAC-SHA512 returning a Bytes vector.
Bytes hmac_sha512(ByteView key, ByteView data);

/// Verify an HMAC-SHA256 tag in constant time.
bool hmac_sha256_verify(ByteView key, ByteView data, ByteView tag);

}  // namespace vnfsgx::crypto
