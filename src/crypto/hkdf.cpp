#include "crypto/hkdf.h"

#include "common/error.h"
#include "crypto/hmac.h"

namespace vnfsgx::crypto {

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw CryptoError("hkdf_expand: requested length too large");
  }
  Bytes out;
  out.reserve(length);
  // T(i) chains key material; the working copies wipe themselves.
  SecureBytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    SecureBytes block = t;
    append(block, info);
    append_u8(block, counter++);
    t = hmac_sha256(prk, block);
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  const SecureBytes prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

Bytes hkdf_expand_label(ByteView secret, std::string_view label,
                        ByteView context, std::size_t length) {
  // struct { uint16 length; opaque label<7..255>; opaque context<0..255>; }
  Bytes hkdf_label;
  append_u16(hkdf_label, static_cast<std::uint16_t>(length));
  const std::string full_label = "tls13 " + std::string(label);
  append_u8(hkdf_label, static_cast<std::uint8_t>(full_label.size()));
  append(hkdf_label, full_label);
  append_u8(hkdf_label, static_cast<std::uint8_t>(context.size()));
  append(hkdf_label, context);
  return hkdf_expand(secret, hkdf_label, length);
}

}  // namespace vnfsgx::crypto
