#include "crypto/aes.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

#if defined(__x86_64__) || defined(__i386__)
#define VNFSGX_AESNI_COMPILED 1
#include <immintrin.h>
#endif

namespace vnfsgx::crypto {

namespace {

#if defined(VNFSGX_AESNI_COMPILED)

bool cpu_has_aesni() {
  static const bool available =
      __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse2");
  return available;
}

// One block through the full round sequence. Round keys are the FIPS-197
// schedule serialized big-endian per word — the byte order AESENC consumes.
__attribute__((target("aes,sse2"))) void aesni_encrypt1(
    const std::uint8_t* rk, int rounds, const std::uint8_t in[16],
    std::uint8_t out[16]) {
  __m128i b = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(in)),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk)));
  for (int r = 1; r < rounds; ++r) {
    b = _mm_aesenc_si128(
        b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * r)));
  }
  b = _mm_aesenclast_si128(
      b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * rounds)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

// Four independent blocks interleaved: AESENC has multi-cycle latency but
// single-cycle throughput, so four dependency chains keep the unit fed.
__attribute__((target("aes,sse2"))) void aesni_encrypt4(
    const std::uint8_t* rk, int rounds, const std::uint8_t in[64],
    std::uint8_t out[64]) {
  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk));
  __m128i b0 = _mm_xor_si128(_mm_loadu_si128(src + 0), k);
  __m128i b1 = _mm_xor_si128(_mm_loadu_si128(src + 1), k);
  __m128i b2 = _mm_xor_si128(_mm_loadu_si128(src + 2), k);
  __m128i b3 = _mm_xor_si128(_mm_loadu_si128(src + 3), k);
  for (int r = 1; r < rounds; ++r) {
    k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * r));
    b0 = _mm_aesenc_si128(b0, k);
    b1 = _mm_aesenc_si128(b1, k);
    b2 = _mm_aesenc_si128(b2, k);
    b3 = _mm_aesenc_si128(b3, k);
  }
  k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * rounds));
  __m128i* dst = reinterpret_cast<__m128i*>(out);
  _mm_storeu_si128(dst + 0, _mm_aesenclast_si128(b0, k));
  _mm_storeu_si128(dst + 1, _mm_aesenclast_si128(b1, k));
  _mm_storeu_si128(dst + 2, _mm_aesenclast_si128(b2, k));
  _mm_storeu_si128(dst + 3, _mm_aesenclast_si128(b3, k));
}

#endif  // VNFSGX_AESNI_COMPILED

// The S-box and the four round T-tables are computed at first use (GF(2^8)
// inversion + affine transform, then MixColumns folded in) instead of being
// transcribed, which removes a whole class of typo bugs. The T-tables merge
// SubBytes + ShiftRows + MixColumns into four 32-bit lookups per column —
// the classic software-AES hot-path layout.
struct AesTables {
  std::array<std::uint8_t, 256> sbox;
  std::array<std::uint32_t, 256> te0, te1, te2, te3;

  AesTables() {
    // Build log/antilog tables over GF(2^8) with generator 3.
    std::array<std::uint8_t, 256> log{}, alog{};
    std::uint8_t p = 1;
    for (int i = 0; i < 255; ++i) {
      alog[i] = p;
      log[p] = static_cast<std::uint8_t>(i);
      // p *= 3 in GF(2^8): p ^ xtime(p)
      p = static_cast<std::uint8_t>(p ^ ((p << 1) ^ ((p & 0x80) ? 0x1b : 0)));
    }
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t inv =
          (x == 0) ? 0 : alog[(255 - log[static_cast<std::uint8_t>(x)]) % 255];
      std::uint8_t y = inv;
      std::uint8_t res = inv ^ 0x63;
      for (int i = 0; i < 4; ++i) {
        y = static_cast<std::uint8_t>((y << 1) | (y >> 7));  // rotl 1
        res ^= y;
      }
      sbox[x] = res;
    }
    for (int x = 0; x < 256; ++x) {
      const std::uint32_t s = sbox[x];
      const std::uint32_t s2 = (s << 1) ^ ((s & 0x80) ? 0x11b : 0);  // 02·S
      const std::uint32_t s3 = s2 ^ s;                               // 03·S
      // Column word {02·S, S, S, 03·S} big-endian; te1..te3 are byte
      // rotations so each state byte indexes the table matching its row.
      const std::uint32_t t = (s2 << 24) | (s << 16) | (s << 8) | s3;
      te0[x] = t;
      te1[x] = (t >> 8) | (t << 24);
      te2[x] = (t >> 16) | (t << 16);
      te3[x] = (t >> 24) | (t << 8);
    }
  }
};

const AesTables& tables() {
  static const AesTables t;
  return t;
}

const std::uint8_t* sbox() { return tables().sbox.data(); }

inline std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
}

inline std::uint32_t sub_word(std::uint32_t key_word) {
  const std::uint8_t* s = sbox();
  // ct-ok-begin: S-box lookups on key-schedule words; the table-driven AES
  // here is the simulator's fast path and is not hardened against cache
  // timing (docs/SECURITY.md, "Constant-time policy").
  return (static_cast<std::uint32_t>(s[(key_word >> 24) & 0xff]) << 24) |
         (static_cast<std::uint32_t>(s[(key_word >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(s[(key_word >> 8) & 0xff]) << 8) |
         s[key_word & 0xff];
  // ct-ok-end
}

inline std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

}  // namespace

bool aes_hw_available() {
#if defined(VNFSGX_AESNI_COMPILED)
  return cpu_has_aesni();
#else
  return false;
#endif
}

Aes::Aes(ByteView key) {
  int nk;  // key length in 32-bit words
  switch (key.size()) {
    case 16:
      nk = 4;
      rounds_ = 10;
      break;
    case 24:
      nk = 6;
      rounds_ = 12;
      break;
    case 32:
      nk = 8;
      rounds_ = 14;
      break;
    default:
      throw CryptoError("AES key must be 16, 24 or 32 bytes");
  }
  const int total_words = 4 * (rounds_ + 1);
  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = (static_cast<std::uint32_t>(key[i * 4]) << 24) |
                     (static_cast<std::uint32_t>(key[i * 4 + 1]) << 16) |
                     (static_cast<std::uint32_t>(key[i * 4 + 2]) << 8) |
                     key[i * 4 + 3];
  }
  std::uint8_t rcon = 1;
  for (int i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ (static_cast<std::uint32_t>(rcon) << 24);
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
#if defined(VNFSGX_AESNI_COMPILED)
  if (cpu_has_aesni()) {
    hw_ = true;
    for (int i = 0; i < total_words; ++i) {
      const std::uint32_t w = round_keys_[i];
      round_key_bytes_[static_cast<std::size_t>(i) * 4] =
          static_cast<std::uint8_t>(w >> 24);
      round_key_bytes_[static_cast<std::size_t>(i) * 4 + 1] =
          static_cast<std::uint8_t>(w >> 16);
      round_key_bytes_[static_cast<std::size_t>(i) * 4 + 2] =
          static_cast<std::uint8_t>(w >> 8);
      round_key_bytes_[static_cast<std::size_t>(i) * 4 + 3] =
          static_cast<std::uint8_t>(w);
    }
  }
#endif
}

namespace {

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

inline void store_be32(std::uint32_t v, std::uint8_t* p) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
#if defined(VNFSGX_AESNI_COMPILED)
  if (hw_) {
    aesni_encrypt1(round_key_bytes_.data(), rounds_, in, out);
    return;
  }
#endif
  const AesTables& tb = tables();
  const std::uint32_t* rk = round_keys_.data();
  std::uint32_t s0 = load_be32(in) ^ rk[0];
  std::uint32_t s1 = load_be32(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(in + 12) ^ rk[3];
  rk += 4;
  // ct-ok-begin: T-table rounds index on key-mixed state; table AES is the
  // simulator's fast path and is not hardened against cache timing
  // (docs/SECURITY.md, "Constant-time policy").
  for (int round = 1; round < rounds_; ++round, rk += 4) {
    const std::uint32_t t0 = tb.te0[s0 >> 24] ^ tb.te1[(s1 >> 16) & 0xff] ^
                             tb.te2[(s2 >> 8) & 0xff] ^ tb.te3[s3 & 0xff] ^
                             rk[0];
    const std::uint32_t t1 = tb.te0[s1 >> 24] ^ tb.te1[(s2 >> 16) & 0xff] ^
                             tb.te2[(s3 >> 8) & 0xff] ^ tb.te3[s0 & 0xff] ^
                             rk[1];
    const std::uint32_t t2 = tb.te0[s2 >> 24] ^ tb.te1[(s3 >> 16) & 0xff] ^
                             tb.te2[(s0 >> 8) & 0xff] ^ tb.te3[s1 & 0xff] ^
                             rk[2];
    const std::uint32_t t3 = tb.te0[s3 >> 24] ^ tb.te1[(s0 >> 16) & 0xff] ^
                             tb.te2[(s1 >> 8) & 0xff] ^ tb.te3[s2 & 0xff] ^
                             rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
  const std::uint8_t* s = tb.sbox.data();
  auto final_word = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                        std::uint32_t d, std::uint32_t k) {
    return ((static_cast<std::uint32_t>(s[a >> 24]) << 24) |
            (static_cast<std::uint32_t>(s[(b >> 16) & 0xff]) << 16) |
            (static_cast<std::uint32_t>(s[(c >> 8) & 0xff]) << 8) |
            s[d & 0xff]) ^
           k;
  };
  store_be32(final_word(s0, s1, s2, s3, rk[0]), out);
  store_be32(final_word(s1, s2, s3, s0, rk[1]), out + 4);
  store_be32(final_word(s2, s3, s0, s1, rk[2]), out + 8);
  store_be32(final_word(s3, s0, s1, s2, rk[3]), out + 12);
  // ct-ok-end
}

void Aes::encrypt4(const std::uint8_t in[64], std::uint8_t out[64]) const {
#if defined(VNFSGX_AESNI_COMPILED)
  if (hw_) {
    aesni_encrypt4(round_key_bytes_.data(), rounds_, in, out);
    return;
  }
#endif
  // Four independent blocks walked through the rounds together so the four
  // dependency chains interleave (the single-block path is latency-bound on
  // the table lookups).
  const AesTables& tb = tables();
  std::uint32_t st[4][4];
  for (int lane = 0; lane < 4; ++lane) {
    for (int c = 0; c < 4; ++c) {
      st[lane][c] = load_be32(in + 16 * lane + 4 * c) ^ round_keys_[c];
    }
  }
  const std::uint32_t* rk = round_keys_.data() + 4;
  // ct-ok-begin: same T-table / S-box indexing on key-mixed state as
  // encrypt_block; table AES is the simulator's fast path and is not
  // hardened against cache timing (docs/SECURITY.md).
  for (int round = 1; round < rounds_; ++round, rk += 4) {
    for (int lane = 0; lane < 4; ++lane) {
      const std::uint32_t s0 = st[lane][0], s1 = st[lane][1], s2 = st[lane][2],
                          s3 = st[lane][3];
      st[lane][0] = tb.te0[s0 >> 24] ^ tb.te1[(s1 >> 16) & 0xff] ^
                    tb.te2[(s2 >> 8) & 0xff] ^ tb.te3[s3 & 0xff] ^ rk[0];
      st[lane][1] = tb.te0[s1 >> 24] ^ tb.te1[(s2 >> 16) & 0xff] ^
                    tb.te2[(s3 >> 8) & 0xff] ^ tb.te3[s0 & 0xff] ^ rk[1];
      st[lane][2] = tb.te0[s2 >> 24] ^ tb.te1[(s3 >> 16) & 0xff] ^
                    tb.te2[(s0 >> 8) & 0xff] ^ tb.te3[s1 & 0xff] ^ rk[2];
      st[lane][3] = tb.te0[s3 >> 24] ^ tb.te1[(s0 >> 16) & 0xff] ^
                    tb.te2[(s1 >> 8) & 0xff] ^ tb.te3[s2 & 0xff] ^ rk[3];
    }
  }
  const std::uint8_t* s = tb.sbox.data();
  for (int lane = 0; lane < 4; ++lane) {
    const std::uint32_t s0 = st[lane][0], s1 = st[lane][1], s2 = st[lane][2],
                        s3 = st[lane][3];
    const std::uint32_t w[4] = {s0, s1, s2, s3};
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t a = w[c], b = w[(c + 1) & 3], d = w[(c + 2) & 3],
                          e = w[(c + 3) & 3];
      const std::uint32_t v =
          ((static_cast<std::uint32_t>(s[a >> 24]) << 24) |
           (static_cast<std::uint32_t>(s[(b >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(s[(d >> 8) & 0xff]) << 8) |
           s[e & 0xff]) ^
          rk[c];
      store_be32(v, out + 16 * lane + 4 * c);
    }
  }
  // ct-ok-end
}

namespace {

// Big-endian increment of the low 32 counter bits (GCM inc32 convention).
inline void inc32(AesBlock& counter) {
  for (int i = 15; i >= 12; --i) {
    if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
}

inline void xor_bytes(const std::uint8_t* a, const std::uint8_t* b,
                      std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t x, y;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    x ^= y;
    std::memcpy(out + i, &x, 8);
  }
  for (; i < n; ++i) out[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
}

}  // namespace

void aes_ctr_xor(const Aes& aes, const AesBlock& initial_counter, ByteView in,
                 std::uint8_t* out) {
  AesBlock counter = initial_counter;
  std::size_t off = 0;
  // Batch keystream generation four counter blocks at a time.
  std::uint8_t ctr4[64];
  std::uint8_t ks[64];
  while (in.size() - off >= 64) {
    for (int b = 0; b < 4; ++b) {
      std::memcpy(ctr4 + 16 * b, counter.data(), 16);
      inc32(counter);
    }
    aes.encrypt4(ctr4, ks);
    xor_bytes(in.data() + off, ks, out + off, 64);
    off += 64;
  }
  while (off < in.size()) {
    aes.encrypt_block(counter.data(), ks);
    inc32(counter);
    const std::size_t take = std::min<std::size_t>(16, in.size() - off);
    xor_bytes(in.data() + off, ks, out + off, take);
    off += take;
  }
}

}  // namespace vnfsgx::crypto
