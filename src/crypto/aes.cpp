#include "crypto/aes.h"

#include "common/error.h"

namespace vnfsgx::crypto {

namespace {

// The S-box is computed at first use (GF(2^8) inversion + affine transform)
// instead of being transcribed, which removes a whole class of typo bugs.
struct SboxTable {
  std::array<std::uint8_t, 256> sbox;

  SboxTable() {
    // Build log/antilog tables over GF(2^8) with generator 3.
    std::array<std::uint8_t, 256> log{}, alog{};
    std::uint8_t p = 1;
    for (int i = 0; i < 255; ++i) {
      alog[i] = p;
      log[p] = static_cast<std::uint8_t>(i);
      // p *= 3 in GF(2^8): p ^ xtime(p)
      p = static_cast<std::uint8_t>(p ^ ((p << 1) ^ ((p & 0x80) ? 0x1b : 0)));
    }
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t inv =
          (x == 0) ? 0 : alog[(255 - log[static_cast<std::uint8_t>(x)]) % 255];
      std::uint8_t y = inv;
      std::uint8_t res = inv ^ 0x63;
      for (int i = 0; i < 4; ++i) {
        y = static_cast<std::uint8_t>((y << 1) | (y >> 7));  // rotl 1
        res ^= y;
      }
      sbox[x] = res;
    }
  }
};

const std::uint8_t* sbox() {
  static const SboxTable t;
  return t.sbox.data();
}

inline std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
}

inline std::uint32_t sub_word(std::uint32_t w) {
  const std::uint8_t* s = sbox();
  return (static_cast<std::uint32_t>(s[(w >> 24) & 0xff]) << 24) |
         (static_cast<std::uint32_t>(s[(w >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(s[(w >> 8) & 0xff]) << 8) |
         s[w & 0xff];
}

inline std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

}  // namespace

Aes::Aes(ByteView key) {
  int nk;  // key length in 32-bit words
  switch (key.size()) {
    case 16:
      nk = 4;
      rounds_ = 10;
      break;
    case 24:
      nk = 6;
      rounds_ = 12;
      break;
    case 32:
      nk = 8;
      rounds_ = 14;
      break;
    default:
      throw CryptoError("AES key must be 16, 24 or 32 bytes");
  }
  const int total_words = 4 * (rounds_ + 1);
  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = (static_cast<std::uint32_t>(key[i * 4]) << 24) |
                     (static_cast<std::uint32_t>(key[i * 4 + 1]) << 16) |
                     (static_cast<std::uint32_t>(key[i * 4 + 2]) << 8) |
                     key[i * 4 + 3];
  }
  std::uint8_t rcon = 1;
  for (int i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ (static_cast<std::uint32_t>(rcon) << 24);
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  const std::uint8_t* s = sbox();
  std::uint8_t state[16];
  // AddRoundKey(0); state is column-major: state[4*c + r].
  for (int c = 0; c < 4; ++c) {
    const std::uint32_t rk = round_keys_[c];
    state[4 * c + 0] = static_cast<std::uint8_t>(in[4 * c + 0] ^ (rk >> 24));
    state[4 * c + 1] = static_cast<std::uint8_t>(in[4 * c + 1] ^ (rk >> 16));
    state[4 * c + 2] = static_cast<std::uint8_t>(in[4 * c + 2] ^ (rk >> 8));
    state[4 * c + 3] = static_cast<std::uint8_t>(in[4 * c + 3] ^ rk);
  }

  for (int round = 1; round <= rounds_; ++round) {
    // SubBytes
    for (auto& b : state) b = s[b];
    // ShiftRows: row r rotates left by r.
    std::uint8_t t;
    t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    t = state[2];
    state[2] = state[10];
    state[10] = t;
    t = state[6];
    state[6] = state[14];
    state[14] = t;
    t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
    // MixColumns (skipped in the final round)
    if (round < rounds_) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = &state[4 * c];
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(a0 ^ a1));
        col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(a1 ^ a2));
        col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(a2 ^ a3));
        col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(a3 ^ a0));
      }
    }
    // AddRoundKey
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t rk = round_keys_[4 * round + c];
      state[4 * c + 0] ^= static_cast<std::uint8_t>(rk >> 24);
      state[4 * c + 1] ^= static_cast<std::uint8_t>(rk >> 16);
      state[4 * c + 2] ^= static_cast<std::uint8_t>(rk >> 8);
      state[4 * c + 3] ^= static_cast<std::uint8_t>(rk);
    }
  }
  for (int i = 0; i < 16; ++i) out[i] = state[i];
}

void aes_ctr_xor(const Aes& aes, const AesBlock& initial_counter, ByteView in,
                 std::uint8_t* out) {
  AesBlock counter = initial_counter;
  std::uint8_t keystream[16];
  std::size_t off = 0;
  while (off < in.size()) {
    aes.encrypt_block(counter.data(), keystream);
    const std::size_t take = std::min<std::size_t>(16, in.size() - off);
    for (std::size_t i = 0; i < take; ++i) {
      out[off + i] = static_cast<std::uint8_t>(in[off + i] ^ keystream[i]);
    }
    off += take;
    // Increment the low 32 bits big-endian (GCM inc32 convention).
    for (int i = 15; i >= 12; --i) {
      if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
  }
}

}  // namespace vnfsgx::crypto
