// Length-prefixed message framing over a Stream.
//
// The attestation and provisioning protocols (Verification Manager <->
// enclaves, VM <-> IAS) exchange discrete messages; this frames them as
// u32-length || payload with a configurable size cap.
#pragma once

#include "net/stream.h"

namespace vnfsgx::net {

inline constexpr std::size_t kDefaultMaxFrame = 1u << 24;  // 16 MiB

/// Write one frame.
inline void write_frame(Stream& stream, ByteView payload) {
  Bytes header;
  append_u32(header, static_cast<std::uint32_t>(payload.size()));
  stream.write(header);
  stream.write(payload);
}

/// Read one frame. Throws ParseError if the length exceeds `max_size`
/// and IoError on premature EOF.
inline Bytes read_frame(Stream& stream, std::size_t max_size = kDefaultMaxFrame) {
  std::uint8_t header[4];
  stream.read_exact(std::span<std::uint8_t>(header, 4));
  const std::uint32_t len = read_u32(ByteView(header, 4), 0);
  if (len > max_size) throw ParseError("frame too large");
  return stream.read_exact(len);
}

}  // namespace vnfsgx::net
