// POSIX TCP transport implementing the Stream interface.
//
// Lets every protocol in the repo (HTTP, TLS, the enrollment workflow) run
// over real loopback sockets in addition to the in-memory pipes — the
// examples use this to demonstrate the system end-to-end on localhost.
#pragma once

#include <cstdint>
#include <string>

#include "net/stream.h"

namespace vnfsgx::net {

/// Connected TCP socket.
class TcpStream final : public Stream {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() override;

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  void write(ByteView data) override;
  std::size_t read(std::span<std::uint8_t> out) override;
  void close() override;

  /// Connect to host:port (IPv4 dotted quad or "localhost").
  static StreamPtr connect(const std::string& host, std::uint16_t port);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Bind to the given port; port 0 picks an ephemeral port.
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actual bound port.
  std::uint16_t port() const { return port_; }

  /// Block until a client connects. Throws IoError once closed.
  StreamPtr accept();

  /// Unblock pending accept() calls and refuse new connections.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace vnfsgx::net
