// POSIX TCP transport implementing the Stream interface.
//
// Lets every protocol in the repo (HTTP, TLS, the enrollment workflow) run
// over real loopback sockets in addition to the in-memory pipes — the
// examples use this to demonstrate the system end-to-end on localhost.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/stream.h"

namespace vnfsgx::net {

/// Connected TCP socket.
class TcpStream final : public Stream {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() override;

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  void write(ByteView data) override;
  std::size_t read(std::span<std::uint8_t> out) override;
  void close() override;

  /// SO_RCVTIMEO: a read blocking longer than `timeout` throws
  /// TimeoutError. Zero restores indefinite blocking.
  void set_read_timeout(std::chrono::milliseconds timeout) override;

  /// The underlying socket fd (for readiness registration); -1 once closed.
  int native_handle() const { return fd_; }

  /// Connect to host:port (IPv4 dotted quad or "localhost").
  static StreamPtr connect(const std::string& host, std::uint16_t port);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Bind to the given port; port 0 picks an ephemeral port. `backlog` is
  /// the listen(2) queue depth — deep by default so connection storms from
  /// a VNF fleet queue in the kernel instead of seeing RSTs. With
  /// `reuse_port` set, multiple listeners may bind the same port
  /// (SO_REUSEPORT) and the kernel load-balances accepts between them —
  /// the sharded runtime binds one listener per reactor shard this way.
  explicit TcpListener(std::uint16_t port, int backlog = kDefaultBacklog,
                       bool reuse_port = false);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static constexpr int kDefaultBacklog = 1024;

  /// The actual bound port.
  std::uint16_t port() const { return port_; }

  /// The listening fd (for readiness registration); -1 once closed.
  int native_handle() const { return fd_; }

  /// Block until a client connects. Throws IoError once closed.
  /// Transient accept failures (ECONNABORTED: peer gave up while queued;
  /// EMFILE/ENFILE: fd exhaustion) are logged + metered and retried rather
  /// than thrown, so one bad connection cannot kill the accept loop.
  StreamPtr accept();

  /// Non-blocking accept for reactor loops: the listener must be in
  /// non-blocking mode (see set_nonblocking). Returns nullptr when no
  /// connection is pending or on a metered soft failure; throws IoError
  /// only for fatal conditions (listener closed).
  std::unique_ptr<TcpStream> try_accept();

  /// Switch the listening socket to non-blocking accepts.
  void set_nonblocking();

  /// Unblock pending accept() calls and refuse new connections.
  void close();

 private:
  /// Shed one connection under fd exhaustion: close the reserved spare fd,
  /// accept (now that a slot is free), immediately close the accepted
  /// socket, and re-open the spare. Without this, a full fd table makes
  /// accept() fail EMFILE forever while the backlog entry stays readable —
  /// the classic accept-loop livelock. Returns true if a connection was
  /// shed (the caller's accept should be retried / re-polled).
  bool shed_on_emfile();

  int fd_ = -1;
  int spare_fd_ = -1;  // reserved slot for the EMFILE shed path
  std::uint16_t port_ = 0;
};

}  // namespace vnfsgx::net
