#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "common/error.h"

namespace vnfsgx::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Reserved token for the self-wake eventfd; connection ids start at 1.
constexpr std::uint64_t kWakeToken = ~std::uint64_t{0};

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl add wakefd");
  }
}

Reactor::~Reactor() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::add(int fd, std::uint64_t token, bool oneshot) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | (oneshot ? EPOLLONESHOT : 0u);
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl add");
  }
}

void Reactor::rearm(int fd, std::uint64_t token) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl mod");
  }
}

void Reactor::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::size_t Reactor::wait(std::span<Event> out, int timeout_ms) {
  if (out.empty()) return 0;
  epoll_event events[64];
  const int cap =
      static_cast<int>(std::min(out.size(), std::size_t{64}));
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, cap, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("epoll_wait");

  std::size_t count = 0;
  for (int i = 0; i < n; ++i) {
    Event& e = out[count++];
    e = Event{};
    if (events[i].data.u64 == kWakeToken) {
      e.wake = true;
      std::uint64_t drain = 0;
      while (::read(wake_fd_, &drain, sizeof drain) > 0) {
      }
      continue;
    }
    e.token = events[i].data.u64;
    e.readable = (events[i].events & EPOLLIN) != 0;
    e.hangup =
        (events[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
  }
  return count;
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

}  // namespace vnfsgx::net
