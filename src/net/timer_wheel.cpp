#include "net/timer_wheel.h"

#include <algorithm>

namespace vnfsgx::net {

TimerWheel::TimerWheel(TimePoint origin, std::chrono::milliseconds tick)
    : tick_(tick.count() > 0 ? tick : kDefaultTick), origin_(origin) {}

std::uint64_t TimerWheel::schedule(std::chrono::milliseconds delay,
                                   Token token) {
  const auto ticks =
      (delay.count() + tick_.count() - 1) / tick_.count();  // round up
  // Minimum one tick out: the current tick's slot was already processed.
  const std::uint64_t deadline =
      current_tick_ + std::max<std::uint64_t>(
                          1, static_cast<std::uint64_t>(std::max<std::int64_t>(
                                 0, static_cast<std::int64_t>(ticks))));
  const std::uint64_t id = next_id_++;
  entries_.emplace(id, Entry{token, deadline});
  place(id, deadline);
  return id;
}

bool TimerWheel::cancel(std::uint64_t id) {
  // Lazy: the slot entry stays behind and is skipped (id no longer live)
  // when its slot is processed or cascaded.
  return entries_.erase(id) != 0;
}

void TimerWheel::place(std::uint64_t id, std::uint64_t deadline_tick) {
  const std::uint64_t delta =
      deadline_tick > current_tick_ ? deadline_tick - current_tick_ : 1;
  std::size_t level = 0;
  std::uint64_t span = kSlots;
  while (level + 1 < kLevels && delta >= span) {
    ++level;
    span <<= kSlotBits;
  }
  const std::size_t slot = static_cast<std::size_t>(
      (deadline_tick >> (kSlotBits * level)) & kSlotMask);
  slots_[level][slot].push_back(id);
}

void TimerWheel::process_slot(std::vector<std::uint64_t>& slot,
                              std::vector<Token>& expired) {
  // Entries whose deadline has passed fire; later-deadline entries (placed
  // here by a coarser level) are re-cascaded closer to the rim.
  std::vector<std::uint64_t> ids;
  ids.swap(slot);
  for (const std::uint64_t id : ids) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // cancelled: lazy drop
    if (it->second.deadline_tick <= current_tick_) {
      expired.push_back(it->second.token);
      entries_.erase(it);
    } else {
      place(id, it->second.deadline_tick);
    }
  }
}

void TimerWheel::advance(TimePoint now, std::vector<Token>& expired) {
  if (now <= origin_) return;
  const std::uint64_t target = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - origin_)
          .count() /
      tick_.count());
  if (target <= current_tick_) return;
  if (entries_.empty()) {  // nothing armed: jump, no per-tick work
    current_tick_ = target;
    return;
  }
  while (current_tick_ < target) {
    ++current_tick_;
    // Cascade coarser levels whenever their finer neighbourhood wraps.
    for (std::size_t level = 1; level < kLevels; ++level) {
      if ((current_tick_ & ((1ULL << (kSlotBits * level)) - 1)) != 0) break;
      const std::size_t slot = static_cast<std::size_t>(
          (current_tick_ >> (kSlotBits * level)) & kSlotMask);
      process_slot(slots_[level][slot], expired);
    }
    process_slot(slots_[0][current_tick_ & kSlotMask], expired);
    if (entries_.empty()) {
      current_tick_ = target;
      return;
    }
  }
}

std::chrono::milliseconds TimerWheel::next_expiry(TimePoint now) const {
  if (entries_.empty()) return std::chrono::milliseconds{-1};
  // Scan the fine wheel one revolution out. Entries in coarser levels
  // cannot fire before their neighbourhood's cascade boundary, and any
  // still-uncascaded entry's boundary lies at or beyond the next one — so
  // the next 64-tick boundary is a safe bound for everything off-level-0.
  const std::uint64_t next_boundary =
      current_tick_ + (kSlots - (current_tick_ & kSlotMask));
  std::uint64_t soonest = next_boundary;
  for (std::uint64_t t = current_tick_ + 1; t <= current_tick_ + kSlots;
       ++t) {
    const auto& slot = slots_[0][t & kSlotMask];
    bool live = false;
    for (const std::uint64_t id : slot) {
      const auto it = entries_.find(id);
      if (it != entries_.end() && it->second.deadline_tick == t) {
        live = true;
        break;
      }
    }
    if (live) {
      soonest = std::min(soonest, t);
      break;
    }
  }
  const auto deadline =
      origin_ + std::chrono::milliseconds(tick_.count() *
                                          static_cast<std::int64_t>(soonest));
  return std::max(std::chrono::milliseconds{1},
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now));
}

}  // namespace vnfsgx::net
